// The evaluation study in a box: decompose the same scene on every machine
// this suite models — MasPar MP-2 (SIMD), Intel Paragon (MIMD mesh, with a
// processor sweep and performance budget), the DEC 5000 cost model, and the
// real host through the thread pool — and print one comparative report.
//
//   ./machine_room [taps] [levels]

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "core/cost_model.hpp"
#include "core/metrics.hpp"
#include "core/synthetic.hpp"
#include "maspar/maspar_dwt.hpp"
#include "perf/report.hpp"
#include "wavelet/mesh_dwt.hpp"
#include "wavelet/threads_dwt.hpp"

int main(int argc, char** argv) {
    using namespace wavehpc;

    const int taps = (argc > 1) ? std::atoi(argv[1]) : 8;
    const int levels = (argc > 2) ? std::atoi(argv[2]) : 1;

    const auto img = core::landsat_tm_like(512, 512, 1996);
    const auto fp = core::FilterPair::daubechies(taps);

    std::cout << "=== machine room: F" << taps << "/L" << levels
              << " decomposition of a 512x512 scene ===\n\n";

    // --- MasPar MP-2 ---------------------------------------------------
    const auto mp2 = maspar::maspar_decompose(
        maspar::MasParProfile::mp2_16k(), img, fp, levels,
        maspar::Algorithm::Systolic, maspar::Virtualization::Hierarchical);
    std::cout << "MasPar MP-2 (16K PEs, systolic/hierarchical): " << mp2.seconds
              << " s  (" << 1.0 / mp2.seconds << " images/s)\n";

    // --- DEC 5000 baseline ----------------------------------------------
    const auto work = core::WaveletWork::analyze(512, 512, taps, levels);
    std::cout << "DEC 5000 workstation (calibrated model):      "
              << core::SequentialCostModel::dec5000().seconds(work) << " s\n";

    // --- Host, sequential and threaded -----------------------------------
    const auto t0 = std::chrono::steady_clock::now();
    const auto seq = core::decompose(img, fp, levels);
    const auto t1 = std::chrono::steady_clock::now();
    runtime::ThreadPool pool;
    const auto par = wavelet::decompose_parallel(img, fp, levels,
                                                 core::BoundaryMode::Periodic, pool);
    const auto t2 = std::chrono::steady_clock::now();
    const double host_seq = std::chrono::duration<double>(t1 - t0).count();
    const double host_par = std::chrono::duration<double>(t2 - t1).count();
    std::cout << "this host, sequential:                        " << host_seq << " s\n"
              << "this host, " << pool.workers()
              << "-thread pool:                     " << host_par << " s\n";
    if (!(par.approx == seq.approx)) {
        std::cerr << "backend mismatch!\n";
        return 1;
    }

    // --- Paragon sweep with budget ---------------------------------------
    std::cout << "\nIntel Paragon (PVM, snake mapping) processor sweep:\n";
    perf::TableWriter tw({"procs", "seconds", "speedup", "useful", "comm",
                          "redundancy", "imbalance"});
    double t_1 = 0.0;
    for (std::size_t p : {1U, 4U, 16U, 32U}) {
        mesh::Machine machine(mesh::MachineProfile::paragon_pvm());
        wavelet::MeshDwtConfig cfg;
        cfg.levels = levels;
        const auto res = wavelet::mesh_decompose(machine, img, fp, cfg, p,
                                                 core::SequentialCostModel::paragon_node());
        if (p == 1) t_1 = res.seconds;
        const auto b = perf::budget_from_run(res.run);
        tw.add_row({std::to_string(p), perf::TableWriter::num(res.seconds),
                    perf::TableWriter::num(t_1 / res.seconds, 2),
                    perf::TableWriter::pct(b.useful), perf::TableWriter::pct(b.comm),
                    perf::TableWriter::pct(b.redundancy),
                    perf::TableWriter::pct(b.imbalance)});
        // The mesh stripes pin the convolve kernel (the halo-extended
        // column pass has no lifting form), so the bit-identity reference
        // must pin it too even when WAVEHPC_DWT_KERNEL selects lifting.
        if (!(res.pyramid.approx ==
              core::decompose(img, fp, levels, cfg.mode,
                              core::DwtKernel::Convolve).approx)) {
            std::cerr << "paragon backend mismatch!\n";
            return 1;
        }
    }
    tw.print(std::cout);

    // --- What-if: the Cray T3D (the wavelet paper never ran it) ----------
    // Appendix B calibrated the T3D at ~7.7x the Paragon node on
    // integer/tree code and ~2.4x on memory-bound particle code; dense
    // single-precision filtering sits in between — use 3x as a documented
    // what-if.
    {
        mesh::Machine t3d(mesh::MachineProfile::cray_t3d_pvm());
        wavelet::MeshDwtConfig cfg;
        cfg.levels = levels;
        const core::SequentialCostModel alpha_node(
            "t3d-alpha-node", core::SequentialCostModel::paragon_node().per_output() / 3.0,
            core::SequentialCostModel::paragon_node().per_mac() / 3.0,
            core::SequentialCostModel::paragon_node().per_level() / 3.0);
        const auto res =
            wavelet::mesh_decompose(t3d, img, fp, cfg, 32, alpha_node);
        std::cout << "\nextension what-if — Cray T3D (32 PEs, PVM, 3x-Paragon node "
                     "model): "
                  << perf::TableWriter::num(res.seconds) << " s\n";
    }

    std::cout << "\nEvery backend produced identical coefficients; the timings span\n"
                 "three decades of machine design.\n";
    return 0;
}
