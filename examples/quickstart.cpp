// Quickstart: synthesize a Landsat-TM-like scene, run the Mallat
// multi-resolution decomposition, inspect the pyramid, reconstruct, and
// verify the round trip. Writes PGM files next to the binary so you can
// look at the subbands.
//
//   ./quickstart [levels] [taps]

#include <cstdlib>
#include <iostream>

#include "core/dwt.hpp"
#include "core/metrics.hpp"
#include "core/pgm_io.hpp"
#include "core/synthetic.hpp"

int main(int argc, char** argv) {
    using namespace wavehpc::core;

    const int levels = (argc > 1) ? std::atoi(argv[1]) : 3;
    const int taps = (argc > 2) ? std::atoi(argv[2]) : 8;

    std::cout << "wavehpc quickstart: " << levels << "-level decomposition with the "
              << taps << "-tap Daubechies filter\n";

    // 1. A deterministic 512x512 stand-in for the paper's Landsat scene.
    const ImageF scene = landsat_tm_like(512, 512, /*seed=*/1996, TmBand::Visible);
    write_pgm(scene, "quickstart_scene.pgm");

    // 2. Decompose. Periodic extension gives exact reconstruction.
    const FilterPair fp = FilterPair::daubechies(taps);
    const Pyramid pyr = decompose(scene, fp, levels, BoundaryMode::Periodic);

    // 3. Inspect: energy distribution across the pyramid.
    const double total = energy(scene);
    std::cout << "\nenergy distribution (orthonormal transform conserves energy):\n";
    double coeff_total = energy(pyr.approx);
    std::cout << "  approx " << pyr.approx.rows() << "x" << pyr.approx.cols() << ": "
              << 100.0 * energy(pyr.approx) / total << "%\n";
    for (std::size_t k = 0; k < pyr.depth(); ++k) {
        const double d =
            energy(pyr.levels[k].lh) + energy(pyr.levels[k].hl) + energy(pyr.levels[k].hh);
        coeff_total += d;
        std::cout << "  level " << k << " detail: " << 100.0 * d / total << "%\n";
    }
    std::cout << "  sum of coefficient energy / image energy = " << coeff_total / total
              << "\n";

    // Write the level-0 detail bands (scaled for visibility).
    ImageF vis(pyr.levels[0].hl.rows(), pyr.levels[0].hl.cols());
    for (std::size_t i = 0; i < vis.size(); ++i) {
        vis.flat()[i] = 128.0F + 4.0F * pyr.levels[0].hl.flat()[i];
    }
    write_pgm(vis, "quickstart_detail_hl.pgm");
    write_pgm(pyr.approx, "quickstart_approx.pgm");

    // 4. Reconstruct and verify.
    const ImageF back = reconstruct(pyr, fp);
    std::cout << "\nround trip: max |error| = " << max_abs_diff(scene, back)
              << " grey levels, PSNR = " << psnr(scene, back) << " dB\n";
    std::cout << "\nwrote quickstart_scene.pgm, quickstart_approx.pgm, "
                 "quickstart_detail_hl.pgm\n";
    return 0;
}
