// The report in one binary: its Appendix C workload-characterization
// methodology applied to its own Appendix A application. We trace the
// Mallat decomposition for the paper's three (filter, levels)
// configurations, schedule the traces on the oracle model, and place the
// wavelet workload among the NAS kernels by centroid similarity — answering
// "what kind of machine does wavelet decomposition want?", which is exactly
// the question the MasPar-vs-Paragon comparison settled empirically.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "workload/kernels.hpp"
#include "workload/matrix.hpp"

namespace {

namespace wl = wavehpc::workload;

void print_centroid_row(const char* name, const wl::Centroid& c, double pavg,
                        double smooth) {
    std::printf("  %-10s %8.2f %8.2f %8.2f %8.2f %8.2f %9.1f %8.3f\n", name, c[0], c[1],
                c[2], c[3], c[4], pavg, smooth);
}

}  // namespace

int main() {
    std::cout << "=== characterizing the wavelet decomposition with the "
                 "parallel-instruction model ===\n\n"
              << "  workload     Intops   Memops    FPops  Ctrlops  Brchops     "
                 "P_avg   smooth\n"
              << "  ---------------------------------------------------------------"
                 "---------\n";

    struct Cfg {
        const char* name;
        int taps;
        int levels;
    };
    const Cfg cfgs[] = {{"dwt-F8/L1", 8, 1}, {"dwt-F4/L2", 4, 2}, {"dwt-F2/L4", 2, 4}};

    std::vector<std::pair<std::string, wl::Centroid>> entries;
    for (const auto& cfg : cfgs) {
        const auto trace = wl::make_wavelet_trace(32, 32, cfg.taps, cfg.levels);
        const auto sched = wl::oracle_schedule(trace);
        const auto c = wl::centroid_of(sched);
        const auto sm = wl::smoothability(trace);
        print_centroid_row(cfg.name, c, sched.average_parallelism(), sm.smoothability);
        entries.emplace_back(cfg.name, c);
    }
    for (auto k : wl::kAllKernels) {
        const auto trace = wl::make_kernel(k, 4);
        const auto sched = wl::oracle_schedule(trace);
        const auto c = wl::centroid_of(sched);
        const auto sm = wl::smoothability(trace);
        print_centroid_row(wl::kernel_name(k), c, sched.average_parallelism(),
                           sm.smoothability);
        entries.emplace_back(wl::kernel_name(k), c);
    }

    // Which NAS kernel does the wavelet most resemble?
    std::cout << "\nnearest NAS kernels to dwt-F8/L1 (centroid similarity, 0 = "
                 "identical):\n";
    std::vector<std::pair<double, std::string>> ranked;
    for (std::size_t i = 3; i < entries.size(); ++i) {
        ranked.emplace_back(wl::similarity(entries[0].second, entries[i].second),
                            entries[i].first);
    }
    std::sort(ranked.begin(), ranked.end());
    for (const auto& [sim, name] : ranked) {
        std::printf("  %-10s %6.3f\n", name.c_str(), sim);
    }

    std::cout << "\nReading: the wavelet trace is wide (P_avg in the hundreds), "
                 "smooth, and\nFP/Memops heavy — precisely the data-parallel profile "
                 "a 16K-PE SIMD array\nexploits, which is why Table 1 shows the "
                 "MasPar two orders of magnitude\nahead of the workstation.\n";
    return 0;
}
