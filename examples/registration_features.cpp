// Multi-resolution feature extraction for image registration — the
// co-author's (Le Moigne) application area cited in the paper's
// introduction. Detail-band magnitude maxima form a feature pyramid;
// registering coarse-to-fine turns a global search into a few local ones.
//
// Here we extract features from a scene and a translated copy, then recover
// the translation by matching feature histograms level by level.

#include <cmath>
#include <iostream>
#include <vector>

#include "core/dwt.hpp"
#include "core/synthetic.hpp"

namespace {

using namespace wavehpc::core;

// Shift a scene periodically by (dr, dc).
ImageF shifted(const ImageF& img, std::size_t dr, std::size_t dc) {
    ImageF out(img.rows(), img.cols());
    for (std::size_t r = 0; r < img.rows(); ++r) {
        for (std::size_t c = 0; c < img.cols(); ++c) {
            out(r, c) = img((r + dr) % img.rows(), (c + dc) % img.cols());
        }
    }
    return out;
}

// Edge-energy map of one pyramid level: |LH| + |HL| + |HH|.
ImageF edge_map(const DetailBands& d) {
    ImageF out(d.lh.rows(), d.lh.cols());
    for (std::size_t i = 0; i < out.size(); ++i) {
        out.flat()[i] = std::abs(d.lh.flat()[i]) + std::abs(d.hl.flat()[i]) +
                        std::abs(d.hh.flat()[i]);
    }
    return out;
}

// Best periodic alignment of two edge maps inside a +/-radius window around
// a prior estimate, by maximizing correlation.
std::pair<std::size_t, std::size_t> align(const ImageF& a, const ImageF& b,
                                          std::size_t prior_r, std::size_t prior_c,
                                          std::size_t radius) {
    double best = -1.0;
    std::pair<std::size_t, std::size_t> arg{0, 0};
    for (std::size_t dr = prior_r - radius; dr <= prior_r + radius; ++dr) {
        for (std::size_t dc = prior_c - radius; dc <= prior_c + radius; ++dc) {
            const std::size_t mr = (dr + a.rows()) % a.rows();
            const std::size_t mc = (dc + a.cols()) % a.cols();
            double corr = 0.0;
            for (std::size_t r = 0; r < a.rows(); ++r) {
                for (std::size_t c = 0; c < a.cols(); ++c) {
                    corr += static_cast<double>(a((r + mr) % a.rows(),
                                                  (c + mc) % a.cols())) *
                            b(r, c);
                }
            }
            if (corr > best) {
                best = corr;
                arg = {mr, mc};
            }
        }
    }
    return arg;
}

}  // namespace

int main() {
    // The decimated DWT is shift-covariant only for shifts that are
    // multiples of 2^levels; real registration pipelines handle fractional
    // shifts with redundant transforms or level-wise re-decomposition. This
    // demo keeps the shift aligned so the coarse-to-fine logic is exact.
    constexpr std::size_t kTrueDr = 16;
    constexpr std::size_t kTrueDc = 24;
    constexpr int kLevels = 3;

    const ImageF reference = landsat_tm_like(256, 256, 77, TmBand::Visible);
    const ImageF sensed = shifted(reference, kTrueDr, kTrueDc);

    const FilterPair fp = FilterPair::daubechies(4);
    const Pyramid pref = decompose(reference, fp, kLevels, BoundaryMode::Periodic);
    const Pyramid psen = decompose(sensed, fp, kLevels, BoundaryMode::Periodic);

    std::cout << "coarse-to-fine registration via wavelet edge features\n"
              << "true shift: (" << kTrueDr << ", " << kTrueDc << ")\n\n";

    // Start at the coarsest level with an exhaustive search, then refine.
    std::size_t est_r = 0;
    std::size_t est_c = 0;
    for (int level = kLevels - 1; level >= 0; --level) {
        const ImageF ea = edge_map(pref.levels[static_cast<std::size_t>(level)]);
        const ImageF eb = edge_map(psen.levels[static_cast<std::size_t>(level)]);
        const std::size_t radius =
            (level == kLevels - 1) ? ea.rows() / 2 - 1 : 2;  // full search only once
        const auto [r, c] = align(ea, eb, est_r + ea.rows(), est_c + ea.cols(), radius);
        std::cout << "  level " << level << " (" << ea.rows() << "x" << ea.cols()
                  << "): shift estimate (" << r << ", " << c << ") in level pixels\n";
        // Upsample the estimate: to the next finer level's band grid, or —
        // after level 0 — from the band grid to image pixels (level-0 bands
        // are decimated once relative to the image).
        est_r = 2 * r;
        est_c = 2 * c;
    }
    std::cout << "\nrecovered shift: (" << est_r << ", " << est_c << ")  "
              << ((est_r == kTrueDr && est_c == kTrueDc) ? "[exact]" : "[approximate]")
              << "\n"
              << "Each refinement searched a 5x5 window instead of the full plane:\n"
              << "the multi-resolution pyramid is what makes registration fast.\n";
    return 0;
}
