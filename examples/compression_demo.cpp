// Wavelet image compression — the application driving the paper's speed
// requirements ("managing remotely sensed data whose already massive amount
// will grow even bigger with ... NASA's Earth Observing System").
//
// A rate/distortion sweep over the coefficient-retention fraction using the
// core compression API, plus a quantization line showing the entropy
// estimate of the coded size.
//
//   ./compression_demo [levels] [taps]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/compress.hpp"
#include "core/metrics.hpp"
#include "core/synthetic.hpp"

int main(int argc, char** argv) {
    using namespace wavehpc::core;

    const int levels = (argc > 1) ? std::atoi(argv[1]) : 4;
    const int taps = (argc > 2) ? std::atoi(argv[2]) : 8;

    const ImageF scene = landsat_tm_like(512, 512, 1996, TmBand::NearIr);
    const FilterPair fp = FilterPair::daubechies(taps);

    std::cout << "wavelet compression sweep (" << levels << " levels, " << taps
              << "-tap filter, 512x512 near-IR scene)\n\n"
              << "  keep%   stored coeffs   compression   PSNR (dB)   entropy "
                 "(bits/coef)\n"
              << "  ----------------------------------------------------------------"
                 "-----\n";
    for (double keep : {0.50, 0.20, 0.10, 0.05, 0.02, 0.01}) {
        const CompressionReport rep = compress_report(scene, fp, levels, keep);
        std::printf("  %5.1f%%   %13zu   %10.1fx   %9.2f   %10.3f\n", 100.0 * keep,
                    rep.stored_coefficients, rep.compression_ratio, rep.psnr_db,
                    rep.entropy_bits);
    }

    std::cout << "\nquantization line (all coefficients kept, uniform step):\n"
              << "  step   PSNR (dB)   entropy (bits/coef)\n"
              << "  --------------------------------------\n";
    for (float step : {0.5F, 1.0F, 2.0F, 4.0F, 8.0F}) {
        Pyramid pyr = decompose(scene, fp, levels, BoundaryMode::Periodic);
        quantize_details(pyr, step);
        const double bits = detail_entropy_bits(pyr, step);
        const ImageF back = reconstruct(pyr, fp);
        std::printf("  %4.1f   %9.2f   %10.3f\n", step, psnr(scene, back), bits);
    }

    std::cout << "\nDetail coefficients of natural terrain are sparse: a few percent\n"
                 "of them reconstruct the scene at high PSNR — why EOSDIS-scale\n"
                 "archives wanted fast wavelet codecs in 1996.\n";
    return 0;
}
