// Minimal pyramid-service client: submit a browse-quality request, hit the
// cache with a duplicate, watch an identical concurrent pair share one
// compute, and print the service report. Configuration comes from the
// WAVEHPC_SVC_* environment knobs (see the README table).

#include <iostream>
#include <memory>

#include "core/synthetic.hpp"
#include "svc/service.hpp"

int main() {
    using namespace wavehpc;

    runtime::ThreadPool pool;
    svc::PyramidService service(pool, svc::ServiceConfig::from_env());

    const auto scene = std::make_shared<const core::ImageF>(
        core::landsat_tm_like(512, 512, 1996));

    svc::TransformRequest req;
    req.image = scene;
    req.taps = 8;  // the paper's browse configuration: F8, one level
    req.levels = 1;
    req.priority = svc::Priority::Interactive;

    auto cold = service.submit(req);
    if (!cold.accepted) {
        std::cerr << "rejected; retry in " << cold.retry_after_seconds << " s\n";
        return 1;
    }
    const auto cold_reply = cold.future.get();
    std::cout << "cold compute: " << cold_reply.compute_seconds * 1e3
              << " ms, cache_hit=" << cold_reply.cache_hit << "\n";

    auto warm = service.submit(req);
    const auto warm_reply = warm.future.get();
    std::cout << "same request again: cache_hit=" << warm_reply.cache_hit
              << ", same buffer=" << (warm_reply.result == cold_reply.result)
              << ", total " << warm_reply.total_seconds * 1e6 << " us\n";

    // Two identical requests in flight at once: one transform, shared result.
    svc::TransformRequest other = req;
    other.levels = 3;
    auto a = service.submit(other);
    auto b = service.submit(other);
    const auto ra = a.future.get();
    const auto rb = b.future.get();
    std::cout << "concurrent identical pair: shared buffer="
              << (ra.result == rb.result) << " (second joined in-flight or hit: "
              << (rb.shared_flight || rb.cache_hit) << ")\n\n";

    service.shutdown();
    svc::print_service_metrics(std::cout, "demo", service.metrics(),
                               service.cache_stats());
    return 0;
}
