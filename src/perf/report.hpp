#pragma once
// Fixed-width text tables for the table/figure regenerator binaries.

#include <iostream>
#include <string>
#include <vector>

#include "perf/budget.hpp"

namespace wavehpc::perf {

/// Minimal column-aligned table writer: set headers, add string rows, print.
class TableWriter {
public:
    explicit TableWriter(std::vector<std::string> headers);

    void add_row(std::vector<std::string> cells);
    void print(std::ostream& os) const;

    /// Format helpers for numeric cells.
    [[nodiscard]] static std::string num(double v, int precision = 4);
    [[nodiscard]] static std::string pct(double fraction, int precision = 1);

private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/// Print a speedup curve (one figure series) with paper-shape annotations.
void print_speedup_series(std::ostream& os, const std::string& title,
                          const std::vector<SpeedupPoint>& points);

/// Header row matching print_budget_row's cells; `first` labels the key
/// column (usually "procs").
[[nodiscard]] std::vector<std::string> budget_headers(const std::string& first);

/// Print a performance-budget stack (Appendix B figures 4-6, 11-14, ...).
void print_budget_row(TableWriter& tw, const std::string& label, const Budget& b);

}  // namespace wavehpc::perf
