#pragma once
// Thread-pool overhead reporting: turns runtime::PoolMetrics snapshots into
// the fraction-of-makespan style rows the Appendix B "performance budget"
// uses, so host-pool runs can be budgeted the same way the simulated
// machines are.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "runtime/thread_pool.hpp"

namespace wavehpc::perf {

/// Overhead of one timed region, from the difference of two metric
/// snapshots plus the region's wall time.
struct PoolOverhead {
    std::uint64_t tasks = 0;             ///< tasks executed in the region
    std::uint64_t helper_tasks = 0;      ///< tasks run by helping waiters
    std::uint64_t groups = 0;            ///< parallel_for / group joins
    std::uint64_t queue_high_water = 0;  ///< peak queue depth (pool lifetime)
    double idle_seconds = 0.0;           ///< summed worker idle-wait time
    double wall_seconds = 0.0;           ///< region makespan
    std::size_t workers = 0;

    /// Idle worker-seconds over total worker-seconds — the analogue of the
    /// budget's imbalance/wait fraction for the host pool.
    [[nodiscard]] double idle_fraction() const noexcept;
};

/// Assemble the overhead record for a region bounded by two snapshots.
[[nodiscard]] PoolOverhead pool_overhead(const runtime::PoolMetrics& before,
                                         const runtime::PoolMetrics& after,
                                         double wall_seconds, std::size_t workers);

/// One human-readable line:
///   label: tasks=.. (helped=..) groups=.. q_hwm=.. idle=..ms (..% of worker-time)
void print_pool_overhead(std::ostream& os, const std::string& label,
                         const PoolOverhead& overhead);

}  // namespace wavehpc::perf
