#include "perf/pool_stats.hpp"

#include <iomanip>
#include <ostream>

namespace wavehpc::perf {

double PoolOverhead::idle_fraction() const noexcept {
    const double worker_seconds = wall_seconds * static_cast<double>(workers);
    if (worker_seconds <= 0.0) return 0.0;
    return idle_seconds / worker_seconds;
}

PoolOverhead pool_overhead(const runtime::PoolMetrics& before,
                           const runtime::PoolMetrics& after, double wall_seconds,
                           std::size_t workers) {
    PoolOverhead o;
    o.tasks = after.tasks_executed - before.tasks_executed;
    o.helper_tasks = after.helper_tasks - before.helper_tasks;
    o.groups = after.groups_completed - before.groups_completed;
    o.queue_high_water = after.queue_high_water;
    o.idle_seconds = after.idle_seconds - before.idle_seconds;
    o.wall_seconds = wall_seconds;
    o.workers = workers;
    return o;
}

void print_pool_overhead(std::ostream& os, const std::string& label,
                         const PoolOverhead& overhead) {
    const auto flags = os.flags();
    os << label << ": tasks=" << overhead.tasks << " (helped=" << overhead.helper_tasks
       << ") groups=" << overhead.groups << " q_hwm=" << overhead.queue_high_water
       << " idle=" << std::fixed << std::setprecision(3)
       << overhead.idle_seconds * 1e3 << "ms (" << std::setprecision(1)
       << overhead.idle_fraction() * 100.0 << "% of worker-time)\n";
    os.flags(flags);
}

}  // namespace wavehpc::perf
