#pragma once
// Fixed-bucket latency histogram for the service-metrics reporting
// (src/svc), in the spirit of the Appendix-B budget tables: cheap to
// record, mergeable, and quantile-queryable without storing samples.
//
// Buckets are geometric: 64 buckets spanning [100 ns, ~1000 s) with a
// constant ratio, so relative quantile error is bounded by one bucket
// width (~44%) regardless of scale — adequate for p50/p95/p99 tail
// reporting where the interesting differences are multiples, not percents.
// Exact count/sum/min/max are kept alongside so means and extremes are
// not quantized.

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace wavehpc::perf {

class LatencyHistogram {
public:
    static constexpr std::size_t kBuckets = 64;
    static constexpr double kMinSeconds = 1e-7;   // first bucket upper edge
    static constexpr double kMaxSeconds = 1e3;    // last finite edge

    /// Record one latency (seconds; negatives clamp to 0).
    void record(double seconds) noexcept;

    /// Fold another histogram into this one.
    void merge(const LatencyHistogram& other) noexcept;

    [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
    [[nodiscard]] double sum() const noexcept { return sum_; }
    [[nodiscard]] double min() const noexcept;   ///< 0 when empty
    [[nodiscard]] double max() const noexcept;   ///< 0 when empty
    [[nodiscard]] double mean() const noexcept;  ///< 0 when empty

    /// Latency at cumulative fraction q in [0, 1]: the geometric midpoint
    /// of the bucket holding the q-th sample, clamped to the exact observed
    /// [min, max]. Returns 0 when empty; out-of-range and NaN q are clamped
    /// into [0, 1], never UB (the per-outcome service histograms query
    /// quantiles on histograms that may have recorded nothing).
    [[nodiscard]] double quantile(double q) const noexcept;

private:
    [[nodiscard]] static std::size_t bucket_index(double seconds) noexcept;
    [[nodiscard]] static double bucket_lower(std::size_t idx) noexcept;
    [[nodiscard]] static double bucket_upper(std::size_t idx) noexcept;

    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Format a latency in engineering units (ns/us/ms/s) for table cells.
[[nodiscard]] std::string format_latency(double seconds);

class TableWriter;  // report.hpp

/// Append one table row "label | count | mean | p50 | p95 | p99 | max" to a
/// TableWriter built with latency_headers().
void print_latency_row(TableWriter& tw, const std::string& label,
                       const LatencyHistogram& h);

/// Header row matching print_latency_row's cells; `first` labels the key
/// column (usually the metric name).
[[nodiscard]] std::vector<std::string> latency_headers(const std::string& first);

}  // namespace wavehpc::perf
