#include "perf/budget.hpp"

#include <stdexcept>

namespace wavehpc::perf {

Budget budget_from_run(const mesh::Machine::RunResult& run) {
    Budget b;
    b.parallel_seconds = run.makespan;
    if (run.stats.empty() || run.makespan <= 0.0) return b;

    const auto n = static_cast<double>(run.stats.size());
    double useful = 0.0;
    double comm = 0.0;
    double redundant = 0.0;
    double recovery = 0.0;
    double idle = 0.0;
    for (const auto& st : run.stats) {
        useful += st.useful_seconds;
        comm += st.comm_seconds;
        redundant += st.redundant_seconds;
        recovery += st.recovery_seconds;
        idle += run.makespan - st.finish_time;
    }
    b.useful = useful / n / run.makespan;
    b.comm = comm / n / run.makespan;
    b.redundancy = redundant / n / run.makespan;
    b.recovery = recovery / n / run.makespan;
    b.imbalance = idle / n / run.makespan;
    b.other = 1.0 - b.useful - b.comm - b.redundancy - b.recovery - b.imbalance;
    return b;
}

std::vector<SpeedupPoint> speedup_table(const std::vector<std::size_t>& procs,
                                        const std::vector<double>& seconds,
                                        double t_ref) {
    if (procs.size() != seconds.size()) {
        throw std::invalid_argument("speedup_table: size mismatch");
    }
    if (t_ref <= 0.0) throw std::invalid_argument("speedup_table: t_ref must be > 0");
    std::vector<SpeedupPoint> out;
    out.reserve(procs.size());
    for (std::size_t i = 0; i < procs.size(); ++i) {
        if (seconds[i] <= 0.0) {
            throw std::invalid_argument("speedup_table: non-positive time");
        }
        SpeedupPoint p;
        p.procs = procs[i];
        p.seconds = seconds[i];
        p.speedup = t_ref / seconds[i];
        p.efficiency = p.speedup / static_cast<double>(procs[i]);
        out.push_back(p);
    }
    return out;
}

}  // namespace wavehpc::perf
