#include "perf/report.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace wavehpc::perf {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
    if (headers_.empty()) throw std::invalid_argument("TableWriter: no headers");
}

void TableWriter::add_row(std::vector<std::string> cells) {
    if (cells.size() != headers_.size()) {
        throw std::invalid_argument("TableWriter: cell count != header count");
    }
    rows_.push_back(std::move(cells));
}

std::string TableWriter::num(double v, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string TableWriter::pct(double fraction, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << 100.0 * fraction << '%';
    return os.str();
}

void TableWriter::print(std::ostream& os) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            width[c] = std::max(width[c], row[c].size());
        }
    }
    const auto line = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << "  " << std::setw(static_cast<int>(width[c])) << cells[c];
        }
        os << '\n';
    };
    line(headers_);
    std::size_t total = 0;
    for (std::size_t w : width) total += w + 2;
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_) line(row);
}

void print_speedup_series(std::ostream& os, const std::string& title,
                          const std::vector<SpeedupPoint>& points) {
    os << title << '\n';
    TableWriter tw({"procs", "seconds", "speedup", "efficiency"});
    for (const auto& p : points) {
        tw.add_row({std::to_string(p.procs), TableWriter::num(p.seconds),
                    TableWriter::num(p.speedup, 2), TableWriter::pct(p.efficiency)});
    }
    tw.print(os);
}

std::vector<std::string> budget_headers(const std::string& first) {
    return {first,        "seconds",   "useful", "comm",
            "redundancy", "recovery",  "imbalance", "other"};
}

void print_budget_row(TableWriter& tw, const std::string& label, const Budget& b) {
    tw.add_row({label, TableWriter::num(b.parallel_seconds), TableWriter::pct(b.useful),
                TableWriter::pct(b.comm), TableWriter::pct(b.redundancy),
                TableWriter::pct(b.recovery), TableWriter::pct(b.imbalance),
                TableWriter::pct(b.other)});
}

}  // namespace wavehpc::perf
