#pragma once
// The "performance budget" of Appendix B: the parallel execution session is
// broken into non-overlapping useful processing time and overhead
// components — average communication, parallelization redundancy, and
// imbalance/wait — each reported as a fraction of the parallel execution
// time.

#include <vector>

#include "mesh/machine.hpp"

namespace wavehpc::perf {

struct Budget {
    double parallel_seconds = 0.0;  ///< makespan of the run
    double useful = 0.0;            ///< avg useful compute / makespan
    double comm = 0.0;              ///< avg time inside send/recv / makespan
    double redundancy = 0.0;        ///< avg redundancy compute / makespan
    double recovery = 0.0;          ///< avg fault-recovery activity / makespan
    double imbalance = 0.0;         ///< avg end-of-run idle / makespan
    double other = 0.0;             ///< residual (should be ~0)

    [[nodiscard]] double overhead_total() const noexcept {
        return comm + redundancy + recovery + imbalance + other;
    }
};

/// Assemble the budget from a machine run. All timed node activity must go
/// through NodeCtx::compute / compute_redundant / csend / crecv for the
/// residual to stay near zero.
[[nodiscard]] Budget budget_from_run(const mesh::Machine::RunResult& run);

struct SpeedupPoint {
    std::size_t procs = 0;
    double seconds = 0.0;
    double speedup = 0.0;
    double efficiency = 0.0;
};

/// Derive speedup/efficiency from measured times against a reference
/// (usually the 1-processor time). Throws if sizes mismatch or t_ref <= 0.
[[nodiscard]] std::vector<SpeedupPoint> speedup_table(
    const std::vector<std::size_t>& procs, const std::vector<double>& seconds,
    double t_ref);

}  // namespace wavehpc::perf
