#include "perf/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "perf/report.hpp"

namespace wavehpc::perf {

namespace {

// Constant bucket ratio r with kMinSeconds * r^(kBuckets-1) == kMaxSeconds.
const double kLogMin = std::log(LatencyHistogram::kMinSeconds);
const double kLogRatio =
    (std::log(LatencyHistogram::kMaxSeconds) - kLogMin) /
    static_cast<double>(LatencyHistogram::kBuckets - 1);

}  // namespace

std::size_t LatencyHistogram::bucket_index(double seconds) noexcept {
    if (!(seconds > kMinSeconds)) return 0;
    const auto idx =
        static_cast<std::size_t>((std::log(seconds) - kLogMin) / kLogRatio + 1.0);
    return std::min(idx, kBuckets - 1);
}

double LatencyHistogram::bucket_lower(std::size_t idx) noexcept {
    if (idx == 0) return 0.0;
    return std::exp(kLogMin + kLogRatio * static_cast<double>(idx - 1));
}

double LatencyHistogram::bucket_upper(std::size_t idx) noexcept {
    return std::exp(kLogMin + kLogRatio * static_cast<double>(idx));
}

void LatencyHistogram::record(double seconds) noexcept {
    if (seconds < 0.0 || std::isnan(seconds)) seconds = 0.0;
    ++counts_[bucket_index(seconds)];
    if (count_ == 0) {
        min_ = max_ = seconds;
    } else {
        min_ = std::min(min_, seconds);
        max_ = std::max(max_, seconds);
    }
    ++count_;
    sum_ += seconds;
}

void LatencyHistogram::merge(const LatencyHistogram& other) noexcept {
    if (other.count_ == 0) return;
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    if (count_ == 0) {
        min_ = other.min_;
        max_ = other.max_;
    } else {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

double LatencyHistogram::min() const noexcept { return count_ == 0 ? 0.0 : min_; }

double LatencyHistogram::max() const noexcept { return count_ == 0 ? 0.0 : max_; }

double LatencyHistogram::mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double LatencyHistogram::quantile(double q) const noexcept {
    if (count_ == 0) return 0.0;
    // NaN propagates through std::clamp (both comparisons are false) and a
    // NaN rank cast to uint64 is UB — treat it like any out-of-range q.
    if (std::isnan(q)) q = 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        seen += counts_[i];
        if (seen >= rank) {
            const double lo = std::max(bucket_lower(i), kMinSeconds * 0.1);
            const double mid = std::sqrt(lo * bucket_upper(i));
            return std::clamp(mid, min_, max_);
        }
    }
    return max_;
}

std::string format_latency(double seconds) {
    char buf[32];
    if (seconds < 1e-6) {
        std::snprintf(buf, sizeof buf, "%.0f ns", seconds * 1e9);
    } else if (seconds < 1e-3) {
        std::snprintf(buf, sizeof buf, "%.1f us", seconds * 1e6);
    } else if (seconds < 1.0) {
        std::snprintf(buf, sizeof buf, "%.2f ms", seconds * 1e3);
    } else {
        std::snprintf(buf, sizeof buf, "%.3f s", seconds);
    }
    return buf;
}

std::vector<std::string> latency_headers(const std::string& first) {
    return {first, "count", "mean", "p50", "p95", "p99", "max"};
}

void print_latency_row(TableWriter& tw, const std::string& label,
                       const LatencyHistogram& h) {
    tw.add_row({label, std::to_string(h.count()), format_latency(h.mean()),
                format_latency(h.quantile(0.50)), format_latency(h.quantile(0.95)),
                format_latency(h.quantile(0.99)), format_latency(h.max())});
}

}  // namespace wavehpc::perf
