#include "sim/engine.hpp"

#include <algorithm>
#include <sstream>

namespace wavehpc::sim {

namespace {
// Internal unwind signal used to tear down process threads on abort. Not
// derived from std::exception so well-behaved user code won't swallow it.
struct AbortSignal {};

std::uint64_t splitmix64_next(std::uint64_t& s) {
    s += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}
}  // namespace

std::size_t SeededTieBreak::choose(std::span<const std::size_t> tied) {
    // tied.size() is tiny (bounded by the process count), so the modulo
    // bias is irrelevant next to keeping the draw cheap under the lock.
    return static_cast<std::size_t>(splitmix64_next(state_) % tied.size());
}

std::string SeededTieBreak::describe() const {
    return "sched_seed=" + std::to_string(seed_);
}

const std::string& Proc::name() const {
    std::lock_guard lk(engine_->mu_);
    return engine_->procs_[pid_]->name;
}

double Proc::now() const { return engine_->clock_of(pid_); }

void Proc::advance(double dt) { engine_->advance(pid_, dt); }

void Proc::block(Poll poll, std::string waiting_on) {
    (void)engine_->block(pid_, std::move(poll), std::nullopt, std::move(waiting_on));
}

bool Proc::block_until(Poll poll, double deadline, std::string waiting_on) {
    return engine_->block(pid_, std::move(poll), deadline, std::move(waiting_on));
}

void Proc::notify(std::size_t other_pid) { engine_->notify(other_pid); }

std::size_t Engine::add_process(std::string name, Body body) {
    std::lock_guard lk(mu_);
    if (started_) throw std::logic_error("Engine::add_process: engine already started");
    auto pcb = std::make_unique<Pcb>();
    pcb->name = std::move(name);
    pcb->body = std::move(body);
    pcb->state = State::Runnable;
    procs_.push_back(std::move(pcb));
    return procs_.size() - 1;
}

double Engine::clock_of(std::size_t pid) const {
    std::lock_guard lk(mu_);
    return procs_.at(pid)->clock;
}

void Engine::set_schedule_policy(std::unique_ptr<SchedulePolicy> policy) {
    std::lock_guard lk(mu_);
    if (started_) {
        throw std::logic_error("Engine::set_schedule_policy: engine already started");
    }
    policy_ = std::move(policy);
}

std::size_t Engine::pick_next(bool* via_timeout) {
    // Candidates are runnable processes (key: clock) and blocked processes
    // with a timeout (key: the virtual time the timeout fires). On equal
    // keys a runnable process wins — it may notify() and cancel the timeout
    // — and lower pid breaks remaining ties, keeping runs deterministic.
    std::size_t best = kNone;
    double best_key = 0.0;
    bool best_timeout = false;
    for (std::size_t i = 0; i < procs_.size(); ++i) {
        const Pcb& p = *procs_[i];
        double key = 0.0;
        bool is_timeout = false;
        if (p.state == State::Runnable) {
            key = p.clock;
        } else if (p.state == State::Blocked && p.timeout_at.has_value()) {
            key = std::max(p.clock, *p.timeout_at);
            is_timeout = true;
        } else {
            continue;
        }
        if (best == kNone || key < best_key ||
            (key == best_key && best_timeout && !is_timeout)) {
            best = i;
            best_key = key;
            best_timeout = is_timeout;
        }
    }
    if (via_timeout != nullptr) *via_timeout = best_timeout;
    if (best == kNone || best_timeout || !policy_) return best;
    // A policy only ever permutes the choice among runnable processes whose
    // clocks exactly tie at the minimum — the one place the causal order is
    // genuinely unconstrained. Timeout events and the runnable-over-timeout
    // preference are never subject to it.
    std::vector<std::size_t> tied;
    for (std::size_t i = 0; i < procs_.size(); ++i) {
        const Pcb& p = *procs_[i];
        if (p.state == State::Runnable && p.clock == best_key) tied.push_back(i);
    }
    if (tied.size() < 2) return best;
    const std::size_t idx = policy_->choose(tied);
    if (idx >= tied.size()) {
        throw std::logic_error("SchedulePolicy::choose returned out-of-range index");
    }
    return tied[idx];
}

void Engine::begin_abort() {
    if (aborting_) return;
    aborting_ = true;
    for (auto& p : procs_) p->cv.notify_all();
}

void Engine::give_turn_to_next(std::unique_lock<std::mutex>& /*lk*/) {
    if (aborting_) return;
    bool via_timeout = false;
    const std::size_t next = pick_next(&via_timeout);
    if (next == kNone) {
        if (live_ == 0) return;  // clean completion
        // Every live process is blocked with no pending timeout: deadlock.
        std::ostringstream os;
        os << "simulation deadlock; blocked processes:";
        for (const auto& p : procs_) {
            if (p->state != State::Blocked) continue;
            os << ' ' << p->name << "@t=" << p->clock;
            if (!p->waiting_on.empty()) os << " waiting on " << p->waiting_on;
            os << ';';
        }
        deadlock_message_ = os.str();
        begin_abort();
        return;
    }
    Pcb& np = *procs_[next];
    if (via_timeout) {
        np.clock = std::max(np.clock, *np.timeout_at);
        np.state = State::Runnable;
        np.timed_out = true;
        np.timeout_at.reset();
        np.poll = nullptr;
        np.waiting_on.clear();
    }
    np.has_turn = true;
    np.cv.notify_all();
}

void Engine::check_abort(std::size_t /*pid*/) const {
    if (aborting_) throw AbortSignal{};
}

void Engine::yield_and_wait(std::unique_lock<std::mutex>& lk, std::size_t pid) {
    Pcb& me = *procs_[pid];
    // Fast path: if we are still the minimum runnable process, keep the turn.
    if (me.state == State::Runnable) {
        const std::size_t next = pick_next(nullptr);
        if (next == pid && !aborting_) return;
    }
    me.has_turn = false;
    give_turn_to_next(lk);
    me.cv.wait(lk, [&] { return me.has_turn || aborting_; });
    check_abort(pid);
}

void Engine::advance(std::size_t pid, double dt) {
    if (dt < 0.0) throw std::invalid_argument("Proc::advance: negative dt");
    std::unique_lock lk(mu_);
    check_abort(pid);
    procs_[pid]->clock += dt;
    yield_and_wait(lk, pid);
}

bool Engine::block(std::size_t pid, Proc::Poll poll, std::optional<double> deadline,
                   std::string waiting_on) {
    std::unique_lock lk(mu_);
    check_abort(pid);
    Pcb& me = *procs_[pid];
    me.timed_out = false;
    if (auto wake = poll()) {
        if (deadline.has_value() && *wake > *deadline) {
            // Satisfiable, but only after the deadline: the timeout wins.
            me.clock = std::max(me.clock, *deadline);
            me.timed_out = true;
            yield_and_wait(lk, pid);
            return false;
        }
        me.clock = std::max(me.clock, *wake);
        // Condition already satisfiable: still yield so earlier processes run.
        yield_and_wait(lk, pid);
        return true;
    }
    me.state = State::Blocked;
    me.poll = std::move(poll);
    me.timeout_at = deadline;
    me.waiting_on = std::move(waiting_on);
    yield_and_wait(lk, pid);
    return !me.timed_out;
}

void Engine::notify(std::size_t pid) {
    std::unique_lock lk(mu_);
    Pcb& p = *procs_.at(pid);
    if (p.state != State::Blocked || !p.poll) return;
    if (auto wake = p.poll()) {
        // A wake past the deadline loses to the timeout; stay blocked and
        // let the scheduler fire the timeout event at the right time.
        if (p.timeout_at.has_value() && *wake > *p.timeout_at) return;
        p.clock = std::max(p.clock, *wake);
        p.state = State::Runnable;
        p.poll = nullptr;
        p.timeout_at.reset();
        p.waiting_on.clear();
        p.timed_out = false;
        // No turn handoff here: the notifier keeps running until its next
        // yield point, at which point min-clock-first takes over.
    }
}

void Engine::trampoline(std::size_t pid) {
    {
        std::unique_lock lk(mu_);
        Pcb& me = *procs_[pid];
        me.cv.wait(lk, [&] { return me.has_turn || aborting_; });
        if (aborting_) {
            me.state = State::Done;
            me.has_turn = false;
            --live_;
            if (live_ == 0) done_cv_.notify_all();
            return;
        }
    }

    bool aborted = false;
    try {
        Proc proc(this, pid);
        procs_[pid]->body(proc);
    } catch (const AbortSignal&) {
        aborted = true;
    } catch (...) {
        std::unique_lock lk(mu_);
        if (!first_error_) first_error_ = std::current_exception();
        begin_abort();
    }

    std::unique_lock lk(mu_);
    Pcb& me = *procs_[pid];
    me.state = State::Done;
    me.has_turn = false;
    makespan_ = std::max(makespan_, me.clock);
    --live_;
    if (live_ == 0) {
        done_cv_.notify_all();
    } else if (!aborted) {
        give_turn_to_next(lk);
    }
}

void Engine::run() {
    {
        std::lock_guard lk(mu_);
        if (started_) throw std::logic_error("Engine::run: already run");
        started_ = true;
        live_ = procs_.size();
    }
    if (procs_.empty()) return;

    for (std::size_t i = 0; i < procs_.size(); ++i) {
        procs_[i]->thread = std::thread([this, i] { trampoline(i); });
    }
    {
        std::unique_lock lk(mu_);
        give_turn_to_next(lk);
        done_cv_.wait(lk, [&] { return live_ == 0; });
    }
    for (auto& p : procs_) {
        if (p->thread.joinable()) p->thread.join();
    }

    std::lock_guard lk(mu_);
    if (first_error_) std::rethrow_exception(first_error_);
    if (!deadlock_message_.empty()) throw DeadlockError(deadlock_message_);
}

}  // namespace wavehpc::sim
