#include "sim/engine.hpp"

#include <algorithm>
#include <sstream>

namespace wavehpc::sim {

namespace {
// Internal unwind signal used to tear down process threads on abort. Not
// derived from std::exception so well-behaved user code won't swallow it.
struct AbortSignal {};
}  // namespace

const std::string& Proc::name() const {
    std::lock_guard lk(engine_->mu_);
    return engine_->procs_[pid_]->name;
}

double Proc::now() const { return engine_->clock_of(pid_); }

void Proc::advance(double dt) { engine_->advance(pid_, dt); }

void Proc::block(Poll poll) { engine_->block(pid_, std::move(poll)); }

void Proc::notify(std::size_t other_pid) { engine_->notify(other_pid); }

std::size_t Engine::add_process(std::string name, Body body) {
    std::lock_guard lk(mu_);
    if (started_) throw std::logic_error("Engine::add_process: engine already started");
    auto pcb = std::make_unique<Pcb>();
    pcb->name = std::move(name);
    pcb->body = std::move(body);
    pcb->state = State::Runnable;
    procs_.push_back(std::move(pcb));
    return procs_.size() - 1;
}

double Engine::clock_of(std::size_t pid) const {
    std::lock_guard lk(mu_);
    return procs_.at(pid)->clock;
}

std::size_t Engine::pick_min_runnable() const {
    std::size_t best = kNone;
    for (std::size_t i = 0; i < procs_.size(); ++i) {
        if (procs_[i]->state != State::Runnable) continue;
        if (best == kNone || procs_[i]->clock < procs_[best]->clock) best = i;
    }
    return best;
}

void Engine::begin_abort() {
    if (aborting_) return;
    aborting_ = true;
    for (auto& p : procs_) p->cv.notify_all();
}

void Engine::give_turn_to_next(std::unique_lock<std::mutex>& /*lk*/) {
    if (aborting_) return;
    const std::size_t next = pick_min_runnable();
    if (next == kNone) {
        if (live_ == 0) return;  // clean completion
        // Every live process is blocked: deadlock.
        std::ostringstream os;
        os << "simulation deadlock; blocked processes:";
        for (const auto& p : procs_) {
            if (p->state == State::Blocked) os << ' ' << p->name << "@t=" << p->clock;
        }
        deadlock_message_ = os.str();
        begin_abort();
        return;
    }
    procs_[next]->has_turn = true;
    procs_[next]->cv.notify_all();
}

void Engine::check_abort(std::size_t /*pid*/) const {
    if (aborting_) throw AbortSignal{};
}

void Engine::yield_and_wait(std::unique_lock<std::mutex>& lk, std::size_t pid) {
    Pcb& me = *procs_[pid];
    // Fast path: if we are still the minimum runnable process, keep the turn.
    if (me.state == State::Runnable) {
        const std::size_t next = pick_min_runnable();
        if (next == pid && !aborting_) return;
    }
    me.has_turn = false;
    give_turn_to_next(lk);
    me.cv.wait(lk, [&] { return me.has_turn || aborting_; });
    check_abort(pid);
}

void Engine::advance(std::size_t pid, double dt) {
    if (dt < 0.0) throw std::invalid_argument("Proc::advance: negative dt");
    std::unique_lock lk(mu_);
    check_abort(pid);
    procs_[pid]->clock += dt;
    yield_and_wait(lk, pid);
}

void Engine::block(std::size_t pid, Proc::Poll poll) {
    std::unique_lock lk(mu_);
    check_abort(pid);
    Pcb& me = *procs_[pid];
    if (auto wake = poll()) {
        me.clock = std::max(me.clock, *wake);
        // Condition already satisfiable: still yield so earlier processes run.
        yield_and_wait(lk, pid);
        return;
    }
    me.state = State::Blocked;
    me.poll = std::move(poll);
    yield_and_wait(lk, pid);
}

void Engine::notify(std::size_t pid) {
    std::unique_lock lk(mu_);
    Pcb& p = *procs_.at(pid);
    if (p.state != State::Blocked || !p.poll) return;
    if (auto wake = p.poll()) {
        p.clock = std::max(p.clock, *wake);
        p.state = State::Runnable;
        p.poll = nullptr;
        // No turn handoff here: the notifier keeps running until its next
        // yield point, at which point min-clock-first takes over.
    }
}

void Engine::trampoline(std::size_t pid) {
    {
        std::unique_lock lk(mu_);
        Pcb& me = *procs_[pid];
        me.cv.wait(lk, [&] { return me.has_turn || aborting_; });
        if (aborting_) {
            me.state = State::Done;
            me.has_turn = false;
            --live_;
            if (live_ == 0) done_cv_.notify_all();
            return;
        }
    }

    bool aborted = false;
    try {
        Proc proc(this, pid);
        procs_[pid]->body(proc);
    } catch (const AbortSignal&) {
        aborted = true;
    } catch (...) {
        std::unique_lock lk(mu_);
        if (!first_error_) first_error_ = std::current_exception();
        begin_abort();
    }

    std::unique_lock lk(mu_);
    Pcb& me = *procs_[pid];
    me.state = State::Done;
    me.has_turn = false;
    makespan_ = std::max(makespan_, me.clock);
    --live_;
    if (live_ == 0) {
        done_cv_.notify_all();
    } else if (!aborted) {
        give_turn_to_next(lk);
    }
}

void Engine::run() {
    {
        std::lock_guard lk(mu_);
        if (started_) throw std::logic_error("Engine::run: already run");
        started_ = true;
        live_ = procs_.size();
    }
    if (procs_.empty()) return;

    for (std::size_t i = 0; i < procs_.size(); ++i) {
        procs_[i]->thread = std::thread([this, i] { trampoline(i); });
    }
    {
        std::unique_lock lk(mu_);
        give_turn_to_next(lk);
        done_cv_.wait(lk, [&] { return live_ == 0; });
    }
    for (auto& p : procs_) {
        if (p->thread.joinable()) p->thread.join();
    }

    std::lock_guard lk(mu_);
    if (first_error_) std::rethrow_exception(first_error_);
    if (!deadlock_message_.empty()) throw DeadlockError(deadlock_message_);
}

}  // namespace wavehpc::sim
