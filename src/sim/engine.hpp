#pragma once
// Deterministic process-oriented discrete-event simulation kernel.
//
// Each simulated processor runs a real C++ body on its own std::thread, but
// exactly one process executes at a time and the scheduler always resumes
// the runnable process with the smallest (virtual clock, pid). Because every
// clock-advancing action is a yield point and all model effects happen at
// times >= the acting process's clock, actions are executed in nondecreasing
// virtual-time order — shared model state (e.g. the mesh link ledger) sees a
// causally ordered, fully reproducible event stream regardless of host
// scheduling. Results are therefore bit-identical run to run.
//
// Blocking is predicate-based: a process blocks with a poll function that
// reports the wake-up time once its condition (typically "a matching message
// arrived") can be satisfied; whoever creates the condition calls notify().

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace wavehpc::sim {

class Engine;

/// Thrown by Engine::run when every live process is blocked with no pending
/// timeout. The message names each blocked process, its virtual time, and
/// the wait description it registered (e.g. "crecv(tag=7, src=0)").
class DeadlockError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Handle passed to a process body; all methods must be called from inside
/// that body (i.e. on the process's own thread while it holds the turn).
class Proc {
public:
    [[nodiscard]] std::size_t pid() const noexcept { return pid_; }
    [[nodiscard]] const std::string& name() const;
    [[nodiscard]] double now() const;

    /// Charge `dt` seconds of virtual time and yield to the scheduler.
    void advance(double dt);

    /// Poll result: the virtual time at which the wait completes.
    using Poll = std::function<std::optional<double>()>;

    /// Block until `poll` yields a wake time (evaluated immediately, then on
    /// every notify()). On wake, the clock becomes max(clock, wake time).
    /// `waiting_on` describes the condition for deadlock reports.
    void block(Poll poll, std::string waiting_on = {});

    /// Like block(), but the wait also completes — unsatisfied — at virtual
    /// time `deadline`: the timeout is a scheduled event, so it fires in
    /// correct virtual-time order relative to every other process, and a
    /// process blocked this way is never counted as deadlocked. Returns true
    /// if the poll fired, false on timeout (clock becomes max(clock,
    /// deadline)).
    bool block_until(Poll poll, double deadline, std::string waiting_on = {});

    /// Re-evaluate the poll of a blocked process (no-op otherwise).
    void notify(std::size_t other_pid);

    [[nodiscard]] Engine& engine() const noexcept { return *engine_; }

private:
    friend class Engine;
    Proc(Engine* engine, std::size_t pid) : engine_(engine), pid_(pid) {}
    Engine* engine_;
    std::size_t pid_;
};

/// Scheduling hook consulted only when several *runnable* processes share
/// the minimal virtual clock. The scheduler's choice among exact ties is
/// the one degree of freedom the event order leaves open: any of the tied
/// processes may legally run first, so every selection explores a causally
/// valid interleaving while timeouts, clock ordering, and the
/// runnable-beats-timeout rule stay untouched. The default (no policy) is
/// lowest pid first — bit-identical to the historical scheduler.
class SchedulePolicy {
public:
    virtual ~SchedulePolicy() = default;

    /// `tied` lists the pids of the tied runnable processes in increasing
    /// pid order (always size >= 2). Return an index into `tied`. Called
    /// with the engine lock held; must not reenter the engine.
    virtual std::size_t choose(std::span<const std::size_t> tied) = 0;

    /// One-line description for failure repros (e.g. "sched_seed=42").
    [[nodiscard]] virtual std::string describe() const = 0;
};

/// Seeded schedule exploration: permutes tie-breaks with a splitmix64
/// stream. The whole simulation is serialized under the engine lock, so
/// the sequence of choose() calls — and hence the explored interleaving —
/// is a pure function of the seed: any failure replays exactly by
/// re-running with the same seed.
class SeededTieBreak final : public SchedulePolicy {
public:
    explicit SeededTieBreak(std::uint64_t seed) : seed_(seed), state_(seed) {}
    std::size_t choose(std::span<const std::size_t> tied) override;
    [[nodiscard]] std::string describe() const override;
    [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

private:
    std::uint64_t seed_;
    std::uint64_t state_;
};

class Engine {
public:
    using Body = std::function<void(Proc&)>;

    Engine() = default;
    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    /// Register a process before run(). Returns its pid.
    std::size_t add_process(std::string name, Body body);

    /// Install a tie-break policy (nullptr restores the lowest-pid
    /// default). Must be called before run().
    void set_schedule_policy(std::unique_ptr<SchedulePolicy> policy);

    /// The installed policy, or nullptr when running the default order.
    [[nodiscard]] const SchedulePolicy* schedule_policy() const noexcept {
        return policy_.get();
    }

    /// Execute all processes to completion. Rethrows the first process
    /// exception (in virtual-time order) and throws DeadlockError if all
    /// live processes end up blocked.
    void run();

    [[nodiscard]] std::size_t process_count() const noexcept { return procs_.size(); }
    [[nodiscard]] double clock_of(std::size_t pid) const;
    /// Largest completion time over all processes; valid after run().
    [[nodiscard]] double makespan() const noexcept { return makespan_; }

private:
    friend class Proc;

    enum class State : unsigned char { Ready, Runnable, Blocked, Done };

    struct Pcb {
        std::string name;
        Body body;
        std::thread thread;
        double clock = 0.0;
        State state = State::Ready;
        Proc::Poll poll;
        std::optional<double> timeout_at;  // block_until deadline, if any
        bool timed_out = false;            // last wait ended by timeout
        std::string waiting_on;            // wait description for diagnostics
        std::condition_variable cv;
        bool has_turn = false;
        std::exception_ptr error;
    };

    // All private methods below expect mu_ held.
    void give_turn_to_next(std::unique_lock<std::mutex>& lk);
    // Non-const: a stateful policy (seeded RNG) advances on every tie.
    [[nodiscard]] std::size_t pick_next(bool* via_timeout);
    void begin_abort();
    void yield_and_wait(std::unique_lock<std::mutex>& lk, std::size_t pid);
    void check_abort(std::size_t pid) const;

    void advance(std::size_t pid, double dt);
    bool block(std::size_t pid, Proc::Poll poll, std::optional<double> deadline,
               std::string waiting_on);
    void notify(std::size_t pid);

    void trampoline(std::size_t pid);

    static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

    mutable std::mutex mu_;
    std::condition_variable done_cv_;
    std::unique_ptr<SchedulePolicy> policy_;
    std::vector<std::unique_ptr<Pcb>> procs_;
    std::size_t live_ = 0;
    bool aborting_ = false;
    bool started_ = false;
    double makespan_ = 0.0;
    std::exception_ptr first_error_;
    std::string deadlock_message_;
};

}  // namespace wavehpc::sim
