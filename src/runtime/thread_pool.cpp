#include "runtime/thread_pool.hpp"

#include <atomic>
#include <exception>

namespace wavehpc::runtime {

ThreadPool::ThreadPool(std::size_t workers) {
    if (workers == 0) {
        workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
        threads_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lk(mu_);
        stopping_ = true;
    }
    cv_task_.notify_all();
    for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lk(mu_);
            cv_task_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping and drained
            task = std::move(queue_.front());
            queue_.pop_front();
            ++busy_;
        }
        task();
        {
            std::lock_guard lk(mu_);
            --busy_;
            if (queue_.empty() && busy_ == 0) cv_idle_.notify_all();
        }
    }
}

void ThreadPool::submit(std::function<void()> task) {
    {
        std::lock_guard lk(mu_);
        queue_.push_back(std::move(task));
    }
    cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock lk(mu_);
    cv_idle_.wait(lk, [this] { return queue_.empty() && busy_ == 0; });
}

void ThreadPool::parallel_for(std::size_t first, std::size_t last,
                              const std::function<void(std::size_t, std::size_t)>& fn) {
    if (first >= last) return;
    const std::size_t n = last - first;
    const std::size_t parts = std::min(n, workers());

    std::atomic<std::size_t> remaining{parts};
    std::exception_ptr error;
    std::mutex err_mu;
    std::mutex done_mu;
    std::condition_variable done_cv;

    for (std::size_t p = 0; p < parts; ++p) {
        const std::size_t chunk_first = first + n * p / parts;
        const std::size_t chunk_last = first + n * (p + 1) / parts;
        submit([&, chunk_first, chunk_last] {
            try {
                fn(chunk_first, chunk_last);
            } catch (...) {
                std::lock_guard lk(err_mu);
                if (!error) error = std::current_exception();
            }
            if (remaining.fetch_sub(1) == 1) {
                std::lock_guard lk(done_mu);
                done_cv.notify_all();
            }
        });
    }

    std::unique_lock lk(done_mu);
    done_cv.wait(lk, [&] { return remaining.load() == 0; });
    if (error) std::rethrow_exception(error);
}

}  // namespace wavehpc::runtime
