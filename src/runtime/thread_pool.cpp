#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>
#include <utility>

namespace wavehpc::runtime {

namespace {

// Identifies the pool (if any) whose worker_loop is running on this thread,
// so a nested parallel_for can help-drain the queue instead of deadlocking
// in a blocking wait.
thread_local ThreadPool* tls_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
    if (workers == 0) {
        workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
    }
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) {
        threads_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lk(mu_);
        stopping_ = true;
    }
    cv_task_.notify_all();
    for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
    tls_worker_pool = this;
    for (;;) {
        Task task;
        std::shared_ptr<const std::function<void()>> observer;
        {
            std::unique_lock lk(mu_);
            if (!stopping_ && queues_empty()) {
                const auto idle_start = std::chrono::steady_clock::now();
                cv_task_.wait(lk, [this] { return stopping_ || !queues_empty(); });
                idle_ns_.fetch_add(
                    static_cast<std::uint64_t>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - idle_start)
                            .count()),
                    std::memory_order_relaxed);
            }
            if (queues_empty()) return;  // stopping and drained
            task = pop_task();
            observer = task_observer_;
            ++busy_;
        }
        if (observer) (*observer)();
        run_task(task);
        {
            std::lock_guard lk(mu_);
            --busy_;
            if (queues_empty() && busy_ == 0) cv_idle_.notify_all();
        }
    }
}

void ThreadPool::run_task(Task& task) {
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    if (task.group == nullptr) {
        // Plain submit(): no join exists to deliver an exception to, so a
        // throw propagates out of the worker and terminates (documented).
        task.fn();
        return;
    }
    std::exception_ptr error;
    try {
        task.fn();
    } catch (...) {
        error = std::current_exception();
    }
    task.group->complete(std::move(error));
}

ThreadPool::Task ThreadPool::pop_task() {
    std::deque<Task>& q = high_queue_.empty() ? queue_ : high_queue_;
    Task task = std::move(q.front());
    q.pop_front();
    return task;
}

bool ThreadPool::try_help_one() {
    Task task;
    std::shared_ptr<const std::function<void()>> observer;
    {
        std::lock_guard lk(mu_);
        if (queues_empty()) return false;
        task = pop_task();
        observer = task_observer_;
        ++busy_;
    }
    helper_tasks_.fetch_add(1, std::memory_order_relaxed);
    if (observer) (*observer)();
    run_task(task);
    {
        std::lock_guard lk(mu_);
        --busy_;
        if (queues_empty() && busy_ == 0) cv_idle_.notify_all();
    }
    return true;
}

void ThreadPool::enqueue(Task task, TaskPriority priority) {
    {
        std::lock_guard lk(mu_);
        assert(!stopping_ && "ThreadPool: submit after stop");
        if (stopping_) {
            throw std::logic_error(
                "ThreadPool: submit on a stopping pool (task would be dropped)");
        }
        (priority == TaskPriority::High ? high_queue_ : queue_)
            .push_back(std::move(task));
        queue_high_water_ = std::max<std::uint64_t>(
            queue_high_water_, queue_.size() + high_queue_.size());
    }
    cv_task_.notify_one();
}

void ThreadPool::enqueue_bulk(std::vector<Task>& tasks, TaskPriority priority) {
    if (tasks.empty()) return;
    {
        std::lock_guard lk(mu_);
        assert(!stopping_ && "ThreadPool: submit after stop");
        if (stopping_) {
            throw std::logic_error(
                "ThreadPool: submit on a stopping pool (task would be dropped)");
        }
        std::deque<Task>& q = priority == TaskPriority::High ? high_queue_ : queue_;
        for (Task& t : tasks) q.push_back(std::move(t));
        queue_high_water_ = std::max<std::uint64_t>(
            queue_high_water_, queue_.size() + high_queue_.size());
    }
    tasks.clear();
    cv_task_.notify_all();
}

void ThreadPool::submit(std::function<void()> task, TaskPriority priority) {
    enqueue(Task{std::move(task), nullptr}, priority);
}

void ThreadPool::submit(TaskGroup& group, std::function<void()> task,
                        TaskPriority priority) {
    group.add(1);
    try {
        enqueue(Task{std::move(task), &group}, priority);
    } catch (...) {
        group.complete(nullptr);  // re-balance the latch
        throw;
    }
}

void ThreadPool::wait(TaskGroup& group) {
    if (tls_worker_pool == this) {
        // Called from inside a worker: drain queued tasks while the group
        // is outstanding so the occupied slot keeps making progress (a
        // blocking wait here deadlocked the seed runtime on 1-worker pools
        // and starved larger ones).
        while (!group.finished()) {
            if (!try_help_one()) {
                // Queue empty: every remaining task of the group is already
                // running on another worker; block until they signal.
                group.wait_blocking();
                break;
            }
        }
    } else {
        group.wait_blocking();
    }
    groups_completed_.fetch_add(1, std::memory_order_relaxed);
    group.rethrow_if_error();
}

TaskGroup& ThreadPool::acquire_group() {
    std::lock_guard lk(group_mu_);
    if (free_groups_.empty()) {
        group_storage_.push_back(std::make_unique<TaskGroup>());
        free_groups_.push_back(group_storage_.back().get());
    }
    TaskGroup* g = free_groups_.back();
    free_groups_.pop_back();
    g->reset();
    return *g;
}

void ThreadPool::release_group(TaskGroup& group) noexcept {
    std::lock_guard lk(group_mu_);
    free_groups_.push_back(&group);
}

void ThreadPool::wait_idle() {
    std::unique_lock lk(mu_);
    cv_idle_.wait(lk, [this] { return queues_empty() && busy_ == 0; });
}

void ThreadPool::parallel_for(std::size_t first, std::size_t last,
                              const std::function<void(std::size_t, std::size_t)>& fn) {
    if (first >= last) return;
    const std::size_t n = last - first;
    const std::size_t parts = std::min(n, workers());
    if (parts <= 1) {
        // Single chunk (or 1-worker pool): run inline on the caller — no
        // queue round-trip, and trivially correct when nested.
        tasks_executed_.fetch_add(1, std::memory_order_relaxed);
        groups_completed_.fetch_add(1, std::memory_order_relaxed);
        fn(first, last);
        return;
    }

    TaskGroup& group = acquire_group();
    group.add(parts);
    // Stage every chunk, then queue them all under one lock + one notify
    // (enqueue_bulk) — per-chunk round-trips dominated dispatch cost for
    // short sweeps, and batched flights multiply the chunk count.
    std::vector<Task> chunks;
    chunks.reserve(parts);
    for (std::size_t p = 0; p < parts; ++p) {
        const std::size_t chunk_first = first + n * p / parts;
        const std::size_t chunk_last = first + n * (p + 1) / parts;
        chunks.push_back(Task{
            [&fn, chunk_first, chunk_last] { fn(chunk_first, chunk_last); }, &group});
    }
    try {
        enqueue_bulk(chunks);
    } catch (...) {
        // Refused (pool stopping): nothing was enqueued — balance the whole
        // latch and hand the group back.
        for (std::size_t p = 0; p < parts; ++p) group.complete(nullptr);
        release_group(group);
        throw;
    }
    try {
        wait(group);
    } catch (...) {
        release_group(group);
        throw;
    }
    release_group(group);
}

void ThreadPool::parallel_for_2d(
    std::size_t row_first, std::size_t row_last, std::size_t col_first,
    std::size_t col_last,
    const std::function<void(std::size_t, std::size_t, std::size_t, std::size_t)>& fn) {
    if (row_first >= row_last || col_first >= col_last) return;
    const std::size_t nr = row_last - row_first;
    const std::size_t nc = col_last - col_first;
    const std::size_t row_parts = std::min(nr, workers());
    const std::size_t col_parts =
        std::min(nc, std::max<std::size_t>(1, workers() / row_parts));
    if (row_parts * col_parts <= 1) {
        tasks_executed_.fetch_add(1, std::memory_order_relaxed);
        groups_completed_.fetch_add(1, std::memory_order_relaxed);
        fn(row_first, row_last, col_first, col_last);
        return;
    }

    TaskGroup& group = acquire_group();
    group.add(row_parts * col_parts);
    std::vector<Task> tiles;
    tiles.reserve(row_parts * col_parts);
    for (std::size_t i = 0; i < row_parts; ++i) {
        const std::size_t rb = row_first + nr * i / row_parts;
        const std::size_t re = row_first + nr * (i + 1) / row_parts;
        for (std::size_t j = 0; j < col_parts; ++j) {
            const std::size_t cb = col_first + nc * j / col_parts;
            const std::size_t ce = col_first + nc * (j + 1) / col_parts;
            tiles.push_back(Task{[&fn, rb, re, cb, ce] { fn(rb, re, cb, ce); }, &group});
        }
    }
    try {
        enqueue_bulk(tiles);
    } catch (...) {
        // Refused (pool stopping): nothing was enqueued — balance the whole
        // latch and hand the group back.
        for (std::size_t p = 0; p < row_parts * col_parts; ++p) {
            group.complete(nullptr);
        }
        release_group(group);
        throw;
    }
    try {
        wait(group);
    } catch (...) {
        release_group(group);
        throw;
    }
    release_group(group);
}

PoolMetrics ThreadPool::metrics() const {
    PoolMetrics m;
    m.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
    m.helper_tasks = helper_tasks_.load(std::memory_order_relaxed);
    m.groups_completed = groups_completed_.load(std::memory_order_relaxed);
    m.idle_seconds =
        static_cast<double>(idle_ns_.load(std::memory_order_relaxed)) * 1e-9;
    {
        std::lock_guard lk(mu_);
        m.queue_high_water = queue_high_water_;
    }
    return m;
}

void ThreadPool::set_task_observer(std::function<void()> observer) {
    auto next = observer
                    ? std::make_shared<const std::function<void()>>(std::move(observer))
                    : nullptr;
    std::lock_guard lk(mu_);
    task_observer_ = std::move(next);
}

void ThreadPool::reset_metrics() {
    tasks_executed_.store(0, std::memory_order_relaxed);
    helper_tasks_.store(0, std::memory_order_relaxed);
    groups_completed_.store(0, std::memory_order_relaxed);
    idle_ns_.store(0, std::memory_order_relaxed);
    std::lock_guard lk(mu_);
    queue_high_water_ = 0;
}

ScopedTaskGroup::~ScopedTaskGroup() {
    if (!joined_) {
        try {
            pool_.wait(*group_);
        } catch (...) {  // NOLINT(bugprone-empty-catch) — dtor must not throw
        }
    }
    pool_.release_group(*group_);
}

void ScopedTaskGroup::wait() {
    joined_ = true;
    pool_.wait(*group_);
}

}  // namespace wavehpc::runtime
