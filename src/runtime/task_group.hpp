#pragma once
// Completion latch for the thread pool.
//
// A TaskGroup counts outstanding tasks and lets one waiter block until all
// of them have completed. Groups are owned by the ThreadPool (acquired from
// a free list, recycled after the join) — never by the waiter's stack frame.
// That ownership rule plus one invariant make the join race-free:
//
//   complete() decrements the pending count and notifies the condition
//   variable *while holding the group mutex*. The waiter's predicate also
//   runs under that mutex, so it cannot observe pending_ == 0 and return
//   (letting the pool recycle the group) before the last completer has
//   released the lock — at which point the completer never touches the
//   group again.
//
// The seed runtime kept the mutex/condvar on the caller's stack and
// notified after an atomic decrement taken outside the lock; a spurious
// wakeup could then destroy the pair between the decrement and the notify
// (use-after-scope). This type exists to make that impossible by
// construction.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace wavehpc::runtime {

/// Thrown by a group join when more than one task failed. A single failure
/// is rethrown as the original exception; multiple failures are aggregated
/// here so none is silently dropped.
class ParallelGroupError : public std::runtime_error {
public:
    explicit ParallelGroupError(std::vector<std::exception_ptr> errors);

    [[nodiscard]] const std::vector<std::exception_ptr>& exceptions() const noexcept {
        return errors_;
    }

private:
    static std::string describe(const std::vector<std::exception_ptr>& errors);
    std::vector<std::exception_ptr> errors_;
};

class TaskGroup {
public:
    TaskGroup() = default;
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;

    /// Register `n` tasks that will later call complete(). Must happen
    /// before the corresponding tasks are enqueued.
    void add(std::size_t n);

    /// Record one finished task (with its exception, if any). Decrement and
    /// notify run under the group mutex — see the header comment.
    void complete(std::exception_ptr error) noexcept;

    /// True once every added task has completed.
    [[nodiscard]] bool finished();

    /// Block (no helping) until finished. ThreadPool::wait() layers
    /// help-stealing on top of this for worker-thread callers.
    void wait_blocking();

    /// Take the collected task errors and rethrow: the original exception
    /// if exactly one task failed, a ParallelGroupError if several did.
    void rethrow_if_error();

    /// Drop state so the group can be reused. Only valid once finished and
    /// after rethrow_if_error (or deliberate error discard).
    void reset();

private:
    std::mutex mu_;
    std::condition_variable cv_;
    std::size_t pending_ = 0;                  // guarded by mu_
    std::vector<std::exception_ptr> errors_;   // guarded by mu_
};

}  // namespace wavehpc::runtime
