#include "runtime/task_group.hpp"

#include <string>
#include <utility>

namespace wavehpc::runtime {

std::string ParallelGroupError::describe(const std::vector<std::exception_ptr>& errors) {
    std::string msg = std::to_string(errors.size()) + " parallel tasks failed";
    if (!errors.empty()) {
        try {
            std::rethrow_exception(errors.front());
        } catch (const std::exception& e) {
            msg += std::string("; first: ") + e.what();
        } catch (...) {
            msg += "; first: <non-std exception>";
        }
    }
    return msg;
}

ParallelGroupError::ParallelGroupError(std::vector<std::exception_ptr> errors)
    : std::runtime_error(describe(errors)), errors_(std::move(errors)) {}

void TaskGroup::add(std::size_t n) {
    std::lock_guard lk(mu_);
    pending_ += n;
}

void TaskGroup::complete(std::exception_ptr error) noexcept {
    std::lock_guard lk(mu_);
    if (error) errors_.push_back(std::move(error));
    // Decrement and notify under mu_: the waiter holds mu_ while checking
    // pending_, so it cannot return (and recycle this group) until we have
    // released the lock. This is the whole race fix — do not move the
    // notify outside the critical section.
    if (--pending_ == 0) cv_.notify_all();
}

bool TaskGroup::finished() {
    std::lock_guard lk(mu_);
    return pending_ == 0;
}

void TaskGroup::wait_blocking() {
    std::unique_lock lk(mu_);
    cv_.wait(lk, [this] { return pending_ == 0; });
}

void TaskGroup::rethrow_if_error() {
    std::vector<std::exception_ptr> errors;
    {
        std::lock_guard lk(mu_);
        errors.swap(errors_);
    }
    if (errors.empty()) return;
    if (errors.size() == 1) std::rethrow_exception(errors.front());
    throw ParallelGroupError(std::move(errors));
}

void TaskGroup::reset() {
    std::lock_guard lk(mu_);
    pending_ = 0;
    errors_.clear();
}

}  // namespace wavehpc::runtime
