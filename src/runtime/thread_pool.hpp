#pragma once
// Host shared-memory parallel runtime: a fixed-size worker pool with a
// blocking parallel_for. This is the "modern HPC node" backend for the
// wavelet kernels — the simulators model the 1990s machines, this runs the
// same decomposition for real on the host.
//
// Completion is built on pool-owned TaskGroup latches (task_group.hpp), not
// on waiter-stack condvars, which makes the join race-free. Waiting from
// inside a worker is supported: the waiter helps by draining queued tasks
// instead of blocking a slot, so nested parallel_for calls cannot deadlock.
// Every failed task's exception is collected; a join rethrows the single
// failure or a ParallelGroupError aggregating all of them.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/task_group.hpp"

namespace wavehpc::runtime {

/// Counters the pool keeps about its own overhead, for the Appendix-B-style
/// "performance budget" reporting in bench output (see perf/pool_stats.hpp).
/// Snapshot with ThreadPool::metrics(); subtract two snapshots to meter a
/// region.
struct PoolMetrics {
    std::uint64_t tasks_executed = 0;    ///< tasks run, by workers or helpers
    std::uint64_t helper_tasks = 0;      ///< subset run by waiters helping
    std::uint64_t groups_completed = 0;  ///< parallel_for / group joins
    std::uint64_t queue_high_water = 0;  ///< max tasks ever queued at once
    double idle_seconds = 0.0;           ///< total worker time blocked for work
};

/// Scheduling class for submitted tasks. The pool keeps one queue per
/// priority and always pops High before Normal; within a priority tasks
/// stay FIFO. parallel_for chunks are Normal, so a High submit overtakes
/// queued data-parallel work but never preempts a running task. Added for
/// the pyramid service (src/svc), whose interactive requests must not sit
/// behind a backlog of batch work.
enum class TaskPriority : std::uint8_t { Normal = 0, High = 1 };

class ThreadPool {
public:
    /// Spawns `workers` threads (defaults to hardware_concurrency, min 1).
    explicit ThreadPool(std::size_t workers = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t workers() const noexcept { return threads_.size(); }

    /// Run fn(begin, end) over [first, last) split into roughly equal chunks,
    /// one per worker (static scheduling, like an OpenMP static for).
    /// Blocks until every chunk finished; rethrows the single worker
    /// exception, or ParallelGroupError when several chunks threw.
    /// A single-chunk range runs inline on the caller. Safe to call from
    /// inside a worker (the nested wait helps drain the queue) and from
    /// many caller threads concurrently.
    void parallel_for(std::size_t first, std::size_t last,
                      const std::function<void(std::size_t, std::size_t)>& fn);

    /// 2-D variant: run fn(rb, re, cb, ce) over the rectangle
    /// [row_first, row_last) x [col_first, col_last) split into tiles
    /// (rows split first; columns split when there are fewer rows than
    /// workers). Same blocking/exception semantics as parallel_for.
    void parallel_for_2d(std::size_t row_first, std::size_t row_last,
                         std::size_t col_first, std::size_t col_last,
                         const std::function<void(std::size_t, std::size_t,
                                                  std::size_t, std::size_t)>& fn);

    /// Enqueue an arbitrary task; used by tests and by callers composing
    /// their own joins. The task must not throw (a throwing group-less task
    /// terminates, as there is no join to deliver the exception to).
    /// Throws std::logic_error if the pool is already stopping: the seed
    /// runtime silently enqueued such tasks and dropped them on drain.
    void submit(std::function<void()> task,
                TaskPriority priority = TaskPriority::Normal);

    /// Enqueue a task attached to a caller-held group (see acquire_group /
    /// ScopedTaskGroup). Exceptions are captured into the group and
    /// rethrown by wait(group).
    void submit(TaskGroup& group, std::function<void()> task,
                TaskPriority priority = TaskPriority::Normal);

    /// Block until `group` finished, then rethrow its collected errors.
    /// When called from a worker of this pool, drains queued tasks while
    /// waiting instead of blocking the slot.
    void wait(TaskGroup& group);

    /// Take a reusable group from the pool's free list (grown on demand;
    /// storage lives as long as the pool). Pair with release_group, or use
    /// ScopedTaskGroup. The group must outlive its last complete(), which
    /// wait() guarantees — hence pool ownership, never the waiter's stack.
    [[nodiscard]] TaskGroup& acquire_group();

    /// Return a finished group to the free list.
    void release_group(TaskGroup& group) noexcept;

    /// Block until the queue is drained and all workers are idle. Only
    /// meaningful when no other thread is submitting concurrently.
    void wait_idle();

    /// Snapshot of the overhead counters (cheap; atomics + one lock).
    [[nodiscard]] PoolMetrics metrics() const;

    /// Zero all overhead counters (e.g. between bench phases).
    void reset_metrics();

    /// Install (empty function = clear) an observer invoked right before
    /// every *queued* task executes, on the executing thread, outside the
    /// pool lock. This is the fault-injection seam the chaos layer uses to
    /// stall a seeded fraction of dispatches (svc::ChaosEngine); it must
    /// be cheap and must not throw. Inline-run single-chunk parallel_for
    /// calls bypass the queue and are not observed. Thread-safe to swap
    /// while workers run; tasks already popped keep the observer they saw.
    void set_task_observer(std::function<void()> observer);

private:
    struct Task {
        std::function<void()> fn;
        TaskGroup* group = nullptr;  ///< completion latch; null for submit()
    };

    void worker_loop();
    void run_task(Task& task);
    bool try_help_one();  ///< steal one queued task; false if queues empty
    void enqueue(Task task, TaskPriority priority = TaskPriority::Normal);
    /// Queue every task under ONE lock acquisition and one notify_all —
    /// the parallel_for dispatch path (ISSUE 8): a W-chunk sweep used to
    /// pay W lock/notify round-trips per level. All-or-nothing: throws
    /// (pool stopping) with no task enqueued. `tasks` is consumed.
    void enqueue_bulk(std::vector<Task>& tasks,
                      TaskPriority priority = TaskPriority::Normal);
    bool queues_empty() const { return queue_.empty() && high_queue_.empty(); }
    Task pop_task();  ///< callers must hold mu_ and ensure !queues_empty()

    std::vector<std::thread> threads_;
    // Swapped atomically under mu_; executing threads hold a snapshot so a
    // concurrent set_task_observer never races a running observer.
    std::shared_ptr<const std::function<void()>> task_observer_;
    std::deque<Task> queue_;       // TaskPriority::Normal (incl. parallel_for)
    std::deque<Task> high_queue_;  // TaskPriority::High, always popped first
    mutable std::mutex mu_;
    std::condition_variable cv_task_;
    std::condition_variable cv_idle_;
    std::size_t busy_ = 0;      // workers + helpers running a task
    bool stopping_ = false;     // guarded by mu_

    std::mutex group_mu_;
    std::vector<std::unique_ptr<TaskGroup>> group_storage_;
    std::vector<TaskGroup*> free_groups_;

    std::atomic<std::uint64_t> tasks_executed_{0};
    std::atomic<std::uint64_t> helper_tasks_{0};
    std::atomic<std::uint64_t> groups_completed_{0};
    std::atomic<std::uint64_t> idle_ns_{0};
    std::uint64_t queue_high_water_ = 0;  // guarded by mu_
};

/// RAII join for composing custom task sets:
///     ScopedTaskGroup g(pool);
///     g.submit([..]{ ... });   // any number of tasks
///     g.wait();                // blocks, rethrows task errors
/// The destructor waits (discarding errors) if wait() was never reached and
/// returns the group to the pool.
class ScopedTaskGroup {
public:
    explicit ScopedTaskGroup(ThreadPool& pool)
        : pool_(pool), group_(&pool.acquire_group()) {}
    ~ScopedTaskGroup();

    ScopedTaskGroup(const ScopedTaskGroup&) = delete;
    ScopedTaskGroup& operator=(const ScopedTaskGroup&) = delete;

    void submit(std::function<void()> task,
                TaskPriority priority = TaskPriority::Normal) {
        pool_.submit(*group_, std::move(task), priority);
    }
    void wait();

private:
    ThreadPool& pool_;
    TaskGroup* group_;
    bool joined_ = false;
};

}  // namespace wavehpc::runtime
