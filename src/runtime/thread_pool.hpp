#pragma once
// Host shared-memory parallel runtime: a fixed-size worker pool with a
// blocking parallel_for. This is the "modern HPC node" backend for the
// wavelet kernels — the simulators model the 1990s machines, this runs the
// same decomposition for real on the host.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wavehpc::runtime {

class ThreadPool {
public:
    /// Spawns `workers` threads (defaults to hardware_concurrency, min 1).
    explicit ThreadPool(std::size_t workers = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t workers() const noexcept { return threads_.size(); }

    /// Run fn(begin, end) over [first, last) split into roughly equal chunks,
    /// one per worker (static scheduling, like an OpenMP static for).
    /// Blocks until every chunk finished; rethrows the first worker exception.
    void parallel_for(std::size_t first, std::size_t last,
                      const std::function<void(std::size_t, std::size_t)>& fn);

    /// Enqueue an arbitrary task; used by tests and by callers composing
    /// their own joins.
    void submit(std::function<void()> task);

    /// Block until the queue is drained and all workers are idle.
    void wait_idle();

private:
    void worker_loop();

    std::vector<std::thread> threads_;
    std::deque<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable cv_task_;
    std::condition_variable cv_idle_;
    std::size_t busy_ = 0;
    bool stopping_ = false;
};

}  // namespace wavehpc::runtime
