#pragma once
// Shared-memory parallel Mallat decomposition: the same arithmetic as
// core::decompose, data-parallel over rows on the host thread pool. This is
// the "modern node" backend — where the simulators model the 1996 machines,
// this one actually runs in parallel. All arithmetic lives in the shared
// kernel layer (core/kernels.hpp); this backend only owns the range splits.

#include "core/dwt.hpp"
#include "runtime/thread_pool.hpp"

namespace wavehpc::wavelet {

/// Bit-identical to core::decompose(img, fp, levels, mode, kernel): both
/// run the shared fused kernels, and every output coefficient is a fixed
/// function of its source rows, so splitting the row ranges across workers
/// changes no accumulation order. `kernel` selects convolve vs lifting
/// exactly as in core::decompose (Auto defers to the process selector).
[[nodiscard]] core::Pyramid decompose_parallel(
    const core::ImageF& img, const core::FilterPair& fp, int levels,
    core::BoundaryMode mode, runtime::ThreadPool& pool,
    core::DwtKernel kernel = core::DwtKernel::Auto);

/// Fused batched decomposition (ISSUE 8): N same-shaped images share ONE
/// row sweep and ONE column sweep per level, parallelized over the global
/// index space [0, N*rows) — one pool dispatch amortizes the fork/join and
/// chunk-enqueue overhead across the whole batch instead of paying it per
/// request. Result i is bit-identical to decompose_parallel(*images[i], ...)
/// and therefore to core::decompose: the fused sweep calls the identical
/// kernel ranges per (image, row-range) cell, and every output coefficient
/// is a fixed function of its own image's rows, so neither the fusion nor
/// the chunking changes any accumulation order.
///
/// All images must be non-null with identical dimensions (throws
/// std::invalid_argument otherwise). `pool` may be null for a serial batch.
/// `buffers` (may be null = heap) supplies every scratch and subband
/// buffer; transient intermediates are recycled back into it.
[[nodiscard]] std::vector<core::Pyramid> decompose_batch(
    const std::vector<const core::ImageF*>& images, const core::FilterPair& fp,
    int levels, core::BoundaryMode mode, runtime::ThreadPool* pool,
    core::DwtKernel kernel = core::DwtKernel::Auto,
    core::FloatBufferSource* buffers = nullptr);

/// Bit-identical to core::reconstruct_gather(pyr, fp, mode): the gather-form
/// synthesis computes each output independently, so the row loops
/// parallelize without changing any accumulation order. Pass the boundary
/// mode the pyramid was analyzed with (default Periodic, the
/// exact-reconstruction convention).
[[nodiscard]] core::ImageF reconstruct_parallel(
    const core::Pyramid& pyr, const core::FilterPair& fp, runtime::ThreadPool& pool,
    core::BoundaryMode mode = core::BoundaryMode::Periodic);

}  // namespace wavehpc::wavelet
