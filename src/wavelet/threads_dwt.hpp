#pragma once
// Shared-memory parallel Mallat decomposition: the same arithmetic as
// core::decompose, data-parallel over rows on the host thread pool. This is
// the "modern node" backend — where the simulators model the 1996 machines,
// this one actually runs in parallel. All arithmetic lives in the shared
// kernel layer (core/kernels.hpp); this backend only owns the range splits.

#include "core/dwt.hpp"
#include "runtime/thread_pool.hpp"

namespace wavehpc::wavelet {

/// Bit-identical to core::decompose(img, fp, levels, mode, kernel): both
/// run the shared fused kernels, and every output coefficient is a fixed
/// function of its source rows, so splitting the row ranges across workers
/// changes no accumulation order. `kernel` selects convolve vs lifting
/// exactly as in core::decompose (Auto defers to the process selector).
[[nodiscard]] core::Pyramid decompose_parallel(
    const core::ImageF& img, const core::FilterPair& fp, int levels,
    core::BoundaryMode mode, runtime::ThreadPool& pool,
    core::DwtKernel kernel = core::DwtKernel::Auto);

/// Bit-identical to core::reconstruct_gather(pyr, fp, mode): the gather-form
/// synthesis computes each output independently, so the row loops
/// parallelize without changing any accumulation order. Pass the boundary
/// mode the pyramid was analyzed with (default Periodic, the
/// exact-reconstruction convention).
[[nodiscard]] core::ImageF reconstruct_parallel(
    const core::Pyramid& pyr, const core::FilterPair& fp, runtime::ThreadPool& pool,
    core::BoundaryMode mode = core::BoundaryMode::Periodic);

}  // namespace wavehpc::wavelet
