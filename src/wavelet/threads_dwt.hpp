#pragma once
// Shared-memory parallel Mallat decomposition: the same arithmetic as
// core::decompose, data-parallel over rows on the host thread pool. This is
// the "modern node" backend — where the simulators model the 1996 machines,
// this one actually runs in parallel.

#include "core/dwt.hpp"
#include "runtime/thread_pool.hpp"

namespace wavehpc::wavelet {

/// Bit-identical to core::decompose(img, fp, levels, mode): every output
/// coefficient accumulates its taps in the same order, only the loop over
/// rows is split across workers and the passes are fused — one sweep
/// produces the low/high row intermediates, and one cache-tiled sweep
/// produces all four subbands (LL/LH/HL/HH) of a level.
[[nodiscard]] core::Pyramid decompose_parallel(const core::ImageF& img,
                                               const core::FilterPair& fp, int levels,
                                               core::BoundaryMode mode,
                                               runtime::ThreadPool& pool);

/// Bit-identical to core::reconstruct_gather(pyr, fp): the gather-form
/// synthesis computes each output independently, so the row loops
/// parallelize without changing any accumulation order. Periodic synthesis
/// (the exact-reconstruction convention).
[[nodiscard]] core::ImageF reconstruct_parallel(const core::Pyramid& pyr,
                                                const core::FilterPair& fp,
                                                runtime::ThreadPool& pool);

}  // namespace wavehpc::wavelet
