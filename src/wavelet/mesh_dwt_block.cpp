#include "wavelet/mesh_dwt_block.hpp"

#include <functional>
#include <map>

#include "core/convolve.hpp"

namespace wavehpc::wavelet {

namespace {

using detail::kNotARow;
using detail::LevelRange;

constexpr int kTagScatter = 200;
constexpr int kTagEastBase = 208;         // + level
constexpr int kTagSouthBase = 240;        // + level
constexpr int kTagGatherDetailBase = 272;  // + level
constexpr int kTagGatherApprox = 320;

/// Fetch guard lines from their owners along one axis. `pack` extracts one
/// owned line (by global index) into a float buffer; `unpack` installs the
/// t-th guard line from a span. Symmetric code runs on every rank: sends
/// first (buffered), then receives grouped by owner.
void exchange_guard(mesh::NodeCtx& ctx, const core::StripePartition& axis_part,
                    std::size_t my_axis_index, int level, int taps,
                    std::size_t axis_extent, core::BoundaryMode mode, int tag,
                    const std::function<int(std::size_t)>& rank_of_axis,
                    std::size_t line_floats,
                    const std::function<void(std::size_t, std::vector<float>&)>& pack,
                    const std::function<void(std::size_t, std::span<const float>)>& unpack,
                    double redundancy_per_float) {
    const LevelRange mine = detail::level_range(axis_part, my_axis_index, level);
    const std::size_t parts = axis_part.parts();

    // Send every line another index needs from me.
    for (std::size_t j = 0; j < parts; ++j) {
        if (j == my_axis_index) continue;
        const auto needed =
            detail::guard_rows(axis_part, j, level, taps, axis_extent, mode);
        std::vector<float> payload;
        for (std::size_t g : needed) {
            if (g != kNotARow && g >= mine.first && g < mine.first + mine.count) {
                pack(g, payload);
            }
        }
        if (payload.empty()) continue;
        ctx.compute_redundant(redundancy_per_float *
                              static_cast<double>(payload.size()));
        ctx.csend(tag, rank_of_axis(j), std::as_bytes(std::span<const float>(payload)));
    }

    // Collect what I need, grouped by owning index.
    const auto needed =
        detail::guard_rows(axis_part, my_axis_index, level, taps, axis_extent, mode);
    std::map<std::size_t, std::vector<float>> from_owner;
    std::map<std::size_t, std::size_t> cursor;
    for (std::size_t t = 0; t < needed.size(); ++t) {
        const std::size_t g = needed[t];
        if (g == kNotARow) continue;  // ZeroPad: leave zeros
        if (g >= mine.first && g < mine.first + mine.count) {
            std::vector<float> local;
            pack(g, local);
            unpack(t, local);
            continue;
        }
        const std::size_t o = axis_part.owner(g << level);
        if (from_owner.find(o) == from_owner.end()) {
            from_owner[o] = ctx.recv_vector<float>(tag, rank_of_axis(o));
            cursor[o] = 0;
        }
        auto& buf = from_owner.at(o);
        std::size_t& cur = cursor.at(o);
        if ((cur + 1) * line_floats > buf.size()) {
            throw std::logic_error("block_decompose: guard underflow");
        }
        unpack(t, std::span<const float>(buf).subspan(cur * line_floats, line_floats));
        cur += 1;
        ctx.compute_redundant(redundancy_per_float * static_cast<double>(line_floats));
    }
}

}  // namespace

MeshDwtResult block_decompose(mesh::Machine& machine, const core::ImageF& img,
                              const core::FilterPair& fp, const BlockDwtConfig& cfg,
                              const core::SequentialCostModel& compute_model) {
    core::validate_decomposition_request(img.rows(), img.cols(), cfg.levels);
    const std::size_t granularity = std::size_t{1} << cfg.levels;
    const core::StripePartition part_rows(img.rows(), cfg.grid_rows, granularity);
    const core::StripePartition part_cols(img.cols(), cfg.grid_cols, granularity);
    const std::size_t nprocs = cfg.grid_rows * cfg.grid_cols;

    const auto& topo = machine.profile().topo;
    if (cfg.grid_cols > topo.sx() || cfg.grid_rows > topo.sy()) {
        throw std::invalid_argument("block_decompose: tile grid exceeds the mesh");
    }
    std::vector<mesh::Coord3> placement;
    placement.reserve(nprocs);
    for (std::size_t br = 0; br < cfg.grid_rows; ++br) {
        for (std::size_t bc = 0; bc < cfg.grid_cols; ++bc) {
            placement.push_back({bc, br, 0});
        }
    }

    const int taps = fp.taps();
    MeshDwtResult result;
    result.pyramid.levels.resize(static_cast<std::size_t>(cfg.levels));
    for (int k = 0; k < cfg.levels; ++k) {
        auto& d = result.pyramid.levels[static_cast<std::size_t>(k)];
        d.lh = core::ImageF(img.rows() >> (k + 1), img.cols() >> (k + 1));
        d.hl = d.lh;
        d.hh = d.lh;
    }
    result.pyramid.approx =
        core::ImageF(img.rows() >> cfg.levels, img.cols() >> cfg.levels);

    const auto body = [&](mesh::NodeCtx& ctx) {
        const auto me = static_cast<std::size_t>(ctx.rank());
        const std::size_t br = me / cfg.grid_cols;
        const std::size_t bc = me % cfg.grid_cols;
        const auto rank_in_row = [&](std::size_t col) {
            return static_cast<int>(br * cfg.grid_cols + col);
        };
        const auto rank_in_col = [&](std::size_t row) {
            return static_cast<int>(row * cfg.grid_cols + bc);
        };

        // ---------------------------------------------------- tile scatter
        const LevelRange r0 = detail::level_range(part_rows, br, 0);
        const LevelRange c0 = detail::level_range(part_cols, bc, 0);
        core::ImageF current;
        if (cfg.scatter_gather) {
            if (me == 0) {
                for (std::size_t i = 1; i < nprocs; ++i) {
                    const std::size_t ibr = i / cfg.grid_cols;
                    const std::size_t ibc = i % cfg.grid_cols;
                    const LevelRange rr = detail::level_range(part_rows, ibr, 0);
                    const LevelRange cc = detail::level_range(part_cols, ibc, 0);
                    const core::ImageF tile = img.sub(rr.first, cc.first, rr.count, cc.count);
                    ctx.send_span<float>(kTagScatter, static_cast<int>(i), tile.flat());
                }
                current = img.sub(r0.first, c0.first, r0.count, c0.count);
            } else {
                auto data = ctx.recv_vector<float>(kTagScatter, 0);
                current = core::ImageF(r0.count, c0.count, std::move(data));
            }
        } else {
            current = img.sub(r0.first, c0.first, r0.count, c0.count);
        }

        std::vector<core::DetailBands> details;

        for (int level = 0; level < cfg.levels; ++level) {
            const std::size_t level_rows = img.rows() >> level;
            const std::size_t level_cols = img.cols() >> level;
            const LevelRange lr = detail::level_range(part_rows, br, level);
            const LevelRange lc = detail::level_range(part_cols, bc, level);
            const std::size_t h = lr.count;
            const std::size_t w = lc.count;
            const std::size_t east_guard = static_cast<std::size_t>(std::max(0, taps - 2));

            // ---- east guard columns on the running LL tile --------------
            core::ImageF ext_in(h, w + east_guard, 0.0F);
            ext_in.paste(current, 0, 0);
            exchange_guard(
                ctx, part_cols, bc, level, taps, level_cols, cfg.mode,
                kTagEastBase + level, rank_in_row, h,
                [&](std::size_t g, std::vector<float>& out) {
                    for (std::size_t r = 0; r < h; ++r) {
                        out.push_back(current(r, g - lc.first));
                    }
                },
                [&](std::size_t t, std::span<const float> line) {
                    for (std::size_t r = 0; r < h; ++r) ext_in(r, w + t) = line[r];
                },
                compute_model.per_output());

            // ---- row pass ------------------------------------------------
            const std::size_t half_w = w / 2;
            core::ImageF low_rows(h, half_w);
            core::ImageF high_rows(h, half_w);
            for (std::size_t r = 0; r < h; ++r) {
                auto in = ext_in.row(r);
                for (std::size_t j = 0; j < half_w; ++j) {
                    float lo = 0.0F;
                    float hi = 0.0F;
                    for (int n = 0; n < taps; ++n) {
                        const float v = in[2 * j + static_cast<std::size_t>(n)];
                        lo += fp.low()[static_cast<std::size_t>(n)] * v;
                        hi += fp.high()[static_cast<std::size_t>(n)] * v;
                    }
                    low_rows(r, j) = lo;
                    high_rows(r, j) = hi;
                }
            }
            const std::size_t row_outputs = 2 * h * half_w;
            ctx.compute(compute_model.seconds(row_outputs,
                                              row_outputs * static_cast<std::size_t>(taps)));

            // ---- south guard rows on the row-pass outputs ----------------
            const std::size_t south_guard = east_guard;
            core::ImageF low_ext(h + south_guard, half_w, 0.0F);
            core::ImageF high_ext(h + south_guard, half_w, 0.0F);
            low_ext.paste(low_rows, 0, 0);
            high_ext.paste(high_rows, 0, 0);
            exchange_guard(
                ctx, part_rows, br, level, taps, level_rows, cfg.mode,
                kTagSouthBase + level, rank_in_col, 2 * half_w,
                [&](std::size_t g, std::vector<float>& out) {
                    const auto l = low_rows.row(g - lr.first);
                    const auto hrow = high_rows.row(g - lr.first);
                    out.insert(out.end(), l.begin(), l.end());
                    out.insert(out.end(), hrow.begin(), hrow.end());
                },
                [&](std::size_t t, std::span<const float> line) {
                    std::copy_n(line.begin(), half_w, low_ext.row(h + t).begin());
                    std::copy_n(line.begin() + static_cast<std::ptrdiff_t>(half_w),
                                half_w, high_ext.row(h + t).begin());
                },
                compute_model.per_output());

            // ---- column pass ---------------------------------------------
            const std::size_t out_h = h / 2;
            core::ImageF ll(out_h, half_w);
            core::DetailBands bands;
            bands.lh = core::ImageF(out_h, half_w);
            bands.hl = core::ImageF(out_h, half_w);
            bands.hh = core::ImageF(out_h, half_w);
            const auto col_filter = [&](const core::ImageF& ext,
                                        std::span<const float> f, core::ImageF& out) {
                for (std::size_t k = 0; k < out_h; ++k) {
                    auto dst = out.row(k);
                    for (auto& v : dst) v = 0.0F;
                    for (int n = 0; n < taps; ++n) {
                        const float wgt = f[static_cast<std::size_t>(n)];
                        const auto src = ext.row(2 * k + static_cast<std::size_t>(n));
                        for (std::size_t c = 0; c < half_w; ++c) dst[c] += wgt * src[c];
                    }
                }
            };
            col_filter(low_ext, fp.low(), ll);
            col_filter(low_ext, fp.high(), bands.lh);
            col_filter(high_ext, fp.low(), bands.hl);
            col_filter(high_ext, fp.high(), bands.hh);
            const std::size_t col_outputs = 4 * out_h * half_w;
            ctx.compute(compute_model.seconds(
                col_outputs, col_outputs * static_cast<std::size_t>(taps)));
            ctx.compute(compute_model.per_level());

            details.push_back(std::move(bands));
            current = std::move(ll);
        }

        // ------------------------------------------------- pyramid gather
        const auto paste_tile = [&](std::size_t rank, int level,
                                    const core::DetailBands& b) {
            const std::size_t ibr = rank / cfg.grid_cols;
            const std::size_t ibc = rank % cfg.grid_cols;
            const LevelRange rr = detail::level_range(part_rows, ibr, level);
            const LevelRange cc = detail::level_range(part_cols, ibc, level);
            auto& dst = result.pyramid.levels[static_cast<std::size_t>(level)];
            dst.lh.paste(b.lh, rr.first / 2, cc.first / 2);
            dst.hl.paste(b.hl, rr.first / 2, cc.first / 2);
            dst.hh.paste(b.hh, rr.first / 2, cc.first / 2);
        };
        if (!cfg.scatter_gather && me != 0) return;
        if (me == 0) {
            for (int level = 0; level < cfg.levels; ++level) {
                paste_tile(0, level, details[static_cast<std::size_t>(level)]);
            }
            const LevelRange rra = detail::level_range(part_rows, 0, cfg.levels);
            const LevelRange cca = detail::level_range(part_cols, 0, cfg.levels);
            result.pyramid.approx.paste(current, rra.first, cca.first);
            if (!cfg.scatter_gather) return;
            for (std::size_t i = 1; i < nprocs; ++i) {
                for (int level = 0; level < cfg.levels; ++level) {
                    const std::size_t ibr = i / cfg.grid_cols;
                    const std::size_t ibc = i % cfg.grid_cols;
                    const LevelRange rr = detail::level_range(part_rows, ibr, level);
                    const LevelRange cc = detail::level_range(part_cols, ibc, level);
                    const std::size_t oh = rr.count / 2;
                    const std::size_t ow = cc.count / 2;
                    const auto data = ctx.recv_vector<float>(kTagGatherDetailBase + level,
                                                             static_cast<int>(i));
                    if (data.size() != 3 * oh * ow) {
                        throw std::logic_error("block_decompose: bad gather payload");
                    }
                    core::DetailBands b;
                    const auto slice = [&](std::size_t idx) {
                        return core::ImageF(
                            oh, ow,
                            std::vector<float>(
                                data.begin() + static_cast<std::ptrdiff_t>(idx * oh * ow),
                                data.begin() +
                                    static_cast<std::ptrdiff_t>((idx + 1) * oh * ow)));
                    };
                    b.lh = slice(0);
                    b.hl = slice(1);
                    b.hh = slice(2);
                    paste_tile(i, level, b);
                }
                const std::size_t ibr = i / cfg.grid_cols;
                const std::size_t ibc = i % cfg.grid_cols;
                const LevelRange rr = detail::level_range(part_rows, ibr, cfg.levels);
                const LevelRange cc = detail::level_range(part_cols, ibc, cfg.levels);
                auto adata = ctx.recv_vector<float>(kTagGatherApprox, static_cast<int>(i));
                result.pyramid.approx.paste(
                    core::ImageF(rr.count, cc.count, std::move(adata)), rr.first,
                    cc.first);
            }
        } else {
            for (int level = 0; level < cfg.levels; ++level) {
                const auto& b = details[static_cast<std::size_t>(level)];
                std::vector<float> payload;
                payload.reserve(3 * b.lh.size());
                payload.insert(payload.end(), b.lh.flat().begin(), b.lh.flat().end());
                payload.insert(payload.end(), b.hl.flat().begin(), b.hl.flat().end());
                payload.insert(payload.end(), b.hh.flat().begin(), b.hh.flat().end());
                ctx.send_span<float>(kTagGatherDetailBase + level, 0,
                                     std::span<const float>(payload));
            }
            ctx.send_span<float>(kTagGatherApprox, 0, current.flat());
        }
    };

    result.run = machine.run(nprocs, placement, body);
    result.seconds = result.run.makespan;
    return result;
}

}  // namespace wavehpc::wavelet
