#pragma once
// Block (2-D) domain decomposition for the mesh wavelet transform — the
// alternative the paper's figure 3 argues AGAINST: each rank owns a
// rectangular tile, so every level needs TWO guard-zone exchanges (east
// columns before the row pass, south rows before the column pass) instead
// of the stripe decomposition's one. Implemented so the figure-3 trade-off
// is measured, not asserted.

#include "wavelet/mesh_dwt.hpp"

namespace wavehpc::wavelet {

struct BlockDwtConfig {
    int levels = 1;
    core::BoundaryMode mode = core::BoundaryMode::Symmetric;
    std::size_t grid_rows = 2;  ///< tile grid: grid_rows x grid_cols ranks
    std::size_t grid_cols = 2;
    bool scatter_gather = true;
};

/// Decompose `img` with a block decomposition on grid_rows*grid_cols ranks.
/// Produces exactly the sequential pyramid; timings expose the doubled
/// guard-zone transaction count.
[[nodiscard]] MeshDwtResult block_decompose(mesh::Machine& machine,
                                            const core::ImageF& img,
                                            const core::FilterPair& fp,
                                            const BlockDwtConfig& cfg,
                                            const core::SequentialCostModel& compute_model);

}  // namespace wavehpc::wavelet
