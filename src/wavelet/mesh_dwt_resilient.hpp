#pragma once
// Fault-tolerant variant of the striped mesh decomposition.
//
// Rank 0 keeps the running LL image between levels (the gather at each level
// boundary *is* the checkpoint), so a level is always redoable. Every level
// runs as: re-stripe the LL rows over the currently-live ranks, scatter,
// local row pass, neighbour guard-zone exchange, column pass, gather. All
// control and data frames travel over the reliable transport; peers that
// fail-stop are detected by expired crecv_timeout waits (or exhausted
// retransmissions), reported to rank 0, and the level is redone from the
// checkpoint with the dead rank's rows re-striped over the survivors.
//
// Row and column filtering go through the same detail::row_pass/col_pass
// kernels as the plain decomposition and each output row depends only on
// global input rows, never on stripe boundaries — so the assembled pyramid
// is bit-identical to the fault-free result whenever recovery succeeds.
//
// All time spent on redo attempts is charged to NodeStats::recovery_seconds
// (the perf budget's recovery category) via recovery mode.

#include <cstddef>
#include <vector>

#include "core/cost_model.hpp"
#include "core/dwt.hpp"
#include "core/stripe.hpp"
#include "mesh/machine.hpp"

namespace wavehpc::wavelet {

struct ResilientDwtConfig {
    int levels = 1;
    core::BoundaryMode mode = core::BoundaryMode::Symmetric;
    core::MappingPolicy mapping = core::MappingPolicy::Snake;
    /// Virtual seconds a rank waits on a peer before declaring it dead. A
    /// false positive (slow peer under heavy faults) costs an extra redo but
    /// never changes the coefficients.
    double detect_timeout = 5.0;
    /// Transport tuning for control/data/guard frames.
    mesh::ReliableParams reliable{};
    /// Give up (throw) after this many attempts at one level; bounded at 16.
    int max_attempts_per_level = 8;
};

struct ResilientDwtResult {
    core::Pyramid pyramid;         ///< assembled at rank 0
    double seconds = 0.0;          ///< virtual makespan
    mesh::Machine::RunResult run;  ///< per-node stats, fault counters
    std::size_t level_retries = 0; ///< redo attempts summed over all levels
    std::vector<int> failed_ranks; ///< ranks rank 0 declared dead, in order
};

/// Resiliently decompose `img` on `nprocs` ranks of `machine`. The machine's
/// fault plan may drop/corrupt messages and fail-stop any rank except 0 (the
/// checkpoint holder; a plan that kills rank 0 throws std::invalid_argument).
[[nodiscard]] ResilientDwtResult mesh_decompose_resilient(
    mesh::Machine& machine, const core::ImageF& img, const core::FilterPair& fp,
    const ResilientDwtConfig& cfg, std::size_t nprocs,
    const core::SequentialCostModel& compute_model);

}  // namespace wavehpc::wavelet
