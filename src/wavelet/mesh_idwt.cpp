#include "wavelet/mesh_idwt.hpp"

#include <map>
#include <set>

#include "core/convolve.hpp"
#include "core/kernels.hpp"
#include "wavelet/mesh_dwt.hpp"  // detail::level_range

namespace wavehpc::wavelet {

namespace detail {

std::vector<std::size_t> synthesis_rows_needed(std::size_t first, std::size_t count,
                                               std::size_t half_rows, int taps,
                                               core::BoundaryMode mode) {
    std::set<std::size_t> rows;
    for (std::size_t m = first; m < first + count; ++m) {
        core::for_each_synthesis_tap(m, half_rows, static_cast<std::size_t>(taps), mode,
                                     [&](std::size_t k, std::size_t) { rows.insert(k); });
    }
    return {rows.begin(), rows.end()};
}

}  // namespace detail

namespace {

using detail::LevelRange;

constexpr int kTagScatterApprox = 400;
constexpr int kTagScatterDetail = 401;  // + level
constexpr int kTagGuardBase = 440;      // + stage
constexpr int kTagGatherImage = 480;

}  // namespace

MeshIdwtResult mesh_reconstruct(mesh::Machine& machine, const core::Pyramid& pyramid,
                                const core::FilterPair& fp, const MeshIdwtConfig& cfg,
                                std::size_t nprocs,
                                const core::SequentialCostModel& compute_model) {
    const auto levels = static_cast<int>(pyramid.depth());
    if (levels == 0) throw std::invalid_argument("mesh_reconstruct: empty pyramid");
    const std::size_t rows = pyramid.approx.rows() << levels;
    const std::size_t cols = pyramid.approx.cols() << levels;
    const core::StripePartition part0(rows, nprocs, std::size_t{1} << levels);

    const auto placement2 =
        core::make_placement(nprocs, machine.profile().topo.sx(), cfg.mapping);
    std::vector<mesh::Coord3> placement;
    for (auto c : placement2) placement.push_back({c.x, c.y, 0});

    const int taps = fp.taps();
    MeshIdwtResult result;
    result.image = core::ImageF(rows, cols);

    const auto body = [&](mesh::NodeCtx& ctx) {
        const auto me = static_cast<std::size_t>(ctx.rank());
        const auto p = static_cast<std::size_t>(ctx.nprocs());

        // ----------------------------------------------- pyramid scatter
        core::ImageF current;  // my stripe of the running approximation
        std::vector<core::DetailBands> details(static_cast<std::size_t>(levels));
        const auto stripe_of = [&](const core::ImageF& full, int level) {
            const LevelRange lr = detail::level_range(part0, me, level);
            return full.sub(lr.first, 0, lr.count, full.cols());
        };
        if (cfg.scatter_gather && me == 0) {
            for (std::size_t i = 1; i < p; ++i) {
                const auto send_stripe = [&](const core::ImageF& full, int level,
                                             int tag) {
                    const LevelRange lr = detail::level_range(part0, i, level);
                    const core::ImageF s = full.sub(lr.first, 0, lr.count, full.cols());
                    ctx.send_span<float>(tag, static_cast<int>(i), s.flat());
                };
                send_stripe(pyramid.approx, levels, kTagScatterApprox);
                for (int k = 0; k < levels; ++k) {
                    const auto& d = pyramid.levels[static_cast<std::size_t>(k)];
                    // One message per level: LH, HL, HH stripes concatenated.
                    const LevelRange lr = detail::level_range(part0, i, k + 1);
                    std::vector<float> payload;
                    for (const core::ImageF* band : {&d.lh, &d.hl, &d.hh}) {
                        const core::ImageF s =
                            band->sub(lr.first, 0, lr.count, band->cols());
                        payload.insert(payload.end(), s.flat().begin(), s.flat().end());
                    }
                    ctx.send_span<float>(kTagScatterDetail + k, static_cast<int>(i),
                                         std::span<const float>(payload));
                }
            }
        }
        if (me == 0 || !cfg.scatter_gather) {
            current = stripe_of(pyramid.approx, levels);
            for (int k = 0; k < levels; ++k) {
                const auto& d = pyramid.levels[static_cast<std::size_t>(k)];
                details[static_cast<std::size_t>(k)] = {stripe_of(d.lh, k + 1),
                                                        stripe_of(d.hl, k + 1),
                                                        stripe_of(d.hh, k + 1)};
            }
        } else {
            auto adata = ctx.recv_vector<float>(kTagScatterApprox, 0);
            const LevelRange lra = detail::level_range(part0, me, levels);
            current = core::ImageF(lra.count, cols >> levels, std::move(adata));
            for (int k = 0; k < levels; ++k) {
                const auto data = ctx.recv_vector<float>(kTagScatterDetail + k, 0);
                const LevelRange lr = detail::level_range(part0, me, k + 1);
                const std::size_t band = lr.count * (cols >> (k + 1));
                if (data.size() != 3 * band) {
                    throw std::logic_error("mesh_reconstruct: bad scatter payload");
                }
                const auto slice = [&](std::size_t idx) {
                    return core::ImageF(
                        lr.count, cols >> (k + 1),
                        std::vector<float>(
                            data.begin() + static_cast<std::ptrdiff_t>(idx * band),
                            data.begin() + static_cast<std::ptrdiff_t>((idx + 1) * band)));
                };
                details[static_cast<std::size_t>(k)] = {slice(0), slice(1), slice(2)};
            }
        }

        // ------------------------------------------- synthesis stages
        for (int stage = levels - 1; stage >= 0; --stage) {
            const LevelRange out_lr = detail::level_range(part0, me, stage);
            const LevelRange in_lr = detail::level_range(part0, me, stage + 1);
            const std::size_t half_rows = rows >> (stage + 1);
            const std::size_t half_c = cols >> (stage + 1);
            const auto& d = details[static_cast<std::size_t>(stage)];

            // ---- north guard exchange on all four coefficient bands ----
            // Send what others need from my coefficient rows ...
            for (std::size_t j = 0; j < p; ++j) {
                if (j == me) continue;
                const LevelRange jout = detail::level_range(part0, j, stage);
                const auto needed = detail::synthesis_rows_needed(
                    jout.first, jout.count, half_rows, taps, cfg.mode);
                std::vector<float> payload;
                for (std::size_t g : needed) {
                    if (g < in_lr.first || g >= in_lr.first + in_lr.count) continue;
                    const std::size_t local = g - in_lr.first;
                    const core::ImageF* bands[] = {&current, &d.lh, &d.hl, &d.hh};
                    for (const core::ImageF* band : bands) {
                        const auto r = band->row(local);
                        payload.insert(payload.end(), r.begin(), r.end());
                    }
                }
                if (payload.empty()) continue;
                ctx.compute_redundant(compute_model.per_output() *
                                      static_cast<double>(payload.size()));
                ctx.send_span<float>(kTagGuardBase + stage, static_cast<int>(j),
                                     std::span<const float>(payload));
            }
            // ... and collect what I need, keyed by global coefficient row.
            const auto needed = detail::synthesis_rows_needed(
                out_lr.first, out_lr.count, half_rows, taps, cfg.mode);
            std::map<std::size_t, std::size_t> halo_index;  // global row -> slot
            std::vector<std::size_t> missing;
            for (std::size_t g : needed) {
                if (g < in_lr.first || g >= in_lr.first + in_lr.count) {
                    halo_index[g] = missing.size();
                    missing.push_back(g);
                }
            }
            // 4 band rows per halo slot.
            core::ImageF halo(4 * std::max<std::size_t>(missing.size(), 1), half_c,
                              0.0F);
            std::map<std::size_t, std::vector<float>> from_owner;
            std::map<std::size_t, std::size_t> cursor;
            for (std::size_t g : missing) {
                const std::size_t o = part0.owner(g << (stage + 1));
                if (from_owner.find(o) == from_owner.end()) {
                    from_owner[o] = ctx.recv_vector<float>(kTagGuardBase + stage,
                                                           static_cast<int>(o));
                    cursor[o] = 0;
                }
                auto& buf = from_owner.at(o);
                std::size_t& cur = cursor.at(o);
                if ((cur + 4) * half_c > buf.size()) {
                    throw std::logic_error("mesh_reconstruct: guard underflow");
                }
                for (std::size_t b = 0; b < 4; ++b) {
                    std::copy_n(
                        buf.begin() + static_cast<std::ptrdiff_t>((cur + b) * half_c),
                        half_c, halo.row(4 * halo_index.at(g) + b).begin());
                }
                cur += 4;
                ctx.compute_redundant(compute_model.per_output() *
                                      static_cast<double>(4 * half_c));
            }

            const auto band_row = [&](const core::ImageF& own, std::size_t band_slot) {
                return [&, band_slot](std::size_t k) -> std::span<const float> {
                    if (k >= in_lr.first && k < in_lr.first + in_lr.count) {
                        return own.row(k - in_lr.first);
                    }
                    return halo.row(4 * halo_index.at(k) + band_slot);
                };
            };

            // ---- column synthesis for my output rows --------------------
            core::ImageF low_rows(out_lr.count, half_c);
            core::ImageF high_rows(out_lr.count, half_c);
            for (std::size_t i = 0; i < out_lr.count; ++i) {
                const std::size_t m = out_lr.first + i;
                core::synthesize_col_row(m, half_rows, fp.low(), fp.high(),
                                         band_row(current, 0), band_row(d.lh, 1),
                                         low_rows.row(i), cfg.mode);
                core::synthesize_col_row(m, half_rows, fp.low(), fp.high(),
                                         band_row(d.hl, 2), band_row(d.hh, 3),
                                         high_rows.row(i), cfg.mode);
            }

            // ---- local row synthesis -------------------------------------
            core::ImageF out;
            core::synthesize_rows(low_rows, high_rows, fp.low(), fp.high(), out,
                                  cfg.mode);
            const std::size_t outputs = 2 * out_lr.count * (cols >> stage);
            ctx.compute(compute_model.seconds(outputs,
                                              outputs * static_cast<std::size_t>(taps)));
            ctx.compute(compute_model.per_level());
            current = std::move(out);
        }

        // ----------------------------------------------- image gather
        const LevelRange lr0 = detail::level_range(part0, me, 0);
        if (me == 0) {
            result.image.paste(current, lr0.first, 0);
            if (!cfg.scatter_gather) return;
            for (std::size_t i = 1; i < p; ++i) {
                int src = -1;
                auto data = ctx.recv_vector<float>(kTagGatherImage, mesh::kAnySource,
                                                   &src);
                const LevelRange lr =
                    detail::level_range(part0, static_cast<std::size_t>(src), 0);
                result.image.paste(core::ImageF(lr.count, cols, std::move(data)),
                                   lr.first, 0);
            }
        } else if (cfg.scatter_gather) {
            ctx.send_span<float>(kTagGatherImage, 0, current.flat());
        }
    };

    result.run = machine.run(nprocs, placement, body);
    result.seconds = result.run.makespan;
    return result;
}

}  // namespace wavehpc::wavelet
