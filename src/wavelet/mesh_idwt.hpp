#pragma once
// Distributed multi-resolution reconstruction (the paper's figure 2) on the
// mesh machine: the pyramid is scattered as stripes, every stage performs
// the column synthesis after fetching a north guard zone of coefficient
// rows, the row synthesis is local, and the image is gathered at rank 0.
// Synthesis honors the boundary mode the pyramid was analyzed with
// (cfg.mode, default Periodic — the exact-reconstruction convention);
// results are bit-identical to core::reconstruct_gather under the same mode.

#include "core/cost_model.hpp"
#include "core/dwt.hpp"
#include "core/stripe.hpp"
#include "mesh/machine.hpp"

namespace wavehpc::wavelet {

struct MeshIdwtConfig {
    core::MappingPolicy mapping = core::MappingPolicy::Snake;
    bool scatter_gather = true;
    /// Boundary mode the pyramid was analyzed with; synthesis folds edge
    /// taps back through the same extension.
    core::BoundaryMode mode = core::BoundaryMode::Periodic;
};

struct MeshIdwtResult {
    core::ImageF image;  ///< assembled at rank 0
    double seconds = 0.0;
    mesh::Machine::RunResult run;
};

[[nodiscard]] MeshIdwtResult mesh_reconstruct(mesh::Machine& machine,
                                              const core::Pyramid& pyramid,
                                              const core::FilterPair& fp,
                                              const MeshIdwtConfig& cfg,
                                              std::size_t nprocs,
                                              const core::SequentialCostModel& compute_model);

namespace detail {
/// Global coefficient rows (of the half-size bands, mapped through `mode` —
/// wrapped for Periodic, reflected for Symmetric, dropped for ZeroPad) that
/// the column synthesis of output rows [first, first+count) reads; sorted
/// unique.
[[nodiscard]] std::vector<std::size_t> synthesis_rows_needed(
    std::size_t first, std::size_t count, std::size_t half_rows, int taps,
    core::BoundaryMode mode = core::BoundaryMode::Periodic);
}  // namespace detail

}  // namespace wavehpc::wavelet
