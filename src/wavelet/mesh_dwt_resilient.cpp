#include "wavelet/mesh_dwt_resilient.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <stdexcept>

#include "wavelet/mesh_dwt.hpp"

namespace wavehpc::wavelet {

namespace {

using detail::kNotARow;

// Tag space: clear of the plain decomposition's tags (1..192) and far below
// the collectives' base (1 << 20). Stripe-data, guard, and response tags are
// all scoped by (level, attempt), so a frame from an aborted attempt can
// never satisfy a later attempt's wait — it just rots in the mailbox.
constexpr int kTagCtrl = 3000;
constexpr int kTagGuardBase = 3100;
constexpr int kTagRespBase = 3800;
constexpr int kTagDataBase = 4500;
constexpr int kMaxAttempts = 16;

constexpr int guard_tag(int level, int attempt) {
    return kTagGuardBase + level * kMaxAttempts + attempt;
}
constexpr int resp_tag(int level, int attempt) {
    return kTagRespBase + level * kMaxAttempts + attempt;
}
constexpr int data_tag(int level, int attempt) {
    return kTagDataBase + level * kMaxAttempts + attempt;
}

constexpr float kRespGather = 0.0F;
constexpr float kRespFail = 1.0F;
constexpr std::int32_t kLevelDone = -1;

std::vector<float> to_floats(const mesh::Message& m) {
    if (m.data.size() % sizeof(float) != 0) {
        throw std::runtime_error("mesh_decompose_resilient: misaligned float payload");
    }
    std::vector<float> v(m.data.size() / sizeof(float));
    std::memcpy(v.data(), m.data.data(), m.data.size());
    return v;
}

std::vector<std::int32_t> to_ints(const mesh::Message& m) {
    if (m.data.size() % sizeof(std::int32_t) != 0) {
        throw std::runtime_error("mesh_decompose_resilient: misaligned int payload");
    }
    std::vector<std::int32_t> v(m.data.size() / sizeof(std::int32_t));
    std::memcpy(v.data(), m.data.data(), m.data.size());
    return v;
}

/// Control frame: level header + the partition's worker->rank table.
/// row_count == 0 marks an idle attempt (rank sits this level out).
std::vector<std::int32_t> make_ctrl(int level, int attempt, std::size_t w_count,
                                    int my_index, std::size_t row_count,
                                    std::size_t level_rows, std::size_t level_cols,
                                    const std::vector<int>& ranks) {
    std::vector<std::int32_t> c = {level,
                                   attempt,
                                   static_cast<std::int32_t>(w_count),
                                   my_index,
                                   static_cast<std::int32_t>(row_count),
                                   static_cast<std::int32_t>(level_rows),
                                   static_cast<std::int32_t>(level_cols)};
    c.insert(c.end(), ranks.begin(), ranks.end());
    return c;
}

struct LevelWork {
    core::ImageF ll;
    core::DetailBands bands;
};

}  // namespace

ResilientDwtResult mesh_decompose_resilient(mesh::Machine& machine,
                                            const core::ImageF& img,
                                            const core::FilterPair& fp,
                                            const ResilientDwtConfig& cfg,
                                            std::size_t nprocs,
                                            const core::SequentialCostModel& compute_model) {
    core::validate_decomposition_request(img.rows(), img.cols(), cfg.levels);
    if (nprocs == 0) {
        throw std::invalid_argument("mesh_decompose_resilient: nprocs must be > 0");
    }
    if (machine.profile().faults.fail_time(0).has_value()) {
        throw std::invalid_argument(
            "mesh_decompose_resilient: rank 0 holds the checkpoint and must not "
            "fail-stop");
    }
    if (cfg.detect_timeout <= 0.0) {
        throw std::invalid_argument("mesh_decompose_resilient: detect_timeout <= 0");
    }
    const int max_attempts = std::clamp(cfg.max_attempts_per_level, 1, kMaxAttempts);

    const auto placement2 =
        core::make_placement(nprocs, machine.profile().topo.sx(), cfg.mapping);
    std::vector<mesh::Coord3> placement;
    placement.reserve(nprocs);
    for (auto c : placement2) placement.push_back({c.x, c.y, 0});

    const int taps = fp.taps();

    ResilientDwtResult result;
    result.pyramid.levels.resize(static_cast<std::size_t>(cfg.levels));
    for (int k = 0; k < cfg.levels; ++k) {
        const std::size_t r2 = img.rows() >> (k + 1);
        const std::size_t c2 = img.cols() >> (k + 1);
        auto& d = result.pyramid.levels[static_cast<std::size_t>(k)];
        d.lh = core::ImageF(r2, c2);
        d.hl = core::ImageF(r2, c2);
        d.hh = core::ImageF(r2, c2);
    }

    const auto body = [&](mesh::NodeCtx& ctx) {
        const auto send_bytes = [&](int tag, int dst, std::span<const std::byte> b,
                                    const mesh::ReliableParams& params) {
            return ctx.csend_reliable(tag, dst, b, params);
        };
        const auto send_i32 = [&](int tag, int dst, const std::vector<std::int32_t>& v,
                                  const mesh::ReliableParams& params) {
            return send_bytes(tag, dst, std::as_bytes(std::span<const std::int32_t>(v)),
                              params);
        };
        const auto send_f32 = [&](int tag, int dst, const std::vector<float>& v,
                                  const mesh::ReliableParams& params) {
            return send_bytes(tag, dst, std::as_bytes(std::span<const float>(v)), params);
        };

        // One stripe's worth of a level attempt: row pass, guard exchange,
        // column pass. Returns nullopt — with the suspected ranks appended
        // to `dead` — when a peer stopped answering.
        const auto run_stripe =
            [&](const core::StripePartition& part, std::size_t w,
                const std::vector<int>& ranks, int level, int attempt,
                std::size_t level_rows, const core::ImageF& stripe,
                std::vector<int>& dead) -> std::optional<LevelWork> {
            const std::size_t h = stripe.rows();
            const std::size_t level_cols = stripe.cols();
            const std::size_t half_c = level_cols / 2;
            const std::size_t first = part.first_row(w);

            core::ImageF low_rows(h, half_c);
            core::ImageF high_rows(h, half_c);
            detail::row_pass(stripe, fp, cfg.mode, low_rows, high_rows);
            const std::size_t row_outputs = h * level_cols;
            ctx.compute(compute_model.seconds(
                row_outputs, row_outputs * static_cast<std::size_t>(taps)));

            for (std::size_t j = 0; j < part.parts(); ++j) {
                if (j == w) continue;
                const auto needed_j =
                    detail::guard_rows(part, j, 0, taps, level_rows, cfg.mode);
                std::vector<std::size_t> mine;
                for (std::size_t g : needed_j) {
                    if (g != kNotARow && g >= first && g < first + h) mine.push_back(g);
                }
                if (mine.empty()) continue;
                const auto payload = detail::pack_guard(low_rows, high_rows, first, mine);
                ctx.compute_redundant(compute_model.per_output() *
                                      static_cast<double>(payload.size()));
                if (!send_f32(guard_tag(level, attempt), ranks[j], payload,
                              cfg.reliable)) {
                    dead.push_back(ranks[j]);
                }
            }
            if (!dead.empty()) return std::nullopt;

            const auto needed =
                detail::guard_rows(part, w, 0, taps, level_rows, cfg.mode);
            std::map<std::size_t, std::vector<float>> from_owner;
            std::map<std::size_t, std::size_t> cursor;
            for (std::size_t g : needed) {
                if (g == kNotARow) continue;
                const std::size_t o = part.owner(g);
                if (o == w || from_owner.find(o) != from_owner.end()) continue;
                auto m = ctx.crecv_timeout(guard_tag(level, attempt), ranks[o],
                                           cfg.detect_timeout);
                if (!m.has_value()) {
                    dead.push_back(ranks[o]);
                    return std::nullopt;
                }
                from_owner[o] = to_floats(*m);
                cursor[o] = 0;
            }

            const std::size_t guard = needed.size();
            core::ImageF low_ext(h + guard, half_c, 0.0F);
            core::ImageF high_ext(h + guard, half_c, 0.0F);
            low_ext.paste(low_rows, 0, 0);
            high_ext.paste(high_rows, 0, 0);
            for (std::size_t t = 0; t < guard; ++t) {
                const std::size_t g = needed[t];
                if (g == kNotARow) continue;  // ZeroPad: stays zero
                auto ldst = low_ext.row(h + t);
                auto hdst = high_ext.row(h + t);
                if (g >= first && g < first + h) {
                    const auto lsrc = low_rows.row(g - first);
                    const auto hsrc = high_rows.row(g - first);
                    std::copy(lsrc.begin(), lsrc.end(), ldst.begin());
                    std::copy(hsrc.begin(), hsrc.end(), hdst.begin());
                } else {
                    const std::size_t o = part.owner(g);
                    auto& buf = from_owner.at(o);
                    std::size_t& cur = cursor.at(o);
                    if ((cur + 2) * half_c > buf.size()) {
                        throw std::logic_error(
                            "mesh_decompose_resilient: guard underflow");
                    }
                    std::copy_n(buf.begin() + static_cast<std::ptrdiff_t>(cur * half_c),
                                half_c, ldst.begin());
                    std::copy_n(
                        buf.begin() + static_cast<std::ptrdiff_t>((cur + 1) * half_c),
                        half_c, hdst.begin());
                    cur += 2;
                }
            }
            ctx.compute_redundant(compute_model.per_output() *
                                  static_cast<double>(2 * guard * half_c));

            LevelWork out;
            const std::size_t out_h = h / 2;
            out.ll = core::ImageF(out_h, half_c);
            out.bands.lh = core::ImageF(out_h, half_c);
            out.bands.hl = core::ImageF(out_h, half_c);
            out.bands.hh = core::ImageF(out_h, half_c);
            detail::col_pass(low_ext, high_ext, fp, out.ll, out.bands);
            const std::size_t col_outputs = 4 * out_h * half_c;
            ctx.compute(compute_model.seconds(
                col_outputs, col_outputs * static_cast<std::size_t>(taps)));
            ctx.compute(compute_model.per_level());
            return out;
        };

        // ------------------------------------------------------ worker loop
        if (ctx.rank() != 0) {
            for (;;) {
                const auto ctrl = to_ints(ctx.crecv(kTagCtrl, 0));
                const int level = static_cast<int>(ctrl.at(0));
                if (level == kLevelDone) return;
                const int attempt = static_cast<int>(ctrl.at(1));
                const auto w_count = static_cast<std::size_t>(ctrl.at(2));
                const auto my_index = static_cast<std::size_t>(ctrl.at(3));
                const auto row_count = static_cast<std::size_t>(ctrl.at(4));
                const auto level_rows = static_cast<std::size_t>(ctrl.at(5));
                const auto level_cols = static_cast<std::size_t>(ctrl.at(6));
                if (row_count == 0) continue;  // idle this attempt
                std::vector<int> ranks(ctrl.begin() + 7,
                                       ctrl.begin() + 7 +
                                           static_cast<std::ptrdiff_t>(w_count));

                std::optional<mesh::ScopedRecovery> rec;
                if (attempt > 0) rec.emplace(ctx);

                auto dm = ctx.crecv_timeout(data_tag(level, attempt), 0,
                                            cfg.detect_timeout);
                if (!dm.has_value()) continue;  // scatter was aborted upstream
                core::ImageF stripe(row_count, level_cols, to_floats(*dm));

                const core::StripePartition part(level_rows, w_count, 2);
                std::vector<int> dead;
                auto work = run_stripe(part, my_index, ranks, level, attempt,
                                       level_rows, stripe, dead);

                std::vector<float> resp;
                if (!work.has_value()) {
                    resp.push_back(kRespFail);
                    for (int d : dead) resp.push_back(static_cast<float>(d));
                } else {
                    resp.push_back(kRespGather);
                    const auto append = [&resp](const core::ImageF& im) {
                        resp.insert(resp.end(), im.flat().begin(), im.flat().end());
                    };
                    append(work->ll);
                    append(work->bands.lh);
                    append(work->bands.hl);
                    append(work->bands.hh);
                }
                // If even the reliable response cannot get through, rank 0's
                // collect timeout classifies us dead; converges either way.
                (void)send_f32(resp_tag(level, attempt), 0, resp, cfg.reliable);
            }
        }

        // ------------------------------------------------------- rank 0 hub
        core::ImageF current = img;  // level-boundary checkpoint
        std::vector<int> alive;
        alive.reserve(nprocs);
        for (std::size_t r = 0; r < nprocs; ++r) alive.push_back(static_cast<int>(r));

        for (int level = 0; level < cfg.levels; ++level) {
            const std::size_t level_rows = img.rows() >> level;
            const std::size_t level_cols = img.cols() >> level;
            const std::size_t half_c = level_cols / 2;

            for (int attempt = 0;; ++attempt) {
                if (attempt >= max_attempts) {
                    throw std::runtime_error(
                        "mesh_decompose_resilient: level " + std::to_string(level) +
                        " still failing after " + std::to_string(max_attempts) +
                        " attempts");
                }
                std::optional<mesh::ScopedRecovery> rec;
                if (attempt > 0) {
                    rec.emplace(ctx);
                    ++result.level_retries;
                }

                const std::size_t w_count = std::min(alive.size(), level_rows / 2);
                const std::vector<int> ranks(alive.begin(),
                                             alive.begin() +
                                                 static_cast<std::ptrdiff_t>(w_count));
                const core::StripePartition part(level_rows, w_count, 2);
                std::vector<int> newly_dead;

                // Scatter stripes to the live workers; a failed reliable
                // send marks the peer dead and aborts this attempt.
                bool scatter_ok = true;
                for (std::size_t idx = 1; idx < w_count; ++idx) {
                    const auto ctrl = make_ctrl(level, attempt, w_count,
                                                static_cast<int>(idx), part.height(idx),
                                                level_rows, level_cols, ranks);
                    if (!send_i32(kTagCtrl, ranks[idx], ctrl, cfg.reliable)) {
                        newly_dead.push_back(ranks[idx]);
                        scatter_ok = false;
                        break;
                    }
                    const core::ImageF block = current.sub(part.first_row(idx), 0,
                                                           part.height(idx), level_cols);
                    if (!send_bytes(data_tag(level, attempt), ranks[idx],
                                    std::as_bytes(block.flat()), cfg.reliable)) {
                        newly_dead.push_back(ranks[idx]);
                        scatter_ok = false;
                        break;
                    }
                }
                // Ranks alive but surplus to this level's stripes idle until
                // the next control frame.
                for (std::size_t idx = w_count; idx < alive.size(); ++idx) {
                    const auto ctrl = make_ctrl(level, attempt, 0, -1, 0, level_rows,
                                                level_cols, {});
                    if (!send_i32(kTagCtrl, alive[idx], ctrl, cfg.reliable)) {
                        newly_dead.push_back(alive[idx]);
                    }
                }

                std::optional<LevelWork> own;
                std::vector<std::optional<std::vector<float>>> resp(w_count);
                if (scatter_ok) {
                    std::vector<int> dead0;
                    const core::ImageF own_stripe =
                        current.sub(part.first_row(0), 0, part.height(0), level_cols);
                    own = run_stripe(part, 0, ranks, level, attempt, level_rows,
                                     own_stripe, dead0);
                    newly_dead.insert(newly_dead.end(), dead0.begin(), dead0.end());

                    for (std::size_t idx = 1; idx < w_count; ++idx) {
                        auto m = ctx.crecv_timeout(resp_tag(level, attempt), ranks[idx],
                                                   cfg.detect_timeout);
                        if (!m.has_value()) {
                            newly_dead.push_back(ranks[idx]);
                            continue;
                        }
                        auto v = to_floats(*m);
                        if (v.empty()) {
                            throw std::logic_error(
                                "mesh_decompose_resilient: empty response");
                        }
                        if (v[0] == kRespFail) {
                            for (std::size_t i = 1; i < v.size(); ++i) {
                                newly_dead.push_back(static_cast<int>(v[i]));
                            }
                        } else {
                            resp[idx] = std::move(v);
                        }
                    }
                }

                // Rank 0 never dies (validated), so filter it from reports.
                std::sort(newly_dead.begin(), newly_dead.end());
                newly_dead.erase(std::unique(newly_dead.begin(), newly_dead.end()),
                                 newly_dead.end());
                newly_dead.erase(std::remove(newly_dead.begin(), newly_dead.end(), 0),
                                 newly_dead.end());

                // Commit only when every stripe actually arrived. A worker can
                // falsely suspect rank 0 (its guard frame delayed past the
                // detect timeout) and answer kRespFail naming only rank 0 —
                // the filter above then leaves newly_dead empty while that
                // worker's resp slot is disengaged, so the level must be
                // retried, not committed.
                bool gathered = own.has_value();
                for (std::size_t idx = 1; gathered && idx < w_count; ++idx) {
                    gathered = resp[idx].has_value();
                }

                if (newly_dead.empty() && gathered) {
                    // Commit the level: paste every stripe into the pyramid
                    // and build the next checkpoint.
                    core::ImageF next(level_rows / 2, half_c);
                    auto& dst = result.pyramid.levels[static_cast<std::size_t>(level)];
                    const auto commit = [&](std::size_t idx, const core::ImageF& ll,
                                            const core::DetailBands& b) {
                        const std::size_t out_first = part.first_row(idx) / 2;
                        dst.lh.paste(b.lh, out_first, 0);
                        dst.hl.paste(b.hl, out_first, 0);
                        dst.hh.paste(b.hh, out_first, 0);
                        next.paste(ll, out_first, 0);
                    };
                    commit(0, own->ll, own->bands);
                    for (std::size_t idx = 1; idx < w_count; ++idx) {
                        const auto& v = *resp[idx];
                        const std::size_t out_h = part.height(idx) / 2;
                        const std::size_t n = out_h * half_c;
                        if (v.size() != 1 + 4 * n) {
                            throw std::logic_error(
                                "mesh_decompose_resilient: bad gather payload");
                        }
                        const auto slice = [&](std::size_t s) {
                            return core::ImageF(
                                out_h, half_c,
                                std::vector<float>(
                                    v.begin() + static_cast<std::ptrdiff_t>(1 + s * n),
                                    v.begin() +
                                        static_cast<std::ptrdiff_t>(1 + (s + 1) * n)));
                        };
                        core::DetailBands b;
                        b.lh = slice(1);
                        b.hl = slice(2);
                        b.hh = slice(3);
                        commit(idx, slice(0), b);
                    }
                    current = std::move(next);
                    break;  // next level
                }

                // Re-stripe over the survivors and redo from the checkpoint.
                for (int d : newly_dead) {
                    alive.erase(std::remove(alive.begin(), alive.end(), d), alive.end());
                    result.failed_ranks.push_back(d);
                }
            }
        }

        result.pyramid.approx = std::move(current);

        // Release every worker — including any falsely-suspected live ones
        // still parked on the control channel — with a high-retry goodbye.
        mesh::ReliableParams bye = cfg.reliable;
        bye.max_retries = std::max(bye.max_retries, 30);
        const std::vector<std::int32_t> done = {kLevelDone};
        for (std::size_t r = 1; r < nprocs; ++r) {
            (void)send_i32(kTagCtrl, static_cast<int>(r), done, bye);
        }
    };

    result.run = machine.run(nprocs, placement, body);
    result.seconds = result.run.makespan;
    return result;
}

}  // namespace wavehpc::wavelet
