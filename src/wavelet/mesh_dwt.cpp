#include "wavelet/mesh_dwt.hpp"

#include <map>

#include "core/convolve.hpp"
#include "core/kernels.hpp"

namespace wavehpc::wavelet {

namespace detail {

LevelRange level_range(const core::StripePartition& level0, std::size_t rank, int level) {
    LevelRange lr;
    lr.first = level0.first_row(rank) >> level;
    lr.count = level0.height(rank) >> level;
    return lr;
}

std::vector<std::size_t> guard_rows(const core::StripePartition& level0, std::size_t rank,
                                    int level, int taps, std::size_t level_rows,
                                    core::BoundaryMode mode) {
    const LevelRange lr = level_range(level0, rank, level);
    const std::size_t end = lr.first + lr.count;
    std::vector<std::size_t> rows;
    rows.reserve(static_cast<std::size_t>(std::max(0, taps - 2)));
    for (int j = 0; j < taps - 2; ++j) {
        const auto x = static_cast<std::ptrdiff_t>(end) + j;
        const std::size_t g = core::extend_index(x, level_rows, mode);
        rows.push_back(g < level_rows ? g : kNotARow);
    }
    return rows;
}

void row_pass(const core::ImageF& in, const core::FilterPair& fp,
              core::BoundaryMode mode, core::ImageF& low, core::ImageF& high) {
    // The simulator's coefficients are pinned to the convolve golden kernel
    // so its bit-compared artifacts stay stable regardless of the process
    // kernel selection (WAVEHPC_DWT_KERNEL).
    core::analyze_rows_range(in, fp, low, high, mode, core::DwtKernel::Convolve, 0,
                             in.rows());
}

void col_pass(const core::ImageF& low_ext, const core::ImageF& high_ext,
              const core::FilterPair& fp, core::ImageF& ll, core::DetailBands& bands) {
    // Output row k (stripe-local) reads extended rows 2k .. 2k+taps-1; the
    // outputs are freshly constructed (zero) stripes, as the fused convolve
    // accumulation requires.
    core::analyze_cols_ext_range(low_ext, high_ext, fp, ll, bands.lh, bands.hl,
                                 bands.hh, 0, ll.rows());
}

std::vector<float> pack_guard(const core::ImageF& low_rows, const core::ImageF& high_rows,
                              std::size_t my_first, std::span<const std::size_t> rows) {
    std::vector<float> out;
    out.reserve(rows.size() * 2 * low_rows.cols());
    for (std::size_t g : rows) {
        const std::size_t local = g - my_first;
        const auto l = low_rows.row(local);
        const auto h = high_rows.row(local);
        out.insert(out.end(), l.begin(), l.end());
        out.insert(out.end(), h.begin(), h.end());
    }
    return out;
}

}  // namespace detail

namespace {

using detail::kNotARow;
using detail::LevelRange;
using detail::pack_guard;

constexpr int kTagScatter = 1;
constexpr int kTagHaloBase = 8;          // + level
constexpr int kTagGatherDetailBase = 64;  // + level
constexpr int kTagGatherApprox = 128;

/// Owner of a level-`level` image row, via the level-0 partition (stripe
/// boundaries are divisible by 2^levels, so this is exact).
std::size_t owner_of(const core::StripePartition& level0, std::size_t level_row,
                     int level) {
    return level0.owner(level_row << level);
}

struct NodeScratch {
    core::ImageF current;                       // my stripe of the running LL
    std::vector<core::DetailBands> details;     // my stripes, finest first
};

}  // namespace

MeshDwtResult mesh_decompose(mesh::Machine& machine, const core::ImageF& img,
                             const core::FilterPair& fp, const MeshDwtConfig& cfg,
                             std::size_t nprocs,
                             const core::SequentialCostModel& compute_model) {
    core::validate_decomposition_request(img.rows(), img.cols(), cfg.levels);
    const std::size_t granularity = std::size_t{1} << cfg.levels;
    const core::StripePartition part0(img.rows(), nprocs, granularity);

    const auto placement2 =
        core::make_placement(nprocs, machine.profile().topo.sx(), cfg.mapping);
    std::vector<mesh::Coord3> placement;
    placement.reserve(nprocs);
    for (auto c : placement2) placement.push_back({c.x, c.y, 0});

    const int taps = fp.taps();
    MeshDwtResult result;
    result.pyramid.levels.resize(static_cast<std::size_t>(cfg.levels));
    for (int k = 0; k < cfg.levels; ++k) {
        const std::size_t r2 = img.rows() >> (k + 1);
        const std::size_t c2 = img.cols() >> (k + 1);
        auto& d = result.pyramid.levels[static_cast<std::size_t>(k)];
        d.lh = core::ImageF(r2, c2);
        d.hl = core::ImageF(r2, c2);
        d.hh = core::ImageF(r2, c2);
    }
    result.pyramid.approx =
        core::ImageF(img.rows() >> cfg.levels, img.cols() >> cfg.levels);

    const auto body = [&](mesh::NodeCtx& ctx) {
        const auto me = static_cast<std::size_t>(ctx.rank());
        const auto p = static_cast<std::size_t>(ctx.nprocs());
        NodeScratch ns;

        // ------------------------------------------------ stripe scatter
        const LevelRange own0 = detail::level_range(part0, me, 0);
        if (cfg.scatter_gather) {
            if (me == 0) {
                for (std::size_t i = 1; i < p; ++i) {
                    const LevelRange lr = detail::level_range(part0, i, 0);
                    const core::ImageF block = img.sub(lr.first, 0, lr.count, img.cols());
                    ctx.send_span<float>(kTagScatter, static_cast<int>(i), block.flat());
                }
                ns.current = img.sub(own0.first, 0, own0.count, img.cols());
            } else {
                auto data = ctx.recv_vector<float>(kTagScatter, 0);
                ns.current = core::ImageF(own0.count, img.cols(), std::move(data));
            }
        } else {
            ns.current = img.sub(own0.first, 0, own0.count, img.cols());
        }

        // -------------------------------------------- decomposition levels
        for (int level = 0; level < cfg.levels; ++level) {
            const std::size_t level_rows = img.rows() >> level;
            const std::size_t level_cols = img.cols() >> level;
            const LevelRange lr = detail::level_range(part0, me, level);
            const std::size_t h = lr.count;
            const std::size_t half_c = level_cols / 2;

            // Row pass: fully local under striping (figure 3).
            core::ImageF low_rows(h, half_c);
            core::ImageF high_rows(h, half_c);
            detail::row_pass(ns.current, fp, cfg.mode, low_rows, high_rows);
            const std::size_t row_outputs = h * level_cols;  // both bands
            ctx.compute(compute_model.seconds(row_outputs,
                                              row_outputs * static_cast<std::size_t>(taps)));

            // Guard-zone exchange on the row-pass outputs (figure 3: south
            // neighbour only; wrap/reflection handled per boundary mode).
            // Send whatever rows other ranks need from me ...
            for (std::size_t j = 0; j < p; ++j) {
                if (j == me) continue;
                const auto needed =
                    detail::guard_rows(part0, j, level, taps, level_rows, cfg.mode);
                std::vector<std::size_t> mine;
                for (std::size_t g : needed) {
                    if (g != kNotARow && g >= lr.first && g < lr.first + h) {
                        mine.push_back(g);
                    }
                }
                if (mine.empty()) continue;
                const auto payload = pack_guard(low_rows, high_rows, lr.first, mine);
                // Packing the guard zone is parallelization redundancy.
                ctx.compute_redundant(
                    compute_model.per_output() * static_cast<double>(payload.size()));
                ctx.send_span<float>(kTagHaloBase + level, static_cast<int>(j),
                                     std::span<const float>(payload));
            }
            // ... and collect what I need, grouped by owner.
            const auto needed =
                detail::guard_rows(part0, me, level, taps, level_rows, cfg.mode);
            std::map<std::size_t, std::vector<float>> from_owner;
            std::map<std::size_t, std::size_t> cursor;
            for (std::size_t g : needed) {
                if (g == kNotARow) continue;
                const std::size_t o = owner_of(part0, g, level);
                if (o == me) continue;
                if (from_owner.find(o) == from_owner.end()) {
                    from_owner[o] =
                        ctx.recv_vector<float>(kTagHaloBase + level, static_cast<int>(o));
                    cursor[o] = 0;
                }
            }

            // Assemble the extended (stripe + guard) band images.
            const std::size_t guard = needed.size();
            core::ImageF low_ext(h + guard, half_c, 0.0F);
            core::ImageF high_ext(h + guard, half_c, 0.0F);
            low_ext.paste(low_rows, 0, 0);
            high_ext.paste(high_rows, 0, 0);
            for (std::size_t t = 0; t < guard; ++t) {
                const std::size_t g = needed[t];
                if (g == kNotARow) continue;  // ZeroPad: stays zero
                auto ldst = low_ext.row(h + t);
                auto hdst = high_ext.row(h + t);
                if (g >= lr.first && g < lr.first + h) {
                    const auto lsrc = low_rows.row(g - lr.first);
                    const auto hsrc = high_rows.row(g - lr.first);
                    std::copy(lsrc.begin(), lsrc.end(), ldst.begin());
                    std::copy(hsrc.begin(), hsrc.end(), hdst.begin());
                } else {
                    const std::size_t o = owner_of(part0, g, level);
                    auto& buf = from_owner.at(o);
                    std::size_t& cur = cursor.at(o);
                    if ((cur + 2) * half_c > buf.size()) {
                        throw std::logic_error("mesh_decompose: guard underflow");
                    }
                    std::copy_n(buf.begin() + static_cast<std::ptrdiff_t>(cur * half_c),
                                half_c, ldst.begin());
                    std::copy_n(
                        buf.begin() + static_cast<std::ptrdiff_t>((cur + 1) * half_c),
                        half_c, hdst.begin());
                    cur += 2;
                }
            }
            // Unpacking cost mirrors the packing cost.
            ctx.compute_redundant(compute_model.per_output() *
                                  static_cast<double>(2 * guard * half_c));

            // Column pass on the extended stripes.
            const std::size_t out_h = h / 2;
            core::ImageF ll(out_h, half_c);
            core::DetailBands bands;
            bands.lh = core::ImageF(out_h, half_c);
            bands.hl = core::ImageF(out_h, half_c);
            bands.hh = core::ImageF(out_h, half_c);
            detail::col_pass(low_ext, high_ext, fp, ll, bands);
            const std::size_t col_outputs = 4 * out_h * half_c;
            ctx.compute(compute_model.seconds(
                col_outputs, col_outputs * static_cast<std::size_t>(taps)));
            // Fixed per-level setup (buffer and subband bookkeeping).
            ctx.compute(compute_model.per_level());

            ns.details.push_back(std::move(bands));
            ns.current = std::move(ll);
        }

        // --------------------------------------------------- pyramid gather
        if (!cfg.scatter_gather && me != 0) return;
        const auto paste_bands = [&](std::size_t rank, int level,
                                     const core::DetailBands& b) {
            const LevelRange lr = detail::level_range(part0, rank, level);
            auto& dst = result.pyramid.levels[static_cast<std::size_t>(level)];
            dst.lh.paste(b.lh, lr.first / 2, 0);
            dst.hl.paste(b.hl, lr.first / 2, 0);
            dst.hh.paste(b.hh, lr.first / 2, 0);
        };
        if (me == 0) {
            for (int level = 0; level < cfg.levels; ++level) {
                paste_bands(0, level, ns.details[static_cast<std::size_t>(level)]);
            }
            const LevelRange lr0 = detail::level_range(part0, 0, cfg.levels);
            result.pyramid.approx.paste(ns.current, lr0.first, 0);
            if (!cfg.scatter_gather) return;
            for (std::size_t i = 1; i < p; ++i) {
                for (int level = 0; level < cfg.levels; ++level) {
                    const LevelRange lr = detail::level_range(part0, i, level);
                    const std::size_t out_h = lr.count / 2;
                    const std::size_t half_c = (img.cols() >> level) / 2;
                    const auto data = ctx.recv_vector<float>(kTagGatherDetailBase + level,
                                                             static_cast<int>(i));
                    if (data.size() != 3 * out_h * half_c) {
                        throw std::logic_error("mesh_decompose: bad gather payload");
                    }
                    core::DetailBands b;
                    const auto slice = [&](std::size_t idx) {
                        return core::ImageF(
                            out_h, half_c,
                            std::vector<float>(
                                data.begin() +
                                    static_cast<std::ptrdiff_t>(idx * out_h * half_c),
                                data.begin() + static_cast<std::ptrdiff_t>(
                                                   (idx + 1) * out_h * half_c)));
                    };
                    b.lh = slice(0);
                    b.hl = slice(1);
                    b.hh = slice(2);
                    paste_bands(i, level, b);
                }
                const LevelRange lra = detail::level_range(part0, i, cfg.levels);
                const auto adata =
                    ctx.recv_vector<float>(kTagGatherApprox, static_cast<int>(i));
                result.pyramid.approx.paste(
                    core::ImageF(lra.count, img.cols() >> cfg.levels,
                                 std::vector<float>(adata.begin(), adata.end())),
                    lra.first, 0);
            }
        } else if (cfg.scatter_gather) {
            for (int level = 0; level < cfg.levels; ++level) {
                const auto& b = ns.details[static_cast<std::size_t>(level)];
                std::vector<float> payload;
                payload.reserve(3 * b.lh.size());
                payload.insert(payload.end(), b.lh.flat().begin(), b.lh.flat().end());
                payload.insert(payload.end(), b.hl.flat().begin(), b.hl.flat().end());
                payload.insert(payload.end(), b.hh.flat().begin(), b.hh.flat().end());
                ctx.send_span<float>(kTagGatherDetailBase + level, 0,
                                     std::span<const float>(payload));
            }
            ctx.send_span<float>(kTagGatherApprox, 0, ns.current.flat());
        }
    };

    result.run = machine.run(nprocs, placement, body);
    result.seconds = result.run.makespan;
    return result;
}

}  // namespace wavehpc::wavelet
