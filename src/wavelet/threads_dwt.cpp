#include "wavelet/threads_dwt.hpp"

#include "core/convolve.hpp"

namespace wavehpc::wavelet {

namespace {

void parallel_rows(const core::ImageF& in, std::span<const float> f, core::ImageF& out,
                   core::BoundaryMode mode, runtime::ThreadPool& pool) {
    out = core::ImageF(in.rows(), in.cols() / 2);
    pool.parallel_for(0, in.rows(), [&](std::size_t rb, std::size_t re) {
        for (std::size_t r = rb; r < re; ++r) {
            core::convolve_decimate_1d(in.row(r), f, out.row(r), mode);
        }
    });
}

void parallel_cols(const core::ImageF& in, std::span<const float> f, core::ImageF& out,
                   core::BoundaryMode mode, runtime::ThreadPool& pool) {
    const std::size_t half = in.rows() / 2;
    const std::size_t taps = f.size();
    out = core::ImageF(half, in.cols());
    pool.parallel_for(0, half, [&](std::size_t kb, std::size_t ke) {
        for (std::size_t k = kb; k < ke; ++k) {
            auto dst = out.row(k);
            for (auto& v : dst) v = 0.0F;
            for (std::size_t n = 0; n < taps; ++n) {
                const std::size_t idx = core::extend_index(
                    static_cast<std::ptrdiff_t>(2 * k + n), in.rows(), mode);
                if (idx >= in.rows()) continue;
                const float w = f[n];
                const auto src = in.row(idx);
                for (std::size_t c = 0; c < in.cols(); ++c) dst[c] += w * src[c];
            }
        }
    });
}

}  // namespace

core::ImageF reconstruct_parallel(const core::Pyramid& pyr, const core::FilterPair& fp,
                                  runtime::ThreadPool& pool) {
    if (pyr.depth() == 0) {
        throw std::invalid_argument("reconstruct_parallel: empty pyramid");
    }
    core::ImageF current = pyr.approx;
    for (std::size_t lvl = pyr.depth(); lvl-- > 0;) {
        const auto& d = pyr.levels[lvl];
        const std::size_t half_r = current.rows();
        const std::size_t half_c = current.cols();

        // Column synthesis, split over output rows.
        core::ImageF low_rows(2 * half_r, half_c);
        core::ImageF high_rows(2 * half_r, half_c);
        pool.parallel_for(0, 2 * half_r, [&](std::size_t mb, std::size_t me) {
            for (std::size_t m = mb; m < me; ++m) {
                core::synthesize_col_row(
                    m, half_r, fp.low(), fp.high(),
                    [&](std::size_t k) { return current.row(k); },
                    [&](std::size_t k) { return d.lh.row(k); }, low_rows.row(m));
                core::synthesize_col_row(
                    m, half_r, fp.low(), fp.high(),
                    [&](std::size_t k) { return d.hl.row(k); },
                    [&](std::size_t k) { return d.hh.row(k); }, high_rows.row(m));
            }
        });

        // Row synthesis, split over rows (each row independent).
        core::ImageF out(2 * half_r, 2 * half_c);
        pool.parallel_for(0, 2 * half_r, [&](std::size_t rb, std::size_t re) {
            for (std::size_t r = rb; r < re; ++r) {
                // Reuse the sequential kernel on a single-row view.
                core::ImageF lo(1, half_c);
                core::ImageF hi(1, half_c);
                std::copy(low_rows.row(r).begin(), low_rows.row(r).end(),
                          lo.row(0).begin());
                std::copy(high_rows.row(r).begin(), high_rows.row(r).end(),
                          hi.row(0).begin());
                core::ImageF line(1, 2 * half_c);
                core::synthesize_rows(lo, hi, fp.low(), fp.high(), line);
                std::copy(line.row(0).begin(), line.row(0).end(), out.row(r).begin());
            }
        });
        current = std::move(out);
    }
    return current;
}

core::Pyramid decompose_parallel(const core::ImageF& img, const core::FilterPair& fp,
                                 int levels, core::BoundaryMode mode,
                                 runtime::ThreadPool& pool) {
    core::validate_decomposition_request(img.rows(), img.cols(), levels);
    core::Pyramid pyr;
    pyr.levels.reserve(static_cast<std::size_t>(levels));
    core::ImageF current = img;
    core::ImageF low_rows;
    core::ImageF high_rows;
    for (int k = 0; k < levels; ++k) {
        parallel_rows(current, fp.low(), low_rows, mode, pool);
        parallel_rows(current, fp.high(), high_rows, mode, pool);
        core::DetailBands d;
        core::ImageF ll;
        parallel_cols(low_rows, fp.low(), ll, mode, pool);
        parallel_cols(low_rows, fp.high(), d.lh, mode, pool);
        parallel_cols(high_rows, fp.low(), d.hl, mode, pool);
        parallel_cols(high_rows, fp.high(), d.hh, mode, pool);
        pyr.levels.push_back(std::move(d));
        current = std::move(ll);
    }
    pyr.approx = std::move(current);
    return pyr;
}

}  // namespace wavehpc::wavelet
