#include "wavelet/threads_dwt.hpp"

#include <algorithm>

#include "core/convolve.hpp"

namespace wavehpc::wavelet {

namespace {

// Column-tile width (floats) for the fused column sweep: per tile the inner
// loops touch 4 output slices + 2 source slices, 6 * 512 * 4 B = 12 KiB,
// comfortably inside L1 alongside the filter taps.
constexpr std::size_t kColTile = 512;

// Fused row analysis: each input row is read once and produces its low- and
// high-pass decimated rows together. Per output coefficient the taps
// accumulate in ascending order, exactly like convolve_decimate_1d (interior
// fast path included), so coefficients stay bit-identical to the sequential
// reference.
void fused_rows(const core::ImageF& in, const core::FilterPair& fp, core::ImageF& lo,
                core::ImageF& hi, core::BoundaryMode mode, runtime::ThreadPool& pool) {
    const std::size_t cols = in.cols();
    const std::size_t half = cols / 2;
    lo = core::ImageF(in.rows(), half);
    hi = core::ImageF(in.rows(), half);
    const auto fl = fp.low();
    const auto fh = fp.high();
    const std::size_t taps = fl.size();
    pool.parallel_for(0, in.rows(), [&](std::size_t rb, std::size_t re) {
        for (std::size_t r = rb; r < re; ++r) {
            const auto src = in.row(r);
            auto dlo = lo.row(r);
            auto dhi = hi.row(r);
            for (std::size_t k = 0; k < half; ++k) {
                float acc_lo = 0.0F;
                float acc_hi = 0.0F;
                if (2 * k + taps <= cols) {
                    const float* base = src.data() + 2 * k;
                    for (std::size_t n = 0; n < taps; ++n) {
                        acc_lo += fl[n] * base[n];
                        acc_hi += fh[n] * base[n];
                    }
                } else {
                    for (std::size_t n = 0; n < taps; ++n) {
                        const std::size_t idx = core::extend_index(
                            static_cast<std::ptrdiff_t>(2 * k + n), cols, mode);
                        if (idx >= cols) continue;  // ZeroPad outside
                        acc_lo += fl[n] * src[idx];
                        acc_hi += fh[n] * src[idx];
                    }
                }
                dlo[k] = acc_lo;
                dhi[k] = acc_hi;
            }
        }
    });
}

// One tap of the fused column accumulation. Kept as a standalone function
// because GCC only tracks __restrict reliably on parameters: the six streams
// (four destination subband rows, two source rows) are distinct allocations,
// and making that visible here is what lets the loop vectorize.
void accumulate_tap(float* __restrict dll, float* __restrict dlh, float* __restrict dhl,
                    float* __restrict dhh, const float* __restrict sl,
                    const float* __restrict sh, float wl, float wh, std::size_t c0,
                    std::size_t c1) {
    for (std::size_t c = c0; c < c1; ++c) {
        dll[c] += wl * sl[c];
        dlh[c] += wh * sl[c];
        dhl[c] += wl * sh[c];
        dhh[c] += wh * sh[c];
    }
}

// Fused column analysis: one cache-tiled sweep over the two row-filtered
// intermediates produces all four subbands of the level. Each source row is
// loaded once per tile and feeds both the low- and high-pass column filters
// (the seed ran four separate passes, reading every intermediate row twice
// each). Accumulation per output element runs over taps in ascending order,
// matching convolve_decimate_cols — bit-identical coefficients.
void fused_cols(const core::ImageF& low_rows, const core::ImageF& high_rows,
                const core::FilterPair& fp, core::ImageF& ll, core::DetailBands& d,
                core::BoundaryMode mode, runtime::ThreadPool& pool) {
    const std::size_t rows = low_rows.rows();
    const std::size_t cols = low_rows.cols();
    const std::size_t half = rows / 2;
    // Freshly constructed images are zero-filled, so the accumulations below
    // need no explicit clearing pass.
    ll = core::ImageF(half, cols);
    d.lh = core::ImageF(half, cols);
    d.hl = core::ImageF(half, cols);
    d.hh = core::ImageF(half, cols);
    const auto fl = fp.low();
    const auto fh = fp.high();
    const std::size_t taps = fl.size();
    pool.parallel_for(0, half, [&](std::size_t kb, std::size_t ke) {
        for (std::size_t k = kb; k < ke; ++k) {
            float* dll = ll.row(k).data();
            float* dlh = d.lh.row(k).data();
            float* dhl = d.hl.row(k).data();
            float* dhh = d.hh.row(k).data();
            for (std::size_t c0 = 0; c0 < cols; c0 += kColTile) {
                const std::size_t c1 = std::min(cols, c0 + kColTile);
                for (std::size_t n = 0; n < taps; ++n) {
                    const std::size_t idx = core::extend_index(
                        static_cast<std::ptrdiff_t>(2 * k + n), rows, mode);
                    if (idx >= rows) continue;  // ZeroPad sentinel
                    accumulate_tap(dll, dlh, dhl, dhh, low_rows.row(idx).data(),
                                   high_rows.row(idx).data(), fl[n], fh[n], c0, c1);
                }
            }
        }
    });
}

}  // namespace

core::ImageF reconstruct_parallel(const core::Pyramid& pyr, const core::FilterPair& fp,
                                  runtime::ThreadPool& pool) {
    if (pyr.depth() == 0) {
        throw std::invalid_argument("reconstruct_parallel: empty pyramid");
    }
    core::ImageF current = pyr.approx;
    for (std::size_t lvl = pyr.depth(); lvl-- > 0;) {
        const auto& d = pyr.levels[lvl];
        const std::size_t half_r = current.rows();
        const std::size_t half_c = current.cols();

        // Column synthesis, split over output rows.
        core::ImageF low_rows(2 * half_r, half_c);
        core::ImageF high_rows(2 * half_r, half_c);
        pool.parallel_for(0, 2 * half_r, [&](std::size_t mb, std::size_t me) {
            for (std::size_t m = mb; m < me; ++m) {
                core::synthesize_col_row(
                    m, half_r, fp.low(), fp.high(),
                    [&](std::size_t k) { return current.row(k); },
                    [&](std::size_t k) { return d.lh.row(k); }, low_rows.row(m));
                core::synthesize_col_row(
                    m, half_r, fp.low(), fp.high(),
                    [&](std::size_t k) { return d.hl.row(k); },
                    [&](std::size_t k) { return d.hh.row(k); }, high_rows.row(m));
            }
        });

        // Row synthesis, split over rows (each row independent). The
        // single-row scratch images live once per chunk, not per row — the
        // seed allocated three ImageFs for every output row.
        core::ImageF out(2 * half_r, 2 * half_c);
        pool.parallel_for(0, 2 * half_r, [&](std::size_t rb, std::size_t re) {
            core::ImageF lo(1, half_c);
            core::ImageF hi(1, half_c);
            core::ImageF line(1, 2 * half_c);
            for (std::size_t r = rb; r < re; ++r) {
                std::copy(low_rows.row(r).begin(), low_rows.row(r).end(),
                          lo.row(0).begin());
                std::copy(high_rows.row(r).begin(), high_rows.row(r).end(),
                          hi.row(0).begin());
                // synthesize_rows reuses `line` (shape already matches).
                core::synthesize_rows(lo, hi, fp.low(), fp.high(), line);
                std::copy(line.row(0).begin(), line.row(0).end(), out.row(r).begin());
            }
        });
        current = std::move(out);
    }
    return current;
}

core::Pyramid decompose_parallel(const core::ImageF& img, const core::FilterPair& fp,
                                 int levels, core::BoundaryMode mode,
                                 runtime::ThreadPool& pool) {
    core::validate_decomposition_request(img.rows(), img.cols(), levels);
    core::Pyramid pyr;
    pyr.levels.reserve(static_cast<std::size_t>(levels));
    core::ImageF current = img;
    core::ImageF low_rows;
    core::ImageF high_rows;
    for (int k = 0; k < levels; ++k) {
        fused_rows(current, fp, low_rows, high_rows, mode, pool);
        core::DetailBands d;
        core::ImageF ll;
        fused_cols(low_rows, high_rows, fp, ll, d, mode, pool);
        pyr.levels.push_back(std::move(d));
        current = std::move(ll);
    }
    pyr.approx = std::move(current);
    return pyr;
}

}  // namespace wavehpc::wavelet
