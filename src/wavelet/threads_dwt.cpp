#include "wavelet/threads_dwt.hpp"

#include <algorithm>

#include "core/convolve.hpp"
#include "core/kernels.hpp"

namespace wavehpc::wavelet {

core::ImageF reconstruct_parallel(const core::Pyramid& pyr, const core::FilterPair& fp,
                                  runtime::ThreadPool& pool, core::BoundaryMode mode) {
    if (pyr.depth() == 0) {
        throw std::invalid_argument("reconstruct_parallel: empty pyramid");
    }
    core::ImageF current = pyr.approx;
    for (std::size_t lvl = pyr.depth(); lvl-- > 0;) {
        const auto& d = pyr.levels[lvl];
        const std::size_t half_r = current.rows();
        const std::size_t half_c = current.cols();

        // Column synthesis, split over output rows.
        core::ImageF low_rows(2 * half_r, half_c);
        core::ImageF high_rows(2 * half_r, half_c);
        pool.parallel_for(0, 2 * half_r, [&](std::size_t mb, std::size_t me) {
            for (std::size_t m = mb; m < me; ++m) {
                core::synthesize_col_row(
                    m, half_r, fp.low(), fp.high(),
                    [&](std::size_t k) { return current.row(k); },
                    [&](std::size_t k) { return d.lh.row(k); }, low_rows.row(m), mode);
                core::synthesize_col_row(
                    m, half_r, fp.low(), fp.high(),
                    [&](std::size_t k) { return d.hl.row(k); },
                    [&](std::size_t k) { return d.hh.row(k); }, high_rows.row(m), mode);
            }
        });

        // Row synthesis, split over rows (each row independent). The
        // single-row scratch images live once per chunk, not per row — the
        // seed allocated three ImageFs for every output row.
        core::ImageF out(2 * half_r, 2 * half_c);
        pool.parallel_for(0, 2 * half_r, [&](std::size_t rb, std::size_t re) {
            core::ImageF lo(1, half_c);
            core::ImageF hi(1, half_c);
            core::ImageF line(1, 2 * half_c);
            for (std::size_t r = rb; r < re; ++r) {
                std::copy(low_rows.row(r).begin(), low_rows.row(r).end(),
                          lo.row(0).begin());
                std::copy(high_rows.row(r).begin(), high_rows.row(r).end(),
                          hi.row(0).begin());
                // synthesize_rows reuses `line` (shape already matches).
                core::synthesize_rows(lo, hi, fp.low(), fp.high(), line, mode);
                std::copy(line.row(0).begin(), line.row(0).end(), out.row(r).begin());
            }
        });
        current = std::move(out);
    }
    return current;
}

core::Pyramid decompose_parallel(const core::ImageF& img, const core::FilterPair& fp,
                                 int levels, core::BoundaryMode mode,
                                 runtime::ThreadPool& pool, core::DwtKernel kernel) {
    core::validate_decomposition_request(img.rows(), img.cols(), levels);
    kernel = core::resolve_dwt_kernel(kernel, fp);  // resolve once for all levels
    core::Pyramid pyr;
    pyr.levels.reserve(static_cast<std::size_t>(levels));
    core::ImageF current = img;
    for (int k = 0; k < levels; ++k) {
        const std::size_t half_r = current.rows() / 2;
        const std::size_t half_c = current.cols() / 2;
        core::ImageF low_rows(current.rows(), half_c);
        core::ImageF high_rows(current.rows(), half_c);
        pool.parallel_for(0, current.rows(), [&](std::size_t rb, std::size_t re) {
            core::analyze_rows_range(current, fp, low_rows, high_rows, mode, kernel,
                                     rb, re);
        });

        // Freshly constructed images are zero-filled, so the convolve
        // kernel's accumulation needs no explicit clearing pass.
        core::DetailBands d;
        core::ImageF ll(half_r, half_c);
        d.lh = core::ImageF(half_r, half_c);
        d.hl = core::ImageF(half_r, half_c);
        d.hh = core::ImageF(half_r, half_c);
        pool.parallel_for(0, half_r, [&](std::size_t kb, std::size_t ke) {
            core::analyze_cols_range(low_rows, high_rows, fp, ll, d.lh, d.hl, d.hh,
                                     mode, kernel, kb, ke);
        });
        pyr.levels.push_back(std::move(d));
        current = std::move(ll);
    }
    pyr.approx = std::move(current);
    return pyr;
}

}  // namespace wavehpc::wavelet
