#include "wavelet/threads_dwt.hpp"

#include <algorithm>

#include "core/convolve.hpp"
#include "core/kernels.hpp"

namespace wavehpc::wavelet {

core::ImageF reconstruct_parallel(const core::Pyramid& pyr, const core::FilterPair& fp,
                                  runtime::ThreadPool& pool, core::BoundaryMode mode) {
    if (pyr.depth() == 0) {
        throw std::invalid_argument("reconstruct_parallel: empty pyramid");
    }
    core::ImageF current = pyr.approx;
    for (std::size_t lvl = pyr.depth(); lvl-- > 0;) {
        const auto& d = pyr.levels[lvl];
        const std::size_t half_r = current.rows();
        const std::size_t half_c = current.cols();

        // Column synthesis, split over output rows.
        core::ImageF low_rows(2 * half_r, half_c);
        core::ImageF high_rows(2 * half_r, half_c);
        pool.parallel_for(0, 2 * half_r, [&](std::size_t mb, std::size_t me) {
            for (std::size_t m = mb; m < me; ++m) {
                core::synthesize_col_row(
                    m, half_r, fp.low(), fp.high(),
                    [&](std::size_t k) { return current.row(k); },
                    [&](std::size_t k) { return d.lh.row(k); }, low_rows.row(m), mode);
                core::synthesize_col_row(
                    m, half_r, fp.low(), fp.high(),
                    [&](std::size_t k) { return d.hl.row(k); },
                    [&](std::size_t k) { return d.hh.row(k); }, high_rows.row(m), mode);
            }
        });

        // Row synthesis, split over rows (each row independent). The
        // single-row scratch images live once per chunk, not per row — the
        // seed allocated three ImageFs for every output row.
        core::ImageF out(2 * half_r, 2 * half_c);
        pool.parallel_for(0, 2 * half_r, [&](std::size_t rb, std::size_t re) {
            core::ImageF lo(1, half_c);
            core::ImageF hi(1, half_c);
            core::ImageF line(1, 2 * half_c);
            for (std::size_t r = rb; r < re; ++r) {
                std::copy(low_rows.row(r).begin(), low_rows.row(r).end(),
                          lo.row(0).begin());
                std::copy(high_rows.row(r).begin(), high_rows.row(r).end(),
                          hi.row(0).begin());
                // synthesize_rows reuses `line` (shape already matches).
                core::synthesize_rows(lo, hi, fp.low(), fp.high(), line, mode);
                std::copy(line.row(0).begin(), line.row(0).end(), out.row(r).begin());
            }
        });
        current = std::move(out);
    }
    return current;
}

core::Pyramid decompose_parallel(const core::ImageF& img, const core::FilterPair& fp,
                                 int levels, core::BoundaryMode mode,
                                 runtime::ThreadPool& pool, core::DwtKernel kernel) {
    // A batch of one: identical range splits (parallel_for over [0, rows)),
    // identical kernel calls, hence bit-identical to the historical
    // unbatched loop.
    auto pyrs = decompose_batch({&img}, fp, levels, mode, &pool, kernel, nullptr);
    return std::move(pyrs.front());
}

std::vector<core::Pyramid> decompose_batch(
    const std::vector<const core::ImageF*>& images, const core::FilterPair& fp,
    int levels, core::BoundaryMode mode, runtime::ThreadPool* pool,
    core::DwtKernel kernel, core::FloatBufferSource* buffers) {
    const std::size_t batch = images.size();
    if (batch == 0) return {};
    for (const core::ImageF* im : images) {
        if (im == nullptr) {
            throw std::invalid_argument("decompose_batch: null image");
        }
        if (im->rows() != images.front()->rows() ||
            im->cols() != images.front()->cols()) {
            throw std::invalid_argument("decompose_batch: images differ in shape");
        }
    }
    core::validate_decomposition_request(images.front()->rows(),
                                         images.front()->cols(), levels);
    kernel = core::resolve_dwt_kernel(kernel, fp);  // resolve once for all levels
    core::HeapBufferSource heap;
    core::FloatBufferSource& src = buffers != nullptr ? *buffers : heap;
    // Only the convolve column pass accumulates into its outputs; row and
    // lifting passes write every element and take their buffers dirty.
    const bool zero_cols = kernel == core::DwtKernel::Convolve;

    std::vector<core::Pyramid> out(batch);
    for (auto& p : out) p.levels.reserve(static_cast<std::size_t>(levels));
    std::vector<core::ImageF> current(batch);  // empty at level 0: inputs read in place
    std::vector<core::ImageF> low_rows(batch);
    std::vector<core::ImageF> high_rows(batch);

    std::size_t rows = images.front()->rows();
    std::size_t cols = images.front()->cols();
    for (int lvl = 0; lvl < levels; ++lvl) {
        const std::size_t half_r = rows / 2;
        const std::size_t half_c = cols / 2;
        for (std::size_t b = 0; b < batch; ++b) {
            low_rows[b] = core::obtain_image(src, rows, half_c, false);
            high_rows[b] = core::obtain_image(src, rows, half_c, false);
        }
        // One fused row sweep over the global index space [0, batch*rows):
        // global index g addresses row g%rows of image g/rows. A chunk
        // spanning an image seam simply issues one range call per image.
        auto row_sweep = [&](std::size_t g0, std::size_t g1) {
            std::size_t b = g0 / rows;
            std::size_t r = g0 % rows;
            while (g0 < g1) {
                const std::size_t take = std::min(rows - r, g1 - g0);
                const core::ImageF& in = lvl == 0 ? *images[b] : current[b];
                core::analyze_rows_range(in, fp, low_rows[b], high_rows[b], mode,
                                         kernel, r, r + take);
                g0 += take;
                ++b;
                r = 0;
            }
        };
        if (pool != nullptr) {
            pool->parallel_for(0, batch * rows, row_sweep);
        } else {
            row_sweep(0, batch * rows);
        }
        if (lvl > 0) {
            for (std::size_t b = 0; b < batch; ++b) {
                src.recycle(current[b].release_data());
            }
        }

        std::vector<core::ImageF> ll(batch);
        for (std::size_t b = 0; b < batch; ++b) {
            ll[b] = core::obtain_image(src, half_r, half_c, zero_cols);
            core::DetailBands d;
            d.lh = core::obtain_image(src, half_r, half_c, zero_cols);
            d.hl = core::obtain_image(src, half_r, half_c, zero_cols);
            d.hh = core::obtain_image(src, half_r, half_c, zero_cols);
            out[b].levels.push_back(std::move(d));
        }
        // One fused column sweep over [0, batch*half_r).
        auto col_sweep = [&](std::size_t g0, std::size_t g1) {
            std::size_t b = g0 / half_r;
            std::size_t k = g0 % half_r;
            while (g0 < g1) {
                const std::size_t take = std::min(half_r - k, g1 - g0);
                core::DetailBands& d = out[b].levels.back();
                core::analyze_cols_range(low_rows[b], high_rows[b], fp, ll[b], d.lh,
                                         d.hl, d.hh, mode, kernel, k, k + take);
                g0 += take;
                ++b;
                k = 0;
            }
        };
        if (pool != nullptr) {
            pool->parallel_for(0, batch * half_r, col_sweep);
        } else {
            col_sweep(0, batch * half_r);
        }
        for (std::size_t b = 0; b < batch; ++b) {
            src.recycle(low_rows[b].release_data());
            src.recycle(high_rows[b].release_data());
        }
        current = std::move(ll);
        rows = half_r;
        cols = half_c;
    }
    for (std::size_t b = 0; b < batch; ++b) {
        out[b].approx = std::move(current[b]);
    }
    return out;
}

}  // namespace wavehpc::wavelet
