#pragma once
// The paper's coarse-grain MIMD wavelet decomposition (section 4.2):
// striped domain decomposition, snake (or naive) placement on the mesh,
// per-level south guard-zone exchange, SPMD over the simulated machine.
//
// The node program does the real filtering arithmetic on real pixel data —
// the assembled pyramid is bit-compared against the sequential reference in
// tests — while virtual time is charged through the calibrated sequential
// cost model plus the machine's communication model.

#include <cstddef>
#include <span>
#include <vector>

#include "core/cost_model.hpp"
#include "core/dwt.hpp"
#include "core/stripe.hpp"
#include "mesh/machine.hpp"

namespace wavehpc::wavelet {

struct MeshDwtConfig {
    int levels = 1;
    core::BoundaryMode mode = core::BoundaryMode::Symmetric;
    core::MappingPolicy mapping = core::MappingPolicy::Snake;
    /// Include the initial stripe scatter from rank 0 and the final pyramid
    /// gather to rank 0 in the timed region (the paper times end-to-end
    /// decomposition of an image resident on one node).
    bool scatter_gather = true;
};

struct MeshDwtResult {
    core::Pyramid pyramid;          ///< assembled at rank 0
    double seconds = 0.0;           ///< virtual makespan
    mesh::Machine::RunResult run;   ///< per-node stats, contention, messages
};

/// Decompose `img` on `nprocs` ranks of `machine`, charging computation via
/// `compute_model`. Throws std::invalid_argument for malformed requests
/// (dimensions not divisible by 2^levels, too many ranks for the stripe
/// height, placement exceeding the mesh).
[[nodiscard]] MeshDwtResult mesh_decompose(mesh::Machine& machine, const core::ImageF& img,
                                           const core::FilterPair& fp,
                                           const MeshDwtConfig& cfg, std::size_t nprocs,
                                           const core::SequentialCostModel& compute_model);

namespace detail {

/// Rows of the level-`level` image that rank `rank` owns, derived by exact
/// halving from the level-0 partition (granularity 2^levels keeps every
/// level's stripe height even).
struct LevelRange {
    std::size_t first = 0;
    std::size_t count = 0;
};

[[nodiscard]] LevelRange level_range(const core::StripePartition& level0,
                                     std::size_t rank, int level);

/// The guard-zone rows rank `rank` must read at `level`: window row indices
/// end .. end+taps-3 resolved through the boundary mode. Entries are global
/// row indices of the level image; kNotARow marks ZeroPad samples outside.
inline constexpr std::size_t kNotARow = static_cast<std::size_t>(-1);
[[nodiscard]] std::vector<std::size_t> guard_rows(const core::StripePartition& level0,
                                                  std::size_t rank, int level, int taps,
                                                  std::size_t level_rows,
                                                  core::BoundaryMode mode);

/// Row-pass filter every row of `in` into the pre-sized half-width band
/// images `low` and `high` (both in.rows() x in.cols()/2).
void row_pass(const core::ImageF& in, const core::FilterPair& fp,
              core::BoundaryMode mode, core::ImageF& low, core::ImageF& high);

/// Column-pass the extended (stripe + guard rows) band images into the four
/// pre-sized subband stripes; output extents are taken from `ll`. Shared by
/// the plain and resilient decompositions so their arithmetic — and thus
/// their coefficients — are identical bit for bit.
void col_pass(const core::ImageF& low_ext, const core::ImageF& high_ext,
              const core::FilterPair& fp, core::ImageF& ll,
              core::DetailBands& bands);

/// Pack guard rows (global level-row indices, all owned by the caller whose
/// stripe starts at `my_first`) of the two row-pass band images into one
/// flat payload: for each row, the L row then the H row.
[[nodiscard]] std::vector<float> pack_guard(const core::ImageF& low_rows,
                                            const core::ImageF& high_rows,
                                            std::size_t my_first,
                                            std::span<const std::size_t> rows);

}  // namespace detail

}  // namespace wavehpc::wavelet
