#pragma once
// Serial 3-D electrostatic Particle-In-Cell (Appendix B, section 2.3):
// Cloud-In-Cell charge deposition, FFT Poisson solve with wrap-around
// boundary conditions, central-difference field, leapfrog push with the
// adaptive time step that keeps particles within neighbouring cells.

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pic/fft.hpp"

namespace wavehpc::pic {

struct Particle {
    double x = 0.0, y = 0.0, z = 0.0;
    double vx = 0.0, vy = 0.0, vz = 0.0;
};
static_assert(sizeof(Particle) == 48);

/// n^3 periodic scalar field, z-major like fft_3d.
class Grid3 {
public:
    Grid3() = default;
    explicit Grid3(std::size_t n) : n_(n), data_(n * n * n, 0.0) {}

    [[nodiscard]] std::size_t n() const noexcept { return n_; }
    [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
    [[nodiscard]] double& at(std::size_t x, std::size_t y, std::size_t z) noexcept {
        return data_[(z * n_ + y) * n_ + x];
    }
    [[nodiscard]] double at(std::size_t x, std::size_t y, std::size_t z) const noexcept {
        return data_[(z * n_ + y) * n_ + x];
    }
    /// Periodic access with integer wrap.
    [[nodiscard]] double wrapped(std::ptrdiff_t x, std::ptrdiff_t y,
                                 std::ptrdiff_t z) const noexcept;
    [[nodiscard]] std::span<double> flat() noexcept { return data_; }
    [[nodiscard]] std::span<const double> flat() const noexcept { return data_; }
    void zero() { std::fill(data_.begin(), data_.end(), 0.0); }

private:
    std::size_t n_ = 0;
    std::vector<double> data_;
};

struct PicConfig {
    std::size_t grid_n = 32;  ///< the paper's m (32 or 64)
    double dt = 0.2;          ///< requested step; adapted down when fast
    double charge = 0.05;     ///< per-particle charge (q/m = 1)
};

/// Uniform thermal plasma with a small density perturbation; deterministic.
[[nodiscard]] std::vector<Particle> uniform_plasma(std::size_t np, std::size_t grid_n,
                                                   std::uint64_t seed = 11);

/// CIC deposition of charge * particles onto rho (rho is zeroed first).
void deposit_cic(const std::vector<Particle>& particles, double charge, Grid3& rho);

/// Solve lap(phi) = -rho spectrally (discrete 7-point Laplacian eigenvalues,
/// zero-mean / neutralizing background). Grid sizes must be powers of two.
void solve_poisson_fft(const Grid3& rho, Grid3& phi);

/// E = -grad(phi) by central differences, interpolated to the particle.
[[nodiscard]] std::array<double, 3> field_at(const Grid3& phi, double x, double y,
                                             double z);

/// Leapfrog push with wrap-around; returns the adapted dt actually used
/// (limits displacement to half a cell, the paper's "adaptive time-step
/// adjustment scheme ... to prevent the particles from moving any further
/// than neighboring grid cells").
double push_particles(std::vector<Particle>& particles, const Grid3& phi, double dt,
                      double vmax_global);

/// Max particle speed (for the global dt adaptation).
[[nodiscard]] double max_speed(const std::vector<Particle>& particles);

struct PicStepInfo {
    double used_dt = 0.0;
    double total_charge = 0.0;  ///< deposited charge (conservation check)
};

/// One full serial step on (particles, rho, phi).
PicStepInfo serial_pic_step(std::vector<Particle>& particles, Grid3& rho, Grid3& phi,
                            const PicConfig& cfg);

/// Calibrated per-iteration compute model:  t = per_particle * Np +
/// per_step_grid  (the grid term covers the FFT field solve; linear fits of
/// the report's Tables 1-2 reproduce all published points to ~1%).
struct PicCostModel {
    std::string machine;
    std::size_t grid_n = 0;
    double per_particle = 0.0;
    double per_step_grid = 0.0;
    /// Memory model for the paging effect (figure 9).
    double node_memory_bytes = 0.0;
    double paging_quadratic = 11.0;  ///< slowdown = 1 + q*(overcommit-1)^2

    [[nodiscard]] double seconds(std::size_t np) const noexcept {
        return per_particle * static_cast<double>(np) + per_step_grid;
    }
    [[nodiscard]] double resident_bytes(std::size_t np) const noexcept;
    /// Paging slowdown factor for np particles plus grids on one node.
    [[nodiscard]] double paging_factor(std::size_t np) const noexcept;
    /// Uniprocessor seconds including the paging effect.
    [[nodiscard]] double seconds_paged(std::size_t np) const noexcept {
        return seconds(np) * paging_factor(np);
    }

    [[nodiscard]] static PicCostModel paragon(std::size_t grid_n);
    [[nodiscard]] static PicCostModel t3d(std::size_t grid_n);
};

/// Report Tables 1-2 PIC serial points (seconds per iteration).
struct PicSerialReference {
    struct Point {
        std::size_t np;
        double seconds;
        bool extrapolated;
    };
    // Paragon, m=32: 1M "real" measurement hit paging (249.20 s).
    static constexpr Point paragon_m32[] = {
        {262144, 13.35, false}, {524288, 24.41, false}, {1048576, 45.93, true}};
    static constexpr double paragon_m32_paged_1m = 249.20;
    static constexpr Point paragon_m64[] = {
        {262144, 21.92, false}, {524288, 34.85, false}, {1048576, 58.31, true}};
    static constexpr double paragon_m64_paged_1m = 820.41;
    static constexpr Point t3d_m32[] = {
        {262144, 5.53, false}, {524288, 9.74, false}, {1048576, 18.34, false}};
    static constexpr Point t3d_m64[] = {
        {262144, 17.02, false}, {524288, 21.17, false}, {1048576, 29.49, false}};
};

}  // namespace wavehpc::pic
