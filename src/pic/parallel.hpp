#pragma once
// SPMD (worker-worker) parallel PIC on the mesh machine (Appendix B §2.3):
// particles split uniformly; the charge grid is made global by a vector
// global sum (the NX-gssum-style all-to-all or the authors' parallel-prefix
// replacement — the paper's ablation); the Poisson solve uses slab
// decomposition with an all-to-all transpose; the potential is made global
// again (ring allgather) before every rank pushes its own particles.

#include "mesh/machine.hpp"
#include "pic/serial.hpp"

namespace wavehpc::pic {

enum class GsumKind { Gssum, Prefix };

struct ParallelPicConfig {
    PicConfig pic;
    int steps = 1;
    GsumKind gsum = GsumKind::Prefix;
    /// Collect the final particle state at rank 0 (the verification path).
    /// Benchmarks turn this off so the makespan covers iterations only.
    bool gather_result = true;
};

struct ParallelPicResult {
    std::vector<Particle> particles;  ///< gathered, original order
    Grid3 phi;                        ///< final global potential
    double last_used_dt = 0.0;
    mesh::Machine::RunResult run;
    double seconds = 0.0;
};

/// Run `steps` PIC steps on `nprocs` ranks. Requires grid_n and nprocs to
/// be powers of two with nprocs <= grid_n. Matches the serial stepper to
/// floating-point reduction-order tolerance.
[[nodiscard]] ParallelPicResult parallel_pic(mesh::Machine& machine,
                                             std::vector<Particle> initial,
                                             const ParallelPicConfig& cfg,
                                             std::size_t nprocs,
                                             const PicCostModel& model);

}  // namespace wavehpc::pic
