#include "pic/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace wavehpc::pic {

namespace {

[[nodiscard]] bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

// Core radix-2 on an accessor; shared by the contiguous and strided paths.
template <typename At>
void fft_core(At at, std::size_t n, bool inverse) {
    if (!is_pow2(n)) throw std::invalid_argument("fft: size must be a power of two");
    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; (j & bit) != 0; bit >>= 1) j ^= bit;
        j ^= bit;
        if (i < j) std::swap(at(i), at(j));
    }
    const double sign = inverse ? 1.0 : -1.0;
    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double ang = sign * 2.0 * std::numbers::pi / static_cast<double>(len);
        const Complex wl(std::cos(ang), std::sin(ang));
        for (std::size_t i = 0; i < n; i += len) {
            Complex w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const Complex u = at(i + k);
                const Complex v = at(i + k + len / 2) * w;
                at(i + k) = u + v;
                at(i + k + len / 2) = u - v;
                w *= wl;
            }
        }
    }
    if (inverse) {
        const double scale = 1.0 / static_cast<double>(n);
        for (std::size_t i = 0; i < n; ++i) at(i) *= scale;
    }
}

}  // namespace

void fft_1d(std::span<Complex> data, bool inverse) {
    fft_core([&](std::size_t i) -> Complex& { return data[i]; }, data.size(), inverse);
}

void fft_1d_strided(std::span<Complex> data, std::size_t offset, std::size_t stride,
                    std::size_t count, bool inverse) {
    if (stride == 0 || (count > 0 && offset + (count - 1) * stride >= data.size())) {
        throw std::invalid_argument("fft_1d_strided: range exceeds data");
    }
    fft_core([&](std::size_t i) -> Complex& { return data[offset + i * stride]; },
             count, inverse);
}

void fft_3d(std::span<Complex> cube, std::size_t n, bool inverse) {
    if (cube.size() != n * n * n) {
        throw std::invalid_argument("fft_3d: size must be n^3");
    }
    // x lines
    for (std::size_t z = 0; z < n; ++z) {
        for (std::size_t y = 0; y < n; ++y) {
            fft_1d(cube.subspan((z * n + y) * n, n), inverse);
        }
    }
    // y lines
    for (std::size_t z = 0; z < n; ++z) {
        for (std::size_t x = 0; x < n; ++x) {
            fft_1d_strided(cube, z * n * n + x, n, n, inverse);
        }
    }
    // z lines
    for (std::size_t y = 0; y < n; ++y) {
        for (std::size_t x = 0; x < n; ++x) {
            fft_1d_strided(cube, y * n + x, n * n, n, inverse);
        }
    }
}

std::vector<Complex> dft_reference(std::span<const Complex> data, bool inverse) {
    const std::size_t n = data.size();
    std::vector<Complex> out(n);
    const double sign = inverse ? 1.0 : -1.0;
    for (std::size_t k = 0; k < n; ++k) {
        Complex acc(0.0, 0.0);
        for (std::size_t j = 0; j < n; ++j) {
            const double ang = sign * 2.0 * std::numbers::pi *
                               static_cast<double>(k * j % n) / static_cast<double>(n);
            acc += data[j] * Complex(std::cos(ang), std::sin(ang));
        }
        out[k] = inverse ? acc / static_cast<double>(n) : acc;
    }
    return out;
}

}  // namespace wavehpc::pic
