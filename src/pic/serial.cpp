#include "pic/serial.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace wavehpc::pic {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

double uniform01(std::uint64_t seed, std::uint64_t i) {
    return static_cast<double>(splitmix64(seed ^ (i * 0x2545f4914f6cdd1dULL)) >> 11) *
           (1.0 / 9007199254740992.0);
}

// Approximate normal via the sum of four uniforms (cheap, deterministic).
double thermal(std::uint64_t seed, std::uint64_t i) {
    double s = 0.0;
    for (std::uint64_t k = 0; k < 4; ++k) s += uniform01(seed, 4 * i + k);
    return (s - 2.0) * std::sqrt(3.0);  // unit variance
}

}  // namespace

double Grid3::wrapped(std::ptrdiff_t x, std::ptrdiff_t y, std::ptrdiff_t z) const noexcept {
    const auto sn = static_cast<std::ptrdiff_t>(n_);
    const auto w = [sn](std::ptrdiff_t v) {
        v %= sn;
        return static_cast<std::size_t>(v < 0 ? v + sn : v);
    };
    return at(w(x), w(y), w(z));
}

std::vector<Particle> uniform_plasma(std::size_t np, std::size_t grid_n,
                                     std::uint64_t seed) {
    if (np == 0 || grid_n == 0) {
        throw std::invalid_argument("uniform_plasma: empty request");
    }
    std::vector<Particle> out(np);
    const auto l = static_cast<double>(grid_n);
    for (std::size_t i = 0; i < np; ++i) {
        Particle& p = out[i];
        p.x = l * uniform01(seed, 6 * i + 0);
        // A weak sinusoidal density perturbation seeds plasma oscillation.
        p.x += 0.2 * std::sin(2.0 * std::numbers::pi * p.x / l);
        p.x = std::fmod(p.x + l, l);
        p.y = l * uniform01(seed, 6 * i + 1);
        p.z = l * uniform01(seed, 6 * i + 2);
        p.vx = 0.05 * thermal(seed ^ 0xaaULL, 3 * i + 0);
        p.vy = 0.05 * thermal(seed ^ 0xbbULL, 3 * i + 1);
        p.vz = 0.05 * thermal(seed ^ 0xccULL, 3 * i + 2);
    }
    return out;
}

void deposit_cic(const std::vector<Particle>& particles, double charge, Grid3& rho) {
    rho.zero();
    const std::size_t n = rho.n();
    const auto sn = static_cast<double>(n);
    for (const Particle& p : particles) {
        // Cell-centered CIC: weights from the fractional offset to the
        // lower grid point.
        const double gx = std::fmod(p.x + sn, sn);
        const double gy = std::fmod(p.y + sn, sn);
        const double gz = std::fmod(p.z + sn, sn);
        const auto ix = static_cast<std::size_t>(gx);
        const auto iy = static_cast<std::size_t>(gy);
        const auto iz = static_cast<std::size_t>(gz);
        const double fx = gx - static_cast<double>(ix);
        const double fy = gy - static_cast<double>(iy);
        const double fz = gz - static_cast<double>(iz);
        const std::size_t ix1 = (ix + 1) % n;
        const std::size_t iy1 = (iy + 1) % n;
        const std::size_t iz1 = (iz + 1) % n;
        const double wx[2] = {1.0 - fx, fx};
        const double wy[2] = {1.0 - fy, fy};
        const double wz[2] = {1.0 - fz, fz};
        const std::size_t xs[2] = {ix, ix1};
        const std::size_t ys[2] = {iy, iy1};
        const std::size_t zs[2] = {iz, iz1};
        for (int a = 0; a < 2; ++a) {
            for (int b = 0; b < 2; ++b) {
                for (int c = 0; c < 2; ++c) {
                    rho.at(xs[a], ys[b], zs[c]) += charge * wx[a] * wy[b] * wz[c];
                }
            }
        }
    }
}

void solve_poisson_fft(const Grid3& rho, Grid3& phi) {
    const std::size_t n = rho.n();
    std::vector<Complex> cube(rho.flat().begin(), rho.flat().end());
    fft_3d(cube, n, false);
    // Discrete 7-point Laplacian eigenvalues: lap = sum_axis 2 cos(2 pi k/n) - 2.
    std::vector<double> eig(n);
    for (std::size_t k = 0; k < n; ++k) {
        eig[k] = 2.0 * std::cos(2.0 * std::numbers::pi * static_cast<double>(k) /
                                static_cast<double>(n)) -
                 2.0;
    }
    for (std::size_t z = 0; z < n; ++z) {
        for (std::size_t y = 0; y < n; ++y) {
            for (std::size_t x = 0; x < n; ++x) {
                const double lam = eig[x] + eig[y] + eig[z];
                Complex& c = cube[(z * n + y) * n + x];
                // lap(phi) = -rho  =>  phi_k = rho_k / (-lam); k = 0 carries
                // the neutralizing background (mean potential pinned to 0).
                c = (lam == 0.0) ? Complex(0.0, 0.0) : c / (-lam);
            }
        }
    }
    fft_3d(cube, n, true);
    if (phi.n() != n) phi = Grid3(n);
    auto out = phi.flat();
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = cube[i].real();
}

std::array<double, 3> field_at(const Grid3& phi, double x, double y, double z) {
    const std::size_t n = phi.n();
    const auto sn = static_cast<double>(n);
    const double gx = std::fmod(x + sn, sn);
    const double gy = std::fmod(y + sn, sn);
    const double gz = std::fmod(z + sn, sn);
    const auto ix = static_cast<std::ptrdiff_t>(gx);
    const auto iy = static_cast<std::ptrdiff_t>(gy);
    const auto iz = static_cast<std::ptrdiff_t>(gz);
    const double fx = gx - static_cast<double>(ix);
    const double fy = gy - static_cast<double>(iy);
    const double fz = gz - static_cast<double>(iz);
    std::array<double, 3> e{0.0, 0.0, 0.0};
    for (int a = 0; a < 2; ++a) {
        for (int b = 0; b < 2; ++b) {
            for (int c = 0; c < 2; ++c) {
                const double w = (a != 0 ? fx : 1.0 - fx) * (b != 0 ? fy : 1.0 - fy) *
                                 (c != 0 ? fz : 1.0 - fz);
                const std::ptrdiff_t px = ix + a;
                const std::ptrdiff_t py = iy + b;
                const std::ptrdiff_t pz = iz + c;
                // E = -grad(phi), central differences (paper's
                // E_g = -(phi_{g+1} - phi_{g-1}) / 2).
                e[0] += w * (-(phi.wrapped(px + 1, py, pz) -
                               phi.wrapped(px - 1, py, pz)) / 2.0);
                e[1] += w * (-(phi.wrapped(px, py + 1, pz) -
                               phi.wrapped(px, py - 1, pz)) / 2.0);
                e[2] += w * (-(phi.wrapped(px, py, pz + 1) -
                               phi.wrapped(px, py, pz - 1)) / 2.0);
            }
        }
    }
    return e;
}

double max_speed(const std::vector<Particle>& particles) {
    double v2 = 0.0;
    for (const Particle& p : particles) {
        v2 = std::max(v2, p.vx * p.vx + p.vy * p.vy + p.vz * p.vz);
    }
    return std::sqrt(v2);
}

double push_particles(std::vector<Particle>& particles, const Grid3& phi, double dt,
                      double vmax_global) {
    const auto sn = static_cast<double>(phi.n());
    // Adaptive step: no particle may cross more than half a cell.
    double used = dt;
    if (vmax_global > 0.0) used = std::min(used, 0.5 / vmax_global);
    for (Particle& p : particles) {
        const auto e = field_at(phi, p.x, p.y, p.z);
        p.vx += used * e[0];
        p.vy += used * e[1];
        p.vz += used * e[2];
        p.x = std::fmod(p.x + used * p.vx + sn, sn);
        p.y = std::fmod(p.y + used * p.vy + sn, sn);
        p.z = std::fmod(p.z + used * p.vz + sn, sn);
    }
    return used;
}

PicStepInfo serial_pic_step(std::vector<Particle>& particles, Grid3& rho, Grid3& phi,
                            const PicConfig& cfg) {
    if (rho.n() != cfg.grid_n) rho = Grid3(cfg.grid_n);
    if (phi.n() != cfg.grid_n) phi = Grid3(cfg.grid_n);
    deposit_cic(particles, cfg.charge, rho);
    PicStepInfo info;
    for (double v : rho.flat()) info.total_charge += v;
    solve_poisson_fft(rho, phi);
    info.used_dt = push_particles(particles, phi, cfg.dt, max_speed(particles));
    return info;
}

double PicCostModel::resident_bytes(std::size_t np) const noexcept {
    // Particle records + six field-sized arrays (rho, phi, FFT scratch) +
    // a couple of MB of code/buffers.
    return static_cast<double>(np) * sizeof(Particle) +
           6.0 * static_cast<double>(grid_n * grid_n * grid_n) * 8.0 + 2.0e6;
}

double PicCostModel::paging_factor(std::size_t np) const noexcept {
    if (node_memory_bytes <= 0.0) return 1.0;
    const double ratio = resident_bytes(np) / node_memory_bytes;
    if (ratio <= 1.0) return 1.0;
    return 1.0 + paging_quadratic * (ratio - 1.0) * (ratio - 1.0);
}

namespace {

PicCostModel fit(std::string machine, std::size_t grid_n,
                 const PicSerialReference::Point (&pts)[3], double node_mem) {
    // Linear two-point fit through the first two (measured, unpaged)
    // points; the third published point doubles as a prediction check in
    // tests and benches.
    PicCostModel m;
    m.machine = std::move(machine);
    m.grid_n = grid_n;
    m.per_particle = (pts[1].seconds - pts[0].seconds) /
                     static_cast<double>(pts[1].np - pts[0].np);
    m.per_step_grid = pts[0].seconds - m.per_particle * static_cast<double>(pts[0].np);
    m.node_memory_bytes = node_mem;
    return m;
}

}  // namespace

PicCostModel PicCostModel::paragon(std::size_t grid_n) {
    switch (grid_n) {
        case 32:
            return fit("paragon-i860", 32, PicSerialReference::paragon_m32, 32.0e6);
        case 64:
            return fit("paragon-i860", 64, PicSerialReference::paragon_m64, 32.0e6);
        default:
            throw std::invalid_argument("PicCostModel::paragon: m must be 32 or 64");
    }
}

PicCostModel PicCostModel::t3d(std::size_t grid_n) {
    // T3D nodes: 16 MB less ~25% microkernel => ~12 MB usable per the
    // report; the published T3D runs never paged.
    switch (grid_n) {
        case 32:
            return fit("cray-t3d", 32, PicSerialReference::t3d_m32, 12.0e6);
        case 64:
            return fit("cray-t3d", 64, PicSerialReference::t3d_m64, 12.0e6);
        default:
            throw std::invalid_argument("PicCostModel::t3d: m must be 32 or 64");
    }
}

}  // namespace wavehpc::pic
