#include "pic/parallel.hpp"

#include <cmath>
#include <numbers>

#include "mesh/collectives.hpp"

namespace wavehpc::pic {

namespace {

constexpr int kTagTranspose = 10;
constexpr int kTagTransposeBack = 11;
constexpr int kTagAllgather = 12;
constexpr int kTagGatherParticles = 13;

[[nodiscard]] bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t chunk_first(std::size_t total, std::size_t parts, std::size_t rank) {
    return total * rank / parts;
}

// Cost of one element-wise add in the grid reductions, derived from the
// calibrated FFT term (~5 Ng log2 Ng flops per solve).
double per_grid_add(const PicCostModel& model) {
    const auto ng = static_cast<double>(model.grid_n * model.grid_n * model.grid_n);
    return model.per_step_grid / (5.0 * ng * std::log2(ng));
}

}  // namespace

ParallelPicResult parallel_pic(mesh::Machine& machine, std::vector<Particle> initial,
                               const ParallelPicConfig& cfg, std::size_t nprocs,
                               const PicCostModel& model) {
    const std::size_t n = cfg.pic.grid_n;
    if (!is_pow2(n) || !is_pow2(nprocs) || nprocs > n) {
        throw std::invalid_argument(
            "parallel_pic: grid_n and nprocs must be powers of two, nprocs <= grid_n");
    }
    if (model.grid_n != n) {
        throw std::invalid_argument("parallel_pic: cost model grid size mismatch");
    }
    const std::size_t np = initial.size();
    if (np < nprocs) throw std::invalid_argument("parallel_pic: fewer particles than ranks");

    ParallelPicResult result;
    result.particles.resize(np);
    std::vector<double> used_dt_slot(1, 0.0);

    const auto body = [&](mesh::NodeCtx& ctx) {
        const auto me = static_cast<std::size_t>(ctx.rank());
        const auto p = static_cast<std::size_t>(ctx.nprocs());
        const std::size_t nz = n / p;   // z-planes per rank (slab height)
        const std::size_t z0 = me * nz;
        const std::size_t x0 = me * nz;  // x-slab uses the same split

        const std::size_t my_first = chunk_first(np, p, me);
        const std::size_t my_count = chunk_first(np, p, me + 1) - my_first;
        std::vector<Particle> mine(initial.begin() + static_cast<std::ptrdiff_t>(my_first),
                                   initial.begin() +
                                       static_cast<std::ptrdiff_t>(my_first + my_count));

        Grid3 rho(n);
        Grid3 phi(n);
        std::vector<Complex> zslab(nz * n * n);
        std::vector<Complex> xslab(nz * n * n);

        std::vector<double> eig(n);
        for (std::size_t k = 0; k < n; ++k) {
            eig[k] = 2.0 * std::cos(2.0 * std::numbers::pi * static_cast<double>(k) /
                                    static_cast<double>(n)) -
                     2.0;
        }

        for (int step = 0; step < cfg.steps; ++step) {
            // ---- deposition (local particles, full local grid copy) ------
            deposit_cic(mine, cfg.pic.charge, rho);

            // ---- make the charge global: the gsum ablation ---------------
            // The per-element additions happen inside the global-sum call,
            // so (as in the report's instrumentation) they book as
            // communication time.
            if (cfg.gsum == GsumKind::Gssum) {
                mesh::gsum_gssum(ctx, rho.flat());
                ctx.charge_comm(per_grid_add(model) *
                                static_cast<double>((p - 1) * rho.size()));
            } else {
                mesh::gsum_prefix(ctx, rho.flat());
                const double rounds = (p > 1) ? std::ceil(std::log2(p)) + 1.0 : 0.0;
                ctx.charge_comm(per_grid_add(model) * rounds *
                                static_cast<double>(rho.size()));
            }

            // ---- slab Poisson solve --------------------------------------
            // Load my z-slab and 2-D transform each plane.
            for (std::size_t zl = 0; zl < nz; ++zl) {
                for (std::size_t y = 0; y < n; ++y) {
                    for (std::size_t x = 0; x < n; ++x) {
                        zslab[(zl * n + y) * n + x] = Complex(rho.at(x, y, z0 + zl), 0.0);
                    }
                }
            }
            const auto fft2d_planes = [&](std::vector<Complex>& slab, bool inverse) {
                for (std::size_t zl = 0; zl < nz; ++zl) {
                    for (std::size_t y = 0; y < n; ++y) {
                        fft_1d(std::span<Complex>(slab).subspan((zl * n + y) * n, n),
                               inverse);
                    }
                    for (std::size_t x = 0; x < n; ++x) {
                        fft_1d_strided(slab, zl * n * n + x, n, n, inverse);
                    }
                }
            };
            fft2d_planes(zslab, false);

            // Transpose z-slabs -> x-slabs. Block to rank s: x in s's range,
            // all y, my z range; packed (x_local, y, z_local), z fastest.
            const auto pack_block = [&](const std::vector<Complex>& slab,
                                        std::size_t s) {
                std::vector<Complex> buf(nz * n * nz);
                for (std::size_t xl = 0; xl < nz; ++xl) {
                    for (std::size_t y = 0; y < n; ++y) {
                        for (std::size_t zl = 0; zl < nz; ++zl) {
                            buf[(xl * n + y) * nz + zl] =
                                slab[(zl * n + y) * n + (s * nz + xl)];
                        }
                    }
                }
                return buf;
            };
            const auto unpack_block = [&](std::vector<Complex>& slab,
                                          const std::vector<Complex>& buf,
                                          std::size_t r) {
                for (std::size_t xl = 0; xl < nz; ++xl) {
                    for (std::size_t y = 0; y < n; ++y) {
                        for (std::size_t zl = 0; zl < nz; ++zl) {
                            slab[(xl * n + y) * n + (r * nz + zl)] =
                                buf[(xl * n + y) * nz + zl];
                        }
                    }
                }
            };
            const auto transpose = [&](std::vector<Complex>& from,
                                       std::vector<Complex>& to, int tag) {
                for (std::size_t s = 0; s < p; ++s) {
                    if (s == me) continue;
                    const auto buf = pack_block(from, s);
                    ctx.send_span<Complex>(tag, static_cast<int>(s),
                                           std::span<const Complex>(buf));
                }
                unpack_block(to, pack_block(from, me), me);
                for (std::size_t i = 1; i < p; ++i) {
                    int src = -1;
                    const auto buf =
                        ctx.recv_vector<Complex>(tag, mesh::kAnySource, &src);
                    unpack_block(to, buf, static_cast<std::size_t>(src));
                }
            };
            transpose(zslab, xslab, kTagTranspose);
            // Packing/unpacking the transpose blocks is parallelization
            // redundancy (a serial solver never rearranges the cube).
            ctx.compute_redundant(0.5 * per_grid_add(model) *
                                  static_cast<double>(2 * nz * n * n));

            // z-lines are contiguous in the x-slab layout.
            for (std::size_t xl = 0; xl < nz; ++xl) {
                for (std::size_t y = 0; y < n; ++y) {
                    fft_1d(std::span<Complex>(xslab).subspan((xl * n + y) * n, n),
                           false);
                }
            }
            // Spectral scale: lap(phi) = -rho.
            for (std::size_t xl = 0; xl < nz; ++xl) {
                for (std::size_t y = 0; y < n; ++y) {
                    for (std::size_t z = 0; z < n; ++z) {
                        const double lam = eig[x0 + xl] + eig[y] + eig[z];
                        Complex& c = xslab[(xl * n + y) * n + z];
                        c = (lam == 0.0) ? Complex(0.0, 0.0) : c / (-lam);
                    }
                }
            }
            for (std::size_t xl = 0; xl < nz; ++xl) {
                for (std::size_t y = 0; y < n; ++y) {
                    fft_1d(std::span<Complex>(xslab).subspan((xl * n + y) * n, n),
                           true);
                }
            }

            // Transpose back and finish the inverse 2-D transforms.
            // (pack/unpack swap roles: pack from x-slab by z-range.)
            const auto pack_back = [&](const std::vector<Complex>& slab,
                                       std::size_t s) {
                std::vector<Complex> buf(nz * n * nz);
                for (std::size_t zl = 0; zl < nz; ++zl) {
                    for (std::size_t y = 0; y < n; ++y) {
                        for (std::size_t xl = 0; xl < nz; ++xl) {
                            buf[(zl * n + y) * nz + xl] =
                                slab[(xl * n + y) * n + (s * nz + zl)];
                        }
                    }
                }
                return buf;
            };
            const auto unpack_back = [&](std::vector<Complex>& slab,
                                         const std::vector<Complex>& buf,
                                         std::size_t r) {
                for (std::size_t zl = 0; zl < nz; ++zl) {
                    for (std::size_t y = 0; y < n; ++y) {
                        for (std::size_t xl = 0; xl < nz; ++xl) {
                            slab[(zl * n + y) * n + (r * nz + xl)] =
                                buf[(zl * n + y) * nz + xl];
                        }
                    }
                }
            };
            for (std::size_t s = 0; s < p; ++s) {
                if (s == me) continue;
                const auto buf = pack_back(xslab, s);
                ctx.send_span<Complex>(kTagTransposeBack, static_cast<int>(s),
                                       std::span<const Complex>(buf));
            }
            unpack_back(zslab, pack_back(xslab, me), me);
            for (std::size_t i = 1; i < p; ++i) {
                int src = -1;
                const auto buf =
                    ctx.recv_vector<Complex>(kTagTransposeBack, mesh::kAnySource, &src);
                unpack_back(zslab, buf, static_cast<std::size_t>(src));
            }
            fft2d_planes(zslab, true);
            ctx.compute_redundant(0.5 * per_grid_add(model) *
                                  static_cast<double>(2 * nz * n * n));

            // My slab of the FFT work is 1/p of the calibrated grid term.
            ctx.compute(model.per_step_grid / static_cast<double>(p));

            // ---- make the potential global: ring allgather ---------------
            std::vector<double> block(nz * n * n);
            for (std::size_t zl = 0; zl < nz; ++zl) {
                for (std::size_t y = 0; y < n; ++y) {
                    for (std::size_t x = 0; x < n; ++x) {
                        block[(zl * n + y) * n + x] = zslab[(zl * n + y) * n + x].real();
                    }
                }
            }
            const auto install = [&](const std::vector<double>& blk, std::size_t owner) {
                for (std::size_t zl = 0; zl < nz; ++zl) {
                    for (std::size_t y = 0; y < n; ++y) {
                        for (std::size_t x = 0; x < n; ++x) {
                            phi.at(x, y, owner * nz + zl) = blk[(zl * n + y) * n + x];
                        }
                    }
                }
            };
            install(block, me);
            const auto next = static_cast<int>((me + 1) % p);
            std::size_t owner = me;
            for (std::size_t round = 1; round < p; ++round) {
                ctx.send_span<double>(kTagAllgather, next,
                                      std::span<const double>(block));
                block = ctx.recv_vector<double>(kTagAllgather,
                                                static_cast<int>((me + p - 1) % p));
                owner = (owner + p - 1) % p;
                install(block, owner);
            }

            // ---- adaptive dt + push (local particles, global field) ------
            const double vmax = mesh::gmax_prefix(ctx, max_speed(mine));
            const double used = push_particles(mine, phi, cfg.pic.dt, vmax);
            if (me == 0) used_dt_slot[0] = used;
            ctx.compute(model.per_particle * static_cast<double>(mine.size()));
        }

        // ---- gather final particles at rank 0 (verification path) --------
        if (!cfg.gather_result) {
            if (me == 0) result.phi = phi;
            return;
        }
        if (me == 0) {
            std::copy(mine.begin(), mine.end(),
                      result.particles.begin() + static_cast<std::ptrdiff_t>(my_first));
            for (std::size_t r = 1; r < p; ++r) {
                int src = -1;
                const auto got = ctx.recv_vector<Particle>(kTagGatherParticles,
                                                           mesh::kAnySource, &src);
                const std::size_t first =
                    chunk_first(np, p, static_cast<std::size_t>(src));
                std::copy(got.begin(), got.end(),
                          result.particles.begin() + static_cast<std::ptrdiff_t>(first));
            }
            result.phi = phi;
        } else {
            ctx.send_span<Particle>(kTagGatherParticles, 0,
                                    std::span<const Particle>(mine));
        }
    };

    result.run = machine.run(nprocs, body);
    result.seconds = result.run.makespan;
    result.last_used_dt = used_dt_slot[0];
    return result;
}

}  // namespace wavehpc::pic
