#pragma once
// Radix-2 complex FFT — the field-solver workhorse of the PIC substrate
// (the paper used "a Paragon 1-D FFT library routine"; we build our own).

#include <complex>
#include <span>
#include <vector>

namespace wavehpc::pic {

using Complex = std::complex<double>;

/// In-place iterative radix-2 FFT. `inverse` applies the conjugate kernel
/// and the 1/N scale. Throws unless the size is a power of two (and > 0).
void fft_1d(std::span<Complex> data, bool inverse);

/// Strided in-place transform: elements data[offset + i*stride].
void fft_1d_strided(std::span<Complex> data, std::size_t offset, std::size_t stride,
                    std::size_t count, bool inverse);

/// In-place 3-D FFT of an n^3 cube stored z-major: index (z*n + y)*n + x.
void fft_3d(std::span<Complex> cube, std::size_t n, bool inverse);

/// Reference O(N^2) DFT for tests.
[[nodiscard]] std::vector<Complex> dft_reference(std::span<const Complex> data,
                                                 bool inverse);

}  // namespace wavehpc::pic
