#include "nbody/model.hpp"

#include <cmath>
#include <mutex>
#include <stdexcept>

namespace wavehpc::nbody {

namespace {

// Stateless splitmix64 keeps the initial condition deterministic.
std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

double uniform01(std::uint64_t seed, std::uint64_t i) {
    return static_cast<double>(splitmix64(seed ^ (i * 0x2545f4914f6cdd1dULL)) >> 11) *
           (1.0 / 9007199254740992.0);
}

// One Plummer-like disk: radius ~ r0 / sqrt(u^{-2/3} - 1), circular motion.
void fill_galaxy(std::vector<Body>& bodies, std::size_t first, std::size_t count,
                 Vec2 center, Vec2 drift, double scale, std::uint64_t seed) {
    for (std::size_t i = 0; i < count; ++i) {
        const double u = std::max(1e-6, uniform01(seed, 3 * i));
        const double r = scale / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0 + 1e-9);
        const double phi = 2.0 * M_PI * uniform01(seed, 3 * i + 1);
        Body b;
        b.pos = {center.x + r * std::cos(phi), center.y + r * std::sin(phi)};
        // Roughly circular orbit in the enclosed-mass field, plus drift.
        const double v = std::sqrt(kG * static_cast<double>(count) * u /
                                   std::max(r, 1e-3));
        b.vel = {drift.x - v * std::sin(phi), drift.y + v * std::cos(phi)};
        b.mass = 1.0 + 0.1 * (uniform01(seed, 3 * i + 2) - 0.5);
        b.cost = 1.0;
        bodies[first + i] = b;
    }
}

}  // namespace

std::vector<Body> interacting_galaxies(std::size_t n, std::uint64_t seed) {
    if (n < 2) throw std::invalid_argument("interacting_galaxies: n must be >= 2");
    std::vector<Body> bodies(n);
    const std::size_t n1 = n / 2;
    fill_galaxy(bodies, 0, n1, {-40.0, 0.0}, {2.0, 0.5}, 8.0, seed);
    fill_galaxy(bodies, n1, n - n1, {40.0, 5.0}, {-2.0, -0.5}, 6.0, seed ^ 0xdeadULL);
    return bodies;
}

StepStats serial_step(std::vector<Body>& bodies, const SimConfig& cfg) {
    StepStats stats;
    QuadTree tree(bodies);
    tree.compute_centers_of_mass(bodies);
    stats.tree_steps = tree.build_steps();

    std::vector<Vec2> acc(bodies.size());
    for (std::uint32_t i = 0; i < bodies.size(); ++i) {
        std::uint64_t before = stats.interactions;
        acc[i] = tree.acceleration(bodies, bodies[i].pos, i, cfg.theta,
                                   &stats.interactions);
        bodies[i].cost = static_cast<double>(stats.interactions - before);
    }
    for (std::size_t i = 0; i < bodies.size(); ++i) {
        bodies[i].vel += cfg.dt * acc[i];
        bodies[i].pos += cfg.dt * bodies[i].vel;
    }
    return stats;
}

NbodyCostModel NbodyCostModel::calibrate(std::string machine,
                                         const StepStats& anchor_stats,
                                         std::size_t anchor_bodies,
                                         double anchor_seconds, double force_fraction,
                                         double tree_fraction) {
    if (anchor_stats.interactions == 0 || anchor_stats.tree_steps == 0 ||
        anchor_bodies == 0 || anchor_seconds <= 0.0 || force_fraction <= 0.0 ||
        tree_fraction <= 0.0 || force_fraction + tree_fraction >= 1.0) {
        throw std::invalid_argument("NbodyCostModel::calibrate: bad anchor");
    }
    NbodyCostModel m;
    m.machine = std::move(machine);
    m.per_interaction = force_fraction * anchor_seconds /
                        static_cast<double>(anchor_stats.interactions);
    m.per_tree_step =
        tree_fraction * anchor_seconds / static_cast<double>(anchor_stats.tree_steps);
    m.per_body_update = (1.0 - force_fraction - tree_fraction) * anchor_seconds /
                        static_cast<double>(anchor_bodies);
    return m;
}

namespace {

// The calibration anchor runs one 32K-body step once per process.
const StepStats& anchor_stats_32k() {
    static const StepStats stats = [] {
        auto bodies = interacting_galaxies(32768);
        return serial_step(bodies, SimConfig{});
    }();
    return stats;
}

}  // namespace

const NbodyCostModel& NbodyCostModel::paragon() {
    static const NbodyCostModel m =
        calibrate("paragon-i860", anchor_stats_32k(), 32768, 237.51);
    return m;
}

const NbodyCostModel& NbodyCostModel::t3d() {
    static const NbodyCostModel m =
        calibrate("cray-t3d", anchor_stats_32k(), 32768, 30.90);
    return m;
}

}  // namespace wavehpc::nbody
