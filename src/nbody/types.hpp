#pragma once
// Shared types of the Barnes-Hut N-body substrate (Appendix B, section 2.2).
// Two-dimensional, like the paper's implementation ("the structure
// representing a body holds 56 bytes of data in two dimensions").

#include <cstddef>
#include <cstdint>

namespace wavehpc::nbody {

struct Vec2 {
    double x = 0.0;
    double y = 0.0;

    friend Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
    friend Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
    friend Vec2 operator*(double s, Vec2 v) { return {s * v.x, s * v.y}; }
    Vec2& operator+=(Vec2 o) {
        x += o.x;
        y += o.y;
        return *this;
    }
    [[nodiscard]] double norm2() const { return x * x + y * y; }
};

/// 56 bytes, matching the paper's record size.
struct Body {
    Vec2 pos;
    Vec2 vel;
    double mass = 1.0;
    /// Interactions this body needed last step — the costzones weight.
    double cost = 1.0;
    std::uint64_t id = 0;
};
static_assert(sizeof(Body) == 56, "Body must match the paper's 56-byte record");

/// Gravitational constant and Plummer softening used throughout.
inline constexpr double kG = 1.0;
inline constexpr double kSoftening2 = 1e-4;

}  // namespace wavehpc::nbody
