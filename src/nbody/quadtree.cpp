#include "nbody/quadtree.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wavehpc::nbody {

QuadTree::QuadTree(const std::vector<Body>& bodies) {
    if (bodies.empty()) throw std::invalid_argument("QuadTree: no bodies");
    double lo_x = bodies[0].pos.x;
    double hi_x = lo_x;
    double lo_y = bodies[0].pos.y;
    double hi_y = lo_y;
    for (const Body& b : bodies) {
        lo_x = std::min(lo_x, b.pos.x);
        hi_x = std::max(hi_x, b.pos.x);
        lo_y = std::min(lo_y, b.pos.y);
        hi_y = std::max(hi_y, b.pos.y);
    }
    const Vec2 center{(lo_x + hi_x) / 2.0, (lo_y + hi_y) / 2.0};
    const double half =
        std::max({hi_x - lo_x, hi_y - lo_y, 1e-9}) / 2.0 * (1.0 + 1e-12) + 1e-12;
    nodes_.reserve(2 * bodies.size());
    (void)make_node(center, half);
    for (std::uint32_t i = 0; i < bodies.size(); ++i) insert(bodies, i);
}

std::uint32_t QuadTree::make_node(Vec2 center, double half) {
    Node n;
    n.center = center;
    n.half = half;
    nodes_.push_back(std::move(n));
    return static_cast<std::uint32_t>(nodes_.size() - 1);
}

int QuadTree::quadrant_of(Vec2 cell_center, Vec2 p) noexcept {
    return (p.x >= cell_center.x ? 1 : 0) + (p.y >= cell_center.y ? 2 : 0);
}

void QuadTree::insert(const std::vector<Body>& bodies, std::uint32_t body_index) {
    std::uint32_t at = 0;
    int depth = 0;
    for (;;) {
        ++build_steps_;
        Node& n = nodes_[at];
        if (n.is_leaf()) {
            if (n.bodies.empty() || depth >= kMaxDepth) {
                n.bodies.push_back(body_index);
                return;
            }
            // Subdivide and push the resident body down (m = 1 policy).
            const std::uint32_t resident = n.bodies.front();
            n.bodies.clear();
            const double h = n.half / 2.0;
            const Vec2 c = n.center;
            std::uint32_t kids[4];
            for (int q = 0; q < 4; ++q) {
                const Vec2 cc{c.x + ((q & 1) != 0 ? h : -h),
                              c.y + ((q & 2) != 0 ? h : -h)};
                kids[q] = make_node(cc, h);  // may reallocate nodes_
            }
            Node& n2 = nodes_[at];  // re-borrow after potential reallocation
            std::copy(std::begin(kids), std::end(kids), std::begin(n2.child));
            const int rq = quadrant_of(n2.center, bodies[resident].pos);
            nodes_[n2.child[rq]].bodies.push_back(resident);
            // fall through: continue inserting body_index from this node
        }
        const Node& nn = nodes_[at];
        at = nn.child[quadrant_of(nn.center, bodies[body_index].pos)];
        ++depth;
    }
}

void QuadTree::compute_centers_of_mass(const std::vector<Body>& bodies) {
    // Children always have larger indices than their parent, so one reverse
    // sweep is a valid post-order accumulation.
    for (std::size_t i = nodes_.size(); i-- > 0;) {
        Node& n = nodes_[i];
        double m = 0.0;
        Vec2 weighted{0.0, 0.0};
        double cost = 0.0;
        for (std::uint32_t bi : n.bodies) {
            m += bodies[bi].mass;
            weighted += bodies[bi].mass * bodies[bi].pos;
            cost += bodies[bi].cost;
        }
        if (!n.is_leaf()) {
            for (std::uint32_t c : n.child) {
                const Node& ch = nodes_[c];
                m += ch.mass;
                weighted += ch.mass * ch.com;
                cost += ch.cost;
            }
        }
        n.mass = m;
        n.com = (m > 0.0) ? (1.0 / m) * weighted : n.center;
        n.cost = cost;
    }
}

Vec2 QuadTree::acceleration(const std::vector<Body>& bodies, Vec2 pos,
                            std::uint32_t self_index, double theta,
                            std::uint64_t* interactions) const {
    Vec2 acc{0.0, 0.0};
    std::uint64_t count = 0;
    // Explicit stack: recursion depth can reach kMaxDepth + log(n).
    std::vector<std::uint32_t> stack{0};
    stack.reserve(64);
    const double theta2 = theta * theta;
    while (!stack.empty()) {
        const Node& n = nodes_[stack.back()];
        stack.pop_back();
        if (n.mass <= 0.0) continue;
        const Vec2 d = n.com - pos;
        const double dist2 = d.norm2();
        const double size = 2.0 * n.half;
        if (n.is_leaf() || size * size < theta2 * dist2) {
            if (n.is_leaf()) {
                for (std::uint32_t bi : n.bodies) {
                    if (bi == self_index) continue;
                    const Vec2 db = bodies[bi].pos - pos;
                    const double r2 = db.norm2() + kSoftening2;
                    const double inv = 1.0 / (r2 * std::sqrt(r2));
                    acc += (kG * bodies[bi].mass * inv) * db;
                    ++count;
                }
            } else {
                const double r2 = dist2 + kSoftening2;
                const double inv = 1.0 / (r2 * std::sqrt(r2));
                acc += (kG * n.mass * inv) * d;
                ++count;
            }
        } else {
            for (std::uint32_t c : n.child) stack.push_back(c);
        }
    }
    if (interactions != nullptr) *interactions += count;
    return acc;
}

void QuadTree::inorder_bodies(std::vector<std::uint32_t>& order) const {
    order.clear();
    std::vector<std::uint32_t> stack{0};
    // Depth-first with child 3..0 pushed so child 0 pops first: a stable
    // spatial (Morton-like) order, the costzones layout.
    while (!stack.empty()) {
        const Node& n = nodes_[stack.back()];
        stack.pop_back();
        for (std::uint32_t bi : n.bodies) order.push_back(bi);
        if (!n.is_leaf()) {
            for (int q = 3; q >= 0; --q) stack.push_back(n.child[q]);
        }
    }
}

}  // namespace wavehpc::nbody
