#pragma once
// The Barnes-Hut quadtree (Appendix B section 2.2): built per time step by
// inserting bodies one by one, subdividing any cell that would hold more
// than one body (m = 1); an upward pass computes cell centers of mass; the
// force on a body is evaluated by a root-down traversal that replaces any
// cell with size/distance below the opening angle by its center of mass.

#include <cstdint>
#include <vector>

#include "nbody/types.hpp"

namespace wavehpc::nbody {

class QuadTree {
public:
    static constexpr std::uint32_t kNoChild = 0xffffffffU;
    static constexpr int kMaxDepth = 48;

    struct Node {
        Vec2 center;               ///< geometric cell center
        double half = 0.0;         ///< half side length
        Vec2 com;                  ///< center of mass (after com pass)
        double mass = 0.0;
        double cost = 0.0;         ///< summed body costs beneath (costzones)
        std::uint32_t child[4] = {kNoChild, kNoChild, kNoChild, kNoChild};
        /// Body indices directly in this cell: at most one above kMaxDepth,
        /// any number at the depth cap (coincident bodies).
        std::vector<std::uint32_t> bodies;
        [[nodiscard]] bool is_leaf() const noexcept { return child[0] == kNoChild; }
    };

    /// Build the tree over `bodies` (root cell = bounding square).
    /// Throws std::invalid_argument when bodies is empty.
    explicit QuadTree(const std::vector<Body>& bodies);

    /// Upward center-of-mass / cost pass; must run before force queries.
    void compute_centers_of_mass(const std::vector<Body>& bodies);

    /// Acceleration on `b` (not necessarily in the tree) with opening angle
    /// `theta`; `interactions` (if non-null) accumulates the interaction
    /// count, the paper's cost metric.
    [[nodiscard]] Vec2 acceleration(const std::vector<Body>& bodies, Vec2 pos,
                                    std::uint32_t self_index, double theta,
                                    std::uint64_t* interactions = nullptr) const;

    [[nodiscard]] std::size_t node_count() const noexcept { return nodes_.size(); }
    [[nodiscard]] const Node& node(std::size_t i) const { return nodes_.at(i); }
    /// Total insertion traversal steps — the tree-build work metric used by
    /// the calibrated cost model.
    [[nodiscard]] std::uint64_t build_steps() const noexcept { return build_steps_; }

    /// Body indices in inorder (child 0..3 recursive) traversal order with
    /// their cumulative cost prefix — the costzones ordering.
    void inorder_bodies(std::vector<std::uint32_t>& order) const;

    /// Use `self_index` = kNotABody for field probes at arbitrary points.
    static constexpr std::uint32_t kNotABody = 0xffffffffU;

private:
    void insert(const std::vector<Body>& bodies, std::uint32_t body_index);
    [[nodiscard]] std::uint32_t make_node(Vec2 center, double half);
    [[nodiscard]] static int quadrant_of(Vec2 cell_center, Vec2 p) noexcept;

    std::vector<Node> nodes_;
    std::uint64_t build_steps_ = 0;
};

}  // namespace wavehpc::nbody
