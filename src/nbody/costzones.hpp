#pragma once
// Costzones domain decomposition [Singh et al.], as used by Appendix B:
// bodies in tree (inorder) order are split into contiguous zones of equal
// summed cost, where a body's cost is its interaction count from the
// previous time step.

#include <vector>

#include "nbody/quadtree.hpp"

namespace wavehpc::nbody {

/// zones[p] = body indices assigned to processor p, contiguous in the
/// tree's inorder traversal. Every body is assigned exactly once; zones can
/// be empty only when parts > bodies.
[[nodiscard]] std::vector<std::vector<std::uint32_t>> costzones(
    const QuadTree& tree, const std::vector<Body>& bodies, std::size_t parts);

}  // namespace wavehpc::nbody
