#include "nbody/parallel.hpp"

#include "mesh/collectives.hpp"

namespace wavehpc::nbody {

namespace {

constexpr int kTagUpdates = 2;  // + step

struct BodyUpdate {
    std::uint32_t index = 0;
    double cost = 0.0;
    Vec2 pos;
    Vec2 vel;
};
static_assert(std::is_trivially_copyable_v<BodyUpdate>);

}  // namespace

ParallelNbodyResult parallel_nbody(mesh::Machine& machine, std::vector<Body> initial,
                                   const ParallelNbodyConfig& cfg, std::size_t nprocs,
                                   const NbodyCostModel& model) {
    if (nprocs == 0) throw std::invalid_argument("parallel_nbody: nprocs must be > 0");
    ParallelNbodyResult result;
    // The manager's authoritative state lives outside the node lambda; only
    // rank 0 touches it (the engine serializes node execution).
    std::vector<Body> state = std::move(initial);

    const auto body = [&](mesh::NodeCtx& ctx) {
        const auto me = static_cast<std::size_t>(ctx.rank());
        const auto p = static_cast<std::size_t>(ctx.nprocs());

        for (int step = 0; step < cfg.steps; ++step) {
            // ---- manager: build the tree; everyone: receive it ----------
            std::vector<Body> bodies;
            if (me == 0) bodies = state;
            mesh::broadcast_vector(ctx, 0, bodies);

            QuadTree tree(bodies);
            tree.compute_centers_of_mass(bodies);
            if (me == 0) {
                // Only the manager pays for the build; other ranks received
                // the tree inside the broadcast payload (DESIGN.md: the
                // broadcast carries the 56-byte records the tree is an
                // O(n) overlay of).
                ctx.compute(model.per_tree_step *
                            static_cast<double>(tree.build_steps()));
                result.totals.tree_steps += tree.build_steps();
            }

            // ---- costzones: deterministic, redundantly on every rank ----
            const auto zones = costzones(tree, bodies, p);
            ctx.compute_redundant(model.per_tree_step *
                                  static_cast<double>(bodies.size()));

            // ---- force + update for my zone ------------------------------
            std::uint64_t interactions = 0;
            std::vector<BodyUpdate> updates;
            updates.reserve(zones[me].size());
            for (std::uint32_t bi : zones[me]) {
                std::uint64_t before = interactions;
                const Vec2 acc = tree.acceleration(bodies, bodies[bi].pos, bi,
                                                   cfg.sim.theta, &interactions);
                BodyUpdate u;
                u.index = bi;
                u.cost = static_cast<double>(interactions - before);
                u.vel = bodies[bi].vel + cfg.sim.dt * acc;
                u.pos = bodies[bi].pos + cfg.sim.dt * u.vel;
                updates.push_back(u);
            }
            ctx.compute(model.per_interaction * static_cast<double>(interactions) +
                        model.per_body_update *
                            static_cast<double>(zones[me].size()));

            // ---- gather updated records at the manager -------------------
            const auto apply = [&](const BodyUpdate& u) {
                state[u.index].pos = u.pos;
                state[u.index].vel = u.vel;
                state[u.index].cost = u.cost;
            };
            if (me == 0) {
                result.totals.interactions += interactions;
                for (const auto& u : updates) apply(u);
                for (std::size_t r = 1; r < p; ++r) {
                    const auto got =
                        ctx.recv_vector<BodyUpdate>(kTagUpdates + step);
                    for (const auto& u : got) apply(u);
                }
            } else {
                result.totals.interactions += interactions;
                ctx.send_span<BodyUpdate>(kTagUpdates + step, 0,
                                          std::span<const BodyUpdate>(updates));
            }
        }
    };

    result.run = machine.run(nprocs, body);
    result.seconds = result.run.makespan;
    result.bodies = std::move(state);
    return result;
}

}  // namespace wavehpc::nbody
