#include "nbody/costzones.hpp"

#include <stdexcept>

namespace wavehpc::nbody {

std::vector<std::vector<std::uint32_t>> costzones(const QuadTree& tree,
                                                  const std::vector<Body>& bodies,
                                                  std::size_t parts) {
    if (parts == 0) throw std::invalid_argument("costzones: parts must be > 0");
    std::vector<std::uint32_t> order;
    tree.inorder_bodies(order);
    if (order.size() != bodies.size()) {
        throw std::logic_error("costzones: tree does not cover all bodies");
    }

    double total = 0.0;
    for (const Body& b : bodies) total += b.cost;

    std::vector<std::vector<std::uint32_t>> zones(parts);
    // Zone p covers cumulative cost (p * total/parts, (p+1) * total/parts].
    double cum = 0.0;
    std::size_t zone = 0;
    const double share = total / static_cast<double>(parts);
    for (std::uint32_t bi : order) {
        cum += bodies[bi].cost;
        while (zone + 1 < parts &&
               cum > share * static_cast<double>(zone + 1) + 1e-12) {
            ++zone;
        }
        zones[zone].push_back(bi);
    }
    return zones;
}

}  // namespace wavehpc::nbody
