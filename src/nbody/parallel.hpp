#pragma once
// Manager-worker parallel Barnes-Hut on the mesh machine (Appendix B,
// section 2.1): the manager builds the tree each step and broadcasts it;
// every node computes forces for its costzone of bodies and sends the
// updated records back to the manager.

#include "mesh/machine.hpp"
#include "nbody/costzones.hpp"
#include "nbody/model.hpp"

namespace wavehpc::nbody {

struct ParallelNbodyConfig {
    SimConfig sim;
    int steps = 1;
};

struct ParallelNbodyResult {
    std::vector<Body> bodies;        ///< final state (manager's copy)
    StepStats totals;                ///< summed over steps; equals serial counts
    mesh::Machine::RunResult run;
    double seconds = 0.0;
};

/// Run `steps` leapfrog steps on `nprocs` ranks of `machine`, charging
/// computation through `model`. Bit-identical to running serial_step
/// `steps` times on the same initial state.
[[nodiscard]] ParallelNbodyResult parallel_nbody(mesh::Machine& machine,
                                                 std::vector<Body> initial,
                                                 const ParallelNbodyConfig& cfg,
                                                 std::size_t nprocs,
                                                 const NbodyCostModel& model);

}  // namespace wavehpc::nbody
