#pragma once
// Serial Barnes-Hut simulation (the reference the parallel code is verified
// against), the interacting-galaxies initial condition of Appendix B, and
// the per-machine compute cost model calibrated on the report's serial
// measurements.

#include <cstdint>
#include <string>
#include <vector>

#include "nbody/quadtree.hpp"
#include "nbody/types.hpp"

namespace wavehpc::nbody {

/// Two Plummer-like disk galaxies on a collision course; deterministic in
/// (n, seed).
[[nodiscard]] std::vector<Body> interacting_galaxies(std::size_t n,
                                                     std::uint64_t seed = 9);

struct StepStats {
    std::uint64_t tree_steps = 0;    ///< insertion traversal steps
    std::uint64_t interactions = 0;  ///< force-phase interactions
};

struct SimConfig {
    double theta = 1.0;
    double dt = 1e-3;
};

/// Advance `bodies` one leapfrog step; updates per-body costs with this
/// step's interaction counts (next step's costzones weights).
StepStats serial_step(std::vector<Body>& bodies, const SimConfig& cfg);

/// Calibrated compute charges for one machine:
///     t = per_interaction * interactions + per_tree_step * tree_steps
///       + per_body_update * bodies.
/// Following the report ("the force-computation phase consumes well over
/// 90% of the sequential execution time"), the per-interaction coefficient
/// carries `force_fraction` of the anchor measurement; the remainder splits
/// between the (serial, manager-side) tree build and the (parallel,
/// worker-side) center-of-mass/update work. The anchor is the largest
/// (most reliable) published N.
struct NbodyCostModel {
    std::string machine;
    double per_interaction = 0.0;
    double per_tree_step = 0.0;
    double per_body_update = 0.0;

    [[nodiscard]] double seconds(const StepStats& s, std::size_t bodies) const noexcept {
        return per_interaction * static_cast<double>(s.interactions) +
               per_tree_step * static_cast<double>(s.tree_steps) +
               per_body_update * static_cast<double>(bodies);
    }

    /// Calibrate from one measured serial (n, seconds/iteration) anchor.
    [[nodiscard]] static NbodyCostModel calibrate(std::string machine,
                                                  const StepStats& anchor_stats,
                                                  std::size_t anchor_bodies,
                                                  double anchor_seconds,
                                                  double force_fraction = 0.92,
                                                  double tree_fraction = 0.02);

    /// Appendix B Table 1 anchor: Paragon, 32K bodies, 237.51 s/iteration.
    [[nodiscard]] static const NbodyCostModel& paragon();
    /// Appendix B Table 2 anchor: T3D, 32K bodies, 30.90 s/iteration
    /// ("up to one order of magnitude improvement" from the Alpha).
    [[nodiscard]] static const NbodyCostModel& t3d();
};

/// The report's serial N-body measurements (seconds per iteration).
struct NbodySerialReference {
    struct Point {
        std::size_t n;
        double paragon_seconds;
        double t3d_seconds;
    };
    static constexpr Point points[] = {
        {1024, 5.77, 0.53}, {8192, 53.27, 6.31}, {32768, 237.51, 30.90}};
};

}  // namespace wavehpc::nbody
