#include "mesh/collectives.hpp"

#include <algorithm>
#include <cstring>

namespace wavehpc::mesh {

namespace {
constexpr int kTagGssum = kCollectiveTagBase + 0;
constexpr int kTagPrefixFoldIn = kCollectiveTagBase + 1;
constexpr int kTagPrefixStage = kCollectiveTagBase + 2;  // + round
constexpr int kTagPrefixFoldOut = kCollectiveTagBase + 64;
constexpr int kTagSyncUp = kCollectiveTagBase + 65;
constexpr int kTagSyncDown = kCollectiveTagBase + 66;
constexpr int kTagBcast = kCollectiveTagBase + 67;

void add_into(std::span<double> acc, std::span<const double> other) {
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += other[i];
}

/// Largest power of two <= n.
[[nodiscard]] int pow2_floor(int n) {
    int p = 1;
    while (2 * p <= n) p *= 2;
    return p;
}
}  // namespace

void gsum_gssum(NodeCtx& ctx, std::span<double> v) {
    const int p = ctx.nprocs();
    if (p == 1) return;
    const int me = ctx.rank();
    // Everyone pushes its contribution to everyone else, then sums whatever
    // arrives. The injection/ejection channels serialize the storm.
    for (int peer = 0; peer < p; ++peer) {
        if (peer == me) continue;
        ctx.send_span<double>(kTagGssum, peer, {v.data(), v.size()});
    }
    std::vector<double> acc(v.begin(), v.end());
    for (int i = 0; i < p - 1; ++i) {
        const auto contrib = ctx.recv_vector<double>(kTagGssum);
        if (contrib.size() != v.size()) {
            throw std::runtime_error("gsum_gssum: length mismatch");
        }
        add_into(acc, contrib);
    }
    std::copy(acc.begin(), acc.end(), v.begin());
}

void gsum_prefix(NodeCtx& ctx, std::span<double> v) {
    const int p = ctx.nprocs();
    if (p == 1) return;
    const int me = ctx.rank();
    const int core = pow2_floor(p);

    // Fold the remainder ranks into the power-of-two core.
    if (me >= core) {
        ctx.send_span<double>(kTagPrefixFoldIn, me - core, {v.data(), v.size()});
    } else if (me + core < p) {
        const auto contrib = ctx.recv_vector<double>(kTagPrefixFoldIn, me + core);
        add_into(v, contrib);
    }

    if (me < core) {
        for (int round = 0, dist = 1; dist < core; ++round, dist *= 2) {
            const int peer = me ^ dist;
            ctx.send_span<double>(kTagPrefixStage + round, peer, {v.data(), v.size()});
            const auto contrib =
                ctx.recv_vector<double>(kTagPrefixStage + round, peer);
            add_into(v, contrib);
        }
    }

    // Fold the result back out to the remainder ranks.
    if (me < core && me + core < p) {
        ctx.send_span<double>(kTagPrefixFoldOut, me + core, {v.data(), v.size()});
    } else if (me >= core) {
        const auto result = ctx.recv_vector<double>(kTagPrefixFoldOut, me - core);
        std::copy(result.begin(), result.end(), v.begin());
    }
}

double gsum_gssum(NodeCtx& ctx, double x) {
    gsum_gssum(ctx, std::span<double>(&x, 1));
    return x;
}

double gsum_prefix(NodeCtx& ctx, double x) {
    gsum_prefix(ctx, std::span<double>(&x, 1));
    return x;
}

double gmax_prefix(NodeCtx& ctx, double x) {
    const int p = ctx.nprocs();
    if (p == 1) return x;
    const int me = ctx.rank();
    const int core = pow2_floor(p);
    constexpr int kTagMaxFoldIn = kCollectiveTagBase + 70;
    constexpr int kTagMaxStage = kCollectiveTagBase + 71;  // + round
    constexpr int kTagMaxFoldOut = kCollectiveTagBase + 128;

    if (me >= core) {
        ctx.send_value<double>(kTagMaxFoldIn, me - core, x);
    } else if (me + core < p) {
        x = std::max(x, ctx.recv_value<double>(kTagMaxFoldIn, me + core));
    }
    if (me < core) {
        for (int round = 0, dist = 1; dist < core; ++round, dist *= 2) {
            const int peer = me ^ dist;
            ctx.send_value<double>(kTagMaxStage + round, peer, x);
            x = std::max(x, ctx.recv_value<double>(kTagMaxStage + round, peer));
        }
    }
    if (me < core && me + core < p) {
        ctx.send_value<double>(kTagMaxFoldOut, me + core, x);
    } else if (me >= core) {
        x = ctx.recv_value<double>(kTagMaxFoldOut, me - core);
    }
    return x;
}

void gsync(NodeCtx& ctx) {
    const int p = ctx.nprocs();
    if (p == 1) return;
    const int me = ctx.rank();
    const std::byte token{1};
    // Binomial gather to rank 0 ...
    for (int dist = 1; dist < p; dist *= 2) {
        if ((me & dist) != 0) {
            ctx.csend(kTagSyncUp, me - dist, {&token, 1});
            break;
        }
        if (me + dist < p) {
            (void)ctx.crecv(kTagSyncUp, me + dist);
        }
    }
    // ... then binomial release.
    int top = pow2_floor(p);
    if (me != 0) {
        (void)ctx.crecv(kTagSyncDown);
    }
    for (int dist = top; dist >= 1; dist /= 2) {
        if (me < dist && me + dist < p) {
            ctx.csend(kTagSyncDown, me + dist, {&token, 1});
        }
    }
}

void broadcast(NodeCtx& ctx, int root, std::vector<std::byte>& bytes) {
    const int p = ctx.nprocs();
    if (p == 1) return;
    // Work in a rotated rank space where the root is 0.
    const int vme = (ctx.rank() - root + p) % p;
    if (vme != 0) {
        Message m = ctx.crecv(kTagBcast);
        bytes = std::move(m.data);
    }
    // After receiving, rank vme forwards to vme + dist for each dist that is
    // a power of two greater than vme's own highest set bit pattern.
    int dist = 1;
    while (dist < p) dist *= 2;
    for (int d = dist / 2; d >= 1; d /= 2) {
        if (vme < d && vme + d < p) {
            const int dst = (vme + d + root) % p;
            ctx.csend(kTagBcast, dst, {bytes.data(), bytes.size()});
        }
    }
}

}  // namespace wavehpc::mesh
