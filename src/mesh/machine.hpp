#pragma once
// The coarse-grain MIMD machine: an interconnect topology + timing profile
// executing SPMD node programs under the discrete-event kernel.
//
// Node programs are real C++ running against an NX/PVM-flavoured API
// (csend / crecv / compute); data actually moves between node address
// spaces, so parallel algorithms are verified for *correctness* against
// sequential references while the machine profile yields faithful *timings*.

#include <cstddef>
#include <cstring>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "mesh/ledger.hpp"
#include "mesh/topology.hpp"
#include "sim/engine.hpp"

namespace wavehpc::mesh {

/// Timing parameters of a machine. Calibration rationale: DESIGN.md §5.3.
struct MachineProfile {
    std::string name;
    Topology topo;
    double send_overhead;  ///< software cost charged to the sender per message
    double recv_overhead;  ///< software cost charged to the receiver per message
    double per_hop;        ///< wire latency per axis hop
    double byte_time;      ///< seconds per payload byte on a channel

    /// JPL Paragon compute partition (allocated 4 nodes wide) driven through
    /// PVM, as in the wavelet study. PVM on the Paragon was slow: ~1 ms
    /// software latency and single-digit MB/s effective bandwidth.
    [[nodiscard]] static MachineProfile paragon_pvm();
    /// Same fabric through native NX calls (Appendix B's Paragon runs).
    [[nodiscard]] static MachineProfile paragon_nx();
    /// JPL Cray T3D: 8x8x4 bidirectional 3-D torus, fast links, PVM software
    /// overheads (Appendix B notes "the negative effect of PVM").
    [[nodiscard]] static MachineProfile cray_t3d_pvm();
    /// Small deterministic profile with round-number costs, for tests.
    [[nodiscard]] static MachineProfile test_profile(std::size_t sx, std::size_t sy);
};

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Message {
    int src = 0;
    int tag = 0;
    std::vector<std::byte> data;
    double arrival = 0.0;
};

/// What a node did with its time; the perf module turns these into the
/// paper's "performance budget".
struct NodeStats {
    double comm_seconds = 0.0;       ///< inside csend/crecv, call to return
    double useful_seconds = 0.0;     ///< compute()
    double redundant_seconds = 0.0;  ///< compute_redundant()
    double finish_time = 0.0;
    std::size_t messages_sent = 0;
    std::size_t bytes_sent = 0;
};

class Machine;

/// Per-rank handle passed to the SPMD body.
class NodeCtx {
public:
    [[nodiscard]] int rank() const noexcept { return rank_; }
    [[nodiscard]] int nprocs() const noexcept;
    [[nodiscard]] double now() const { return proc_->now(); }

    /// Charge useful computation time.
    void compute(double seconds);
    /// Charge parallelization-redundancy time (Appendix B's taxonomy).
    void compute_redundant(double seconds);
    /// Charge CPU time spent *inside* a communication library call (e.g.
    /// the per-element summation a global-sum routine performs); Appendix
    /// B's instrumentation measures calls end-to-end, so this books under
    /// communication, not redundancy.
    void charge_comm(double seconds);

    /// Blocking-buffered send, NX csend flavour: returns once the message is
    /// handed to the network; the transfer itself is booked on the route.
    void csend(int tag, int dst, std::span<const std::byte> data);
    /// Blocking receive; src/tag may be kAnySource/kAnyTag wildcards.
    [[nodiscard]] Message crecv(int tag = kAnyTag, int src = kAnySource);

    template <typename T>
    void send_value(int tag, int dst, const T& v) {
        static_assert(std::is_trivially_copyable_v<T>);
        csend(tag, dst, std::as_bytes(std::span<const T, 1>(&v, 1)));
    }
    template <typename T>
    [[nodiscard]] T recv_value(int tag = kAnyTag, int src = kAnySource,
                               int* actual_src = nullptr) {
        static_assert(std::is_trivially_copyable_v<T>);
        const Message m = crecv(tag, src);
        if (m.data.size() != sizeof(T)) {
            throw std::runtime_error("recv_value: payload size mismatch");
        }
        if (actual_src != nullptr) *actual_src = m.src;
        T v;
        std::memcpy(&v, m.data.data(), sizeof(T));
        return v;
    }
    template <typename T>
    void send_span(int tag, int dst, std::span<const T> v) {
        static_assert(std::is_trivially_copyable_v<T>);
        csend(tag, dst, std::as_bytes(v));
    }
    template <typename T>
    [[nodiscard]] std::vector<T> recv_vector(int tag = kAnyTag, int src = kAnySource,
                                             int* actual_src = nullptr) {
        static_assert(std::is_trivially_copyable_v<T>);
        const Message m = crecv(tag, src);
        if (m.data.size() % sizeof(T) != 0) {
            throw std::runtime_error("recv_vector: payload size mismatch");
        }
        if (actual_src != nullptr) *actual_src = m.src;
        std::vector<T> v(m.data.size() / sizeof(T));
        std::memcpy(v.data(), m.data.data(), m.data.size());
        return v;
    }

    [[nodiscard]] const NodeStats& stats() const;

private:
    friend class Machine;
    NodeCtx(Machine* machine, sim::Proc* proc, int rank)
        : machine_(machine), proc_(proc), rank_(rank) {}

    Machine* machine_;
    sim::Proc* proc_;
    int rank_;
};

/// One message in the recorded communication trace.
struct TraceEvent {
    double post_time = 0.0;     ///< sender handed the message to the network
    double start_time = 0.0;    ///< route acquired (>= post_time under conflicts)
    double arrival_time = 0.0;
    int src = 0;
    int dst = 0;
    int tag = 0;
    std::size_t bytes = 0;
};

class Machine {
public:
    explicit Machine(MachineProfile profile);

    using NodeBody = std::function<void(NodeCtx&)>;

    struct RunResult {
        double makespan = 0.0;
        std::vector<NodeStats> stats;
        double contention_delay = 0.0;   ///< total route-conflict wait
        std::size_t messages = 0;
        /// Chronological message trace; empty unless record_trace(true).
        std::vector<TraceEvent> trace;
    };

    /// Record every message into RunResult::trace (off by default — traces
    /// of large runs are big).
    void record_trace(bool on) noexcept { record_trace_ = on; }

    /// Run `body` as an SPMD program on `nprocs` ranks placed at
    /// `placement[rank]`. Coordinates must be distinct and inside the mesh.
    RunResult run(std::size_t nprocs, const std::vector<Coord3>& placement,
                  const NodeBody& body);

    /// Row-major default placement.
    RunResult run(std::size_t nprocs, const NodeBody& body);

    [[nodiscard]] const MachineProfile& profile() const noexcept { return profile_; }

private:
    friend class NodeCtx;

    // Per-run state, reset by run().
    struct RunState {
        std::vector<std::vector<Message>> mailbox;  // per destination rank
        std::vector<std::size_t> pid_of_rank;
        std::vector<Coord3> placement;
        std::vector<NodeStats> stats;
        std::vector<TraceEvent> trace;
        LinkLedger ledger;
        explicit RunState(std::size_t links) : ledger(links) {}
    };

    void do_send(NodeCtx& ctx, int tag, int dst, std::span<const std::byte> data);
    Message do_recv(NodeCtx& ctx, int tag, int src);

    MachineProfile profile_;
    std::unique_ptr<RunState> rs_;
    bool record_trace_ = false;
};

}  // namespace wavehpc::mesh
