#pragma once
// The coarse-grain MIMD machine: an interconnect topology + timing profile
// executing SPMD node programs under the discrete-event kernel.
//
// Node programs are real C++ running against an NX/PVM-flavoured API
// (csend / crecv / compute); data actually moves between node address
// spaces, so parallel algorithms are verified for *correctness* against
// sequential references while the machine profile yields faithful *timings*.

#include <cstddef>
#include <cstring>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <tuple>
#include <vector>

#include "mesh/faults.hpp"
#include "mesh/ledger.hpp"
#include "mesh/topology.hpp"
#include "sim/engine.hpp"

namespace wavehpc::mesh {

/// Thrown by the reliable transport when a message cannot be delivered
/// (retries exhausted against an unresponsive peer) in transparent mode.
class TransportError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Stop-and-wait reliable-transport tuning. Zero-valued fields are derived
/// per message from the machine profile and payload size.
struct ReliableParams {
    double rto0 = 0.0;    ///< initial retransmit timeout; 0 = derive from RTT
    int max_retries = 12;  ///< attempts beyond the first before giving up
    double rto_cap = 0.0;  ///< exponential-backoff ceiling; 0 = 64 * initial
};

/// Timing parameters of a machine. Calibration rationale: DESIGN.md §5.3.
struct MachineProfile {
    std::string name;
    Topology topo;
    double send_overhead;  ///< software cost charged to the sender per message
    double recv_overhead;  ///< software cost charged to the receiver per message
    double per_hop;        ///< wire latency per axis hop
    double byte_time;      ///< seconds per payload byte on a channel
    FaultPlan faults;      ///< injected-fault schedule (benign by default)

    /// JPL Paragon compute partition (allocated 4 nodes wide) driven through
    /// PVM, as in the wavelet study. PVM on the Paragon was slow: ~1 ms
    /// software latency and single-digit MB/s effective bandwidth.
    [[nodiscard]] static MachineProfile paragon_pvm();
    /// Same fabric through native NX calls (Appendix B's Paragon runs).
    [[nodiscard]] static MachineProfile paragon_nx();
    /// JPL Cray T3D: 8x8x4 bidirectional 3-D torus, fast links, PVM software
    /// overheads (Appendix B notes "the negative effect of PVM").
    [[nodiscard]] static MachineProfile cray_t3d_pvm();
    /// Small deterministic profile with round-number costs, for tests.
    [[nodiscard]] static MachineProfile test_profile(std::size_t sx, std::size_t sy);
};

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct Message {
    int src = 0;
    int tag = 0;
    std::vector<std::byte> data;
    double arrival = 0.0;
};

/// What a node did with its time; the perf module turns these into the
/// paper's "performance budget".
struct NodeStats {
    double comm_seconds = 0.0;       ///< inside csend/crecv, call to return
    double useful_seconds = 0.0;     ///< compute()
    double redundant_seconds = 0.0;  ///< compute_redundant()
    double recovery_seconds = 0.0;   ///< all activity while in recovery mode
    double finish_time = 0.0;
    std::size_t messages_sent = 0;
    std::size_t bytes_sent = 0;
    std::size_t retransmits = 0;           ///< reliable frames re-sent
    std::size_t recv_timeouts = 0;         ///< expired waits (acks + crecv_timeout)
    std::size_t corruptions_detected = 0;  ///< inbound frames this rank's NIC rejected
    bool fail_stopped = false;             ///< rank was killed by the fault plan
};

class Machine;

/// Per-rank handle passed to the SPMD body.
class NodeCtx {
public:
    [[nodiscard]] int rank() const noexcept { return rank_; }
    [[nodiscard]] int nprocs() const noexcept;
    [[nodiscard]] double now() const { return proc_->now(); }

    /// Charge useful computation time.
    void compute(double seconds);
    /// Charge parallelization-redundancy time (Appendix B's taxonomy).
    void compute_redundant(double seconds);
    /// Charge CPU time spent *inside* a communication library call (e.g.
    /// the per-element summation a global-sum routine performs); Appendix
    /// B's instrumentation measures calls end-to-end, so this books under
    /// communication, not redundancy.
    void charge_comm(double seconds);

    /// Blocking-buffered send, NX csend flavour: returns once the message is
    /// handed to the network; the transfer itself is booked on the route.
    /// Under Machine::use_reliable_transport this transparently becomes a
    /// reliable send and throws TransportError if delivery ultimately fails.
    void csend(int tag, int dst, std::span<const std::byte> data);
    /// Blocking receive; src/tag may be kAnySource/kAnyTag wildcards. With
    /// several matches pending, the earliest-arrival one is delivered.
    [[nodiscard]] Message crecv(int tag = kAnyTag, int src = kAnySource);

    /// Blocking receive that gives up `timeout` virtual seconds after the
    /// call; returns std::nullopt on expiry (books the wait as comm time and
    /// counts a recv_timeout). The timeout is a scheduled simulation event,
    /// so expiry never masks a message that arrives before the deadline.
    [[nodiscard]] std::optional<Message> crecv_timeout(int tag, int src, double timeout);

    /// Stop-and-wait reliable send: sequence number + CRC32-protected frame,
    /// NIC-level ack, retransmit on loss with capped exponential backoff.
    /// Returns false when max_retries attempts went unacknowledged (the peer
    /// is presumed dead); duplicate frames from lost acks are suppressed at
    /// the receiver, so the mailbox sees each payload at most once, in order
    /// per (source, tag). Books end-to-end time (including the ack wait) as
    /// comm time.
    [[nodiscard]] bool csend_reliable(int tag, int dst, std::span<const std::byte> data,
                                      const ReliableParams& params = {});

    /// While set, every charge (compute, comm, redundancy) books into
    /// recovery_seconds instead — the fault-recovery overhead category.
    void set_recovery_mode(bool on) noexcept { recovery_ = on; }
    [[nodiscard]] bool recovery_mode() const noexcept { return recovery_; }

    template <typename T>
    void send_value(int tag, int dst, const T& v) {
        static_assert(std::is_trivially_copyable_v<T>);
        csend(tag, dst, std::as_bytes(std::span<const T, 1>(&v, 1)));
    }
    template <typename T>
    [[nodiscard]] T recv_value(int tag = kAnyTag, int src = kAnySource,
                               int* actual_src = nullptr) {
        static_assert(std::is_trivially_copyable_v<T>);
        const Message m = crecv(tag, src);
        if (m.data.size() != sizeof(T)) {
            throw std::runtime_error("recv_value: payload size mismatch");
        }
        if (actual_src != nullptr) *actual_src = m.src;
        T v;
        std::memcpy(&v, m.data.data(), sizeof(T));
        return v;
    }
    template <typename T>
    void send_span(int tag, int dst, std::span<const T> v) {
        static_assert(std::is_trivially_copyable_v<T>);
        csend(tag, dst, std::as_bytes(v));
    }
    template <typename T>
    [[nodiscard]] std::vector<T> recv_vector(int tag = kAnyTag, int src = kAnySource,
                                             int* actual_src = nullptr) {
        static_assert(std::is_trivially_copyable_v<T>);
        const Message m = crecv(tag, src);
        if (m.data.size() % sizeof(T) != 0) {
            throw std::runtime_error("recv_vector: payload size mismatch");
        }
        if (actual_src != nullptr) *actual_src = m.src;
        std::vector<T> v(m.data.size() / sizeof(T));
        std::memcpy(v.data(), m.data.data(), m.data.size());
        return v;
    }

    [[nodiscard]] const NodeStats& stats() const;

private:
    friend class Machine;
    NodeCtx(Machine* machine, sim::Proc* proc, int rank)
        : machine_(machine), proc_(proc), rank_(rank) {}

    void charge(double seconds, double NodeStats::*category);

    Machine* machine_;
    sim::Proc* proc_;
    int rank_;
    bool recovery_ = false;
};

/// RAII recovery-mode scope for NodeCtx.
class ScopedRecovery {
public:
    explicit ScopedRecovery(NodeCtx& ctx) : ctx_(ctx), prev_(ctx.recovery_mode()) {
        ctx_.set_recovery_mode(true);
    }
    ~ScopedRecovery() { ctx_.set_recovery_mode(prev_); }
    ScopedRecovery(const ScopedRecovery&) = delete;
    ScopedRecovery& operator=(const ScopedRecovery&) = delete;

private:
    NodeCtx& ctx_;
    bool prev_;
};

/// One message in the recorded communication trace.
struct TraceEvent {
    double post_time = 0.0;     ///< sender handed the message to the network
    double start_time = 0.0;    ///< route acquired (>= post_time under conflicts)
    double arrival_time = 0.0;
    int src = 0;
    int dst = 0;
    int tag = 0;
    std::size_t bytes = 0;
};

class Machine {
public:
    explicit Machine(MachineProfile profile);

    using NodeBody = std::function<void(NodeCtx&)>;

    struct RunResult {
        double makespan = 0.0;
        std::vector<NodeStats> stats;
        double contention_delay = 0.0;   ///< total route-conflict wait
        std::size_t messages = 0;
        std::size_t injected_drops = 0;        ///< frames the fault plan lost
        std::size_t injected_corruptions = 0;  ///< frames the fault plan flipped
        /// Chronological message trace; empty unless record_trace(true).
        std::vector<TraceEvent> trace;
    };

    /// Record every message into RunResult::trace (off by default — traces
    /// of large runs are big).
    void record_trace(bool on) noexcept { record_trace_ = on; }

    /// Replace the profile's fault schedule (applies to subsequent runs).
    void set_faults(FaultPlan plan) { profile_.faults = std::move(plan); }

    /// Route every NodeCtx::csend through the reliable transport (and make
    /// a failed delivery throw TransportError). Collectives and node
    /// programs then survive message drops and corruption unchanged.
    void use_reliable_transport(bool on, ReliableParams params = {}) {
        reliable_ = on ? std::optional<ReliableParams>(params) : std::nullopt;
    }

    /// Explore alternative-but-causally-valid schedules: subsequent runs
    /// install a sim::SeededTieBreak with this seed, randomizing which of
    /// several equal-virtual-clock ranks the engine resumes first. Same
    /// seed → bit-identical interleaving, so a failing seed is a complete
    /// repro. nullopt restores the default lowest-pid order.
    void set_schedule_seed(std::optional<std::uint64_t> seed) noexcept {
        schedule_seed_ = seed;
    }
    [[nodiscard]] std::optional<std::uint64_t> schedule_seed() const noexcept {
        return schedule_seed_;
    }

    /// Run `body` as an SPMD program on `nprocs` ranks placed at
    /// `placement[rank]`. Coordinates must be distinct and inside the mesh.
    RunResult run(std::size_t nprocs, const std::vector<Coord3>& placement,
                  const NodeBody& body);

    /// Row-major default placement.
    RunResult run(std::size_t nprocs, const NodeBody& body);

    [[nodiscard]] const MachineProfile& profile() const noexcept { return profile_; }

private:
    friend class NodeCtx;

    // Per-run state, reset by run() (and by its RAII guard on exceptions).
    struct RunState {
        std::vector<std::vector<Message>> mailbox;  // per destination rank
        std::vector<std::size_t> pid_of_rank;
        std::vector<Coord3> placement;
        std::vector<NodeStats> stats;
        std::vector<TraceEvent> trace;
        LinkLedger ledger;
        std::uint64_t msg_counter = 0;  ///< global frame index for fault draws
        std::size_t injected_drops = 0;
        std::size_t injected_corruptions = 0;
        /// Stop-and-wait sequence state per (src, dst, tag) channel.
        std::map<std::tuple<int, int, int>, std::uint32_t> next_seq;
        std::map<std::tuple<int, int, int>, std::uint32_t> expected_seq;
        explicit RunState(std::size_t links) : ledger(links) {}
    };

    void do_send(NodeCtx& ctx, int tag, int dst, std::span<const std::byte> data);
    bool do_send_reliable(NodeCtx& ctx, int tag, int dst,
                          std::span<const std::byte> data,
                          const ReliableParams& params);
    std::optional<Message> do_recv(NodeCtx& ctx, int tag, int src,
                                   std::optional<double> timeout);

    void validate_send(const NodeCtx& ctx, int tag, int dst) const;
    /// Throws the internal fail-stop signal if `ctx`'s rank is past its
    /// scheduled fail time.
    void check_fail_stop(NodeCtx& ctx) const;
    /// Advance virtual time, dying mid-interval if the fail time is crossed.
    void advance_with_fail(NodeCtx& ctx, double dt, double NodeStats::*category);
    [[nodiscard]] std::optional<double> fail_time_of(int rank) const {
        return profile_.faults.fail_time(rank);
    }

    MachineProfile profile_;
    std::unique_ptr<RunState> rs_;
    bool record_trace_ = false;
    std::optional<ReliableParams> reliable_;
    std::optional<std::uint64_t> schedule_seed_;
};

}  // namespace wavehpc::mesh
