#pragma once
// Per-link reservation ledger: the contention model of the interconnect.
//
// A wormhole message occupies every channel of its route for the whole
// transfer, so a send reserves the earliest interval in which *all* route
// channels are simultaneously free. Conflicting routes therefore serialize,
// which is exactly the mechanism behind the paper's naive-mapping plateau.

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

namespace wavehpc::mesh {

class LinkLedger {
public:
    explicit LinkLedger(std::size_t link_count);

    /// Earliest start >= ready at which every link in `path` is free for
    /// `duration` seconds; the interval is reserved on all of them.
    /// Returns the start time. duration may be 0 (no reservation recorded).
    double reserve_path(std::span<const std::size_t> path, double ready, double duration);

    struct Reservation {
        double start = 0.0;     ///< when the transfer enters the wires
        double duration = 0.0;  ///< actual occupancy, after dilation
    };

    /// Like reserve_path, but returns the (possibly dilated) duration too:
    /// with a time-dilation hook installed, the reserved occupancy is
    /// duration * dilation(ready) — the fault model's link-degradation
    /// windows stretch transfers that enter the network inside a window.
    Reservation reserve_path_ex(std::span<const std::size_t> path, double ready,
                                double duration);

    /// Install (or clear, with nullptr) the wire-time dilation hook; called
    /// with the network entry time, must return a factor >= 1.
    void set_time_dilation(std::function<double(double)> dilation) {
        dilation_ = std::move(dilation);
    }

    /// Total contention delay accumulated so far (sum of start - ready).
    [[nodiscard]] double total_contention_delay() const noexcept { return delay_; }
    /// Total busy seconds booked on a link.
    [[nodiscard]] double busy_seconds(std::size_t link) const;
    [[nodiscard]] std::size_t reservations() const noexcept { return reservations_; }

private:
    struct Interval {
        double start;
        double end;
    };

    /// Earliest t >= ready with [t, t+duration) free on `link`.
    [[nodiscard]] double earliest_free(std::size_t link, double ready,
                                       double duration) const;
    void insert(std::size_t link, double start, double duration);

    std::vector<std::vector<Interval>> links_;  // per link, sorted by start
    std::vector<double> busy_;
    std::function<double(double)> dilation_;
    double delay_ = 0.0;
    std::size_t reservations_ = 0;
};

}  // namespace wavehpc::mesh
