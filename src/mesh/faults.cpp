#include "mesh/faults.hpp"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <stdexcept>

namespace wavehpc::mesh {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
        }
        table[i] = c;
    }
    return table;
}

constexpr auto kCrcTable = make_crc_table();

/// splitmix64: full-period mix with good avalanche; one draw per key.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from the top 53 bits.
[[nodiscard]] double u01(std::uint64_t x) {
    return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// Independent deterministic lane per (link rule, frame index): link draws
/// never consume from the plan-wide decide() stream.
[[nodiscard]] std::uint64_t link_draw(std::uint64_t seed, std::size_t rule,
                                      std::uint64_t index, unsigned lane) {
    const std::uint64_t rule_key =
        mix64(seed ^ (static_cast<std::uint64_t>(rule) * 0x9E3779B97F4A7C15ULL +
                      0x4C494E4BULL));  // "LINK"
    return mix64(rule_key ^ (index * 4 + lane));
}

// ------------------------------------------------------------- spec parsing

[[noreturn]] void parse_fail(const std::string& what, std::string_view token,
                             std::size_t offset) {
    throw std::invalid_argument("FaultPlan: " + what + " '" +
                                std::string(token) + "' (byte " +
                                std::to_string(offset) + ")");
}

[[nodiscard]] double parse_double_at(std::string_view token,
                                     std::size_t offset,
                                     const std::string& what) {
    if (token.empty()) parse_fail("empty " + what, token, offset);
    const std::string buf(token);
    char* end = nullptr;
    const double v = std::strtod(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size()) {
        parse_fail("invalid " + what, token, offset);
    }
    return v;
}

[[nodiscard]] double parse_probability_at(std::string_view token,
                                          std::size_t offset) {
    const double v = parse_double_at(token, offset, "probability");
    if (v < 0.0 || v > 1.0) parse_fail("probability out of [0,1]", token, offset);
    return v;
}

[[nodiscard]] std::uint64_t parse_u64_at(std::string_view token,
                                         std::size_t offset,
                                         const std::string& what) {
    if (token.empty()) parse_fail("empty " + what, token, offset);
    std::uint64_t v = 0;
    for (char c : token) {
        if (c < '0' || c > '9') parse_fail("invalid " + what, token, offset);
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return v;
}

/// Millisecond integer token → seconds.
[[nodiscard]] double parse_millis_at(std::string_view token,
                                     std::size_t offset) {
    return static_cast<double>(parse_u64_at(token, offset, "milliseconds")) *
           1e-3;
}

/// Rank token: '*' = wildcard, else a non-negative integer.
[[nodiscard]] int parse_rank_at(std::string_view token, std::size_t offset) {
    if (token == "*") return -1;
    return static_cast<int>(parse_u64_at(token, offset, "rank"));
}

/// Split `body` on `sep`, invoking fn(piece, offset_of_piece_in_spec).
template <typename Fn>
void for_each_piece(std::string_view body, std::size_t body_offset, char sep,
                    Fn&& fn) {
    std::size_t start = 0;
    while (start <= body.size()) {
        std::size_t end = body.find(sep, start);
        if (end == std::string_view::npos) end = body.size();
        fn(body.substr(start, end - start), body_offset + start);
        if (end == body.size()) break;
        start = end + 1;
    }
}

/// One link rule: SRC>DST[@TAG]:T0_MS:T1_MS:DROP[:CORRUPT[:DELAY_MS]].
[[nodiscard]] LinkFault parse_link_at(std::string_view token,
                                      std::size_t offset) {
    std::vector<std::string_view> parts;
    std::vector<std::size_t> offsets;
    for_each_piece(token, offset, ':', [&](std::string_view p, std::size_t o) {
        parts.push_back(p);
        offsets.push_back(o);
    });
    if (parts.size() < 4 || parts.size() > 6) {
        parse_fail("link rule needs SRC>DST:T0_MS:T1_MS:DROP[:CORRUPT[:DELAY_MS]]",
                   token, offset);
    }
    LinkFault lf;
    std::string_view pair = parts[0];
    std::size_t pair_off = offsets[0];
    const std::size_t at = pair.find('@');
    if (at != std::string_view::npos) {
        lf.tag = static_cast<int>(
            parse_u64_at(pair.substr(at + 1), pair_off + at + 1, "tag"));
        pair = pair.substr(0, at);
    }
    const std::size_t gt = pair.find('>');
    if (gt == std::string_view::npos) {
        parse_fail("link endpoints need SRC>DST", parts[0], pair_off);
    }
    lf.src = parse_rank_at(pair.substr(0, gt), pair_off);
    lf.dst = parse_rank_at(pair.substr(gt + 1), pair_off + gt + 1);
    lf.t_begin = parse_millis_at(parts[1], offsets[1]);
    lf.t_end = parse_millis_at(parts[2], offsets[2]);
    if (lf.t_end < lf.t_begin) {
        parse_fail("link window ends before it begins", token, offset);
    }
    lf.drop_probability = parse_probability_at(parts[3], offsets[3]);
    if (parts.size() > 4) {
        lf.corrupt_probability = parse_probability_at(parts[4], offsets[4]);
    }
    if (parts.size() > 5) {
        lf.delay_seconds = parse_millis_at(parts[5], offsets[5]);
    }
    return lf;
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data, std::uint32_t seed) {
    std::uint32_t c = seed ^ 0xFFFFFFFFU;
    for (std::byte b : data) {
        c = kCrcTable[(c ^ static_cast<std::uint32_t>(b)) & 0xFFU] ^ (c >> 8);
    }
    return c ^ 0xFFFFFFFFU;
}

bool FaultPlan::enabled() const noexcept {
    return drop_probability > 0.0 || corrupt_probability > 0.0 ||
           !drop_exact.empty() || !degradations.empty() || !failures.empty() ||
           !links.empty();
}

FaultDecision FaultPlan::decide(std::uint64_t index) const {
    FaultDecision d;
    if (std::find(drop_exact.begin(), drop_exact.end(), index) != drop_exact.end()) {
        d.drop = true;
        return d;
    }
    if (drop_probability > 0.0 &&
        u01(mix64(seed ^ (index * 2 + 0))) < drop_probability) {
        d.drop = true;
        return d;
    }
    if (corrupt_probability > 0.0) {
        const std::uint64_t h = mix64(seed ^ (index * 2 + 1));
        if (u01(h) < corrupt_probability) {
            d.corrupt = true;
            const std::uint64_t h2 = mix64(h);
            d.flip_byte = static_cast<std::size_t>(h2 >> 3);
            d.flip_bit = static_cast<unsigned>(h2 & 7U);
        }
    }
    return d;
}

FaultDecision FaultPlan::decide_frame(std::uint64_t index, int src, int dst,
                                      int tag, double t) const {
    FaultDecision d = decide(index);
    for (std::size_t r = 0; r < links.size(); ++r) {
        const LinkFault& lf = links[r];
        if (!lf.matches(src, dst, tag, t)) continue;
        d.delay += lf.delay_seconds;
        if (!d.drop && lf.drop_probability > 0.0 &&
            u01(link_draw(seed, r, index, 0)) < lf.drop_probability) {
            d.drop = true;
        }
        if (!d.drop && !d.corrupt && lf.corrupt_probability > 0.0) {
            const std::uint64_t h = link_draw(seed, r, index, 1);
            if (u01(h) < lf.corrupt_probability) {
                d.corrupt = true;
                const std::uint64_t h2 = mix64(h);
                d.flip_byte = static_cast<std::size_t>(h2 >> 3);
                d.flip_bit = static_cast<unsigned>(h2 & 7U);
            }
        }
    }
    if (d.drop) {
        d.corrupt = false;
        d.delay = 0.0;
    }
    return d;
}

double FaultPlan::degradation_factor(double t) const noexcept {
    double f = 1.0;
    for (const LinkDegradation& w : degradations) {
        if (t >= w.t_begin && t < w.t_end) f = std::max(f, w.factor);
    }
    return f;
}

std::optional<double> FaultPlan::fail_time(int rank) const noexcept {
    std::optional<double> at;
    for (const NodeFailure& nf : failures) {
        if (nf.rank != rank) continue;
        if (!at.has_value() || nf.at < *at) at = nf.at;
    }
    return at;
}

FaultPlan FaultPlan::parse(std::string_view spec, std::uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    for_each_piece(spec, 0, ',', [&](std::string_view item, std::size_t off) {
        if (item.empty()) return;  // tolerate trailing/double commas
        const std::size_t eq = item.find('=');
        if (eq == std::string_view::npos) {
            parse_fail("expected key=value", item, off);
        }
        const std::string_view key = item.substr(0, eq);
        const std::string_view val = item.substr(eq + 1);
        const std::size_t val_off = off + eq + 1;
        if (key == "drop") {
            plan.drop_probability = parse_probability_at(val, val_off);
        } else if (key == "corrupt") {
            plan.corrupt_probability = parse_probability_at(val, val_off);
        } else if (key == "drop_exact") {
            for_each_piece(val, val_off, ':',
                           [&](std::string_view p, std::size_t o) {
                               plan.drop_exact.push_back(
                                   parse_u64_at(p, o, "message index"));
                           });
        } else if (key == "fail") {
            for_each_piece(val, val_off, ';', [&](std::string_view p,
                                                  std::size_t o) {
                const std::size_t colon = p.find(':');
                if (colon == std::string_view::npos) {
                    parse_fail("fail event needs RANK:AT_MS", p, o);
                }
                NodeFailure nf;
                nf.rank = static_cast<int>(
                    parse_u64_at(p.substr(0, colon), o, "rank"));
                nf.at = parse_millis_at(p.substr(colon + 1), o + colon + 1);
                plan.failures.push_back(nf);
            });
        } else if (key == "degrade") {
            for_each_piece(val, val_off, ';', [&](std::string_view p,
                                                  std::size_t o) {
                std::vector<std::string_view> parts;
                std::vector<std::size_t> offs;
                for_each_piece(p, o, ':', [&](std::string_view q,
                                              std::size_t qo) {
                    parts.push_back(q);
                    offs.push_back(qo);
                });
                if (parts.size() != 3) {
                    parse_fail("degrade window needs T0_MS:T1_MS:FACTOR", p, o);
                }
                LinkDegradation w;
                w.t_begin = parse_millis_at(parts[0], offs[0]);
                w.t_end = parse_millis_at(parts[1], offs[1]);
                w.factor = parse_double_at(parts[2], offs[2], "factor");
                if (w.factor < 1.0) {
                    parse_fail("degrade factor must be >= 1", parts[2], offs[2]);
                }
                plan.degradations.push_back(w);
            });
        } else if (key == "link") {
            for_each_piece(val, val_off, ';',
                           [&](std::string_view p, std::size_t o) {
                               plan.links.push_back(parse_link_at(p, o));
                           });
        } else {
            parse_fail("unknown key", key, off);
        }
    });
    return plan;
}

}  // namespace wavehpc::mesh
