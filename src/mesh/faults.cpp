#include "mesh/faults.hpp"

#include <algorithm>
#include <array>

namespace wavehpc::mesh {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
        }
        table[i] = c;
    }
    return table;
}

constexpr auto kCrcTable = make_crc_table();

/// splitmix64: full-period mix with good avalanche; one draw per key.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

/// Uniform double in [0, 1) from the top 53 bits.
[[nodiscard]] double u01(std::uint64_t x) {
    return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data, std::uint32_t seed) {
    std::uint32_t c = seed ^ 0xFFFFFFFFU;
    for (std::byte b : data) {
        c = kCrcTable[(c ^ static_cast<std::uint32_t>(b)) & 0xFFU] ^ (c >> 8);
    }
    return c ^ 0xFFFFFFFFU;
}

bool FaultPlan::enabled() const noexcept {
    return drop_probability > 0.0 || corrupt_probability > 0.0 ||
           !drop_exact.empty() || !degradations.empty() || !failures.empty();
}

FaultDecision FaultPlan::decide(std::uint64_t index) const {
    FaultDecision d;
    if (std::find(drop_exact.begin(), drop_exact.end(), index) != drop_exact.end()) {
        d.drop = true;
        return d;
    }
    if (drop_probability > 0.0 &&
        u01(mix64(seed ^ (index * 2 + 0))) < drop_probability) {
        d.drop = true;
        return d;
    }
    if (corrupt_probability > 0.0) {
        const std::uint64_t h = mix64(seed ^ (index * 2 + 1));
        if (u01(h) < corrupt_probability) {
            d.corrupt = true;
            const std::uint64_t h2 = mix64(h);
            d.flip_byte = static_cast<std::size_t>(h2 >> 3);
            d.flip_bit = static_cast<unsigned>(h2 & 7U);
        }
    }
    return d;
}

double FaultPlan::degradation_factor(double t) const noexcept {
    double f = 1.0;
    for (const LinkDegradation& w : degradations) {
        if (t >= w.t_begin && t < w.t_end) f = std::max(f, w.factor);
    }
    return f;
}

std::optional<double> FaultPlan::fail_time(int rank) const noexcept {
    std::optional<double> at;
    for (const NodeFailure& nf : failures) {
        if (nf.rank != rank) continue;
        if (!at.has_value() || nf.at < *at) at = nf.at;
    }
    return at;
}

}  // namespace wavehpc::mesh
