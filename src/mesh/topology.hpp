#pragma once
// Mesh / torus interconnect topology with dimension-ordered routing.
//
// Links are modelled half-duplex (one transfer at a time per physical
// channel, either direction) and every node additionally owns an injection
// and an ejection channel, so a node's network interface serializes its own
// traffic. Dimension-ordered (X, then Y, then Z) routing is what the paper
// blames for the naive mapping's conflicts (section 5.1): "messages ...
// travel along the horizontal dimension first before moving along the
// vertical".

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace wavehpc::mesh {

struct Coord3 {
    std::size_t x = 0;
    std::size_t y = 0;
    std::size_t z = 0;
    friend bool operator==(Coord3, Coord3) = default;
};

class Topology {
public:
    /// A sx * sy * sz machine; per-axis wrap-around links when torus.
    Topology(std::size_t sx, std::size_t sy, std::size_t sz = 1, bool torus_x = false,
             bool torus_y = false, bool torus_z = false);

    [[nodiscard]] std::size_t nodes() const noexcept { return sx_ * sy_ * sz_; }
    [[nodiscard]] std::size_t sx() const noexcept { return sx_; }
    [[nodiscard]] std::size_t sy() const noexcept { return sy_; }
    [[nodiscard]] std::size_t sz() const noexcept { return sz_; }

    [[nodiscard]] std::size_t node_id(Coord3 c) const;
    [[nodiscard]] Coord3 coord(std::size_t id) const;

    /// Total channel count: axis links + per-node injection and ejection.
    [[nodiscard]] std::size_t link_count() const noexcept { return total_links_; }

    /// Channels traversed by a src -> dst message, in order:
    /// injection(src), axis links (X then Y then Z, shortest wrap direction
    /// on torus axes), ejection(dst). Throws if src == dst.
    [[nodiscard]] std::vector<std::size_t> route(Coord3 src, Coord3 dst) const;

    /// Number of axis links on the route (the "hop count").
    [[nodiscard]] std::size_t hops(Coord3 src, Coord3 dst) const;

    [[nodiscard]] std::size_t injection_link(std::size_t node) const;
    [[nodiscard]] std::size_t ejection_link(std::size_t node) const;

private:
    // Per-axis signed step sequence from a to b (shortest direction on torus).
    [[nodiscard]] std::vector<int> axis_steps(std::size_t a, std::size_t b,
                                              std::size_t size, bool torus) const;
    [[nodiscard]] std::size_t x_link(Coord3 at) const;  // link (x,y,z)-(x+1 mod sx,y,z)
    [[nodiscard]] std::size_t y_link(Coord3 at) const;
    [[nodiscard]] std::size_t z_link(Coord3 at) const;

    std::size_t sx_, sy_, sz_;
    bool tx_, ty_, tz_;
    std::size_t x_links_, y_links_, z_links_;
    std::size_t total_links_;
};

}  // namespace wavehpc::mesh
