#include "mesh/topology.hpp"

namespace wavehpc::mesh {

Topology::Topology(std::size_t sx, std::size_t sy, std::size_t sz, bool torus_x,
                   bool torus_y, bool torus_z)
    : sx_(sx), sy_(sy), sz_(sz), tx_(torus_x), ty_(torus_y), tz_(torus_z) {
    if (sx == 0 || sy == 0 || sz == 0) {
        throw std::invalid_argument("Topology: dimensions must be positive");
    }
    const auto per_axis = [](std::size_t n, bool torus) {
        return (n <= 1) ? std::size_t{0} : (torus ? n : n - 1);
    };
    x_links_ = per_axis(sx_, tx_) * sy_ * sz_;
    y_links_ = per_axis(sy_, ty_) * sx_ * sz_;
    z_links_ = per_axis(sz_, tz_) * sx_ * sy_;
    total_links_ = x_links_ + y_links_ + z_links_ + 2 * nodes();
}

std::size_t Topology::node_id(Coord3 c) const {
    if (c.x >= sx_ || c.y >= sy_ || c.z >= sz_) {
        throw std::out_of_range("Topology::node_id: coordinate out of range");
    }
    return (c.z * sy_ + c.y) * sx_ + c.x;
}

Coord3 Topology::coord(std::size_t id) const {
    if (id >= nodes()) throw std::out_of_range("Topology::coord: id out of range");
    Coord3 c;
    c.x = id % sx_;
    c.y = (id / sx_) % sy_;
    c.z = id / (sx_ * sy_);
    return c;
}

std::size_t Topology::x_link(Coord3 at) const {
    // at.x indexes the link between x and (x+1) mod sx.
    return (at.z * sy_ + at.y) * ((sx_ <= 1) ? 1 : (tx_ ? sx_ : sx_ - 1)) + at.x;
}

std::size_t Topology::y_link(Coord3 at) const {
    return x_links_ + (at.z * sx_ + at.x) * ((sy_ <= 1) ? 1 : (ty_ ? sy_ : sy_ - 1)) + at.y;
}

std::size_t Topology::z_link(Coord3 at) const {
    return x_links_ + y_links_ +
           (at.y * sx_ + at.x) * ((sz_ <= 1) ? 1 : (tz_ ? sz_ : sz_ - 1)) + at.z;
}

std::size_t Topology::injection_link(std::size_t node) const {
    if (node >= nodes()) throw std::out_of_range("Topology::injection_link");
    return x_links_ + y_links_ + z_links_ + node;
}

std::size_t Topology::ejection_link(std::size_t node) const {
    if (node >= nodes()) throw std::out_of_range("Topology::ejection_link");
    return x_links_ + y_links_ + z_links_ + nodes() + node;
}

std::vector<int> Topology::axis_steps(std::size_t a, std::size_t b, std::size_t size,
                                      bool torus) const {
    std::vector<int> steps;
    if (a == b) return steps;
    if (!torus) {
        const int dir = (b > a) ? 1 : -1;
        const std::size_t n = (b > a) ? b - a : a - b;
        steps.assign(n, dir);
        return steps;
    }
    const std::size_t fwd = (b + size - a) % size;   // +1 direction hop count
    const std::size_t bwd = (a + size - b) % size;   // -1 direction hop count
    if (fwd <= bwd) {
        steps.assign(fwd, 1);
    } else {
        steps.assign(bwd, -1);
    }
    return steps;
}

std::size_t Topology::hops(Coord3 src, Coord3 dst) const {
    return axis_steps(src.x, dst.x, sx_, tx_).size() +
           axis_steps(src.y, dst.y, sy_, ty_).size() +
           axis_steps(src.z, dst.z, sz_, tz_).size();
}

std::vector<std::size_t> Topology::route(Coord3 src, Coord3 dst) const {
    if (src == dst) {
        throw std::invalid_argument("Topology::route: src == dst (no self messages)");
    }
    std::vector<std::size_t> links;
    links.push_back(injection_link(node_id(src)));

    Coord3 cur = src;
    for (int step : axis_steps(src.x, dst.x, sx_, tx_)) {
        const std::size_t next = (step > 0) ? (cur.x + 1) % sx_ : (cur.x + sx_ - 1) % sx_;
        // Undirected link between min-side coordinate and its +1 neighbour.
        Coord3 at = cur;
        at.x = (step > 0) ? cur.x : next;
        links.push_back(x_link(at));
        cur.x = next;
    }
    for (int step : axis_steps(src.y, dst.y, sy_, ty_)) {
        const std::size_t next = (step > 0) ? (cur.y + 1) % sy_ : (cur.y + sy_ - 1) % sy_;
        Coord3 at = cur;
        at.y = (step > 0) ? cur.y : next;
        links.push_back(y_link(at));
        cur.y = next;
    }
    for (int step : axis_steps(src.z, dst.z, sz_, tz_)) {
        const std::size_t next = (step > 0) ? (cur.z + 1) % sz_ : (cur.z + sz_ - 1) % sz_;
        Coord3 at = cur;
        at.z = (step > 0) ? cur.z : next;
        links.push_back(z_link(at));
        cur.z = next;
    }
    links.push_back(ejection_link(node_id(dst)));
    return links;
}

}  // namespace wavehpc::mesh
