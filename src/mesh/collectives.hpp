#pragma once
// Collective operations built from point-to-point messages, so their cost
// (and contention) emerges from the machine model.
//
// Two global-sum implementations reproduce Appendix B's ablation: the
// Paragon NX `gssum` was observed to be "implemented using many
// many-to-many communications" and stopped scaling beyond 8 processors;
// the authors replaced it with their own parallel-prefix (recursive
// doubling) sum of one-to-one messages.

#include <span>
#include <vector>

#include "mesh/machine.hpp"

namespace wavehpc::mesh {

/// Reserved tag space; user programs should use tags below this.
inline constexpr int kCollectiveTagBase = 1 << 20;

/// NX-gssum-like all-to-all global vector sum: every rank sends its vector
/// to every other rank and sums locally. p*(p-1) messages.
void gsum_gssum(NodeCtx& ctx, std::span<double> v);

/// Parallel-prefix (recursive-doubling) global vector sum; works for any
/// process count via fold-in/fold-out of the non-power-of-two remainder.
void gsum_prefix(NodeCtx& ctx, std::span<double> v);

/// Scalar conveniences.
[[nodiscard]] double gsum_gssum(NodeCtx& ctx, double x);
[[nodiscard]] double gsum_prefix(NodeCtx& ctx, double x);

/// Global max by recursive doubling (same wire pattern as gsum_prefix).
[[nodiscard]] double gmax_prefix(NodeCtx& ctx, double x);

/// Barrier: gather-to-0 / release tree over ranks.
void gsync(NodeCtx& ctx);

/// Broadcast `bytes` from root to everyone (binomial tree over ranks).
/// On non-root ranks the vector is replaced by the received payload.
void broadcast(NodeCtx& ctx, int root, std::vector<std::byte>& bytes);

template <typename T>
void broadcast_vector(NodeCtx& ctx, int root, std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes;
    if (ctx.rank() == root) {
        bytes.resize(v.size() * sizeof(T));
        std::memcpy(bytes.data(), v.data(), bytes.size());
    }
    broadcast(ctx, root, bytes);
    if (ctx.rank() != root) {
        if (bytes.size() % sizeof(T) != 0) {
            throw std::runtime_error("broadcast_vector: payload size mismatch");
        }
        v.resize(bytes.size() / sizeof(T));
        std::memcpy(v.data(), bytes.data(), bytes.size());
    }
}

}  // namespace wavehpc::mesh
