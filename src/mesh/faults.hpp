#pragma once
// Deterministic fault injection for the mesh machine.
//
// A FaultPlan is a seeded, replayable schedule of network and node faults:
// per-message drop and bit-flip corruption draws, exact-index drops for
// targeted tests, link-degradation windows that dilate wire time, and
// per-rank fail-stop times. All per-message decisions are pure functions of
// (seed, message index); the discrete-event engine delivers messages in a
// deterministic order, so a run under a given plan replays bit-identically.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace wavehpc::mesh {

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over a byte span; `seed` chains
/// multi-span checksums: crc32(b, crc32(a)) == crc32(a ++ b).
[[nodiscard]] std::uint32_t crc32(std::span<const std::byte> data,
                                  std::uint32_t seed = 0);

/// One window of degraded wire performance: every transfer whose network
/// entry time falls in [t_begin, t_end) takes `factor` times as long
/// (factor > 1 models a link renegotiating down; the window applies
/// machine-wide, matching the single shared ledger clock).
struct LinkDegradation {
    double t_begin = 0.0;
    double t_end = 0.0;
    double factor = 1.0;
};

/// A rank that fail-stops at virtual time `at`: the node executes nothing
/// from `at` on — no sends, no acks, no further compute.
struct NodeFailure {
    int rank = 0;
    double at = 0.0;
};

/// Per-message fault decision, derived deterministically from the plan seed
/// and the global message index.
struct FaultDecision {
    bool drop = false;
    bool corrupt = false;
    std::size_t flip_byte = 0;  ///< byte index to flip (mod frame size)
    unsigned flip_bit = 0;      ///< bit 0-7 within that byte
};

struct FaultPlan {
    std::uint64_t seed = 1;
    double drop_probability = 0.0;     ///< i.i.d. per message (data and acks)
    double corrupt_probability = 0.0;  ///< i.i.d. per message, one bit flipped
    std::vector<std::uint64_t> drop_exact;  ///< message indices always dropped
    std::vector<LinkDegradation> degradations;
    std::vector<NodeFailure> failures;

    /// True if any fault source is configured.
    [[nodiscard]] bool enabled() const noexcept;

    /// Deterministic decision for the `index`-th message handed to the
    /// network (counting every frame: payloads, retransmissions, acks).
    [[nodiscard]] FaultDecision decide(std::uint64_t index) const;

    /// Wire-time dilation factor at network entry time `t` (>= 1).
    [[nodiscard]] double degradation_factor(double t) const noexcept;

    /// Fail-stop time of `rank`, if scheduled.
    [[nodiscard]] std::optional<double> fail_time(int rank) const noexcept;
};

}  // namespace wavehpc::mesh
