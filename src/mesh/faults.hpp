#pragma once
// Deterministic fault injection for the mesh machine.
//
// A FaultPlan is a seeded, replayable schedule of network and node faults:
// per-message drop and bit-flip corruption draws, exact-index drops for
// targeted tests, link-degradation windows that dilate wire time, per-rank
// fail-stop times, and directed per-link fault windows (drop/corrupt/delay
// scoped to a (src, dst, tag) triple — the substrate for asymmetric
// partitions where A hears B but not vice versa). All per-message decisions
// are pure functions of (seed, message index); the discrete-event engine
// delivers messages in a deterministic order, so a run under a given plan
// replays bit-identically.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace wavehpc::mesh {

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) over a byte span; `seed` chains
/// multi-span checksums: crc32(b, crc32(a)) == crc32(a ++ b).
[[nodiscard]] std::uint32_t crc32(std::span<const std::byte> data,
                                  std::uint32_t seed = 0);

/// One window of degraded wire performance: every transfer whose network
/// entry time falls in [t_begin, t_end) takes `factor` times as long
/// (factor > 1 models a link renegotiating down; the window applies
/// machine-wide, matching the single shared ledger clock).
struct LinkDegradation {
    double t_begin = 0.0;
    double t_end = 0.0;
    double factor = 1.0;
};

/// A rank that fail-stops at virtual time `at`: the node executes nothing
/// from `at` on — no sends, no acks, no further compute.
struct NodeFailure {
    int rank = 0;
    double at = 0.0;
};

/// A directed fault window on one link. Frames whose (src, dst, tag) match
/// (-1 wildcards any value) and whose network-entry time falls in
/// [t_begin, t_end) draw drop/corrupt against these probabilities instead of
/// only the plan-wide ones, and pick up `delay_seconds` of extra wire time.
/// Direction matters: a rule for src=0,dst=1 leaves 1→0 traffic untouched,
/// which is exactly how an asymmetric partition is expressed.
struct LinkFault {
    int src = -1;  ///< sender rank, -1 = any
    int dst = -1;  ///< receiver rank, -1 = any
    int tag = -1;  ///< message tag, -1 = any
    double t_begin = 0.0;
    double t_end = std::numeric_limits<double>::infinity();
    double drop_probability = 1.0;
    double corrupt_probability = 0.0;
    double delay_seconds = 0.0;

    [[nodiscard]] bool matches(int s, int d, int g, double t) const noexcept {
        return (src < 0 || src == s) && (dst < 0 || dst == d) &&
               (tag < 0 || tag == g) && t >= t_begin && t < t_end;
    }
};

/// Per-message fault decision, derived deterministically from the plan seed
/// and the global message index.
struct FaultDecision {
    bool drop = false;
    bool corrupt = false;
    std::size_t flip_byte = 0;  ///< byte index to flip (mod frame size)
    unsigned flip_bit = 0;      ///< bit 0-7 within that byte
    double delay = 0.0;         ///< extra wire seconds from matching links
};

struct FaultPlan {
    std::uint64_t seed = 1;
    double drop_probability = 0.0;     ///< i.i.d. per message (data and acks)
    double corrupt_probability = 0.0;  ///< i.i.d. per message, one bit flipped
    std::vector<std::uint64_t> drop_exact;  ///< message indices always dropped
    std::vector<LinkDegradation> degradations;
    std::vector<NodeFailure> failures;
    std::vector<LinkFault> links;  ///< directed per-link windows

    /// True if any fault source is configured.
    [[nodiscard]] bool enabled() const noexcept;

    /// Deterministic decision for the `index`-th message handed to the
    /// network (counting every frame: payloads, retransmissions, acks).
    [[nodiscard]] FaultDecision decide(std::uint64_t index) const;

    /// Link-aware decision: the plan-wide draw merged with every LinkFault
    /// window matching (src, dst, tag) at network-entry time `t`. Link rules
    /// draw from independent deterministic lanes of the same seed, so adding
    /// a directed rule never perturbs the plan-wide sequence.
    [[nodiscard]] FaultDecision decide_frame(std::uint64_t index, int src,
                                             int dst, int tag, double t) const;

    /// Wire-time dilation factor at network entry time `t` (>= 1).
    [[nodiscard]] double degradation_factor(double t) const noexcept;

    /// Fail-stop time of `rank`, if scheduled.
    [[nodiscard]] std::optional<double> fail_time(int rank) const noexcept;

    /// Parse a comma-separated spec into a plan, e.g.
    ///   "drop=0.01,corrupt=0.001,link=0>1:100:180:1.0;*>2:0:50:0.5:0.1:2,
    ///    fail=3:250,degrade=100:200:4,drop_exact=7:19"
    /// Keys: drop, corrupt (probabilities); drop_exact (':'-separated
    /// indices); fail (';'-separated RANK:AT_MS); degrade (';'-separated
    /// T0_MS:T1_MS:FACTOR); link (';'-separated
    /// SRC>DST:T0_MS:T1_MS:DROP[:CORRUPT[:DELAY_MS]], '*' wildcards, and
    /// an optional '@TAG' suffix on the SRC>DST pair scopes the rule to one
    /// message tag). Malformed input throws std::invalid_argument naming
    /// the offending token and its byte offset within `spec`.
    [[nodiscard]] static FaultPlan parse(std::string_view spec,
                                         std::uint64_t seed);
};

}  // namespace wavehpc::mesh
