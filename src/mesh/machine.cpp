#include "mesh/machine.hpp"

#include <algorithm>
#include <stdexcept>

namespace wavehpc::mesh {

MachineProfile MachineProfile::paragon_pvm() {
    return {
        .name = "paragon-pvm",
        .topo = Topology(4, 16),  // 64-node machine, partitions allocated 4 wide
        .send_overhead = 0.4e-3,
        .recv_overhead = 0.6e-3,
        .per_hop = 20e-6,
        .byte_time = 1.0 / 3.0e6,
    };
}

MachineProfile MachineProfile::paragon_nx() {
    return {
        .name = "paragon-nx",
        .topo = Topology(4, 16),
        .send_overhead = 60e-6,
        .recv_overhead = 60e-6,
        .per_hop = 10e-6,
        .byte_time = 1.0 / 35.0e6,
    };
}

MachineProfile MachineProfile::cray_t3d_pvm() {
    return {
        .name = "cray-t3d-pvm",
        .topo = Topology(8, 8, 4, true, true, true),
        .send_overhead = 150e-6,
        .recv_overhead = 150e-6,
        .per_hop = 2e-6,
        .byte_time = 1.0 / 25.0e6,
    };
}

MachineProfile MachineProfile::test_profile(std::size_t sx, std::size_t sy) {
    return {
        .name = "test",
        .topo = Topology(sx, sy),
        .send_overhead = 1e-3,
        .recv_overhead = 1e-3,
        .per_hop = 1e-4,
        .byte_time = 1e-6,
    };
}

int NodeCtx::nprocs() const noexcept {
    return static_cast<int>(machine_->rs_->pid_of_rank.size());
}

void NodeCtx::compute(double seconds) {
    machine_->rs_->stats[static_cast<std::size_t>(rank_)].useful_seconds += seconds;
    proc_->advance(seconds);
}

void NodeCtx::compute_redundant(double seconds) {
    machine_->rs_->stats[static_cast<std::size_t>(rank_)].redundant_seconds += seconds;
    proc_->advance(seconds);
}

void NodeCtx::charge_comm(double seconds) {
    machine_->rs_->stats[static_cast<std::size_t>(rank_)].comm_seconds += seconds;
    proc_->advance(seconds);
}

void NodeCtx::csend(int tag, int dst, std::span<const std::byte> data) {
    machine_->do_send(*this, tag, dst, data);
}

Message NodeCtx::crecv(int tag, int src) { return machine_->do_recv(*this, tag, src); }

const NodeStats& NodeCtx::stats() const {
    return machine_->rs_->stats[static_cast<std::size_t>(rank_)];
}

Machine::Machine(MachineProfile profile) : profile_(std::move(profile)) {}

void Machine::do_send(NodeCtx& ctx, int tag, int dst, std::span<const std::byte> data) {
    RunState& rs = *rs_;
    const auto nprocs = static_cast<int>(rs.pid_of_rank.size());
    if (dst < 0 || dst >= nprocs) throw std::invalid_argument("csend: bad destination");
    if (dst == ctx.rank()) throw std::invalid_argument("csend: self messages unsupported");
    if (tag < 0) throw std::invalid_argument("csend: tag must be >= 0");

    NodeStats& st = rs.stats[static_cast<std::size_t>(ctx.rank())];
    const double t_call = ctx.proc_->now();

    // Software send overhead; the call returns once the message is handed
    // to the network (buffered send, NX csend flavour).
    ctx.proc_->advance(profile_.send_overhead);
    const double ready = ctx.proc_->now();

    const Coord3 src_at = rs.placement[static_cast<std::size_t>(ctx.rank())];
    const Coord3 dst_at = rs.placement[static_cast<std::size_t>(dst)];
    const auto path = profile_.topo.route(src_at, dst_at);
    const double duration =
        static_cast<double>(profile_.topo.hops(src_at, dst_at)) * profile_.per_hop +
        static_cast<double>(data.size()) * profile_.byte_time;
    const double start = rs.ledger.reserve_path(path, ready, duration);

    Message msg;
    msg.src = ctx.rank();
    msg.tag = tag;
    msg.data.assign(data.begin(), data.end());
    msg.arrival = start + duration;
    rs.mailbox[static_cast<std::size_t>(dst)].push_back(std::move(msg));

    if (record_trace_) {
        rs.trace.push_back({ready, start, start + duration, ctx.rank(), dst, tag,
                            data.size()});
    }

    st.comm_seconds += ctx.proc_->now() - t_call;
    ++st.messages_sent;
    st.bytes_sent += data.size();
    ctx.proc_->notify(rs.pid_of_rank[static_cast<std::size_t>(dst)]);
}

Message Machine::do_recv(NodeCtx& ctx, int tag, int src) {
    RunState& rs = *rs_;
    const auto nprocs = static_cast<int>(rs.pid_of_rank.size());
    if (src != kAnySource && (src < 0 || src >= nprocs)) {
        throw std::invalid_argument("crecv: bad source");
    }

    auto& box = rs.mailbox[static_cast<std::size_t>(ctx.rank())];
    const auto match = [tag, src](const Message& m) {
        return (tag == kAnyTag || m.tag == tag) && (src == kAnySource || m.src == src);
    };

    const double t_call = ctx.proc_->now();
    std::size_t found = box.size();
    ctx.proc_->block([&]() -> std::optional<double> {
        for (std::size_t i = 0; i < box.size(); ++i) {
            if (match(box[i])) {
                found = i;
                return box[i].arrival;
            }
        }
        return std::nullopt;
    });
    if (found >= box.size() || !match(box[found])) {
        // The poll stored `found` when it fired; re-scan defensively in case
        // an earlier matching message was inserted before we were resumed.
        found = box.size();
        for (std::size_t i = 0; i < box.size(); ++i) {
            if (match(box[i])) {
                found = i;
                break;
            }
        }
        if (found == box.size()) throw std::logic_error("crecv: woken without message");
    }
    Message msg = std::move(box[found]);
    box.erase(box.begin() + static_cast<std::ptrdiff_t>(found));

    ctx.proc_->advance(profile_.recv_overhead);
    rs.stats[static_cast<std::size_t>(ctx.rank())].comm_seconds +=
        ctx.proc_->now() - t_call;
    return msg;
}

Machine::RunResult Machine::run(std::size_t nprocs, const std::vector<Coord3>& placement,
                                const NodeBody& body) {
    if (nprocs == 0) throw std::invalid_argument("Machine::run: nprocs must be > 0");
    if (placement.size() != nprocs) {
        throw std::invalid_argument("Machine::run: placement size != nprocs");
    }
    for (std::size_t i = 0; i < nprocs; ++i) {
        (void)profile_.topo.node_id(placement[i]);  // bounds check
        for (std::size_t j = i + 1; j < nprocs; ++j) {
            if (placement[i] == placement[j]) {
                throw std::invalid_argument("Machine::run: duplicate placement");
            }
        }
    }

    rs_ = std::make_unique<RunState>(profile_.topo.link_count());
    rs_->mailbox.resize(nprocs);
    rs_->placement = placement;
    rs_->stats.resize(nprocs);
    rs_->pid_of_rank.resize(nprocs);

    sim::Engine engine;
    for (std::size_t r = 0; r < nprocs; ++r) {
        rs_->pid_of_rank[r] = engine.add_process(
            "rank" + std::to_string(r), [this, r, &body](sim::Proc& proc) {
                NodeCtx ctx(this, &proc, static_cast<int>(r));
                body(ctx);
                rs_->stats[r].finish_time = proc.now();
            });
    }
    engine.run();

    RunResult res;
    res.makespan = engine.makespan();
    res.stats = std::move(rs_->stats);
    res.contention_delay = rs_->ledger.total_contention_delay();
    res.messages = rs_->ledger.reservations();
    res.trace = std::move(rs_->trace);
    rs_.reset();
    return res;
}

Machine::RunResult Machine::run(std::size_t nprocs, const NodeBody& body) {
    std::vector<Coord3> placement;
    placement.reserve(nprocs);
    for (std::size_t r = 0; r < nprocs; ++r) {
        placement.push_back(profile_.topo.coord(r));
    }
    return run(nprocs, placement, body);
}

}  // namespace wavehpc::mesh
