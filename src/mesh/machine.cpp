#include "mesh/machine.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace wavehpc::mesh {

namespace {

// Internal unwind signal for a fail-stopped node: tears down the node body
// without erroring the run. Deliberately not derived from std::exception so
// node programs cannot swallow it.
struct NodeFailStopSignal {};

constexpr std::uint32_t kFrameMagic = 0x57485243U;  // "WHRC"
constexpr std::size_t kFrameHeaderBytes = 12;       // magic + seq + crc
constexpr std::size_t kAckBytes = 16;               // NIC-level ack frame

void put_u32(std::byte* dst, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        dst[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFFU);
    }
}

std::uint32_t get_u32(const std::byte* src) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(src[i]) << (8 * i);
    }
    return v;
}

/// CRC over everything the header protects: the sequence number bytes
/// chained with the payload (the CRC slot itself is excluded).
std::uint32_t frame_crc(const std::vector<std::byte>& frame) {
    const std::uint32_t seq_crc = crc32({frame.data() + 4, 4});
    return crc32({frame.data() + kFrameHeaderBytes, frame.size() - kFrameHeaderBytes},
                 seq_crc);
}

std::vector<std::byte> build_frame(std::uint32_t seq, std::span<const std::byte> data) {
    std::vector<std::byte> frame(kFrameHeaderBytes + data.size());
    put_u32(frame.data(), kFrameMagic);
    put_u32(frame.data() + 4, seq);
    std::copy(data.begin(), data.end(), frame.begin() + kFrameHeaderBytes);
    // CRC covers seq + payload; it is written last, after what it protects.
    put_u32(frame.data() + 8, frame_crc(frame));
    return frame;
}

bool frame_valid(const std::vector<std::byte>& frame) {
    if (frame.size() < kFrameHeaderBytes) return false;
    if (get_u32(frame.data()) != kFrameMagic) return false;
    return get_u32(frame.data() + 8) == frame_crc(frame);
}

std::string recv_desc(int tag, int src, const char* verb) {
    std::ostringstream os;
    os << verb << "(tag=";
    if (tag == kAnyTag) {
        os << "any";
    } else {
        os << tag;
    }
    os << ", src=";
    if (src == kAnySource) {
        os << "any";
    } else {
        os << src;
    }
    os << ')';
    return os.str();
}

}  // namespace

MachineProfile MachineProfile::paragon_pvm() {
    return {
        .name = "paragon-pvm",
        .topo = Topology(4, 16),  // 64-node machine, partitions allocated 4 wide
        .send_overhead = 0.4e-3,
        .recv_overhead = 0.6e-3,
        .per_hop = 20e-6,
        .byte_time = 1.0 / 3.0e6,
        .faults = {},
    };
}

MachineProfile MachineProfile::paragon_nx() {
    return {
        .name = "paragon-nx",
        .topo = Topology(4, 16),
        .send_overhead = 60e-6,
        .recv_overhead = 60e-6,
        .per_hop = 10e-6,
        .byte_time = 1.0 / 35.0e6,
        .faults = {},
    };
}

MachineProfile MachineProfile::cray_t3d_pvm() {
    return {
        .name = "cray-t3d-pvm",
        .topo = Topology(8, 8, 4, true, true, true),
        .send_overhead = 150e-6,
        .recv_overhead = 150e-6,
        .per_hop = 2e-6,
        .byte_time = 1.0 / 25.0e6,
        .faults = {},
    };
}

MachineProfile MachineProfile::test_profile(std::size_t sx, std::size_t sy) {
    return {
        .name = "test",
        .topo = Topology(sx, sy),
        .send_overhead = 1e-3,
        .recv_overhead = 1e-3,
        .per_hop = 1e-4,
        .byte_time = 1e-6,
        .faults = {},
    };
}

int NodeCtx::nprocs() const noexcept {
    return static_cast<int>(machine_->rs_->pid_of_rank.size());
}

void NodeCtx::charge(double seconds, double NodeStats::*category) {
    machine_->advance_with_fail(*this, seconds, category);
}

void NodeCtx::compute(double seconds) { charge(seconds, &NodeStats::useful_seconds); }

void NodeCtx::compute_redundant(double seconds) {
    charge(seconds, &NodeStats::redundant_seconds);
}

void NodeCtx::charge_comm(double seconds) { charge(seconds, &NodeStats::comm_seconds); }

void NodeCtx::csend(int tag, int dst, std::span<const std::byte> data) {
    if (machine_->reliable_.has_value()) {
        if (!machine_->do_send_reliable(*this, tag, dst, data, *machine_->reliable_)) {
            std::ostringstream os;
            os << "csend_reliable: no ack from rank " << dst << " after "
               << machine_->reliable_->max_retries + 1 << " attempts (tag " << tag
               << ')';
            throw TransportError(os.str());
        }
        return;
    }
    machine_->do_send(*this, tag, dst, data);
}

Message NodeCtx::crecv(int tag, int src) {
    auto m = machine_->do_recv(*this, tag, src, std::nullopt);
    if (!m.has_value()) throw std::logic_error("crecv: impossible timeout");
    return std::move(*m);
}

std::optional<Message> NodeCtx::crecv_timeout(int tag, int src, double timeout) {
    if (timeout < 0.0) throw std::invalid_argument("crecv_timeout: negative timeout");
    return machine_->do_recv(*this, tag, src, timeout);
}

bool NodeCtx::csend_reliable(int tag, int dst, std::span<const std::byte> data,
                             const ReliableParams& params) {
    return machine_->do_send_reliable(*this, tag, dst, data, params);
}

const NodeStats& NodeCtx::stats() const {
    return machine_->rs_->stats[static_cast<std::size_t>(rank_)];
}

Machine::Machine(MachineProfile profile) : profile_(std::move(profile)) {}

void Machine::check_fail_stop(NodeCtx& ctx) const {
    const auto fail = fail_time_of(ctx.rank());
    if (fail.has_value() && ctx.proc_->now() >= *fail) throw NodeFailStopSignal{};
}

void Machine::advance_with_fail(NodeCtx& ctx, double dt, double NodeStats::*category) {
    if (dt < 0.0) throw std::invalid_argument("charge: negative seconds");
    NodeStats& st = rs_->stats[static_cast<std::size_t>(ctx.rank())];
    double* slot = ctx.recovery_ ? &st.recovery_seconds : &(st.*category);
    const auto fail = fail_time_of(ctx.rank());
    if (fail.has_value() && ctx.proc_->now() + dt >= *fail) {
        const double partial = std::max(0.0, *fail - ctx.proc_->now());
        *slot += partial;
        ctx.proc_->advance(partial);
        throw NodeFailStopSignal{};
    }
    *slot += dt;
    ctx.proc_->advance(dt);
}

void Machine::validate_send(const NodeCtx& ctx, int tag, int dst) const {
    const auto nprocs = static_cast<int>(rs_->pid_of_rank.size());
    if (dst < 0 || dst >= nprocs) throw std::invalid_argument("csend: bad destination");
    if (dst == ctx.rank()) throw std::invalid_argument("csend: self messages unsupported");
    if (tag < 0) throw std::invalid_argument("csend: tag must be >= 0");
}

void Machine::do_send(NodeCtx& ctx, int tag, int dst, std::span<const std::byte> data) {
    RunState& rs = *rs_;
    validate_send(ctx, tag, dst);
    check_fail_stop(ctx);

    NodeStats& st = rs.stats[static_cast<std::size_t>(ctx.rank())];

    // Software send overhead; the call returns once the message is handed
    // to the network (buffered send, NX csend flavour).
    advance_with_fail(ctx, profile_.send_overhead, &NodeStats::comm_seconds);
    const double ready = ctx.proc_->now();

    const Coord3 src_at = rs.placement[static_cast<std::size_t>(ctx.rank())];
    const Coord3 dst_at = rs.placement[static_cast<std::size_t>(dst)];
    const auto path = profile_.topo.route(src_at, dst_at);
    // The fault draw happens at network entry so a matching LinkFault delay
    // can stretch this frame's wire time before the path is reserved.
    const FaultDecision fd =
        profile_.faults.decide_frame(rs.msg_counter++, ctx.rank(), dst, tag, ready);
    const double duration =
        static_cast<double>(profile_.topo.hops(src_at, dst_at)) * profile_.per_hop +
        static_cast<double>(data.size()) * profile_.byte_time + fd.delay;
    const auto res = rs.ledger.reserve_path_ex(path, ready, duration);
    const double arrival = res.start + res.duration;

    if (fd.drop) {
        ++rs.injected_drops;
    } else {
        Message msg;
        msg.src = ctx.rank();
        msg.tag = tag;
        msg.data.assign(data.begin(), data.end());
        msg.arrival = arrival;
        if (fd.corrupt && !msg.data.empty()) {
            // Raw transport carries no checksum: the flipped payload is
            // delivered as-is and the receiver cannot tell.
            ++rs.injected_corruptions;
            msg.data[fd.flip_byte % msg.data.size()] ^=
                static_cast<std::byte>(1U << fd.flip_bit);
        }
        rs.mailbox[static_cast<std::size_t>(dst)].push_back(std::move(msg));
        ctx.proc_->notify(rs.pid_of_rank[static_cast<std::size_t>(dst)]);
    }

    if (record_trace_) {
        rs.trace.push_back({ready, res.start, arrival, ctx.rank(), dst, tag,
                            data.size()});
    }
    ++st.messages_sent;
    st.bytes_sent += data.size();
}

bool Machine::do_send_reliable(NodeCtx& ctx, int tag, int dst,
                               std::span<const std::byte> data,
                               const ReliableParams& params) {
    RunState& rs = *rs_;
    validate_send(ctx, tag, dst);
    check_fail_stop(ctx);

    NodeStats& st = rs.stats[static_cast<std::size_t>(ctx.rank())];
    NodeStats& peer_st = rs.stats[static_cast<std::size_t>(dst)];

    const Coord3 src_at = rs.placement[static_cast<std::size_t>(ctx.rank())];
    const Coord3 dst_at = rs.placement[static_cast<std::size_t>(dst)];
    const auto path = profile_.topo.route(src_at, dst_at);
    const auto back_path = profile_.topo.route(dst_at, src_at);
    const double hop_time =
        static_cast<double>(profile_.topo.hops(src_at, dst_at)) * profile_.per_hop;

    const auto key = std::make_tuple(ctx.rank(), dst, tag);
    const std::uint32_t seq = rs.next_seq[key];
    const std::vector<std::byte> frame = build_frame(seq, data);

    const double data_wire =
        hop_time + static_cast<double>(frame.size()) * profile_.byte_time;
    const double ack_wire =
        hop_time + static_cast<double>(kAckBytes) * profile_.byte_time;
    const double rtt =
        data_wire + ack_wire + profile_.send_overhead + profile_.recv_overhead;
    const double rto0 = params.rto0 > 0.0 ? params.rto0 : 2.0 * rtt;
    const double rto_cap = params.rto_cap > 0.0 ? params.rto_cap : 64.0 * rto0;

    double rto = rto0;
    for (int attempt = 0; attempt <= params.max_retries; ++attempt) {
        if (attempt > 0) ++st.retransmits;
        advance_with_fail(ctx, profile_.send_overhead, &NodeStats::comm_seconds);
        const double ready = ctx.proc_->now();

        const FaultDecision fd = profile_.faults.decide_frame(
            rs.msg_counter++, ctx.rank(), dst, tag, ready);
        const auto res =
            rs.ledger.reserve_path_ex(path, ready, data_wire + fd.delay);
        const double arrival = res.start + res.duration;
        ++st.messages_sent;
        st.bytes_sent += frame.size();
        if (record_trace_) {
            rs.trace.push_back({ready, res.start, arrival, ctx.rank(), dst, tag,
                                frame.size()});
        }

        // NIC-level outcome of this attempt, resolved synchronously: the
        // engine runs actions in causal virtual-time order and this channel
        // is stop-and-wait, so nothing can race on its sequence state.
        bool ack_ok = false;
        double ack_arrival = 0.0;
        const auto peer_fail = fail_time_of(dst);
        if (fd.drop) {
            ++rs.injected_drops;
        } else if (peer_fail.has_value() && arrival >= *peer_fail) {
            // The peer's NIC went down with it: the frame is lost on
            // arrival and no ack will ever come.
        } else {
            std::vector<std::byte> wire_frame = frame;
            if (fd.corrupt) {
                ++rs.injected_corruptions;
                wire_frame[fd.flip_byte % wire_frame.size()] ^=
                    static_cast<std::byte>(1U << fd.flip_bit);
            }
            if (!frame_valid(wire_frame)) {
                // Receiver NIC rejects the frame (CRC/magic); no ack.
                ++peer_st.corruptions_detected;
            } else {
                std::uint32_t& expected = rs.expected_seq[key];
                if (seq == expected) {
                    ++expected;
                    Message msg;
                    msg.src = ctx.rank();
                    msg.tag = tag;
                    msg.data.assign(wire_frame.begin() +
                                        static_cast<std::ptrdiff_t>(kFrameHeaderBytes),
                                    wire_frame.end());
                    msg.arrival = arrival;
                    rs.mailbox[static_cast<std::size_t>(dst)].push_back(std::move(msg));
                    ctx.proc_->notify(rs.pid_of_rank[static_cast<std::size_t>(dst)]);
                }
                // Valid frames — fresh or duplicate — are acknowledged by
                // the receiving NIC; the ack travels the reverse route and
                // is itself subject to the fault plan.
                const FaultDecision fa = profile_.faults.decide_frame(
                    rs.msg_counter++, dst, ctx.rank(), tag, arrival);
                const auto ares = rs.ledger.reserve_path_ex(
                    back_path, arrival, ack_wire + fa.delay);
                if (fa.drop) {
                    ++rs.injected_drops;
                } else if (fa.corrupt) {
                    // A corrupted ack is rejected by the sender's NIC.
                    ++rs.injected_corruptions;
                    ++st.corruptions_detected;
                } else {
                    ack_ok = true;
                    ack_arrival = ares.start + ares.duration;
                }
            }
        }

        if (ack_ok) {
            // Wait out the ack's flight time (dying mid-wait if the fail
            // time strikes first).
            const double wait = std::max(0.0, ack_arrival - ctx.proc_->now());
            advance_with_fail(ctx, wait, &NodeStats::comm_seconds);
            rs.next_seq[key] = seq + 1;
            return true;
        }

        // No ack will come from this attempt: sleep out the retransmission
        // timer (dying at the fail time if it strikes first), then back off.
        advance_with_fail(ctx, rto, &NodeStats::comm_seconds);
        ++st.recv_timeouts;
        rto = std::min(rto * 2.0, rto_cap);
    }
    // Giving up: the data frame may have been consumed even though every ack
    // was lost, in which case the receiver's expected seq already advanced.
    // Mirror it (the model-level stand-in for acks carrying the expected seq)
    // so the next send on this channel is neither suppressed as a duplicate
    // nor skipped ahead of a never-delivered frame.
    rs.next_seq[key] = rs.expected_seq[key];
    return false;
}

std::optional<Message> Machine::do_recv(NodeCtx& ctx, int tag, int src,
                                        std::optional<double> timeout) {
    RunState& rs = *rs_;
    const auto nprocs = static_cast<int>(rs.pid_of_rank.size());
    if (src != kAnySource && (src < 0 || src >= nprocs)) {
        throw std::invalid_argument("crecv: bad source");
    }
    check_fail_stop(ctx);

    auto& box = rs.mailbox[static_cast<std::size_t>(ctx.rank())];
    const auto match = [tag, src](const Message& m) {
        return (tag == kAnyTag || m.tag == tag) && (src == kAnySource || m.src == src);
    };
    // Earliest-arrival matching message (ties broken by insertion order),
    // so wildcard receives observe network arrival order, not the order in
    // which senders happened to be scheduled.
    const auto best_match = [&]() -> std::size_t {
        std::size_t best = box.size();
        for (std::size_t i = 0; i < box.size(); ++i) {
            if (match(box[i]) && (best == box.size() || box[i].arrival < box[best].arrival)) {
                best = i;
            }
        }
        return best;
    };

    NodeStats& st = rs.stats[static_cast<std::size_t>(ctx.rank())];
    const double t_call = ctx.proc_->now();
    const auto fail = fail_time_of(ctx.rank());

    std::optional<double> user_deadline;
    if (timeout.has_value()) user_deadline = t_call + *timeout;
    std::optional<double> deadline = user_deadline;
    if (fail.has_value() && (!deadline.has_value() || *fail < *deadline)) {
        deadline = fail;
    }

    const auto poll = [&]() -> std::optional<double> {
        const std::size_t i = best_match();
        if (i == box.size()) return std::nullopt;
        return box[i].arrival;
    };
    const std::string desc = recv_desc(tag, src, "crecv");

    bool satisfied;
    if (deadline.has_value()) {
        satisfied = ctx.proc_->block_until(poll, *deadline, desc);
    } else {
        ctx.proc_->block(poll, desc);
        satisfied = true;
    }

    const auto book_wait = [&] {
        const double wait = ctx.proc_->now() - t_call;
        double* slot =
            ctx.recovery_ ? &st.recovery_seconds : &st.comm_seconds;
        *slot += wait;
    };

    if (!satisfied) {
        book_wait();
        // The deadline that fired is the earlier of fail-stop and the user
        // timeout; fail-stop wins ties (the node is dead either way).
        if (fail.has_value() &&
            (!user_deadline.has_value() || *fail <= *user_deadline)) {
            throw NodeFailStopSignal{};
        }
        ++st.recv_timeouts;
        return std::nullopt;
    }

    const std::size_t found = best_match();
    if (found == box.size()) throw std::logic_error("crecv: woken without message");
    Message msg = std::move(box[found]);
    box.erase(box.begin() + static_cast<std::ptrdiff_t>(found));

    book_wait();
    advance_with_fail(ctx, profile_.recv_overhead, &NodeStats::comm_seconds);
    return msg;
}

Machine::RunResult Machine::run(std::size_t nprocs, const std::vector<Coord3>& placement,
                                const NodeBody& body) {
    if (nprocs == 0) throw std::invalid_argument("Machine::run: nprocs must be > 0");
    if (placement.size() != nprocs) {
        throw std::invalid_argument("Machine::run: placement size != nprocs");
    }
    for (std::size_t i = 0; i < nprocs; ++i) {
        (void)profile_.topo.node_id(placement[i]);  // bounds check
        for (std::size_t j = i + 1; j < nprocs; ++j) {
            if (placement[i] == placement[j]) {
                throw std::invalid_argument("Machine::run: duplicate placement");
            }
        }
    }

    rs_ = std::make_unique<RunState>(profile_.topo.link_count());
    // The run state must not outlive this call even when a node body (or the
    // engine) throws; a stale state would poison the next run().
    struct RunStateGuard {
        std::unique_ptr<RunState>& rs;
        ~RunStateGuard() { rs.reset(); }
    } guard{rs_};

    rs_->mailbox.resize(nprocs);
    rs_->placement = placement;
    rs_->stats.resize(nprocs);
    rs_->pid_of_rank.resize(nprocs);
    if (!profile_.faults.degradations.empty()) {
        rs_->ledger.set_time_dilation(
            [this](double t) { return profile_.faults.degradation_factor(t); });
    }

    sim::Engine engine;
    if (schedule_seed_.has_value()) {
        engine.set_schedule_policy(std::make_unique<sim::SeededTieBreak>(*schedule_seed_));
    }
    for (std::size_t r = 0; r < nprocs; ++r) {
        rs_->pid_of_rank[r] = engine.add_process(
            "rank" + std::to_string(r), [this, r, &body](sim::Proc& proc) {
                NodeCtx ctx(this, &proc, static_cast<int>(r));
                const auto annotate = [r](const char* what) {
                    return "rank" + std::to_string(r) + ": " + what;
                };
                try {
                    body(ctx);
                } catch (const NodeFailStopSignal&) {
                    // Scheduled fail-stop: the node simply ends here.
                    rs_->stats[r].fail_stopped = true;
                } catch (const std::invalid_argument& e) {
                    throw std::invalid_argument(annotate(e.what()));
                } catch (const std::logic_error& e) {
                    throw std::logic_error(annotate(e.what()));
                } catch (const TransportError& e) {
                    throw TransportError(annotate(e.what()));
                } catch (const std::runtime_error& e) {
                    throw std::runtime_error(annotate(e.what()));
                } catch (const std::exception& e) {
                    throw std::runtime_error(annotate(e.what()));
                }
                // Engine-internal signals (abort) pass through untouched.
                rs_->stats[r].finish_time = proc.now();
            });
    }
    engine.run();

    RunResult res;
    res.makespan = engine.makespan();
    res.stats = std::move(rs_->stats);
    res.contention_delay = rs_->ledger.total_contention_delay();
    res.messages = rs_->ledger.reservations();
    res.injected_drops = rs_->injected_drops;
    res.injected_corruptions = rs_->injected_corruptions;
    res.trace = std::move(rs_->trace);
    return res;
}

Machine::RunResult Machine::run(std::size_t nprocs, const NodeBody& body) {
    std::vector<Coord3> placement;
    placement.reserve(nprocs);
    for (std::size_t r = 0; r < nprocs; ++r) {
        placement.push_back(profile_.topo.coord(r));
    }
    return run(nprocs, placement, body);
}

}  // namespace wavehpc::mesh
