#include "mesh/ledger.hpp"

#include <algorithm>
#include <stdexcept>

namespace wavehpc::mesh {

LinkLedger::LinkLedger(std::size_t link_count)
    : links_(link_count), busy_(link_count, 0.0) {}

double LinkLedger::earliest_free(std::size_t link, double ready, double duration) const {
    const auto& iv = links_[link];
    double t = ready;
    // Intervals are sorted and non-overlapping; slide t past every conflict.
    for (const Interval& b : iv) {
        if (b.end <= t) continue;
        if (b.start >= t + duration) break;
        t = b.end;
    }
    return t;
}

void LinkLedger::insert(std::size_t link, double start, double duration) {
    auto& iv = links_[link];
    const Interval b{start, start + duration};
    auto pos = std::lower_bound(iv.begin(), iv.end(), b,
                                [](const Interval& a, const Interval& x) {
                                    return a.start < x.start;
                                });
    iv.insert(pos, b);
    busy_[link] += duration;
}

double LinkLedger::reserve_path(std::span<const std::size_t> path, double ready,
                                double duration) {
    return reserve_path_ex(path, ready, duration).start;
}

LinkLedger::Reservation LinkLedger::reserve_path_ex(std::span<const std::size_t> path,
                                                    double ready, double duration) {
    if (ready < 0.0 || duration < 0.0) {
        throw std::invalid_argument("LinkLedger::reserve_path: negative time");
    }
    for (std::size_t l : path) {
        if (l >= links_.size()) {
            throw std::out_of_range("LinkLedger::reserve_path: bad link id");
        }
    }
    if (dilation_) duration *= dilation_(ready);
    if (duration == 0.0 || path.empty()) return {ready, duration};

    double start = ready;
    for (;;) {
        double next = start;
        for (std::size_t l : path) {
            next = std::max(next, earliest_free(l, next, duration));
        }
        if (next == start) break;
        start = next;
    }
    for (std::size_t l : path) insert(l, start, duration);
    delay_ += start - ready;
    ++reservations_;
    return {start, duration};
}

double LinkLedger::busy_seconds(std::size_t link) const {
    if (link >= busy_.size()) throw std::out_of_range("LinkLedger::busy_seconds");
    return busy_[link];
}

}  // namespace wavehpc::mesh
