#pragma once
// Functional SIMD array machine: register planes the size of the logical
// problem, manipulated by array-wide instructions that both transform the
// data and charge cycles through the same cost rules as the schedule
// calculator (CycleModel). Running an algorithm on the PeArray therefore
// yields the real coefficients AND a cycle ledger that must agree with the
// analytic schedule — a consistency that is unit-tested.
//
// Toroidal semantics throughout: the X-net wraps, so shifts implement
// periodic boundary handling for free (why the MasPar algorithms pair with
// BoundaryMode::Periodic). Plane shapes are carried by the planes
// themselves (they shrink as the decomposition compacts); the array charges
// each instruction for the virtualization layers the operand needs.

#include "core/image.hpp"
#include "maspar/cycle_model.hpp"

namespace wavehpc::maspar {

class PeArray {
public:
    using Plane = core::ImageF;

    PeArray(MasParProfile profile, Virtualization virt)
        : model_(std::move(profile)), virt_(virt) {}

    /// Fresh zero plane (allocation is host staging: no cycles).
    [[nodiscard]] static Plane make_plane(std::size_t rows, std::size_t cols,
                                          float fill = 0.0F) {
        return {rows, cols, fill};
    }

    /// acc += coeff * x on every PE: one ACU broadcast + one FP MAC.
    void mac_broadcast(Plane& acc, const Plane& x, float coeff);

    /// Toroidal plane shifts by `dist` X-net hops. West: out(c) = in(c+dist).
    void shift_west(Plane& plane, std::size_t dist);
    /// North: out(r) = in(r+dist).
    void shift_north(Plane& plane, std::size_t dist);

    /// Global-router compaction keeping columns 2c+phase: out is rows x
    /// cols/2; cluster-serialized router traffic is charged.
    [[nodiscard]] Plane router_compact_cols(const Plane& in, std::size_t phase);
    /// Keeping rows 2r+phase: out is rows/2 x cols.
    [[nodiscard]] Plane router_compact_rows(const Plane& in, std::size_t phase);

    /// ACU bookkeeping starting a decomposition level.
    void level_setup();

    [[nodiscard]] const CycleBreakdown& cycles() const noexcept { return cycles_; }
    [[nodiscard]] double seconds() const noexcept {
        return cycles_.total() / profile().clock_hz;
    }
    [[nodiscard]] const MasParProfile& profile() const noexcept {
        return model_.profile();
    }
    [[nodiscard]] const CycleModel& model() const noexcept { return model_; }
    [[nodiscard]] Virtualization virtualization() const noexcept { return virt_; }

private:
    CycleModel model_;
    Virtualization virt_;
    CycleBreakdown cycles_;
};

}  // namespace wavehpc::maspar
