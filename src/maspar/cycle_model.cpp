#include "maspar/cycle_model.hpp"

#include <stdexcept>

namespace wavehpc::maspar {

std::size_t CycleModel::layers(std::size_t elems) const {
    const std::size_t pes = profile_.array_dim * profile_.array_dim;
    return std::max<std::size_t>(1, (elems + pes - 1) / pes);
}

CycleBreakdown CycleModel::shift_cost(std::size_t rows, std::size_t cols,
                                      std::size_t distance, Virtualization virt) const {
    // Shift is along the `cols` axis; callers swap rows/cols for a vertical
    // shift.
    CycleBreakdown c;
    if (distance == 0) return c;
    const std::size_t v = layers(rows * cols);
    switch (virt) {
        case Virtualization::CutAndStack:
            // Every layer's element crosses a PE boundary on every hop.
            c.xnet = static_cast<double>(v * distance) * profile_.cyc_xnet_step;
            break;
        case Virtualization::Hierarchical: {
            // Each PE holds a contiguous block_r x block_c tile; only the
            // tile edge travels over the X-net, the rest moves locally.
            const std::size_t block_r =
                std::max<std::size_t>(1, (rows + profile_.array_dim - 1) / profile_.array_dim);
            const std::size_t block_c =
                std::max<std::size_t>(1, (cols + profile_.array_dim - 1) / profile_.array_dim);
            c.xnet = static_cast<double>(block_r * distance) * profile_.cyc_xnet_step;
            const std::size_t local = (block_c > distance) ? block_c - distance : 0;
            c.pe_local = static_cast<double>(block_r * local) * profile_.cyc_pe_move;
            break;
        }
    }
    return c;
}

CycleBreakdown CycleModel::tap_step_cost(std::size_t rows, std::size_t cols,
                                         std::size_t distance, Virtualization virt) const {
    CycleBreakdown c = shift_cost(rows, cols, distance, virt);
    c.broadcast += profile_.cyc_broadcast;
    c.mac += static_cast<double>(layers(rows * cols)) * profile_.cyc_fp_mac;
    return c;
}

CycleBreakdown CycleModel::router_decimation_cost(std::size_t items) const {
    // Every cluster port serializes its PEs' items; clusters run in
    // parallel, layers run back-to-back.
    CycleBreakdown c;
    c.router = static_cast<double>(layers(items) * profile_.cluster_size) *
               profile_.cyc_router_item;
    return c;
}

CycleBreakdown CycleModel::level_cost(std::size_t rows, std::size_t cols, int level,
                                      int taps, Algorithm alg, Virtualization virt) const {
    if (level < 0 || taps <= 0) {
        throw std::invalid_argument("CycleModel::level_cost: bad level or taps");
    }
    CycleBreakdown c;

    // Systolic works on planes compacted by earlier decimations; dilution
    // keeps the full-size plane and stretches the filter stride instead.
    const bool dilute = alg == Algorithm::SystolicDilution;
    const std::size_t plane_r = dilute ? rows : (rows >> level);
    const std::size_t plane_c = dilute ? cols : (cols >> level);
    const std::size_t stride = dilute ? (std::size_t{1} << level) : 1;

    // Row pass: two accumulations (L and H bands), `taps` steps each, with
    // horizontal shifts.
    const CycleBreakdown row_step = tap_step_cost(plane_r, plane_c, stride, virt);
    for (int i = 0; i < 2 * taps; ++i) c += row_step;

    if (!dilute) {
        // Compact the kept columns of both bands through the global router.
        const std::size_t kept = (rows >> level) * (cols >> (level + 1));
        c += router_decimation_cost(kept);
        c += router_decimation_cost(kept);
    }

    // Column pass: four accumulations (LL, LH from L; HL, HH from H) with
    // vertical shifts, on the column-decimated plane (systolic) or the
    // full-size plane (dilution).
    const std::size_t col_plane_r = plane_r;
    const std::size_t col_plane_c = dilute ? cols : (cols >> (level + 1));
    const CycleBreakdown col_step =
        tap_step_cost(col_plane_c, col_plane_r, stride, virt);  // vertical: swap axes
    for (int i = 0; i < 4 * taps; ++i) c += col_step;

    if (!dilute) {
        const std::size_t kept = (rows >> (level + 1)) * (cols >> (level + 1));
        for (int b = 0; b < 4; ++b) c += router_decimation_cost(kept);
    }

    c.setup += profile_.cyc_level_setup;
    return c;
}

CycleBreakdown CycleModel::total_cost(std::size_t rows, std::size_t cols, int levels,
                                      int taps, Algorithm alg, Virtualization virt) const {
    CycleBreakdown c;
    for (int k = 0; k < levels; ++k) {
        c += level_cost(rows, cols, k, taps, alg, virt);
    }
    return c;
}

}  // namespace wavehpc::maspar
