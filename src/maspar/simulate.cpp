#include "maspar/simulate.hpp"

namespace wavehpc::maspar {

namespace {

using Plane = PeArray::Plane;

/// One systolic accumulation: data marches `stride` hops per tap while the
/// stationary accumulator gathers coeff * data — ascending tap order, so
/// coefficients are bit-identical to the reference convolution kernels.
Plane systolic_accumulate(PeArray& array, const Plane& input,
                          std::span<const float> filter, std::size_t stride,
                          bool vertical) {
    Plane acc = PeArray::make_plane(input.rows(), input.cols());
    Plane marching = input;  // register staging (not charged)
    for (float coeff : filter) {
        array.mac_broadcast(acc, marching, coeff);
        if (vertical) {
            array.shift_north(marching, stride);
        } else {
            array.shift_west(marching, stride);
        }
    }
    return acc;
}

/// Read the stride-subsampled active positions out of a dilution plane.
Plane strided_readout(const Plane& plane, std::size_t stride) {
    Plane out(plane.rows() / stride, plane.cols() / stride);
    for (std::size_t r = 0; r < out.rows(); ++r) {
        for (std::size_t c = 0; c < out.cols(); ++c) {
            out(r, c) = plane(r * stride, c * stride);
        }
    }
    return out;
}

}  // namespace

MasparDwtResult simulate_decompose(const MasParProfile& profile, const core::ImageF& img,
                                   const core::FilterPair& fp, int levels, Algorithm alg,
                                   Virtualization virt) {
    core::validate_decomposition_request(img.rows(), img.cols(), levels);
    PeArray array(profile, virt);

    MasparDwtResult res;
    res.pyramid.levels.resize(static_cast<std::size_t>(levels));

    if (alg == Algorithm::Systolic) {
        // Planes physically shrink: the router compacts after each pass.
        Plane current = img;
        for (int level = 0; level < levels; ++level) {
            array.level_setup();
            const Plane low_full = systolic_accumulate(array, current, fp.low(), 1, false);
            const Plane high_full =
                systolic_accumulate(array, current, fp.high(), 1, false);
            const Plane low = array.router_compact_cols(low_full, 0);
            const Plane high = array.router_compact_cols(high_full, 0);

            const Plane ll_full = systolic_accumulate(array, low, fp.low(), 1, true);
            const Plane lh_full = systolic_accumulate(array, low, fp.high(), 1, true);
            const Plane hl_full = systolic_accumulate(array, high, fp.low(), 1, true);
            const Plane hh_full = systolic_accumulate(array, high, fp.high(), 1, true);

            auto& d = res.pyramid.levels[static_cast<std::size_t>(level)];
            current = array.router_compact_rows(ll_full, 0);
            d.lh = array.router_compact_rows(lh_full, 0);
            d.hl = array.router_compact_rows(hl_full, 0);
            d.hh = array.router_compact_rows(hh_full, 0);
        }
        res.pyramid.approx = std::move(current);
    } else {
        // Dilution: the plane never shrinks; the filter is stretched so its
        // taps align with the surviving (stride-spaced) samples, and kept
        // samples stay in place — no router transactions at all.
        Plane current = img;  // active stride 2^level at the start of level
        for (int level = 0; level < levels; ++level) {
            array.level_setup();
            const std::size_t stride = std::size_t{1} << level;
            const Plane low = systolic_accumulate(array, current, fp.low(), stride, false);
            const Plane high =
                systolic_accumulate(array, current, fp.high(), stride, false);
            const Plane ll = systolic_accumulate(array, low, fp.low(), stride, true);
            const Plane lh = systolic_accumulate(array, low, fp.high(), stride, true);
            const Plane hl = systolic_accumulate(array, high, fp.low(), stride, true);
            const Plane hh = systolic_accumulate(array, high, fp.high(), stride, true);

            const std::size_t out_stride = 2 * stride;
            auto& d = res.pyramid.levels[static_cast<std::size_t>(level)];
            d.lh = strided_readout(lh, out_stride);
            d.hl = strided_readout(hl, out_stride);
            d.hh = strided_readout(hh, out_stride);
            if (level + 1 == levels) {
                res.pyramid.approx = strided_readout(ll, out_stride);
            }
            current = ll;  // active stride doubles for the next level
        }
    }

    res.cycles = array.cycles();
    res.seconds = array.seconds();
    return res;
}

}  // namespace wavehpc::maspar
