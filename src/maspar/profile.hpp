#pragma once
// Cycle-cost profile of a MasPar-class SIMD array machine.
//
// The MasPar MP-1/MP-2 is a 128x128 array of PEs driven by a central array
// control unit (ACU); PEs talk to their eight neighbours over the toroidal
// X-net and to distant PEs through a multistage "global router" whose port
// is shared by each 4x4 PE cluster (16-way serialization). Virtual time is
// cycles / clock_hz; per-instruction-class cycle costs are MP-2-plausible
// values chosen once against the paper's Table 1 MasPar row (see
// EXPERIMENTS.md for the paper-vs-measured residuals).

#include <cstddef>
#include <string>

namespace wavehpc::maspar {

struct MasParProfile {
    std::string name;
    std::size_t array_dim;     ///< PE array is array_dim x array_dim
    std::size_t cluster_size;  ///< PEs sharing one router port (16 on MasPar)
    double clock_hz;

    // Cycles per SIMD instruction class (per virtualization layer where the
    // instruction touches every PE's data).
    double cyc_broadcast;    ///< ACU broadcasts one scalar to the array
    double cyc_fp_mac;       ///< 32-bit float multiply-accumulate in each PE
    double cyc_xnet_step;    ///< move one 32-bit plane one X-net hop
    double cyc_pe_move;      ///< local in-PE register/memory move
    double cyc_router_item;  ///< one 32-bit item through a router port
    double cyc_level_setup;  ///< ACU bookkeeping starting a level

    /// MasPar MP-2 with 16K 32-bit RISC PEs (the paper's Table 1 machine).
    [[nodiscard]] static MasParProfile mp2_16k() {
        return {
            .name = "maspar-mp2-16k",
            .array_dim = 128,
            .cluster_size = 16,
            .clock_hz = 12.5e6,
            .cyc_broadcast = 12,
            .cyc_fp_mac = 330,
            .cyc_xnet_step = 40,
            .cyc_pe_move = 8,
            .cyc_router_item = 40,
            .cyc_level_setup = 15000,
        };
    }

    /// First-generation MP-1: 4-bit PEs emulate 32-bit float arithmetic in
    /// many more microcycles; communication fabric is the same.
    [[nodiscard]] static MasParProfile mp1_16k() {
        MasParProfile p = mp2_16k();
        p.name = "maspar-mp1-16k";
        p.cyc_fp_mac = 2400;
        p.cyc_pe_move = 40;
        return p;
    }
};

}  // namespace wavehpc::maspar
