#pragma once
// The fine-grain SIMD wavelet decomposition (paper section 4.1): real
// arithmetic through the core kernels (periodic extension — the toroidal
// X-net wraps), virtual time from the SIMD cycle schedule.
//
// Note on arithmetic order: the physical systolic array accumulates taps
// from last to first; floating-point addition is not associative, so a
// literal re-enactment could differ from the sequential reference in the
// last ulp. We normalize to the reference accumulation order so results are
// bit-comparable across every backend; the cycle schedule is unaffected.

#include "core/dwt.hpp"
#include "maspar/cycle_model.hpp"

namespace wavehpc::maspar {

struct MasparDwtResult {
    core::Pyramid pyramid;
    double seconds = 0.0;
    CycleBreakdown cycles;
};

/// Decompose `img` with the given algorithm/virtualization. Throws for the
/// same malformed requests as core::decompose.
[[nodiscard]] MasparDwtResult maspar_decompose(const MasParProfile& profile,
                                               const core::ImageF& img,
                                               const core::FilterPair& fp, int levels,
                                               Algorithm alg, Virtualization virt);

}  // namespace wavehpc::maspar
