#pragma once
// SIMD cycle schedule for the two MasPar wavelet algorithms of the paper's
// section 4.1 under the two virtualization layouts.
//
// Both algorithms execute, per filter tap: ACU broadcast of the coefficient,
// one multiply-accumulate on every PE, and a shift of the partial-result
// plane over the X-net ("partial results being accumulated and built up in
// a systolic fashion"). They differ in decimation:
//   * systolic          — compact the kept samples with the global router;
//   * systolic+dilution — stretch ("dilute") the filter so taps align with
//     the kept samples in place: no router, but level-k shifts travel 2^k
//     X-net hops and the plane never shrinks.
// Virtualization (images larger than the 128x128 array):
//   * cut-and-stack     — layer l holds pixel block l; every shift crosses a
//     PE boundary for every layer;
//   * hierarchical      — each PE owns a contiguous block; a shift moves
//     only the block edge over the X-net and the rest locally, which is why
//     the paper found it superior.

#include <cstddef>

#include "maspar/profile.hpp"

namespace wavehpc::maspar {

enum class Algorithm { Systolic, SystolicDilution };
enum class Virtualization { CutAndStack, Hierarchical };

struct CycleBreakdown {
    double broadcast = 0.0;
    double mac = 0.0;
    double xnet = 0.0;
    double pe_local = 0.0;
    double router = 0.0;
    double setup = 0.0;

    [[nodiscard]] double total() const noexcept {
        return broadcast + mac + xnet + pe_local + router + setup;
    }
    CycleBreakdown& operator+=(const CycleBreakdown& o) noexcept {
        broadcast += o.broadcast;
        mac += o.mac;
        xnet += o.xnet;
        pe_local += o.pe_local;
        router += o.router;
        setup += o.setup;
        return *this;
    }
};

class CycleModel {
public:
    explicit CycleModel(MasParProfile profile) : profile_(std::move(profile)) {}

    /// Virtualization layers for `elems` logical elements (ceil division by
    /// the PE count; never less than 1 — an under-full array still runs one
    /// SIMD instruction per plane operation).
    [[nodiscard]] std::size_t layers(std::size_t elems) const;

    /// Cycles to shift a rows x cols logical plane by `distance` hops.
    [[nodiscard]] CycleBreakdown shift_cost(std::size_t rows, std::size_t cols,
                                            std::size_t distance,
                                            Virtualization virt) const;

    /// One systolic tap step for one filter on a rows x cols plane:
    /// broadcast + MAC + shift by `distance`.
    [[nodiscard]] CycleBreakdown tap_step_cost(std::size_t rows, std::size_t cols,
                                               std::size_t distance,
                                               Virtualization virt) const;

    /// Router compaction of `items` kept samples (cluster-port serialized).
    [[nodiscard]] CycleBreakdown router_decimation_cost(std::size_t items) const;

    /// Full schedule of one decomposition level. `level` is the level index
    /// (0 = finest); `rows`/`cols` are the ORIGINAL image dimensions; taps
    /// the filter length.
    [[nodiscard]] CycleBreakdown level_cost(std::size_t rows, std::size_t cols,
                                            int level, int taps, Algorithm alg,
                                            Virtualization virt) const;

    /// Whole multi-resolution decomposition schedule.
    [[nodiscard]] CycleBreakdown total_cost(std::size_t rows, std::size_t cols,
                                            int levels, int taps, Algorithm alg,
                                            Virtualization virt) const;

    [[nodiscard]] double seconds(const CycleBreakdown& c) const {
        return c.total() / profile_.clock_hz;
    }
    [[nodiscard]] const MasParProfile& profile() const noexcept { return profile_; }

private:
    MasParProfile profile_;
};

}  // namespace wavehpc::maspar
