#include "maspar/pe_array.hpp"

#include <stdexcept>

namespace wavehpc::maspar {

namespace {
void require_same_shape(const PeArray::Plane& a, const PeArray::Plane& b) {
    if (a.rows() != b.rows() || a.cols() != b.cols()) {
        throw std::invalid_argument("PeArray: operand plane shapes differ");
    }
}
void require_nonempty(const PeArray::Plane& p) {
    if (p.empty()) throw std::invalid_argument("PeArray: empty plane");
}
}  // namespace

void PeArray::mac_broadcast(Plane& acc, const Plane& x, float coeff) {
    require_nonempty(acc);
    require_same_shape(acc, x);
    auto a = acc.flat();
    auto b = x.flat();
    for (std::size_t i = 0; i < a.size(); ++i) a[i] += coeff * b[i];
    CycleBreakdown c;
    c.broadcast = profile().cyc_broadcast;
    c.mac = static_cast<double>(model_.layers(acc.size())) * profile().cyc_fp_mac;
    cycles_ += c;
}

void PeArray::shift_west(Plane& plane, std::size_t dist) {
    require_nonempty(plane);
    if (dist == 0) return;
    const std::size_t cols = plane.cols();
    const std::size_t d = dist % cols;
    Plane out(plane.rows(), cols);
    for (std::size_t r = 0; r < plane.rows(); ++r) {
        const auto src = plane.row(r);
        auto dst = out.row(r);
        for (std::size_t c = 0; c < cols; ++c) dst[c] = src[(c + d) % cols];
    }
    plane = std::move(out);
    cycles_ += model_.shift_cost(plane.rows(), cols, dist, virt_);
}

void PeArray::shift_north(Plane& plane, std::size_t dist) {
    require_nonempty(plane);
    if (dist == 0) return;
    const std::size_t rows = plane.rows();
    const std::size_t d = dist % rows;
    Plane out(rows, plane.cols());
    for (std::size_t r = 0; r < rows; ++r) {
        const auto src = plane.row((r + d) % rows);
        auto dst = out.row(r);
        std::copy(src.begin(), src.end(), dst.begin());
    }
    plane = std::move(out);
    // Vertical shift: the travelling block edge is the horizontal one.
    cycles_ += model_.shift_cost(plane.cols(), rows, dist, virt_);
}

PeArray::Plane PeArray::router_compact_cols(const Plane& in, std::size_t phase) {
    require_nonempty(in);
    if (in.cols() % 2 != 0) {
        throw std::invalid_argument("router_compact_cols: odd width");
    }
    if (phase > 1) throw std::invalid_argument("router_compact_cols: phase in {0,1}");
    Plane out(in.rows(), in.cols() / 2);
    for (std::size_t r = 0; r < in.rows(); ++r) {
        for (std::size_t c = 0; c < out.cols(); ++c) {
            out(r, c) = in(r, 2 * c + phase);
        }
    }
    cycles_ += model_.router_decimation_cost(out.size());
    return out;
}

PeArray::Plane PeArray::router_compact_rows(const Plane& in, std::size_t phase) {
    require_nonempty(in);
    if (in.rows() % 2 != 0) {
        throw std::invalid_argument("router_compact_rows: odd height");
    }
    if (phase > 1) throw std::invalid_argument("router_compact_rows: phase in {0,1}");
    Plane out(in.rows() / 2, in.cols());
    for (std::size_t r = 0; r < out.rows(); ++r) {
        const auto src = in.row(2 * r + phase);
        auto dst = out.row(r);
        std::copy(src.begin(), src.end(), dst.begin());
    }
    cycles_ += model_.router_decimation_cost(out.size());
    return out;
}

void PeArray::level_setup() {
    CycleBreakdown c;
    c.setup = profile().cyc_level_setup;
    cycles_ += c;
}

}  // namespace wavehpc::maspar
