#pragma once
// Instruction-level execution of the two SIMD wavelet algorithms on the
// functional PE array: every broadcast, MAC, X-net shift and router
// transaction actually moves the data. The faster schedule-based
// maspar_decompose must agree with this simulation in both coefficients and
// cycle totals (unit-tested), so the analytic schedule is known-honest.

#include "maspar/maspar_dwt.hpp"
#include "maspar/pe_array.hpp"

namespace wavehpc::maspar {

/// Run the decomposition on the PE array. Periodic boundary handling (the
/// toroidal X-net); identical coefficients to
/// core::decompose(img, fp, levels, BoundaryMode::Periodic).
[[nodiscard]] MasparDwtResult simulate_decompose(const MasParProfile& profile,
                                                 const core::ImageF& img,
                                                 const core::FilterPair& fp, int levels,
                                                 Algorithm alg, Virtualization virt);

}  // namespace wavehpc::maspar
