#include "maspar/maspar_dwt.hpp"

namespace wavehpc::maspar {

MasparDwtResult maspar_decompose(const MasParProfile& profile, const core::ImageF& img,
                                 const core::FilterPair& fp, int levels, Algorithm alg,
                                 Virtualization virt) {
    core::validate_decomposition_request(img.rows(), img.cols(), levels);
    const CycleModel model(profile);

    MasparDwtResult res;
    // The SIMD schedule and the arithmetic are independent: both algorithms
    // compute the same coefficients (dilution evaluates the dilated filter
    // at the kept positions, which equals convolving the decimated plane),
    // so the pyramid comes from the reference kernels while the cycle
    // ledger follows the algorithm-specific schedule.
    // Pinned to the convolve golden kernel: the simulator's bit-compared
    // artifacts must not shift with the process kernel selection.
    res.pyramid = core::decompose(img, fp, levels, core::BoundaryMode::Periodic,
                                  core::DwtKernel::Convolve);
    res.cycles = model.total_cost(img.rows(), img.cols(), levels, fp.taps(), alg, virt);
    res.seconds = model.seconds(res.cycles);
    return res;
}

}  // namespace wavehpc::maspar
