#pragma once
// Typed request/reply surface of the pyramid service (service.hpp).
//
// A TransformRequest names a scene (by shared pointer — the service holds
// a reference until the transform finishes), the paper's transform
// parameters, a backend, and scheduling attributes (priority, absolute
// deadline). submit() answers synchronously with accept-or-reject
// (backpressure), and an accepted request resolves through a shared
// future: value on success, DeadlineExpiredError / ServiceShutdownError
// on the two administrative failure paths.

#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>

#include "core/boundary.hpp"
#include "core/dwt.hpp"
#include "core/image.hpp"
#include "svc/hash.hpp"

namespace wavehpc::svc {

using Clock = std::chrono::steady_clock;

/// Which transform implementation serves the request. All backends are
/// bit-identical (the cache depends on it — see hash.hpp).
enum class Backend : std::uint8_t {
    Serial,   ///< core::decompose on the service worker
    Threads,  ///< wavelet::decompose_parallel on the shared pool
};

/// Scheduling class; higher runs first. Interactive additionally maps to
/// the runtime pool's high-priority queue.
enum class Priority : std::uint8_t { Background = 0, Normal = 1, Interactive = 2 };

struct TransformRequest {
    std::shared_ptr<const core::ImageF> image;  ///< required, non-null
    int taps = 8;                               ///< filter size (2/4/6/8)
    int levels = 1;
    core::BoundaryMode boundary = core::BoundaryMode::Periodic;
    /// DWT kernel (core/kernels.hpp). Auto resolves at submit time through
    /// the process selector (WAVEHPC_DWT_KERNEL / set_default_dwt_kernel),
    /// and the resolved kernel is part of the cache key — convolve and
    /// lifting coefficients differ at float-rounding level.
    core::DwtKernel kernel = core::DwtKernel::Auto;
    Backend backend = Backend::Threads;
    Priority priority = Priority::Normal;
    /// Absolute steady-clock deadline; a request still queued past it is
    /// failed, never computed. time_point::max() = no deadline.
    Clock::time_point deadline = Clock::time_point::max();
    /// Opt-in graceful degradation: when the backend's circuit breaker is
    /// open or admission is saturated, the service may answer with a
    /// cached pyramid of the *same scene* under different transform
    /// parameters (typically a coarser level count) instead of rejecting.
    /// The reply is flagged `degraded`; exact-parameter clients leave
    /// this false and get the ordinary reject + retry-after.
    bool allow_degraded = false;
    /// Route the compute through the tiled streaming pipeline
    /// (tile::tiled_decompose — bit-identical to the monolithic path) and
    /// additionally cache an approximation-only preview pyramid under the
    /// request's preview_key. Progressive flights report the stream's
    /// time-to-first-band and are never batch-fused.
    bool progressive = false;
};

/// The immutable computed artifact, shared (never copied) between the
/// cache and every waiter of every deduplicated request.
struct TransformResult {
    core::Pyramid pyramid;
    CacheKey key;
    std::uint64_t result_bytes = 0;    ///< pyramid payload, for cache budget
    double compute_seconds = 0.0;      ///< the cold compute that produced it
    /// CRC-32 of the pyramid coefficients, taken immediately after the
    /// compute (the point of truth). The cache audits it on insert (and
    /// on lookup when chaos is active), so an injected or real buffer
    /// corruption is caught before any waiter sees the bytes. 0 = the
    /// producer did not checksum (audit skipped).
    std::uint32_t crc32 = 0;
    /// Progressive computes only: wall seconds (within the stream) until
    /// the approximation band sealed — the earliest moment a preview
    /// client could have been answered. 0 for monolithic computes.
    double first_band_seconds = 0.0;
};

/// Per-request outcome delivered through the future. `result` is shared:
/// N deduplicated waiters observe the same TransformResult object.
struct TransformReply {
    std::shared_ptr<const TransformResult> result;
    bool cache_hit = false;       ///< served directly from the result cache
    bool shared_flight = false;   ///< joined an identical in-flight request
    /// Served a cached *variant* of the requested scene (same pixels,
    /// different taps/levels) because the exact answer was unavailable —
    /// only possible when the request set `allow_degraded`.
    bool degraded = false;
    /// The degraded answer is an approximation-only preview pyramid cached
    /// by a progressive flight of the same scene (implies `degraded`).
    bool preview = false;
    std::uint32_t attempts = 1;   ///< compute attempts the flight needed (1 = no retry)
    /// Flights fused into the sweep that computed this reply (1 = solo or
    /// no compute happened — cache hit / degraded / joined flight shares
    /// its lead's value).
    std::uint32_t batch_size = 1;
    double queue_seconds = 0.0;   ///< submit -> compute start (0 for cache hit)
    double compute_seconds = 0.0; ///< transform time (0 unless this flight computed)
    double total_seconds = 0.0;   ///< submit -> reply
};

using TransformFuture = std::shared_future<TransformReply>;

/// The request sat in the queue past its deadline; it was failed without
/// being computed.
class DeadlineExpiredError : public std::runtime_error {
public:
    DeadlineExpiredError() : std::runtime_error("pyramid service: deadline expired before compute") {}
};

/// The service was shut down while the request was still queued; accepted
/// in-flight work was drained, queued work fails with this.
class ServiceShutdownError : public std::runtime_error {
public:
    ServiceShutdownError() : std::runtime_error("pyramid service: shut down with request still queued") {}
};

/// The compute exceeded its watchdog budget (min of the configured limit
/// and the time left to the request deadline); the request was failed and
/// its concurrency slot released so the stall could not wedge the service.
class WatchdogTimeoutError : public std::runtime_error {
public:
    WatchdogTimeoutError()
        : std::runtime_error("pyramid service: compute exceeded its watchdog budget") {}
};

/// A freshly computed result failed the CRC audit (buffer corrupted
/// between compute and finalize). Retryable, like any transient compute
/// fault — a corrupted buffer is never delivered or cached.
class CrcAuditError : public std::runtime_error {
public:
    CrcAuditError()
        : std::runtime_error("pyramid service: result failed the CRC audit") {}
};

/// Why submit() said no (accepted == false).
enum class RejectReason : std::uint8_t {
    None,          ///< accepted
    Saturated,     ///< admission budgets full (queue depth or byte budget)
    ShuttingDown,  ///< service is draining
    BreakerOpen,   ///< the backend's circuit breaker is rejecting fast
    Quarantined,   ///< this exact request exhausted its retries before;
                   ///< identical resubmissions fail immediately
};

/// Synchronous answer of PyramidService::submit.
struct SubmitResult {
    bool accepted = false;
    RejectReason reject_reason = RejectReason::None;
    /// Backpressure hint when rejected: suggested client wait before
    /// retrying, from the current backlog and smoothed service time (or
    /// the breaker's remaining open window; +inf when pointless).
    double retry_after_seconds = 0.0;
    /// Valid (joinable) only when accepted.
    TransformFuture future;
};

/// Pyramid payload size in bytes, the unit of the cache byte budget.
[[nodiscard]] std::uint64_t pyramid_bytes(const core::Pyramid& pyr) noexcept;

}  // namespace wavehpc::svc
