#pragma once
// Typed request/reply surface of the pyramid service (service.hpp).
//
// A TransformRequest names a scene (by shared pointer — the service holds
// a reference until the transform finishes), the paper's transform
// parameters, a backend, and scheduling attributes (priority, absolute
// deadline). submit() answers synchronously with accept-or-reject
// (backpressure), and an accepted request resolves through a shared
// future: value on success, DeadlineExpiredError / ServiceShutdownError
// on the two administrative failure paths.

#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>

#include "core/boundary.hpp"
#include "core/dwt.hpp"
#include "core/image.hpp"
#include "svc/hash.hpp"

namespace wavehpc::svc {

using Clock = std::chrono::steady_clock;

/// Which transform implementation serves the request. All backends are
/// bit-identical (the cache depends on it — see hash.hpp).
enum class Backend : std::uint8_t {
    Serial,   ///< core::decompose on the service worker
    Threads,  ///< wavelet::decompose_parallel on the shared pool
};

/// Scheduling class; higher runs first. Interactive additionally maps to
/// the runtime pool's high-priority queue.
enum class Priority : std::uint8_t { Background = 0, Normal = 1, Interactive = 2 };

struct TransformRequest {
    std::shared_ptr<const core::ImageF> image;  ///< required, non-null
    int taps = 8;                               ///< filter size (2/4/6/8)
    int levels = 1;
    core::BoundaryMode boundary = core::BoundaryMode::Periodic;
    Backend backend = Backend::Threads;
    Priority priority = Priority::Normal;
    /// Absolute steady-clock deadline; a request still queued past it is
    /// failed, never computed. time_point::max() = no deadline.
    Clock::time_point deadline = Clock::time_point::max();
};

/// The immutable computed artifact, shared (never copied) between the
/// cache and every waiter of every deduplicated request.
struct TransformResult {
    core::Pyramid pyramid;
    CacheKey key;
    std::uint64_t result_bytes = 0;    ///< pyramid payload, for cache budget
    double compute_seconds = 0.0;      ///< the cold compute that produced it
};

/// Per-request outcome delivered through the future. `result` is shared:
/// N deduplicated waiters observe the same TransformResult object.
struct TransformReply {
    std::shared_ptr<const TransformResult> result;
    bool cache_hit = false;       ///< served directly from the result cache
    bool shared_flight = false;   ///< joined an identical in-flight request
    double queue_seconds = 0.0;   ///< submit -> compute start (0 for cache hit)
    double compute_seconds = 0.0; ///< transform time (0 unless this flight computed)
    double total_seconds = 0.0;   ///< submit -> reply
};

using TransformFuture = std::shared_future<TransformReply>;

/// The request sat in the queue past its deadline; it was failed without
/// being computed.
class DeadlineExpiredError : public std::runtime_error {
public:
    DeadlineExpiredError() : std::runtime_error("pyramid service: deadline expired before compute") {}
};

/// The service was shut down while the request was still queued; accepted
/// in-flight work was drained, queued work fails with this.
class ServiceShutdownError : public std::runtime_error {
public:
    ServiceShutdownError() : std::runtime_error("pyramid service: shut down with request still queued") {}
};

/// Synchronous answer of PyramidService::submit.
struct SubmitResult {
    bool accepted = false;
    /// Backpressure hint when rejected: suggested client wait before
    /// retrying, from the current backlog and smoothed service time.
    double retry_after_seconds = 0.0;
    /// Valid (joinable) only when accepted.
    TransformFuture future;
};

/// Pyramid payload size in bytes, the unit of the cache byte budget.
[[nodiscard]] std::uint64_t pyramid_bytes(const core::Pyramid& pyr) noexcept;

}  // namespace wavehpc::svc
