#pragma once
// Content addressing for the pyramid service's result cache.
//
// A cache key is a 128-bit digest of the request's *image bytes* plus the
// transform parameters that change the coefficients (taps, levels,
// boundary mode, DWT kernel). The backend is deliberately excluded: every
// in-process backend is bit-identical to core::decompose by construction
// (tested in test_wavelet_parallel), so requests that differ only in
// backend may — must, for single-flight to pay off — share one cached
// result. The kernel IS included: convolve and lifting produce
// float-rounding-different coefficients (except Haar), so their results
// are distinct cache entries. Callers pass the *resolved* kernel
// (core::resolve_dwt_kernel), never Auto, so an env-knob change cannot
// alias two different computations under one key.
//
// The digest is two independent splitmix64-finalizer lanes over the pixel
// words. Not cryptographic: an adversary could forge a collision, but the
// service caches its own computations, and 128 bits make an accidental
// collision vanishingly unlikely (~2^-64 per pair of distinct scenes).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "core/boundary.hpp"
#include "core/image.hpp"
#include "core/kernels.hpp"

namespace wavehpc::svc {

/// Identity of one cacheable transform result.
struct CacheKey {
    std::uint64_t digest_lo = 0;  ///< lane 0 of the image-content digest
    std::uint64_t digest_hi = 0;  ///< lane 1
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    std::uint8_t taps = 0;
    std::uint8_t levels = 0;
    std::uint8_t boundary = 0;
    std::uint8_t kernel = 0;  ///< resolved core::DwtKernel (never Auto)
    /// Band selector: 0 = the full pyramid, 1 = approximation-only preview
    /// (the progressive pipeline's first deliverable). Previews live in
    /// the same cache under their own key so a degraded client can be
    /// served the coarse scene while the full answer is still in flight —
    /// without ever aliasing the full result.
    std::uint8_t band = 0;

    friend bool operator==(const CacheKey&, const CacheKey&) = default;
};

/// The approximation-preview variant of `k` (band field set; everything
/// else identical).
[[nodiscard]] inline CacheKey preview_key(CacheKey k) noexcept {
    k.band = 1;
    return k;
}

struct CacheKeyHash {
    [[nodiscard]] std::size_t operator()(const CacheKey& k) const noexcept {
        // The digest is already uniform; fold in the cheap fields.
        std::uint64_t h = k.digest_lo ^ (k.digest_hi * 0x9e3779b97f4a7c15ULL);
        h ^= (std::uint64_t{k.rows} << 32) | k.cols;
        h ^= (std::uint64_t{k.kernel} << 24) | (std::uint64_t{k.taps} << 16) |
             (std::uint64_t{k.levels} << 8) | k.boundary;
        h ^= std::uint64_t{k.band} << 56;
        return static_cast<std::size_t>(h);
    }
};

/// 128-bit content digest of the raw pixel bytes.
void content_digest(const core::ImageF& img, std::uint64_t& lo, std::uint64_t& hi);

/// Assemble a key from an already-computed digest (no pixel pass).
[[nodiscard]] CacheKey assemble_cache_key(std::uint64_t digest_lo,
                                          std::uint64_t digest_hi,
                                          const core::ImageF& img, int taps,
                                          int levels, core::BoundaryMode boundary,
                                          core::DwtKernel kernel);

/// Assemble the full key for a transform request. Cost is one linear pass
/// over the pixels; callers hash outside any service lock. `kernel` must
/// be resolved (Convolve or Lifting, not Auto); the default matches the
/// historical key layout.
[[nodiscard]] CacheKey make_cache_key(const core::ImageF& img, int taps, int levels,
                                      core::BoundaryMode boundary,
                                      core::DwtKernel kernel = core::DwtKernel::Convolve);

/// Memoized content digests for resubmitted scenes (ISSUE 8).
///
/// A browse workload re-sends the same shared_ptr'd image over and over,
/// and at service rates the linear digest pass is the dominant fixed cost
/// on the warm hot path (a 256x256 scene is a ~130 us hash against a
/// sub-microsecond cache lookup). The memo keys entries by object
/// address but is ABA-safe: each entry co-stores a weak_ptr, and a lookup
/// only trusts the stored digest if locking that weak_ptr yields the very
/// pointer being queried. An address recycled after free shows an expired
/// (or different) control block and falls through to an honest recompute,
/// so a stale digest can never alias a new image. Thread-safe; the pixel
/// pass itself always runs outside the lock.
class DigestMemo {
public:
    explicit DigestMemo(std::size_t capacity = 256);

    /// Digest of *img, served from the memo when the same live object was
    /// hashed before.
    void digest(const std::shared_ptr<const core::ImageF>& img,
                std::uint64_t& lo, std::uint64_t& hi);

    [[nodiscard]] std::uint64_t hits() const;
    [[nodiscard]] std::uint64_t misses() const;

private:
    struct Entry {
        std::weak_ptr<const core::ImageF> ref;
        std::uint64_t lo = 0;
        std::uint64_t hi = 0;
    };

    mutable std::mutex mu_;
    std::unordered_map<const core::ImageF*, Entry> map_;
    std::size_t capacity_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

}  // namespace wavehpc::svc
