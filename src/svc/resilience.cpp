#include "svc/resilience.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace wavehpc::svc {

namespace {

double env_double(const char* name, double fallback) {
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') return fallback;
    char* end = nullptr;
    const double v = std::strtod(raw, &end);
    if (end == raw || *end != '\0' || !(v >= 0.0)) return fallback;
    return v;
}

std::uint32_t env_u32(const char* name, std::uint32_t fallback) {
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') return fallback;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(raw, &end, 10);
    if (end == raw || *end != '\0' || v == 0) return fallback;
    return static_cast<std::uint32_t>(std::min<unsigned long long>(v, UINT32_MAX));
}

/// splitmix64 finalizer (same mix the chaos plan and mesh faults use).
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

}  // namespace

double RetryPolicy::backoff_seconds(std::uint32_t attempt, std::uint64_t draw) const {
    if (attempt == 0) return 0.0;
    // The transport's shape (machine.hpp): doubling RTO under a cap. The
    // pow stays finite because cap_seconds bounds it long before overflow.
    double delay = base_seconds *
                   std::pow(multiplier, static_cast<double>(attempt - 1));
    delay = std::min(delay, cap_seconds);
    const double j = std::clamp(jitter, 0.0, 1.0);
    const double u = static_cast<double>(mix64(draw) >> 11) * 0x1.0p-53;
    return delay * (1.0 - j * u);
}

CircuitBreaker::State CircuitBreaker::state(Clock::time_point now) {
    if (state_ == State::Open &&
        std::chrono::duration<double>(now - opened_at_).count() >=
            cfg_.open_seconds) {
        state_ = State::HalfOpen;
        probes_allowed_ = 0;
        probes_succeeded_ = 0;
    }
    return state_;
}

bool CircuitBreaker::allow(Clock::time_point now) {
    switch (state(now)) {
    case State::Closed:
        return true;
    case State::Open:
        return false;
    case State::HalfOpen:
        if (probes_allowed_ >= cfg_.half_open_probes) return false;
        ++probes_allowed_;
        return true;
    }
    return true;  // unreachable
}

double CircuitBreaker::retry_after_seconds(Clock::time_point now) const {
    if (state_ != State::Open) {
        // Half-open with every probe slot taken: try again shortly.
        return std::max(cfg_.open_seconds * 0.1, 1e-3);
    }
    const double elapsed =
        std::chrono::duration<double>(now - opened_at_).count();
    return std::max(cfg_.open_seconds - elapsed, 1e-3);
}

void CircuitBreaker::trip(Clock::time_point now) {
    state_ = State::Open;
    opened_at_ = now;
    ++times_opened_;
}

void CircuitBreaker::record_success(Clock::time_point now) {
    ++samples_;
    ewma_ = samples_ == 1 ? 0.0 : (1.0 - cfg_.ewma_alpha) * ewma_;
    if (state(now) == State::HalfOpen) {
        if (++probes_succeeded_ >= cfg_.half_open_probes) {
            state_ = State::Closed;
            ewma_ = 0.0;       // fresh slate: the backend recovered
            samples_ = 0;
        }
    }
}

void CircuitBreaker::record_failure(Clock::time_point now) {
    ++samples_;
    ewma_ = samples_ == 1 ? 1.0
                          : (1.0 - cfg_.ewma_alpha) * ewma_ + cfg_.ewma_alpha;
    if (state(now) == State::HalfOpen) {
        trip(now);  // a failed probe re-opens immediately
        return;
    }
    if (state_ == State::Closed && samples_ >= cfg_.min_samples &&
        ewma_ > cfg_.failure_threshold) {
        trip(now);
    }
}

ResilienceConfig ResilienceConfig::from_env() {
    ResilienceConfig cfg;
    cfg.retry.max_attempts =
        env_u32("WAVEHPC_SVC_RETRY_MAX", cfg.retry.max_attempts);
    cfg.retry.base_seconds =
        env_double("WAVEHPC_SVC_RETRY_BASE_MS", cfg.retry.base_seconds * 1e3) * 1e-3;
    cfg.retry.cap_seconds =
        env_double("WAVEHPC_SVC_RETRY_CAP_MS", cfg.retry.cap_seconds * 1e3) * 1e-3;
    cfg.retry.jitter = std::clamp(
        env_double("WAVEHPC_SVC_RETRY_JITTER", cfg.retry.jitter), 0.0, 1.0);
    cfg.breaker.failure_threshold =
        env_double("WAVEHPC_SVC_BREAKER_THRESHOLD", cfg.breaker.failure_threshold);
    cfg.breaker.ewma_alpha = std::clamp(
        env_double("WAVEHPC_SVC_BREAKER_ALPHA", cfg.breaker.ewma_alpha), 1e-3, 1.0);
    cfg.breaker.min_samples =
        env_u32("WAVEHPC_SVC_BREAKER_MIN_SAMPLES", cfg.breaker.min_samples);
    cfg.breaker.open_seconds =
        env_double("WAVEHPC_SVC_BREAKER_OPEN_MS", cfg.breaker.open_seconds * 1e3) *
        1e-3;
    cfg.breaker.half_open_probes =
        env_u32("WAVEHPC_SVC_BREAKER_PROBES", cfg.breaker.half_open_probes);
    cfg.watchdog_seconds =
        env_double("WAVEHPC_SVC_WATCHDOG_MS", cfg.watchdog_seconds * 1e3) * 1e-3;
    return cfg;
}

}  // namespace wavehpc::svc
