#pragma once
// Deterministic fault injection for the pyramid service stack, mirroring
// mesh/faults' FaultPlan style: every injected fault is a pure function of
// (seed, draw index), so a chaos run under a given plan replays the same
// fault sequence whenever the attempt order is deterministic (and replays
// the same fault *rate* even when concurrency shuffles the order).
//
// Injection sites:
//   * compute attempts in PyramidService::run_flight — a ChaosDecision per
//     attempt can throw ChaosComputeError, throw std::bad_alloc, stall the
//     compute (which the watchdog then catches), or flip one bit in the
//     finished result buffer (which the CRC audit then catches);
//   * the thread-pool dispatch path — pool_observer() hands back a hook
//     for runtime::ThreadPool::set_task_observer that stalls a seeded
//     fraction of task dispatches, modelling a noisy neighbour.
//
// The plan comes from WAVEHPC_CHAOS_PLAN ("compute=0.01,corrupt=0.005,...")
// seeded by WAVEHPC_CHAOS_SEED; with the variable unset chaos is fully
// disabled and the service path is byte-for-byte the non-chaos one.

#include <cstdint>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/dwt.hpp"

namespace wavehpc::svc {

/// Thrown by an injected compute fault; retryable like any transient
/// compute failure.
class ChaosComputeError : public std::runtime_error {
public:
    explicit ChaosComputeError(std::uint64_t draw)
        : std::runtime_error("chaos: injected compute fault (draw " +
                             std::to_string(draw) + ")") {}
};

/// Per-attempt fault decision, derived deterministically from (seed, index).
struct ChaosDecision {
    std::uint64_t draw = 0;       ///< the index this decision was drawn for
    bool compute_error = false;   ///< throw ChaosComputeError mid-compute
    bool alloc_failure = false;   ///< throw std::bad_alloc before compute
    bool corrupt = false;         ///< flip one bit in the finished pyramid
    double stall_seconds = 0.0;   ///< sleep this long before computing
    std::uint64_t corrupt_word = 0;  ///< word to flip (mod pyramid words)
    unsigned corrupt_bit = 0;        ///< bit 0-31 within that float word
};

/// Cluster-level fault kinds for the shard tier (shard/cluster.hpp). The
/// engine below never interprets these — ShardCluster replays them off its
/// own timeline; they live on the plan so one spec string describes a
/// whole chaos run (compute faults riding along with shard kills).
enum class ShardEventKind : std::uint8_t {
    Kill,       ///< crash-stop: requests unreachable, service drained, state lost
    Partition,  ///< unreachable (requests + heartbeats) but the process survives
    Slow,       ///< every request to the shard stalls `stall_seconds`
};

/// One timed shard fault: [start, start + duration) on the cluster clock.
struct ShardEvent {
    ShardEventKind kind = ShardEventKind::Kill;
    std::size_t shard = 0;
    double start_seconds = 0.0;
    double duration_seconds = 0.0;
    double stall_seconds = 0.010;  ///< Slow only: added per request
};

struct ChaosPlan {
    std::uint64_t seed = 1;
    double compute_error_probability = 0.0;  ///< i.i.d. per compute attempt
    double alloc_failure_probability = 0.0;
    double stall_probability = 0.0;
    double stall_seconds = 0.05;             ///< duration of an injected stall
    double corrupt_probability = 0.0;        ///< one bit flip in the result
    double pool_stall_probability = 0.0;     ///< per pool-task dispatch
    double pool_stall_seconds = 0.002;
    /// Attempt indices that always throw ChaosComputeError — targeted
    /// deterministic tests, like FaultPlan::drop_exact.
    std::vector<std::uint64_t> compute_error_exact;
    /// Timed shard-tier faults (kill / partition / slow), replayed by
    /// ShardCluster against its own clock; ignored by the in-service
    /// engine. Kept sorted by start time after parse().
    std::vector<ShardEvent> shard_events;

    [[nodiscard]] bool enabled() const noexcept;

    /// Deterministic decision for the `index`-th compute attempt.
    [[nodiscard]] ChaosDecision decide(std::uint64_t index) const;

    /// Pool-dispatch stall (seconds, usually 0) for the `index`-th task,
    /// drawn from an independent lane of the same seed.
    [[nodiscard]] double pool_stall(std::uint64_t index) const;

    /// Parse "key=value,..." with keys compute, alloc, stall, stall_ms,
    /// corrupt, pool_stall, pool_stall_ms, compute_exact (':'-separated
    /// indices), and the shard-tier events shard_kill / shard_partition /
    /// shard_slow, each a ';'-separated list of
    /// SHARD:START_MS:DURATION_MS[:STALL_MS] entries (STALL_MS is
    /// shard_slow-only). Throws std::invalid_argument on malformed input.
    [[nodiscard]] static ChaosPlan parse(std::string_view spec, std::uint64_t seed);

    /// WAVEHPC_CHAOS_PLAN under WAVEHPC_CHAOS_SEED; a disabled (empty) plan
    /// when the plan variable is unset. A malformed plan throws — a chaos
    /// run that silently tested nothing would be worse than a crash.
    [[nodiscard]] static ChaosPlan from_env();
};

/// What the engine actually injected (monotonic, snapshot any time).
struct ChaosStats {
    std::uint64_t draws = 0;
    std::uint64_t compute_errors = 0;
    std::uint64_t alloc_failures = 0;
    std::uint64_t stalls = 0;
    std::uint64_t corruptions = 0;
    std::uint64_t pool_stalls = 0;
};

/// Shared injection engine: owns the plan and the global attempt counter.
/// Thread-safe; when the plan is disabled every call is a cheap no-op.
class ChaosEngine {
public:
    ChaosEngine() = default;
    explicit ChaosEngine(ChaosPlan plan) : plan_(std::move(plan)) {}

    /// Swap the plan (test seam). Callers must be quiescent: in-flight
    /// decisions already drawn stay valid, but the draw counter is not
    /// reset, so exact-index plans should be installed before traffic.
    void set_plan(ChaosPlan plan);

    [[nodiscard]] bool enabled() const;

    /// Draw the decision for the next compute attempt.
    [[nodiscard]] ChaosDecision next_compute_decision();

    /// Apply the pre-compute faults of `d`: stall, then throw bad_alloc /
    /// ChaosComputeError if drawn. Call without holding service locks.
    void inject_before_compute(const ChaosDecision& d);

    /// Flip the drawn bit in `pyr` if `d.corrupt` — call *after* the CRC
    /// point of truth was taken, so the audit must catch it.
    void corrupt_result(const ChaosDecision& d, core::Pyramid& pyr);

    /// Hook for runtime::ThreadPool::set_task_observer: stalls a seeded
    /// fraction of task dispatches. Null when the plan injects none.
    [[nodiscard]] std::function<void()> pool_observer();

    [[nodiscard]] ChaosStats stats() const;

private:
    mutable std::mutex mu_;
    ChaosPlan plan_;
    std::uint64_t next_draw_ = 0;
    std::uint64_t next_pool_draw_ = 0;
    ChaosStats stats_;
};

}  // namespace wavehpc::svc
