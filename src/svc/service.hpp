#pragma once
// In-process wavelet pyramid service: the "front door" the operational
// pipelines in the paper's setting need — accepts concurrent transform
// requests, batches identical ones, caches results, and sheds load.
//
// Layering (one mutex, no dedicated threads):
//
//   submit() ── cache hit ──────────────────────────► ready future
//        │
//        ├── identical request already in flight ───► join it (single-flight)
//        │
//        ├── admission control: queue depth or in-flight image bytes
//        │   over budget ──────────────────────────► reject + retry-after
//        │
//        └── admit ► pending set ordered by (priority, deadline, seq)
//                       │ dispatched when a concurrency slot frees,
//                       ▼ onto the shared runtime pool (Interactive
//                    run_flight  requests use the pool's High queue)
//                       │ compute (serial or pool-parallel, bit-identical)
//                       ▼
//                    finalize: insert into cache, fulfil every waiter
//                    with the same shared buffer, dispatch next
//
// Invariants the tests pin:
//   * Backpressure, never unbounded growth: submit() past the budgets
//     answers rejected immediately; it never blocks.
//   * Single-flight determinism: N concurrent identical requests run the
//     transform once; all futures resolve to the same TransformResult
//     object, and a later cache hit returns that object again —
//     bit-identical to a cold core::decompose by construction.
//   * Deadline-expired requests are failed (DeadlineExpiredError), never
//     computed.
//   * shutdown() drains: dispatched flights complete and deliver values;
//     still-queued flights fail with ServiceShutdownError; afterwards the
//     service is quiescent and further submits are rejected.
//
// The ThreadPool must outlive the service, and the service must be shut
// down (or destroyed — the destructor drains) before the pool.

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "svc/cache.hpp"
#include "svc/metrics.hpp"
#include "svc/request.hpp"

namespace wavehpc::svc {

struct ServiceConfig {
    std::size_t max_queue_depth = 64;           ///< pending flights
    std::uint64_t max_queued_bytes = 256u << 20;  ///< image bytes, pending + running
    std::size_t max_concurrency = 2;            ///< flights computing at once
    std::uint64_t cache_bytes = 64u << 20;      ///< result cache budget

    /// Defaults overridden by WAVEHPC_SVC_QUEUE_DEPTH / WAVEHPC_SVC_QUEUE_BYTES /
    /// WAVEHPC_SVC_CONCURRENCY / WAVEHPC_SVC_CACHE_BYTES (unset or
    /// unparsable variables keep the default; zeroes are clamped to 1).
    [[nodiscard]] static ServiceConfig from_env();
};

class PyramidService {
public:
    explicit PyramidService(runtime::ThreadPool& pool, ServiceConfig cfg = {});

    /// Drains via shutdown() if the caller has not already.
    ~PyramidService();

    PyramidService(const PyramidService&) = delete;
    PyramidService& operator=(const PyramidService&) = delete;

    /// Synchronous admission decision; never blocks on compute. Throws
    /// std::invalid_argument for malformed requests (null image, bad
    /// taps/levels for the image size) — that is a caller bug, not load.
    [[nodiscard]] SubmitResult submit(TransformRequest request);

    /// Graceful drain: fail everything still queued (ServiceShutdownError),
    /// wait for dispatched flights to complete and deliver. Idempotent;
    /// concurrent callers all block until quiescence.
    void shutdown();

    [[nodiscard]] MetricsSnapshot metrics() const;
    [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }
    [[nodiscard]] const ServiceConfig& config() const noexcept { return cfg_; }

private:
    /// One admitted unit of work; N deduplicated requests share a flight.
    struct Waiter {
        std::promise<TransformReply> promise;
        Clock::time_point submitted_at;
        bool joined = false;  ///< true for every waiter after the first
    };

    struct Flight {
        CacheKey key;
        TransformRequest request;  ///< first requester's params + image ref
        std::uint64_t image_bytes = 0;
        std::vector<Waiter> waiters;
        Priority priority;               ///< max over joined requests
        Clock::time_point deadline;      ///< latest over joined requests
        std::uint64_t seq = 0;           ///< admission order tiebreak
        Clock::time_point admitted_at;
        bool dispatched = false;
    };

    struct PendingOrder {
        bool operator()(const Flight* a, const Flight* b) const noexcept {
            if (a->priority != b->priority) return a->priority > b->priority;
            if (a->deadline != b->deadline) return a->deadline < b->deadline;
            return a->seq < b->seq;
        }
    };

    /// Waiters to fail once the lock is released (promises must not be
    /// fulfilled under mu_ — a ready-made continuation could re-enter).
    struct FailureBatch {
        std::vector<Waiter> waiters;
        std::exception_ptr error;
    };

    void dispatch_ready(std::unique_lock<std::mutex>& lk,
                        std::vector<FailureBatch>& failures);
    void run_flight(const std::shared_ptr<Flight>& flight);
    void deliver_failures(std::vector<FailureBatch>& failures);
    [[nodiscard]] double retry_after_locked() const;
    void remove_flight_locked(Flight& flight);

    runtime::ThreadPool& pool_;
    const ServiceConfig cfg_;
    ResultCache cache_;

    mutable std::mutex mu_;
    std::condition_variable cv_drained_;
    bool stopping_ = false;
    std::uint64_t next_seq_ = 0;
    std::size_t running_ = 0;
    std::uint64_t queued_bytes_ = 0;  // image bytes of pending + running flights
    double ewma_compute_seconds_ = 0.0;
    std::unordered_map<CacheKey, std::shared_ptr<Flight>, CacheKeyHash> flights_;
    std::set<Flight*, PendingOrder> pending_;

    ServiceCounters counters_;
    perf::LatencyHistogram queue_wait_hist_;
    perf::LatencyHistogram compute_hist_;
    perf::LatencyHistogram total_hist_;
};

}  // namespace wavehpc::svc
