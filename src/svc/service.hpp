#pragma once
// In-process wavelet pyramid service: the "front door" the operational
// pipelines in the paper's setting need — accepts concurrent transform
// requests, batches identical ones, caches results, sheds load, and
// (ISSUE 5) survives compute faults instead of surfacing them raw.
//
// Layering (one mutex + one timer thread for backoff/watchdog deadlines):
//
//   submit() ── cache hit ──────────────────────────► ready future
//        │
//        ├── quarantined fingerprint ───────────────► reject (Quarantined)
//        │
//        ├── identical request already in flight ───► join it (single-flight)
//        │
//        ├── circuit breaker open for the backend ──► degraded cached variant
//        │                                            (allow_degraded) or
//        │                                            reject + retry-after
//        ├── admission control: queue depth or in-flight image bytes
//        │   over budget ──────────────────────────► degraded or reject
//        │
//        └── admit ► pending set ordered by (priority, deadline, seq)
//                       │ dispatched when a concurrency slot frees; the
//                       │ batch planner (ISSUE 8) coalesces up to
//                       │ batch_max schedule-equivalent pending flights
//                       ▼ into ONE fused sweep on the shared runtime pool
//                    run_batch ── per-flight watchdog armed for the attempt;
//                       │ every buffer (scratch + pyramid) checked out of
//                       │ the BufferArena; results are slab leases that
//                       │ return on last release (cache eviction included)
//                       │ chaos hooks: injected stall / bad_alloc /
//                       │ compute error / result-bit corruption
//                       ▼
//                    success: CRC audit ► cache insert ► fulfil waiters
//                    failure: breaker tick ► retry with jittered capped
//                             exponential backoff, or quarantine after
//                             max_attempts ► fail waiters
//
// Invariants the tests pin (on top of ISSUE 4's):
//   * A corrupted result buffer never reaches a waiter or the cache: the
//     CRC taken at compute end is audited before delivery and on insert.
//   * A stalled compute fails its waiters after the watchdog budget and
//     releases the concurrency slot; the pool worker finishes on its own
//     and the salvage result may still be cached, but never delivered.
//   * shutdown() also fails flights parked in retry backoff with
//     ServiceShutdownError — no timer or task outlives the drain.
//   * With no chaos plan and no compute failures, behaviour is
//     byte-for-byte ISSUE 4's (the breaker stays closed, the quarantine
//     stays empty, the watchdog never fires at default budgets).
//
// The ThreadPool must outlive the service, and the service must be shut
// down (or destroyed — the destructor drains) before the pool.

#include <array>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "svc/arena.hpp"
#include "svc/cache.hpp"
#include "svc/chaos.hpp"
#include "svc/metrics.hpp"
#include "svc/request.hpp"
#include "svc/resilience.hpp"

namespace wavehpc::svc {

struct ServiceConfig {
    std::size_t max_queue_depth = 64;           ///< pending flights
    std::uint64_t max_queued_bytes = 256u << 20;  ///< image bytes, pending + running
    std::size_t max_concurrency = 2;            ///< flights computing at once
    std::uint64_t cache_bytes = 64u << 20;      ///< result cache budget
    ResilienceConfig resilience;                ///< retry/breaker/watchdog posture
    /// Batch planner (ISSUE 8): up to this many *schedule-equivalent*
    /// pending flights — same dims/taps/levels/boundary/kernel/backend AND
    /// same priority + deadline, so coalescing can never reorder work the
    /// scheduler promised to serialize — fuse into one sweep per dispatch.
    /// 1 = strict per-flight dispatch (the pre-ISSUE-8 behaviour).
    std::size_t batch_max = 8;
    /// > 0: a non-Interactive lead whose batch is underfull may be held up
    /// to this long after admission (never past its deadline) so compatible
    /// traffic can coalesce. 0 = dispatch immediately (default).
    std::uint64_t batch_window_us = 0;
    ArenaConfig arena;                          ///< slab pool posture

    /// Defaults overridden by WAVEHPC_SVC_QUEUE_DEPTH / WAVEHPC_SVC_QUEUE_BYTES /
    /// WAVEHPC_SVC_CONCURRENCY / WAVEHPC_SVC_CACHE_BYTES (unset or
    /// unparsable variables keep the default; zeroes are clamped to 1)
    /// plus WAVEHPC_SVC_BATCH_MAX / WAVEHPC_SVC_BATCH_WINDOW_US (zero
    /// meaningful for the window), the WAVEHPC_SVC_ARENA_* knobs
    /// (ArenaConfig::from_env), and the ResilienceConfig::from_env knobs.
    [[nodiscard]] static ServiceConfig from_env();
};

class PyramidService {
public:
    /// The chaos plan defaults to ChaosPlan::from_env() (WAVEHPC_CHAOS_*);
    /// tests and the chaos bench swap it via set_chaos_plan() before
    /// offering traffic.
    explicit PyramidService(runtime::ThreadPool& pool, ServiceConfig cfg = {});

    /// Drains via shutdown() if the caller has not already.
    ~PyramidService();

    PyramidService(const PyramidService&) = delete;
    PyramidService& operator=(const PyramidService&) = delete;

    /// Synchronous admission decision; never blocks on compute. Throws
    /// std::invalid_argument for malformed requests (null image, bad
    /// taps/levels for the image size) — that is a caller bug, not load.
    [[nodiscard]] SubmitResult submit(TransformRequest request);

    /// Graceful drain: fail everything still queued *or in retry backoff*
    /// (ServiceShutdownError), wait for dispatched flights to complete and
    /// deliver, stop the timer thread. Idempotent; concurrent callers all
    /// block until quiescence.
    void shutdown();

    [[nodiscard]] MetricsSnapshot metrics() const;
    [[nodiscard]] CacheStats cache_stats() const { return cache_.stats(); }
    [[nodiscard]] ArenaStats arena_stats() const { return arena_.stats(); }
    /// The slab pool backing this service's computes (test/bench seam).
    [[nodiscard]] BufferArena& arena() noexcept { return arena_; }

    /// Cross-shard degraded scan (shard/cluster.hpp): the cached result for
    /// `key` exactly, else the freshest cached same-scene variant, else
    /// null. Pure cache read — no admission, no flight, no counters beyond
    /// the cache's own hit/variant bookkeeping.
    [[nodiscard]] std::shared_ptr<const TransformResult> peek_cached(
        const CacheKey& key);
    [[nodiscard]] const ServiceConfig& config() const noexcept { return cfg_; }

    /// Swap the chaos plan (test/bench seam) and re-wire the cache lookup
    /// audit to the plan's enabled state. Install only while quiescent.
    void set_chaos_plan(ChaosPlan plan);

    /// The fault-injection engine — for pool_observer() wiring and stats.
    /// Use set_chaos_plan (not chaos().set_plan) to change the plan so the
    /// cache audit follows it.
    [[nodiscard]] ChaosEngine& chaos() noexcept { return chaos_; }
    [[nodiscard]] ChaosStats chaos_stats() const { return chaos_.stats(); }

private:
    /// One admitted unit of work; N deduplicated requests share a flight.
    struct Waiter {
        std::promise<TransformReply> promise;
        Clock::time_point submitted_at;
        bool joined = false;  ///< true for every waiter after the first
    };

    /// Where an undelivered flight currently lives. Running flights are in
    /// neither pending_ nor backoff_; the maps below are disjoint.
    enum class FlightState : std::uint8_t { Pending, Backoff, Running };

    /// One concurrency slot shared by every flight of a fused batch. The
    /// slot is released exactly once: by run_batch when the sweep settles,
    /// or early by the watchdog when EVERY armed member was abandoned
    /// (nothing useful is still attached to the running sweep).
    struct BatchSlot {
        std::size_t armed = 0;  ///< members not yet expired/abandoned
        bool released = false;  ///< the --running_ already happened
    };

    struct Flight {
        CacheKey key;
        TransformRequest request;  ///< first requester's params + image ref
        std::uint64_t image_bytes = 0;
        std::vector<Waiter> waiters;
        Priority priority;               ///< max over joined requests
        Clock::time_point deadline;      ///< latest over joined requests
        std::uint64_t seq = 0;           ///< admission order tiebreak
        Clock::time_point admitted_at;
        FlightState state = FlightState::Pending;
        std::uint32_t attempts = 0;      ///< compute attempts finished so far
        Clock::time_point retry_at;      ///< valid while state == Backoff
        Clock::time_point watch_deadline;  ///< valid while state == Running
        /// The watchdog fired: waiters are already failed (and the batch
        /// slot released once no armed member remains); the still-running
        /// compute must only salvage-cache this member.
        bool abandoned = false;
        std::shared_ptr<BatchSlot> slot;  ///< set while Running
    };

    struct PendingOrder {
        bool operator()(const Flight* a, const Flight* b) const noexcept {
            if (a->priority != b->priority) return a->priority > b->priority;
            if (a->deadline != b->deadline) return a->deadline < b->deadline;
            return a->seq < b->seq;
        }
    };

    /// Waiters to fail once the lock is released (promises must not be
    /// fulfilled under mu_ — a ready-made continuation could re-enter).
    struct FailureBatch {
        std::vector<Waiter> waiters;
        std::exception_ptr error;
        Outcome outcome = Outcome::Quarantined;  ///< histogram bucket
        bool record_outcome = false;
    };

    void dispatch_ready(std::unique_lock<std::mutex>& lk,
                        std::vector<FailureBatch>& failures);
    void run_batch(const std::vector<std::shared_ptr<Flight>>& batch);
    void deliver_failures(std::vector<FailureBatch>& failures);
    void timer_loop();
    /// May `b` join a batch led by `a`? Same transform shape AND the same
    /// scheduling attributes (priority, deadline, backend) — coalescing is
    /// restricted to flights the pending order treats as seq-tiebreak
    /// equals, so batching never reorders prioritized or deadlined work.
    [[nodiscard]] static bool batch_compatible(const Flight& a,
                                               const Flight& b) noexcept;
    /// Release the batch's concurrency slot if not already released.
    void release_slot_locked(BatchSlot& slot);
    /// Fail `flight`'s waiters under mu_ with outcome bookkeeping; caller
    /// delivers the batch after unlocking.
    void fail_flight_locked(Flight& flight, std::vector<FailureBatch>& failures,
                            std::exception_ptr error, Outcome outcome);
    [[nodiscard]] double retry_after_locked() const;
    void remove_flight_locked(Flight& flight);
    void erase_watch_locked(Flight& flight);
    void record_outcome_locked(Outcome o, double seconds);
    [[nodiscard]] SubmitResult try_degraded_locked(const CacheKey& key,
                                                   Clock::time_point submitted_at,
                                                   bool& served);

    runtime::ThreadPool& pool_;
    const ServiceConfig cfg_;
    BufferArena arena_;  ///< before cache_: evicted leases recycle into it
    ResultCache cache_;
    ChaosEngine chaos_;
    DigestMemo digest_memo_;  ///< resubmitted scenes skip the pixel hash

    mutable std::mutex mu_;
    std::condition_variable cv_drained_;
    std::condition_variable cv_timer_;
    bool stopping_ = false;
    bool timer_stop_ = false;
    std::uint64_t next_seq_ = 0;
    std::size_t running_ = 0;           // concurrency slots in use
    std::size_t inflight_computes_ = 0; // pool lambdas outstanding (>= drain gate)
    std::uint64_t queued_bytes_ = 0;  // image bytes of pending + running flights
    double ewma_compute_seconds_ = 0.0;
    std::unordered_map<CacheKey, std::shared_ptr<Flight>, CacheKeyHash> flights_;
    std::set<Flight*, PendingOrder> pending_;
    std::multimap<Clock::time_point, Flight*> backoff_;  // keyed by retry_at
    std::multimap<Clock::time_point, Flight*> watch_;    // keyed by watch_deadline
    std::unordered_set<CacheKey, CacheKeyHash> quarantine_;
    std::array<CircuitBreaker, 2> breakers_;  // indexed by Backend
    /// Earliest batch-window hold expiry; the timer thread re-runs
    /// dispatch_ready at this point. max() = nothing held.
    Clock::time_point hold_wake_ = Clock::time_point::max();

    ServiceCounters counters_;
    perf::LatencyHistogram queue_wait_hist_;
    perf::LatencyHistogram compute_hist_;
    perf::LatencyHistogram total_hist_;
    std::array<perf::LatencyHistogram, kOutcomeCount> outcome_hist_;

    std::thread timer_;  // last member: joins before the rest tears down
};

}  // namespace wavehpc::svc
