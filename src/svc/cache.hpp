#pragma once
// Content-addressed LRU result cache for the pyramid service.
//
// Keys are content digests (hash.hpp), so two clients uploading the same
// scene bytes share an entry no matter how they name it. Values are
// shared_ptr<const TransformResult>: a lookup hands out the *same* buffer
// the cold compute produced — a hit is bit-identical by construction, and
// eviction never invalidates a result a client still holds.
//
// Capacity is a byte budget over pyramid payloads. Insertion evicts from
// the least-recently-used end until the new entry fits; an entry larger
// than the whole budget is not cached (the computation still succeeded —
// the caller's waiters get the uncached buffer).
//
// Thread-safe behind one mutex; the service calls it from pool workers
// and client threads concurrently. Single-flight deduplication lives in
// the service (it needs the scheduler state), not here.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "svc/request.hpp"

namespace wavehpc::svc {

/// CRC-32 (mesh::crc32, IEEE 802.3) over every coefficient band of the
/// pyramid, approx last — the integrity checksum the result audit keys on.
[[nodiscard]] std::uint32_t pyramid_crc32(const core::Pyramid& pyr) noexcept;

/// Does `result`'s buffer still match its recorded CRC? Results without a
/// checksum (crc32 == 0) pass vacuously.
[[nodiscard]] bool audit_result(const TransformResult& result) noexcept;

struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t rejected_oversize = 0;  ///< results larger than the budget
    std::uint64_t evictions = 0;
    std::uint64_t evicted_bytes = 0;
    std::uint64_t audit_failures = 0;  ///< CRC mismatches caught on insert/lookup
    std::uint64_t variant_hits = 0;    ///< degraded same-scene variant lookups served
    std::uint64_t bytes_in_use = 0;
    std::uint64_t entries = 0;
    std::uint64_t byte_budget = 0;

    [[nodiscard]] double hit_rate() const noexcept {
        const auto total = hits + misses;
        return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }

    /// Fold another cache's stats into this one (fleet aggregation across
    /// shards): every field adds, including the resident gauges — the
    /// merged bytes_in_use / entries / byte_budget are fleet totals.
    void merge(const CacheStats& o) noexcept {
        hits += o.hits;
        misses += o.misses;
        insertions += o.insertions;
        rejected_oversize += o.rejected_oversize;
        evictions += o.evictions;
        evicted_bytes += o.evicted_bytes;
        audit_failures += o.audit_failures;
        variant_hits += o.variant_hits;
        bytes_in_use += o.bytes_in_use;
        entries += o.entries;
        byte_budget += o.byte_budget;
    }
};

class ResultCache {
public:
    explicit ResultCache(std::uint64_t byte_budget) : byte_budget_(byte_budget) {}

    ResultCache(const ResultCache&) = delete;
    ResultCache& operator=(const ResultCache&) = delete;

    /// The cached result, bumped to most-recently-used; null on miss.
    /// When lookup auditing is enabled (chaos runs), a resident entry
    /// whose coefficients no longer match its CRC is dropped and reported
    /// as a miss — a corrupted buffer is never handed out.
    [[nodiscard]] std::shared_ptr<const TransformResult> lookup(const CacheKey& key);

    /// Degraded-mode lookup: the most-recently-used entry for the *same
    /// scene* (digest + dimensions match) under any transform parameters.
    /// Null when nothing for that scene is resident. Audited like lookup.
    [[nodiscard]] std::shared_ptr<const TransformResult> lookup_variant(
        const CacheKey& key);

    /// Insert (or refresh) `result` under `key`, evicting LRU entries
    /// until the byte budget holds. No-op if result->result_bytes alone
    /// exceeds the budget, or if the result carries a CRC that its
    /// coefficients fail (corruption caught at the door; audit_failures).
    void insert(const CacheKey& key, std::shared_ptr<const TransformResult> result);

    /// Turn on CRC verification of entries on every lookup (the service
    /// enables this when a chaos plan is active; off by default because a
    /// per-hit checksum pass is wasted work in a healthy process).
    void set_audit_lookups(bool on) noexcept { audit_lookups_ = on; }

    [[nodiscard]] CacheStats stats() const;

    /// Keys ordered most-recently-used first — test/introspection hook.
    [[nodiscard]] std::vector<CacheKey> keys_mru_first() const;

private:
    struct Entry {
        CacheKey key;
        std::shared_ptr<const TransformResult> result;
    };

    void evict_lru_locked();  // requires mu_, non-empty lru_
    void erase_entry_locked(std::list<Entry>::iterator it);

    mutable std::mutex mu_;
    bool audit_lookups_ = false;
    std::uint64_t byte_budget_;
    std::uint64_t bytes_in_use_ = 0;
    std::list<Entry> lru_;  // front = most recently used
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash> index_;
    CacheStats stats_;
};

}  // namespace wavehpc::svc
