#pragma once
// Content-addressed LRU result cache for the pyramid service.
//
// Keys are content digests (hash.hpp), so two clients uploading the same
// scene bytes share an entry no matter how they name it. Values are
// shared_ptr<const TransformResult>: a lookup hands out the *same* buffer
// the cold compute produced — a hit is bit-identical by construction, and
// eviction never invalidates a result a client still holds.
//
// Capacity is a byte budget over pyramid payloads. Insertion evicts from
// the least-recently-used end until the new entry fits; an entry larger
// than the whole budget is not cached (the computation still succeeded —
// the caller's waiters get the uncached buffer).
//
// Thread-safe behind one mutex; the service calls it from pool workers
// and client threads concurrently. Single-flight deduplication lives in
// the service (it needs the scheduler state), not here.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "svc/request.hpp"

namespace wavehpc::svc {

struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t rejected_oversize = 0;  ///< results larger than the budget
    std::uint64_t evictions = 0;
    std::uint64_t evicted_bytes = 0;
    std::uint64_t bytes_in_use = 0;
    std::uint64_t entries = 0;
    std::uint64_t byte_budget = 0;

    [[nodiscard]] double hit_rate() const noexcept {
        const auto total = hits + misses;
        return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
};

class ResultCache {
public:
    explicit ResultCache(std::uint64_t byte_budget) : byte_budget_(byte_budget) {}

    ResultCache(const ResultCache&) = delete;
    ResultCache& operator=(const ResultCache&) = delete;

    /// The cached result, bumped to most-recently-used; null on miss.
    [[nodiscard]] std::shared_ptr<const TransformResult> lookup(const CacheKey& key);

    /// Insert (or refresh) `result` under `key`, evicting LRU entries
    /// until the byte budget holds. No-op if result->result_bytes alone
    /// exceeds the budget.
    void insert(const CacheKey& key, std::shared_ptr<const TransformResult> result);

    [[nodiscard]] CacheStats stats() const;

    /// Keys ordered most-recently-used first — test/introspection hook.
    [[nodiscard]] std::vector<CacheKey> keys_mru_first() const;

private:
    struct Entry {
        CacheKey key;
        std::shared_ptr<const TransformResult> result;
    };

    void evict_lru_locked();  // requires mu_, non-empty lru_

    mutable std::mutex mu_;
    std::uint64_t byte_budget_;
    std::uint64_t bytes_in_use_ = 0;
    std::list<Entry> lru_;  // front = most recently used
    std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash> index_;
    CacheStats stats_;
};

}  // namespace wavehpc::svc
