#pragma once
// Sharded pyramid service: N PyramidService instances ("shards") behind a
// consistent-hash router (ring.hpp) and a heartbeat failure detector
// (membership.hpp), sharing one runtime::ThreadPool.
//
// Since ISSUE 10 every byte between the router and a shard crosses the
// in-process ShardTransport (transport.hpp), which speaks the mesh
// machine's reliable-frame protocol against a link-aware FaultPlan:
//   * Requests: sealed wire::Request frames (wire.hpp) under ARQ; the
//     shard answers with an AdmitWire verdict on the same channel. The
//     admission fence runs on the *receiver*: a frame whose incarnation
//     is not the shard's current life is refused as StaleEpoch.
//   * Replies: when the compute finishes, the reply pump ships the full
//     TransformReply (or its typed error) back as a sealed wire::Reply
//     frame under ARQ; the client future resolves with what the router
//     received. If the reply wire gives up (shard killed or partitioned
//     at completion time), the locally held outcome is delivered honestly
//     and `reply_wire_fallbacks` counts it.
//   * Membership: no direct observe() probes. Each tick every live shard
//     gossips its full (incarnation, last_ok, health) roster vector to
//     the router and its peers as wire::Gossip datagrams; every receiver
//     folds the vector through FailureDetector::merge_entry. The router's
//     detector still drives routing, and under identical fault draws its
//     epoch/roster_hash sequence is bit-for-bit the old probe loop's.
//
// Split-brain resolution: a shard that reads a gossiped claim that *it*
// is Dead — at its own (or a later) incarnation, with a last_ok stale
// enough to prove the claimant has not heard its recent beats — refutes
// by bumping its incarnation. Claimants then re-admit it through the
// ordinary epoch fence (readmit_oks fresh beats of the new life), so an
// asymmetric partition heals to one roster on every node and a healed
// partition victim rejoins instead of staying a permanent corpse.
//
// Failure semantics (replayed from ChaosPlan::shard_events or injected by
// the kill/revive test seams):
//   * Kill — crash-stop. The node's NIC goes unreachable (requests fail
//     over on the very next submit, before any heartbeat lapses), the
//     service is drained (in-flight waiters resolve with
//     ServiceShutdownError — nothing strands), its metrics are folded
//     into the retired accumulator, and its cache dies with it.
//   * Partition — the NIC is off but the process survives: beats stop,
//     requests give up, the cache and counters are intact at heal time.
//     Asymmetric partitions (A hears B but not vice versa) come from
//     LinkFault rules in `transport_faults` instead.
//   * Slow — every request to the shard stalls first (noisy neighbour).
//
// Clocking: with `manual_clock` the owner drives tick(now) explicitly and
// the cluster starts no monitor thread — the deterministic mode every
// tier-1 test uses (the reply pump thread always runs; it performs no
// time-based work). Otherwise a monitor thread beats every
// heartbeat_interval: gossip rounds, roster sweeps, due chaos events.
//
// Lock order: mu_ (orchestration: detectors, chaos actions, clock,
// gossip inboxes) -> transport's internal mutex -> nodes_mu_ (leaf: node
// liveness flags, pending futures, counters). Transport handlers run
// under the transport mutex and may take only nodes_mu_.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "mesh/faults.hpp"
#include "svc/chaos.hpp"
#include "svc/service.hpp"
#include "svc/shard/membership.hpp"
#include "svc/shard/ring.hpp"
#include "svc/shard/transport.hpp"
#include "svc/shard/wire.hpp"

namespace wavehpc::svc::shard {

struct ShardClusterConfig {
    std::size_t shard_count = 4;
    std::size_t vnodes = 64;       ///< ring points per shard
    std::size_t replicas = 2;      ///< failover chain length per key
    std::uint64_t seed = 1;        ///< ring placement seed
    MembershipConfig membership;
    ServiceConfig service;         ///< per-shard service posture
    /// No monitor thread; the owner drives tick(now) with explicit
    /// seconds. Chaos events replay against that clock.
    bool manual_clock = false;

    /// Fault plan installed into the shard transport (drops, corruption,
    /// directed LinkFault windows — the partition-drill seam). A zero
    /// seed inherits `gossip_seed`.
    mesh::FaultPlan transport_faults;
    /// Transport fault-draw seed; 0 falls back to `seed`.
    std::uint64_t gossip_seed = 0;
    /// ARQ retries per transfer before the wire gives up.
    int wire_retries = 4;
    /// Peers each shard gossips its roster to per tick, in ring order
    /// after the router (which always hears every beat). 0 = all peers.
    std::size_t gossip_fanout = 0;

    /// Defaults overridden by WAVEHPC_SHARD_COUNT / WAVEHPC_SHARD_VNODES /
    /// WAVEHPC_SHARD_REPLICAS / WAVEHPC_SHARD_SEED (falling back to
    /// WAVEHPC_SCHED_SEED) / WAVEHPC_SHARD_HB_MS / WAVEHPC_SHARD_SUSPECT_MS
    /// / WAVEHPC_SHARD_DEAD_MS / WAVEHPC_SHARD_READMIT_OKS /
    /// WAVEHPC_SHARD_GOSSIP_SEED / WAVEHPC_SHARD_GOSSIP_FANOUT /
    /// WAVEHPC_SHARD_WIRE_RETRIES / WAVEHPC_SHARD_FAULTS (a
    /// mesh::FaultPlan spec string), plus ServiceConfig::from_env() for
    /// the per-shard service.
    [[nodiscard]] static ShardClusterConfig from_env();
};

/// Why the cluster (not a shard's admission) refused a delivery attempt.
enum class RouteRefusal : std::uint8_t {
    None,        ///< delivered to the shard's submit()
    RosterDead,  ///< skipped: the roster marks the shard Dead
    Transport,   ///< refused: the request wire gave up (killed/partitioned)
    StaleEpoch,  ///< refused: shard incarnation != the router's belief
};

/// Synchronous answer of ShardCluster::submit.
struct ClusterSubmitResult {
    /// The shard that accepted (or the last one that answered), or
    /// `no_shard` when every replica was refused before any submit().
    static constexpr ShardId no_shard = static_cast<ShardId>(-1);
    ShardId shard = no_shard;
    std::size_t hops = 0;  ///< replicas whose admission answered (1 = primary)
    /// Served from another live shard's cache after the replica chain
    /// failed (allow_degraded only). result.future is ready.
    bool cross_shard_degraded = false;
    SubmitResult result;
};

/// Monotonic cluster-level counters (shard-internal counters live in each
/// service's own ServiceCounters; fleet_metrics() merges those).
struct ClusterCounters {
    std::uint64_t routed = 0;             ///< submit() calls
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;           ///< replica chain exhausted, no degrade
    std::uint64_t failovers = 0;          ///< deliveries past the primary
    std::uint64_t roster_skips = 0;       ///< replicas skipped as Dead
    std::uint64_t transport_refusals = 0; ///< request wire gave up / node down
    std::uint64_t stale_epoch_refusals = 0;
    std::uint64_t cross_shard_degraded = 0;
    std::uint64_t kills = 0;
    std::uint64_t revivals = 0;
    std::uint64_t partitions = 0;
    std::uint64_t heals = 0;              ///< partition/slow windows ended
    std::uint64_t slowdowns = 0;
    std::uint64_t deaths = 0;             ///< roster transitions into Dead
    std::uint64_t suspicions = 0;         ///< roster transitions into Suspect
    std::uint64_t readmissions = 0;       ///< Dead -> Alive re-admissions
    std::uint64_t refutations = 0;        ///< shards refuting their own Dead claim
    /// Value replies delivered under a mismatched incarnation. The wire
    /// format makes this structurally impossible; the drills assert 0.
    std::uint64_t stale_replies_delivered = 0;
    /// Replies delivered from the locally held outcome because the reply
    /// wire gave up (shard killed/partitioned at completion time).
    std::uint64_t reply_wire_fallbacks = 0;
};

class ShardCluster {
public:
    /// Builds `cfg.shard_count` services over `pool`. The pool must
    /// outlive the cluster; the cluster drains every shard on destruction.
    /// Futures returned by submit() must not outlive the cluster.
    ShardCluster(runtime::ThreadPool& pool, ShardClusterConfig cfg = {});
    ~ShardCluster();

    ShardCluster(const ShardCluster&) = delete;
    ShardCluster& operator=(const ShardCluster&) = delete;

    /// Route and deliver: hash the scene, walk its replica chain, fail
    /// over past dead/refusing shards, degrade cross-shard as a last
    /// resort. Synchronous like PyramidService::submit; never blocks on
    /// compute (a Slow shard's injected stall does block the caller — by
    /// design, that is what a slow shard does to its clients).
    [[nodiscard]] ClusterSubmitResult submit(TransformRequest request);

    /// Drain every live shard and stop the monitor + reply-pump threads.
    /// Idempotent.
    void shutdown();

    // --- fault seams (the chaos replay uses exactly these) ---

    /// Crash-stop `shard` now: the NIC goes unreachable, the service
    /// drains (waiters get ServiceShutdownError), metrics fold into the
    /// retired accumulator, cache state is lost. No-op if already killed.
    void kill(ShardId shard);

    /// Bring a killed shard back with a fresh service, a fresh membership
    /// view, and a *new* incarnation. The roster re-admits it only after
    /// readmit_oks heartbeats of the new life. No-op if not killed.
    void revive(ShardId shard);

    void set_partitioned(ShardId shard, bool on);
    void set_slow(ShardId shard, double stall_seconds);  ///< 0 clears

    /// Install `plan` cluster-wide: its shard events replay against the
    /// cluster clock, and its in-service faults (compute errors, stalls,
    /// corruptions) are pushed to every live shard — and re-installed on
    /// each revived life — so one spec string describes the whole run.
    void set_chaos_plan(const ChaosPlan& plan);

    /// Install a transport fault plan (drops / corruption / LinkFault
    /// windows) on the live wire — the partition-drill seam. A zero seed
    /// keeps the transport's current draw seed.
    void set_transport_faults(mesh::FaultPlan plan);

    /// Manual-clock step: advance to `now` seconds, replay due chaos
    /// events, run one gossip round over the wire, sweep every detector.
    /// The monitor thread calls this with wall-derived time; manual-clock
    /// owners call it directly. `now` never moves backwards.
    void tick(double now);

    // --- introspection ---
    [[nodiscard]] std::size_t shard_count() const noexcept;
    [[nodiscard]] const HashRing& ring() const noexcept { return ring_; }
    [[nodiscard]] ShardHealth health(ShardId shard) const;
    [[nodiscard]] std::uint64_t incarnation(ShardId shard) const;
    [[nodiscard]] std::uint64_t roster_epoch() const;
    [[nodiscard]] std::uint64_t roster_hash() const;
    /// The shard's *own* gossiped membership view (the drills assert that
    /// every live node converges to the router's roster_hash after heal).
    [[nodiscard]] std::uint64_t node_roster_hash(ShardId shard) const;
    [[nodiscard]] ClusterCounters counters() const;
    [[nodiscard]] WireStats wire_stats() const;
    [[nodiscard]] const ShardClusterConfig& config() const noexcept { return cfg_; }

    /// Fleet view: live shards' snapshots merged with every killed life's
    /// retired snapshot — counters never go backwards across a kill.
    [[nodiscard]] MetricsSnapshot fleet_metrics() const;
    [[nodiscard]] CacheStats fleet_cache_stats() const;
    /// Fleet slab-pool view (ISSUE 8): live shards' arena stats merged
    /// with every killed life's — a kill returns its pooled slabs to the
    /// allocator, but the hit/miss/fallback history still counts.
    [[nodiscard]] ArenaStats fleet_arena_stats() const;

    /// Replica chain the router would walk for this request's scene.
    [[nodiscard]] std::vector<ShardId> placement(const TransformRequest& request) const;

    // --- test hooks ---
    /// Direct delivery to one shard, bypassing ring + roster + wire
    /// (cache warming in tests). Throws std::out_of_range on a bad shard
    /// id; returns a Transport refusal shape if the shard is unreachable.
    [[nodiscard]] SubmitResult submit_to_shard(ShardId shard, TransformRequest request);

    /// The shard's live service, or nullptr while killed. The pointer is
    /// only stable while the caller prevents kills (test seam).
    [[nodiscard]] PyramidService* service(ShardId shard);

private:
    /// One sealed gossip frame waiting in a node's (or the router's)
    /// inbox. Filled by transport sinks during a tick's sends, drained by
    /// the same tick's merge phase — only mu_ holders ever touch inboxes.
    struct GossipMsg {
        int src = 0;
        std::vector<std::byte> frame;
    };

    struct Node {
        std::shared_ptr<PyramidService> service;  // null while killed
        std::uint64_t incarnation = 0;
        bool killed = false;
        bool partitioned = false;
        double stall_seconds = 0.0;  ///< injected per-delivery stall (Slow)
        /// Futures the shard accepted over the wire, keyed by request id,
        /// until the router claims them (nodes_mu_).
        std::map<std::uint64_t, TransformFuture> pending;
        /// The shard's own membership view, fed purely by gossip (mu_).
        FailureDetector detector;
        std::vector<GossipMsg> inbox;  ///< sealed roster frames (mu_)
    };

    /// One side of a timed ShardEvent, flattened for ordered replay.
    struct ChaosAction {
        double at = 0.0;
        ShardId shard = 0;
        ShardEventKind kind = ShardEventKind::Kill;
        bool begin = true;
        double stall_seconds = 0.0;
    };

    /// Grab a direct-delivery ticket for `shard` under nodes_mu_: the
    /// live service (ref held), the stall to apply, or the refusal.
    struct Ticket {
        std::shared_ptr<PyramidService> service;
        double stall_seconds = 0.0;
        RouteRefusal refusal = RouteRefusal::None;
    };
    [[nodiscard]] Ticket grab_ticket(ShardId shard);

    /// An accepted request waiting for its compute to finish so the reply
    /// can cross the wire; the pump resolves `promise` with what the
    /// router received (or the local outcome on wire give-up).
    struct ReplyTask {
        ShardId shard = 0;
        std::uint64_t request_id = 0;
        std::uint64_t incarnation = 0;  ///< the router's belief at dispatch
        TransformFuture inner;
        std::shared_ptr<std::promise<TransformReply>> promise;
    };

    /// A reply the router-side wire handler received and decoded, waiting
    /// for the pump to claim it (nodes_mu_).
    struct ReceivedReply {
        std::uint64_t incarnation = 0;
        wire::ReplyWire rw;
    };

    [[nodiscard]] int router_node() const noexcept {
        return static_cast<int>(cfg_.shard_count);
    }

    /// Shard-side request handler (transport mutex held; takes nodes_mu_
    /// only): fence, decode, admit into the shard's service.
    [[nodiscard]] std::vector<std::byte> handle_request(
        ShardId shard, std::span<const std::byte> frame);

    /// Wait for the task's compute, ship the reply over the wire, resolve
    /// the client promise. Runs on the pump thread (or inline after the
    /// pump stopped). Takes no lock while waiting.
    void deliver_reply(ReplyTask task);
    void pump_loop();
    void enqueue_reply(ReplyTask task);

    /// One gossip round at `now` (mu_ held): every live shard seals its
    /// roster and beats the router + fanout peers, the router broadcasts
    /// its pre-merge roster, then every inbox is merged (self-entries run
    /// the refutation rule) and every detector sweeps.
    void gossip_round_locked(double now);
    void tick_locked(std::unique_lock<std::mutex>& lk, double now);

    void kill_locked_phase1(ShardId shard, std::unique_lock<std::mutex>& lk,
                            std::vector<std::shared_ptr<PyramidService>>& drains);
    void revive_locked(ShardId shard);
    void apply_due_actions(std::unique_lock<std::mutex>& lk, double now);
    void drain_and_retire(std::vector<std::shared_ptr<PyramidService>>& drains);
    void absorb_transitions_locked();
    void sync_reachability(ShardId shard);
    void monitor_loop();
    [[nodiscard]] double now_seconds() const;

    runtime::ThreadPool& pool_;
    const ShardClusterConfig cfg_;
    HashRing ring_;
    DigestMemo digest_memo_;  ///< routing skips the pixel hash on reseen scenes
    const Clock::time_point epoch0_ = Clock::now();  ///< wall clock origin
    ShardTransport transport_;  ///< nodes 0..N-1 = shards, N = router

    mutable std::mutex mu_;
    bool stopping_ = false;
    double now_ = 0.0;  ///< cluster clock, monotonic (manual or wall-derived)
    FailureDetector detector_;          ///< the router's view; drives routing
    std::vector<GossipMsg> router_inbox_;
    std::vector<ChaosAction> actions_;  // sorted by at
    std::size_t next_action_ = 0;
    ChaosPlan service_plan_;            ///< pushed to every (re)born service
    bool have_service_plan_ = false;
    MetricsSnapshot retired_;      ///< merged snapshots of killed lives
    CacheStats retired_cache_;
    ArenaStats retired_arena_;

    mutable std::mutex nodes_mu_;  ///< leaf lock (see lock order above)
    std::vector<Node> nodes_;
    ClusterCounters counters_;
    std::map<std::uint64_t, ReceivedReply> reply_box_;
    std::uint64_t next_request_id_ = 1;

    std::mutex pump_mu_;
    std::condition_variable cv_pump_;
    std::deque<ReplyTask> pump_queue_;
    bool pump_stop_ = false;

    std::condition_variable cv_monitor_;
    std::thread pump_;
    std::thread monitor_;  // last member: joins before the rest tears down
};

}  // namespace wavehpc::svc::shard
