#pragma once
// Sharded pyramid service: N PyramidService instances ("shards") behind a
// consistent-hash router (ring.hpp) and a heartbeat failure detector
// (membership.hpp), sharing one runtime::ThreadPool.
//
// Routing walks the key's replica chain (primary first) and skips shards
// the roster says are Dead or the transport says are unreachable; a
// breaker-open or saturated reject from one replica fails over to the
// next. When the whole chain is unusable and the request opted into
// degradation, the router scans every *live* shard's cache for the scene
// and answers with a ready degraded reply — a shard's death costs its
// in-flight work, never an answer some other shard already holds.
//
// Failure semantics (replayed from ChaosPlan::shard_events or injected by
// the kill/revive test seams):
//   * Kill — crash-stop. The transport refuses instantly (routing fails
//     over on the very next request, before any heartbeat lapses), the
//     service is drained (in-flight waiters resolve with
//     ServiceShutdownError — nothing strands), its metrics are folded
//     into the retired accumulator, and its cache dies with it.
//   * Partition — requests and heartbeats are refused but the process
//     survives: the cache and counters are intact at heal time.
//   * Slow — every request to the shard stalls first (noisy neighbour).
//
// Epoch fencing: each shard carries an incarnation, bumped at revival.
// The router captures the incarnation it believes in when it routes; the
// transport refuses on mismatch (StaleEpoch), so a router acting on a
// pre-kill roster view can never reach a re-admitted shard's fresh life
// by accident — it re-routes, re-reads the roster, and catches up. The
// failure detector enforces the same fence on membership: a Dead shard
// re-admits only after `readmit_oks` consecutive beats from a *newer*
// incarnation (membership.hpp).
//
// Clocking: with `manual_clock` the owner drives tick(now) explicitly and
// the cluster starts no threads — the deterministic mode every tier-1
// test uses. Otherwise a monitor thread beats every heartbeat_interval:
// probe transports, feed the detector, replay due chaos events.

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "svc/chaos.hpp"
#include "svc/service.hpp"
#include "svc/shard/membership.hpp"
#include "svc/shard/ring.hpp"

namespace wavehpc::svc::shard {

struct ShardClusterConfig {
    std::size_t shard_count = 4;
    std::size_t vnodes = 64;       ///< ring points per shard
    std::size_t replicas = 2;      ///< failover chain length per key
    std::uint64_t seed = 1;        ///< ring placement seed
    MembershipConfig membership;
    ServiceConfig service;         ///< per-shard service posture
    /// No monitor thread; the owner drives tick(now) with explicit
    /// seconds. Chaos events replay against that clock.
    bool manual_clock = false;

    /// Defaults overridden by WAVEHPC_SHARD_COUNT / WAVEHPC_SHARD_VNODES /
    /// WAVEHPC_SHARD_REPLICAS / WAVEHPC_SHARD_SEED (falling back to
    /// WAVEHPC_SCHED_SEED) / WAVEHPC_SHARD_HB_MS / WAVEHPC_SHARD_SUSPECT_MS
    /// / WAVEHPC_SHARD_DEAD_MS / WAVEHPC_SHARD_READMIT_OKS, plus
    /// ServiceConfig::from_env() for the per-shard service.
    [[nodiscard]] static ShardClusterConfig from_env();
};

/// Why the cluster (not a shard's admission) refused a delivery attempt.
enum class RouteRefusal : std::uint8_t {
    None,        ///< delivered to the shard's submit()
    RosterDead,  ///< skipped: the roster marks the shard Dead
    Transport,   ///< refused: killed or partitioned at the transport
    StaleEpoch,  ///< refused: shard incarnation != the router's belief
};

/// Synchronous answer of ShardCluster::submit.
struct ClusterSubmitResult {
    /// The shard that accepted (or the last one that answered), or
    /// `no_shard` when every replica was refused before any submit().
    static constexpr ShardId no_shard = static_cast<ShardId>(-1);
    ShardId shard = no_shard;
    std::size_t hops = 0;  ///< replicas tried (1 = primary answered)
    /// Served from another live shard's cache after the replica chain
    /// failed (allow_degraded only). result.future is ready.
    bool cross_shard_degraded = false;
    SubmitResult result;
};

/// Monotonic cluster-level counters (shard-internal counters live in each
/// service's own ServiceCounters; fleet_metrics() merges those).
struct ClusterCounters {
    std::uint64_t routed = 0;             ///< submit() calls
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;           ///< replica chain exhausted, no degrade
    std::uint64_t failovers = 0;          ///< deliveries past the primary
    std::uint64_t roster_skips = 0;       ///< replicas skipped as Dead
    std::uint64_t transport_refusals = 0; ///< killed/partitioned shard reached
    std::uint64_t stale_epoch_refusals = 0;
    std::uint64_t cross_shard_degraded = 0;
    std::uint64_t kills = 0;
    std::uint64_t revivals = 0;
    std::uint64_t partitions = 0;
    std::uint64_t heals = 0;              ///< partition/slow windows ended
    std::uint64_t slowdowns = 0;
    std::uint64_t deaths = 0;             ///< roster transitions into Dead
    std::uint64_t suspicions = 0;         ///< roster transitions into Suspect
    std::uint64_t readmissions = 0;       ///< Dead -> Alive re-admissions
};

class ShardCluster {
public:
    /// Builds `cfg.shard_count` services over `pool`. The pool must
    /// outlive the cluster; the cluster drains every shard on destruction.
    ShardCluster(runtime::ThreadPool& pool, ShardClusterConfig cfg = {});
    ~ShardCluster();

    ShardCluster(const ShardCluster&) = delete;
    ShardCluster& operator=(const ShardCluster&) = delete;

    /// Route and deliver: hash the scene, walk its replica chain, fail
    /// over past dead/refusing shards, degrade cross-shard as a last
    /// resort. Synchronous like PyramidService::submit; never blocks on
    /// compute (a Slow shard's injected stall does block the caller — by
    /// design, that is what a slow shard does to its clients).
    [[nodiscard]] ClusterSubmitResult submit(TransformRequest request);

    /// Drain every live shard and stop the monitor thread. Idempotent.
    void shutdown();

    // --- fault seams (the chaos replay uses exactly these) ---

    /// Crash-stop `shard` now: transport refuses, service drains (waiters
    /// get ServiceShutdownError), metrics fold into the retired
    /// accumulator, cache state is lost. No-op if already killed.
    void kill(ShardId shard);

    /// Bring a killed shard back with a fresh service and a *new*
    /// incarnation. The roster re-admits it only after readmit_oks
    /// heartbeats of the new life. No-op if not killed.
    void revive(ShardId shard);

    void set_partitioned(ShardId shard, bool on);
    void set_slow(ShardId shard, double stall_seconds);  ///< 0 clears

    /// Install `plan` cluster-wide: its shard events replay against the
    /// cluster clock, and its in-service faults (compute errors, stalls,
    /// corruptions) are pushed to every live shard — and re-installed on
    /// each revived life — so one spec string describes the whole run.
    void set_chaos_plan(const ChaosPlan& plan);

    /// Manual-clock step: advance to `now` seconds, replay due chaos
    /// events, probe every transport, feed the detector, sweep. The
    /// monitor thread calls this with wall-derived time; manual-clock
    /// owners call it directly. `now` never moves backwards.
    void tick(double now);

    // --- introspection ---
    [[nodiscard]] std::size_t shard_count() const noexcept;
    [[nodiscard]] const HashRing& ring() const noexcept { return ring_; }
    [[nodiscard]] ShardHealth health(ShardId shard) const;
    [[nodiscard]] std::uint64_t incarnation(ShardId shard) const;
    [[nodiscard]] std::uint64_t roster_epoch() const;
    [[nodiscard]] std::uint64_t roster_hash() const;
    [[nodiscard]] ClusterCounters counters() const;
    [[nodiscard]] const ShardClusterConfig& config() const noexcept { return cfg_; }

    /// Fleet view: live shards' snapshots merged with every killed life's
    /// retired snapshot — counters never go backwards across a kill.
    [[nodiscard]] MetricsSnapshot fleet_metrics() const;
    [[nodiscard]] CacheStats fleet_cache_stats() const;
    /// Fleet slab-pool view (ISSUE 8): live shards' arena stats merged
    /// with every killed life's — a kill returns its pooled slabs to the
    /// allocator, but the hit/miss/fallback history still counts.
    [[nodiscard]] ArenaStats fleet_arena_stats() const;

    /// Replica chain the router would walk for this request's scene.
    [[nodiscard]] std::vector<ShardId> placement(const TransformRequest& request) const;

    // --- test hooks ---
    /// Direct delivery to one shard, bypassing ring + roster (cache
    /// warming in tests). Throws std::out_of_range on a bad shard id;
    /// returns a Transport refusal shape if the shard is unreachable.
    [[nodiscard]] SubmitResult submit_to_shard(ShardId shard, TransformRequest request);

    /// The shard's live service, or nullptr while killed. The pointer is
    /// only stable while the caller prevents kills (test seam).
    [[nodiscard]] PyramidService* service(ShardId shard);

private:
    struct Node {
        std::shared_ptr<PyramidService> service;  // null while killed
        std::uint64_t incarnation = 0;
        bool killed = false;
        bool partitioned = false;
        double stall_seconds = 0.0;  ///< injected per-delivery stall (Slow)
    };

    /// One side of a timed ShardEvent, flattened for ordered replay.
    struct ChaosAction {
        double at = 0.0;
        ShardId shard = 0;
        ShardEventKind kind = ShardEventKind::Kill;
        bool begin = true;
        double stall_seconds = 0.0;
    };

    /// Grab a delivery ticket for `shard` under mu_: the live service (ref
    /// held), the stall to apply, or the refusal. `expected_incarnation`
    /// is checked when `fenced`.
    struct Ticket {
        std::shared_ptr<PyramidService> service;
        double stall_seconds = 0.0;
        RouteRefusal refusal = RouteRefusal::None;
    };
    [[nodiscard]] Ticket grab_ticket(ShardId shard, bool fenced,
                                     std::uint64_t expected_incarnation);

    void kill_locked_phase1(ShardId shard, std::unique_lock<std::mutex>& lk,
                            std::vector<std::shared_ptr<PyramidService>>& drains);
    void revive_locked(ShardId shard);
    void apply_due_actions(std::unique_lock<std::mutex>& lk, double now);
    void drain_and_retire(std::vector<std::shared_ptr<PyramidService>>& drains);
    void absorb_transitions_locked();
    void monitor_loop();
    [[nodiscard]] double now_seconds() const;

    runtime::ThreadPool& pool_;
    const ShardClusterConfig cfg_;
    HashRing ring_;
    DigestMemo digest_memo_;  ///< routing skips the pixel hash on reseen scenes
    const Clock::time_point epoch0_ = Clock::now();  ///< wall clock origin

    mutable std::mutex mu_;
    bool stopping_ = false;
    double now_ = 0.0;  ///< cluster clock, monotonic (manual or wall-derived)
    std::vector<Node> nodes_;
    FailureDetector detector_;
    std::vector<ChaosAction> actions_;  // sorted by at
    std::size_t next_action_ = 0;
    ChaosPlan service_plan_;            ///< pushed to every (re)born service
    bool have_service_plan_ = false;
    ClusterCounters counters_;
    MetricsSnapshot retired_;      ///< merged snapshots of killed lives
    CacheStats retired_cache_;
    ArenaStats retired_arena_;
    std::condition_variable cv_monitor_;
    std::thread monitor_;  // last member: joins before the rest tears down
};

}  // namespace wavehpc::svc::shard
