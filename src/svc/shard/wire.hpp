#pragma once
// Wire format for shard traffic (DESIGN.md §16).
//
// Every message the shard tier puts on a transport — request dispatch,
// reply shipping, gossiped roster exchange — is one sealed frame:
//
//   header (48 bytes, little-endian):
//     magic   u32  'WSRD'
//     version u16  (currently 1; decoders reject anything else)
//     kind    u8   MsgKind
//     flags   u8   reserved, 0
//     src     u32  sender node id (shards 0..N-1, router = N)
//     dst     u32  receiver node id
//     incarnation u64  sender's incarnation; for requests, the router's
//                      *expected* incarnation of the target shard — the
//                      receiver-side epoch fence checks it before serving
//     epoch   u64  sender's roster epoch at send time
//     request_id  u64  correlates a reply with its dispatch (0 for gossip)
//     payload_size u32
//     payload_crc  u32  mesh::crc32 over the payload bytes
//   payload (payload_size bytes)
//
// The same encoding serves both legs: the live in-process ShardTransport
// (transport.hpp) and the mesh::Machine gossip program (mesh_gossip.hpp).
// A machine-injected bit flip on a plain csend lands in the payload or
// header and is caught here at unseal time — the wire CRC is the shard
// tier's own integrity check, layered under the transform-result CRC audit.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "svc/request.hpp"

namespace wavehpc::svc::shard::wire {

constexpr std::uint32_t kMagic = 0x57535244U;  // "WSRD"
constexpr std::uint16_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 48;

/// Transport tags, one per traffic class, so fault plans can target
/// heartbeats and requests individually (e.g. drop gossip A→B only).
constexpr int kRequestTag = 81;
constexpr int kReplyTag = 82;
constexpr int kGossipTag = 83;

enum class MsgKind : std::uint8_t { Request = 1, Reply = 2, Gossip = 3 };

/// Malformed or corrupted frame; lossy paths use try_unseal instead.
class WireError : public std::runtime_error {
public:
    explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

struct Header {
    MsgKind kind = MsgKind::Request;
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint64_t incarnation = 0;
    std::uint64_t epoch = 0;
    std::uint64_t request_id = 0;
};

/// Build one sealed frame: header + CRC-protected payload.
[[nodiscard]] std::vector<std::byte> seal(const Header& h,
                                          std::span<const std::byte> payload);

struct Unsealed {
    Header header;
    std::vector<std::byte> payload;
};

/// Parse + verify a sealed frame; nullopt on any defect (bad magic,
/// version, truncation, CRC mismatch) — the lossy-path form used where a
/// corrupted frame should count as a lost message, not an error.
[[nodiscard]] std::optional<Unsealed> try_unseal(
    std::span<const std::byte> frame);

/// Parse + verify, throwing WireError with the defect named.
[[nodiscard]] Unsealed unseal(std::span<const std::byte> frame);

// ------------------------------------------------------------ payloads

/// TransformRequest payload: transform parameters + the full pixel plane.
/// The image genuinely crosses the wire — the decoder materializes a new
/// ImageF from the payload bytes. The deadline travels as seconds relative
/// to `now` (+inf = none) since steady_clock points don't cross processes.
[[nodiscard]] std::vector<std::byte> encode_request_payload(
    const TransformRequest& req, Clock::time_point now);
[[nodiscard]] TransformRequest decode_request_payload(
    std::span<const std::byte> payload, Clock::time_point now);

/// Reply payloads carry either a full TransformReply (pyramid included)
/// or a typed error that the router re-throws to the client.
enum class ReplyErrorKind : std::uint8_t {
    Shutdown = 0,
    Deadline = 1,
    Watchdog = 2,
    CrcAudit = 3,
    Other = 4,
};

struct ReplyWire {
    bool is_error = false;
    ReplyErrorKind error_kind = ReplyErrorKind::Other;
    std::string error_message;
    TransformReply reply;  ///< valid when !is_error
};

[[nodiscard]] std::vector<std::byte> encode_reply_payload(
    const TransformReply& reply);
[[nodiscard]] std::vector<std::byte> encode_reply_error_payload(
    ReplyErrorKind kind, std::string_view message);
[[nodiscard]] ReplyWire decode_reply_payload(std::span<const std::byte> payload);

/// Rethrow the typed error a ReplyWire carries (is_error must be true).
[[noreturn]] void rethrow_reply_error(const ReplyWire& rw);

/// Gossip payload: the sender's full (incarnation, last_ok, health) roster
/// vector, merged by every receiver (membership.hpp merge_entry).
struct RosterEntry {
    std::uint64_t incarnation = 0;
    double last_ok = 0.0;
    std::uint8_t health = 0;  ///< ShardHealth as sent; advisory for refutation
};

[[nodiscard]] std::vector<std::byte> encode_roster_payload(
    std::span<const RosterEntry> roster);
[[nodiscard]] std::vector<RosterEntry> decode_roster_payload(
    std::span<const std::byte> payload);

/// Admission verdict a shard returns on the request channel — the reply
/// payload of the routed-request RPC. The pyramid itself travels later on
/// the reply channel once compute finishes.
enum class AdmitStatus : std::uint8_t {
    Accepted = 0,
    Rejected = 1,    ///< shard admission said no (reason + retry hint below)
    StaleEpoch = 2,  ///< request incarnation != the shard's current life
    Down = 3,        ///< no live service behind the node
};

struct AdmitWire {
    AdmitStatus status = AdmitStatus::Down;
    RejectReason reject_reason = RejectReason::None;  ///< when Rejected
    double retry_after = 0.0;                         ///< when Rejected
};

[[nodiscard]] std::vector<std::byte> encode_admit_payload(const AdmitWire& a);
[[nodiscard]] AdmitWire decode_admit_payload(std::span<const std::byte> payload);

}  // namespace wavehpc::svc::shard::wire
