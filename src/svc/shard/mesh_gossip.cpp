#include "svc/shard/mesh_gossip.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "mesh/machine.hpp"
#include "svc/shard/wire.hpp"

namespace wavehpc::svc::shard {

namespace {

constexpr int kBeatTag = wire::kGossipTag;

}  // namespace

MeshGossipResult run_mesh_gossip(const MeshGossipParams& params) {
    if (params.ranks == 0) {
        throw std::invalid_argument("run_mesh_gossip: ranks must be > 0");
    }
    const int n = static_cast<int>(params.ranks);

    mesh::MachineProfile profile =
        mesh::MachineProfile::test_profile(params.ranks, 1);
    profile.faults.seed = params.fault_seed;
    for (const auto& [rank, at] : params.fail_at) {
        profile.faults.failures.push_back({rank, at});
    }
    profile.faults.links = params.link_faults;
    mesh::Machine machine(std::move(profile));
    if (params.schedule_seed != 0) {
        machine.set_schedule_seed(params.schedule_seed);
    }

    MeshGossipResult out;
    out.views.assign(params.ranks, {});
    auto* views = &out.views;  // ranks publish into distinct slots

    const MembershipConfig cfg = params.membership;
    const double end = params.run_seconds;
    const auto result = machine.run(params.ranks, [&](mesh::NodeCtx& ctx) {
        const int rank = ctx.rank();
        const auto self = static_cast<std::size_t>(rank);
        FailureDetector det(static_cast<std::size_t>(n), cfg);
        std::uint64_t my_inc = 1;  // bumped by refutation (a "new life")
        std::uint64_t refutations = 0;
        double next_beat = 0.0;
        while (ctx.now() < end) {
            if (ctx.now() >= next_beat) {
                det.observe(self, true, ctx.now(), my_inc);
                // The beat is the full roster vector, sealed in the shard
                // wire format — identical bytes to the live transport leg.
                std::vector<wire::RosterEntry> roster;
                roster.reserve(det.shard_count());
                for (const ShardStatus& st : det.snapshot()) {
                    roster.push_back({st.incarnation, st.last_ok,
                                      static_cast<std::uint8_t>(st.health)});
                }
                const auto payload = wire::encode_roster_payload(roster);
                for (int peer = 0; peer < n; ++peer) {
                    if (peer == rank) continue;
                    wire::Header h;
                    h.kind = wire::MsgKind::Gossip;
                    h.src = static_cast<std::uint32_t>(rank);
                    h.dst = static_cast<std::uint32_t>(peer);
                    h.incarnation = my_inc;
                    h.epoch = det.epoch();
                    const auto sealed = wire::seal(h, payload);
                    ctx.csend(kBeatTag, peer, sealed);
                }
                next_beat += cfg.heartbeat_interval;
            }
            det.observe(self, true, ctx.now(), my_inc);
            const double wait = std::min(next_beat, end) - ctx.now();
            if (wait > 0.0) {
                if (auto m = ctx.crecv_timeout(kBeatTag, mesh::kAnySource, wait)) {
                    // A machine-corrupted frame fails the wire CRC here and
                    // the beat is simply lost — no partial merge.
                    if (const auto un = wire::try_unseal(m->data)) {
                        const auto entries =
                            wire::decode_roster_payload(un->payload);
                        for (std::size_t s = 0;
                             s < entries.size() && s < det.shard_count(); ++s) {
                            const wire::RosterEntry& e = entries[s];
                            if (s == self) {
                                // Split-brain refutation: the claimant says
                                // this rank is Dead at (or past) its own
                                // incarnation, and the claim's last_ok is
                                // too stale for the claimant to have heard
                                // recent beats. Bump: readmission then runs
                                // through the ordinary epoch fence.
                                const bool claims_dead =
                                    e.health ==
                                    static_cast<std::uint8_t>(ShardHealth::Dead);
                                if (claims_dead && e.incarnation >= my_inc &&
                                    e.last_ok + cfg.suspect_after <= ctx.now()) {
                                    my_inc = e.incarnation + 1;
                                    ++refutations;
                                    det.observe(self, true, ctx.now(), my_inc);
                                }
                                continue;
                            }
                            det.merge_entry(s, e.incarnation, e.last_ok,
                                            ctx.now());
                        }
                    }
                }
            }
            det.sweep(ctx.now());
            // Publish every pass: a fail-stop mid-loop leaves the last
            // pre-death view behind instead of an empty one.
            MeshGossipRankView& view = (*views)[self];
            view.roster_hash = det.roster_hash();
            view.epoch = det.epoch();
            view.incarnation = my_inc;
            view.refutations = refutations;
            view.health.assign(det.shard_count(), ShardHealth::Alive);
            for (std::size_t s = 0; s < det.shard_count(); ++s) {
                view.health[s] = det.health(s);
            }
        }
    });

    out.makespan = result.makespan;
    bool any_survivor = false;
    bool agree = true;
    for (std::size_t r = 0; r < params.ranks; ++r) {
        out.views[r].fail_stopped = result.stats[r].fail_stopped;
        if (out.views[r].fail_stopped) continue;
        if (!any_survivor) {
            any_survivor = true;
            out.survivor_roster_hash = out.views[r].roster_hash;
        } else if (out.views[r].roster_hash != out.survivor_roster_hash) {
            agree = false;
        }
    }
    out.converged = any_survivor && agree;
    return out;
}

}  // namespace wavehpc::svc::shard
