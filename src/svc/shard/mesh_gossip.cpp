#include "svc/shard/mesh_gossip.hpp"

#include <algorithm>
#include <cstring>
#include <optional>
#include <stdexcept>

#include "mesh/machine.hpp"

namespace wavehpc::svc::shard {

namespace {

constexpr int kBeatTag = 71;

}  // namespace

MeshGossipResult run_mesh_gossip(const MeshGossipParams& params) {
    if (params.ranks == 0) {
        throw std::invalid_argument("run_mesh_gossip: ranks must be > 0");
    }
    const int n = static_cast<int>(params.ranks);

    mesh::MachineProfile profile =
        mesh::MachineProfile::test_profile(params.ranks, 1);
    for (const auto& [rank, at] : params.fail_at) {
        profile.faults.failures.push_back({rank, at});
    }
    mesh::Machine machine(std::move(profile));
    if (params.schedule_seed != 0) {
        machine.set_schedule_seed(params.schedule_seed);
    }

    MeshGossipResult out;
    out.views.assign(params.ranks, {});
    auto* views = &out.views;  // ranks publish into distinct slots

    const MembershipConfig cfg = params.membership;
    const double end = params.run_seconds;
    const auto result = machine.run(params.ranks, [&](mesh::NodeCtx& ctx) {
        const int rank = ctx.rank();
        FailureDetector det(static_cast<std::size_t>(n), cfg);
        constexpr std::uint64_t kIncarnation = 1;  // one life per rank here
        double next_beat = 0.0;
        while (ctx.now() < end) {
            if (ctx.now() >= next_beat) {
                for (int peer = 0; peer < n; ++peer) {
                    if (peer == rank) continue;
                    ctx.send_value<std::uint64_t>(kBeatTag, peer, kIncarnation);
                }
                next_beat += cfg.heartbeat_interval;
            }
            det.observe(static_cast<std::size_t>(rank), true, ctx.now(),
                        kIncarnation);
            const double wait = std::min(next_beat, end) - ctx.now();
            if (wait > 0.0) {
                if (auto m = ctx.crecv_timeout(kBeatTag, mesh::kAnySource, wait)) {
                    std::uint64_t inc = 0;
                    if (m->data.size() == sizeof inc) {
                        std::memcpy(&inc, m->data.data(), sizeof inc);
                        det.observe(static_cast<std::size_t>(m->src), true,
                                    ctx.now(), inc);
                    }
                }
            }
            det.sweep(ctx.now());
            // Publish every pass: a fail-stop mid-loop leaves the last
            // pre-death view behind instead of an empty one.
            MeshGossipRankView& view = (*views)[static_cast<std::size_t>(rank)];
            view.roster_hash = det.roster_hash();
            view.epoch = det.epoch();
            view.health.assign(det.shard_count(), ShardHealth::Alive);
            for (std::size_t s = 0; s < det.shard_count(); ++s) {
                view.health[s] = det.health(s);
            }
        }
    });

    out.makespan = result.makespan;
    bool any_survivor = false;
    bool agree = true;
    for (std::size_t r = 0; r < params.ranks; ++r) {
        out.views[r].fail_stopped = result.stats[r].fail_stopped;
        if (out.views[r].fail_stopped) continue;
        if (!any_survivor) {
            any_survivor = true;
            out.survivor_roster_hash = out.views[r].roster_hash;
        } else if (out.views[r].roster_hash != out.survivor_roster_hash) {
            agree = false;
        }
    }
    out.converged = any_survivor && agree;
    return out;
}

}  // namespace wavehpc::svc::shard
