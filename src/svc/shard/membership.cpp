#include "svc/shard/membership.hpp"

#include <algorithm>
#include <stdexcept>

namespace wavehpc::svc::shard {

namespace {

[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

}  // namespace

const char* health_name(ShardHealth h) noexcept {
    switch (h) {
    case ShardHealth::Alive: return "alive";
    case ShardHealth::Suspect: return "suspect";
    case ShardHealth::Dead: return "dead";
    }
    return "?";
}

FailureDetector::FailureDetector(std::size_t n_shards, MembershipConfig cfg)
    : cfg_(cfg), status_(n_shards) {
    if (n_shards == 0) {
        throw std::invalid_argument("FailureDetector: shard count must be > 0");
    }
    if (!(cfg.suspect_after > 0.0) || !(cfg.dead_after >= cfg.suspect_after)) {
        throw std::invalid_argument(
            "FailureDetector: need 0 < suspect_after <= dead_after");
    }
}

void FailureDetector::transition(std::size_t shard, ShardHealth to, double now) {
    ShardStatus& st = status_[shard];
    transitions_.push_back({shard, st.health, to, st.incarnation, now});
    st.health = to;
    ++epoch_;
}

void FailureDetector::observe(std::size_t shard, bool ok, double now,
                              std::uint64_t incarnation) {
    ShardStatus& st = status_.at(shard);
    if (!ok) return;  // misses are time-based; sweep() does the demotion
    if (incarnation < st.incarnation) return;  // stale traffic, previous life
    switch (st.health) {
    case ShardHealth::Alive:
    case ShardHealth::Suspect:
        st.incarnation = incarnation;
        // max(): merged gossip entries may land out of order with direct
        // probes; last_ok never regresses.
        st.last_ok = std::max(st.last_ok, now);
        if (st.health == ShardHealth::Suspect) {
            transition(shard, ShardHealth::Alive, now);
        }
        break;
    case ShardHealth::Dead:
        // Epoch fence: only a *newer* incarnation may work toward
        // re-admission; beats from the dead life are ignored above.
        if (incarnation == st.incarnation && st.consecutive_oks == 0) return;
        if (incarnation > st.incarnation) {
            st.incarnation = incarnation;
            st.consecutive_oks = 0;
        }
        ++st.consecutive_oks;
        st.last_ok = std::max(st.last_ok, now);
        if (st.consecutive_oks >= cfg_.readmit_oks) {
            st.consecutive_oks = 0;
            transition(shard, ShardHealth::Alive, now);
        }
        break;
    }
}

bool FailureDetector::merge_entry(std::size_t shard, std::uint64_t incarnation,
                                  double last_ok, double now) {
    ShardStatus& st = status_.at(shard);
    // Freshness fence: only strictly newer information counts as a beat.
    // Stale incarnations are a previous life; an equal incarnation with an
    // equal-or-older last_ok is a relayed duplicate of a beat this
    // detector already merged.
    if (incarnation < st.incarnation) return false;
    if (incarnation == st.incarnation && !(last_ok > st.last_ok)) return false;
    // Clamp against the local clock so a peer's timestamp can never push
    // last_ok into this detector's future.
    observe(shard, true, std::min(last_ok, now), incarnation);
    return true;
}

void FailureDetector::sweep(double now) {
    for (std::size_t s = 0; s < status_.size(); ++s) {
        ShardStatus& st = status_[s];
        const double silent = now - st.last_ok;
        if (st.health == ShardHealth::Alive && silent >= cfg_.suspect_after) {
            transition(s, ShardHealth::Suspect, now);
        }
        if (st.health == ShardHealth::Suspect && silent >= cfg_.dead_after) {
            st.consecutive_oks = 0;
            transition(s, ShardHealth::Dead, now);
        }
    }
}

ShardHealth FailureDetector::health(std::size_t shard) const {
    return status_.at(shard).health;
}

std::uint64_t FailureDetector::incarnation(std::size_t shard) const {
    return status_.at(shard).incarnation;
}

std::size_t FailureDetector::alive_count() const {
    std::size_t n = 0;
    for (const auto& st : status_) {
        if (st.health == ShardHealth::Alive) ++n;
    }
    return n;
}

std::uint64_t FailureDetector::roster_hash() const {
    std::uint64_t h = mix64(status_.size());
    for (std::size_t s = 0; s < status_.size(); ++s) {
        const auto& st = status_[s];
        h = mix64(h ^ mix64(s * 3 + static_cast<std::uint64_t>(st.health)) ^
                  mix64(st.incarnation + 0x5bd1e995ULL));
    }
    return h;
}

std::vector<RosterTransition> FailureDetector::drain_transitions() {
    std::vector<RosterTransition> out;
    out.swap(transitions_);
    return out;
}

}  // namespace wavehpc::svc::shard
