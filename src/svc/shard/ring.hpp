#pragma once
// Consistent-hash placement ring for the sharded pyramid service.
//
// Scenes — not requests — are the placement unit: a ring point is keyed by
// the *content digest* of the image (hash.hpp) plus its dimensions, and
// deliberately excludes taps/levels/boundary/kernel. Every transform
// variant of one scene therefore lands on the same shard, which is what
// makes the per-shard content-addressed cache (and its degraded
// same-scene-variant fallback) effective.
//
// Each shard owns `vnodes` pseudo-random points on a 64-bit ring, all
// derived from (seed, shard, vnode) with splitmix64 — the ring is a pure
// function of (shard count, vnodes, seed), so two routers built with the
// same parameters agree on every placement without exchanging a byte (the
// multi-host "global deterministic SPMD view" idiom).
//
// Failure re-placement is walk-based, not rebuild-based: the ring never
// changes shape when a shard dies. Routing walks the ring clockwise from
// the key and takes the first `k` *distinct* shards (the replica chain);
// the router simply skips dead shards during the walk. Keys whose primary
// is alive are untouched by another shard's death — the classic
// consistent-hashing minimal-disruption property, here by construction.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "svc/hash.hpp"

namespace wavehpc::svc::shard {

using ShardId = std::size_t;

class HashRing {
public:
    HashRing() = default;

    /// Build the ring for `n_shards` shards with `vnodes` points each.
    /// Throws std::invalid_argument when either count is zero.
    HashRing(std::size_t n_shards, std::size_t vnodes, std::uint64_t seed);

    /// The first `k` distinct shards clockwise from the key's ring point —
    /// primary first, then the failover chain. k is clamped to the shard
    /// count; the result is deterministic for fixed (ring, key).
    [[nodiscard]] std::vector<ShardId> replicas(const CacheKey& key,
                                                std::size_t k) const;

    [[nodiscard]] ShardId primary(const CacheKey& key) const {
        return replicas(key, 1).front();
    }

    [[nodiscard]] std::size_t shard_count() const noexcept { return n_shards_; }
    [[nodiscard]] std::size_t vnodes() const noexcept { return vnodes_; }
    [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

    /// Fraction of the ring's arc length each shard owns — the load-balance
    /// introspection hook the ring tests pin (sums to 1).
    [[nodiscard]] std::vector<double> arc_fractions() const;

private:
    /// Where a scene lands on the ring: a mix of the content digest and the
    /// frame dimensions only (placement is per scene, see header comment).
    [[nodiscard]] static std::uint64_t ring_point(const CacheKey& key) noexcept;

    struct Point {
        std::uint64_t pos = 0;
        ShardId shard = 0;
    };

    std::vector<Point> points_;  // sorted by pos
    std::size_t n_shards_ = 0;
    std::size_t vnodes_ = 0;
    std::uint64_t seed_ = 0;
};

}  // namespace wavehpc::svc::shard
