#include "svc/shard/wire.hpp"

#include <bit>
#include <cmath>
#include <limits>

#include "mesh/faults.hpp"

namespace wavehpc::svc::shard::wire {

namespace {

// Little-endian scalar writer/reader over a growable byte vector. The wire
// format is explicit about byte order so the two legs (live transport,
// mesh machine) and any future cross-process peer agree bit-for-bit.
struct ByteWriter {
    std::vector<std::byte> buf;

    void u8(std::uint8_t v) { buf.push_back(static_cast<std::byte>(v)); }
    void u16(std::uint16_t v) {
        for (int i = 0; i < 2; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void u32(std::uint32_t v) {
        for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void u64(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
    void bytes(std::span<const std::byte> s) {
        buf.insert(buf.end(), s.begin(), s.end());
    }
};

struct ByteReader {
    std::span<const std::byte> buf;
    std::size_t pos = 0;

    [[nodiscard]] std::size_t remaining() const { return buf.size() - pos; }

    void need(std::size_t n, const char* what) const {
        if (remaining() < n) {
            throw WireError(std::string("wire: truncated ") + what);
        }
    }
    std::uint8_t u8(const char* what = "u8") {
        need(1, what);
        return static_cast<std::uint8_t>(buf[pos++]);
    }
    std::uint16_t u16(const char* what = "u16") {
        need(2, what);
        std::uint16_t v = 0;
        for (int i = 0; i < 2; ++i) {
            v |= static_cast<std::uint16_t>(static_cast<std::uint8_t>(buf[pos++]))
                 << (8 * i);
        }
        return v;
    }
    std::uint32_t u32(const char* what = "u32") {
        need(4, what);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf[pos++]))
                 << (8 * i);
        }
        return v;
    }
    std::uint64_t u64(const char* what = "u64") {
        need(8, what);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) {
            v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(buf[pos++]))
                 << (8 * i);
        }
        return v;
    }
    float f32(const char* what = "f32") {
        return std::bit_cast<float>(u32(what));
    }
    double f64(const char* what = "f64") {
        return std::bit_cast<double>(u64(what));
    }
};

void write_image(ByteWriter& w, const core::ImageF& img) {
    w.u32(static_cast<std::uint32_t>(img.rows()));
    w.u32(static_cast<std::uint32_t>(img.cols()));
    for (float v : img.flat()) w.f32(v);
}

[[nodiscard]] core::ImageF read_image(ByteReader& r) {
    const std::uint32_t rows = r.u32("image rows");
    const std::uint32_t cols = r.u32("image cols");
    const std::uint64_t n = std::uint64_t{rows} * cols;
    r.need(n * 4, "image pixels");
    std::vector<float> data(n);
    for (std::uint64_t i = 0; i < n; ++i) data[i] = r.f32();
    return core::ImageF(rows, cols, std::move(data));
}

void write_cache_key(ByteWriter& w, const CacheKey& k) {
    w.u64(k.digest_lo);
    w.u64(k.digest_hi);
    w.u32(k.rows);
    w.u32(k.cols);
    w.u8(k.taps);
    w.u8(k.levels);
    w.u8(k.boundary);
    w.u8(k.kernel);
    w.u8(k.band);
}

[[nodiscard]] CacheKey read_cache_key(ByteReader& r) {
    CacheKey k;
    k.digest_lo = r.u64("key digest_lo");
    k.digest_hi = r.u64("key digest_hi");
    k.rows = r.u32("key rows");
    k.cols = r.u32("key cols");
    k.taps = r.u8("key taps");
    k.levels = r.u8("key levels");
    k.boundary = r.u8("key boundary");
    k.kernel = r.u8("key kernel");
    k.band = r.u8("key band");
    return k;
}

}  // namespace

std::vector<std::byte> seal(const Header& h, std::span<const std::byte> payload) {
    ByteWriter w;
    w.buf.reserve(kHeaderBytes + payload.size());
    w.u32(kMagic);
    w.u16(kVersion);
    w.u8(static_cast<std::uint8_t>(h.kind));
    w.u8(0);  // flags
    w.u32(h.src);
    w.u32(h.dst);
    w.u64(h.incarnation);
    w.u64(h.epoch);
    w.u64(h.request_id);
    w.u32(static_cast<std::uint32_t>(payload.size()));
    w.u32(mesh::crc32(payload));
    w.bytes(payload);
    return std::move(w.buf);
}

Unsealed unseal(std::span<const std::byte> frame) {
    ByteReader r{frame};
    if (frame.size() < kHeaderBytes) throw WireError("wire: frame too short");
    if (r.u32() != kMagic) throw WireError("wire: bad magic");
    const std::uint16_t ver = r.u16();
    if (ver != kVersion) {
        throw WireError("wire: unsupported version " + std::to_string(ver));
    }
    Unsealed u;
    const std::uint8_t kind = r.u8();
    if (kind < static_cast<std::uint8_t>(MsgKind::Request) ||
        kind > static_cast<std::uint8_t>(MsgKind::Gossip)) {
        throw WireError("wire: unknown message kind " + std::to_string(kind));
    }
    u.header.kind = static_cast<MsgKind>(kind);
    (void)r.u8();  // flags
    u.header.src = r.u32();
    u.header.dst = r.u32();
    u.header.incarnation = r.u64();
    u.header.epoch = r.u64();
    u.header.request_id = r.u64();
    const std::uint32_t payload_size = r.u32();
    const std::uint32_t payload_crc = r.u32();
    if (r.remaining() != payload_size) {
        throw WireError("wire: payload size mismatch");
    }
    const auto payload = frame.subspan(kHeaderBytes);
    if (mesh::crc32(payload) != payload_crc) {
        throw WireError("wire: payload CRC mismatch");
    }
    u.payload.assign(payload.begin(), payload.end());
    return u;
}

std::optional<Unsealed> try_unseal(std::span<const std::byte> frame) {
    try {
        return unseal(frame);
    } catch (const WireError&) {
        return std::nullopt;
    }
}

// ------------------------------------------------------------ request

std::vector<std::byte> encode_request_payload(const TransformRequest& req,
                                              Clock::time_point now) {
    if (!req.image) throw WireError("wire: request has no image");
    ByteWriter w;
    w.buf.reserve(32 + req.image->size() * 4);
    w.u8(static_cast<std::uint8_t>(req.taps));
    w.u8(static_cast<std::uint8_t>(req.levels));
    w.u8(static_cast<std::uint8_t>(req.boundary));
    w.u8(static_cast<std::uint8_t>(req.kernel));
    w.u8(static_cast<std::uint8_t>(req.backend));
    w.u8(static_cast<std::uint8_t>(req.priority));
    w.u8(req.allow_degraded ? 1 : 0);
    w.u8(req.progressive ? 1 : 0);
    double deadline_rel = std::numeric_limits<double>::infinity();
    if (req.deadline != Clock::time_point::max()) {
        deadline_rel = std::chrono::duration<double>(req.deadline - now).count();
    }
    w.f64(deadline_rel);
    write_image(w, *req.image);
    return std::move(w.buf);
}

TransformRequest decode_request_payload(std::span<const std::byte> payload,
                                        Clock::time_point now) {
    ByteReader r{payload};
    TransformRequest req;
    req.taps = r.u8("taps");
    req.levels = r.u8("levels");
    req.boundary = static_cast<core::BoundaryMode>(r.u8("boundary"));
    req.kernel = static_cast<core::DwtKernel>(r.u8("kernel"));
    req.backend = static_cast<Backend>(r.u8("backend"));
    req.priority = static_cast<Priority>(r.u8("priority"));
    req.allow_degraded = r.u8("allow_degraded") != 0;
    req.progressive = r.u8("progressive") != 0;
    const double deadline_rel = r.f64("deadline");
    if (std::isfinite(deadline_rel)) {
        req.deadline = now + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(deadline_rel));
    }
    req.image = std::make_shared<const core::ImageF>(read_image(r));
    if (r.remaining() != 0) throw WireError("wire: trailing request bytes");
    return req;
}

// -------------------------------------------------------------- reply

std::vector<std::byte> encode_reply_payload(const TransformReply& reply) {
    if (!reply.result) throw WireError("wire: reply has no result");
    const TransformResult& res = *reply.result;
    ByteWriter w;
    w.u8(0);  // status: value
    std::uint8_t flags = 0;
    if (reply.cache_hit) flags |= 1U;
    if (reply.shared_flight) flags |= 2U;
    if (reply.degraded) flags |= 4U;
    if (reply.preview) flags |= 8U;
    w.u8(flags);
    w.u32(reply.attempts);
    w.u32(reply.batch_size);
    w.f64(reply.queue_seconds);
    w.f64(reply.compute_seconds);
    w.f64(reply.total_seconds);
    write_cache_key(w, res.key);
    w.u64(res.result_bytes);
    w.f64(res.compute_seconds);
    w.u32(res.crc32);
    w.f64(res.first_band_seconds);
    w.u32(static_cast<std::uint32_t>(res.pyramid.levels.size()));
    for (const core::DetailBands& lv : res.pyramid.levels) {
        write_image(w, lv.lh);
        write_image(w, lv.hl);
        write_image(w, lv.hh);
    }
    write_image(w, res.pyramid.approx);
    return std::move(w.buf);
}

std::vector<std::byte> encode_reply_error_payload(ReplyErrorKind kind,
                                                  std::string_view message) {
    ByteWriter w;
    w.u8(1);  // status: error
    w.u8(static_cast<std::uint8_t>(kind));
    w.u32(static_cast<std::uint32_t>(message.size()));
    w.bytes(std::as_bytes(std::span(message.data(), message.size())));
    return std::move(w.buf);
}

ReplyWire decode_reply_payload(std::span<const std::byte> payload) {
    ByteReader r{payload};
    ReplyWire rw;
    const std::uint8_t status = r.u8("reply status");
    if (status == 1) {
        rw.is_error = true;
        rw.error_kind = static_cast<ReplyErrorKind>(r.u8("error kind"));
        const std::uint32_t n = r.u32("error message size");
        r.need(n, "error message");
        rw.error_message.assign(
            reinterpret_cast<const char*>(r.buf.data() + r.pos), n);
        r.pos += n;
        return rw;
    }
    if (status != 0) throw WireError("wire: bad reply status");
    const std::uint8_t flags = r.u8("reply flags");
    rw.reply.cache_hit = (flags & 1U) != 0;
    rw.reply.shared_flight = (flags & 2U) != 0;
    rw.reply.degraded = (flags & 4U) != 0;
    rw.reply.preview = (flags & 8U) != 0;
    rw.reply.attempts = r.u32("attempts");
    rw.reply.batch_size = r.u32("batch size");
    rw.reply.queue_seconds = r.f64("queue seconds");
    rw.reply.compute_seconds = r.f64("compute seconds");
    rw.reply.total_seconds = r.f64("total seconds");
    TransformResult res;
    res.key = read_cache_key(r);
    res.result_bytes = r.u64("result bytes");
    res.compute_seconds = r.f64("result compute seconds");
    res.crc32 = r.u32("result crc");
    res.first_band_seconds = r.f64("first band seconds");
    const std::uint32_t n_levels = r.u32("pyramid depth");
    res.pyramid.levels.reserve(n_levels);
    for (std::uint32_t i = 0; i < n_levels; ++i) {
        core::DetailBands lv;
        lv.lh = read_image(r);
        lv.hl = read_image(r);
        lv.hh = read_image(r);
        res.pyramid.levels.push_back(std::move(lv));
    }
    res.pyramid.approx = read_image(r);
    if (r.remaining() != 0) throw WireError("wire: trailing reply bytes");
    rw.reply.result = std::make_shared<const TransformResult>(std::move(res));
    return rw;
}

void rethrow_reply_error(const ReplyWire& rw) {
    switch (rw.error_kind) {
        case ReplyErrorKind::Shutdown: throw ServiceShutdownError();
        case ReplyErrorKind::Deadline: throw DeadlineExpiredError();
        case ReplyErrorKind::Watchdog: throw WatchdogTimeoutError();
        case ReplyErrorKind::CrcAudit: throw CrcAuditError();
        case ReplyErrorKind::Other: break;
    }
    throw std::runtime_error(rw.error_message.empty()
                                 ? std::string("shard wire: remote error")
                                 : rw.error_message);
}

// ------------------------------------------------------------- roster

std::vector<std::byte> encode_roster_payload(
    std::span<const RosterEntry> roster) {
    ByteWriter w;
    w.buf.reserve(4 + roster.size() * 17);
    w.u32(static_cast<std::uint32_t>(roster.size()));
    for (const RosterEntry& e : roster) {
        w.u64(e.incarnation);
        w.f64(e.last_ok);
        w.u8(e.health);
    }
    return std::move(w.buf);
}

std::vector<RosterEntry> decode_roster_payload(
    std::span<const std::byte> payload) {
    ByteReader r{payload};
    const std::uint32_t n = r.u32("roster size");
    std::vector<RosterEntry> roster;
    roster.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        RosterEntry e;
        e.incarnation = r.u64("roster incarnation");
        e.last_ok = r.f64("roster last_ok");
        e.health = r.u8("roster health");
        roster.push_back(e);
    }
    if (r.remaining() != 0) throw WireError("wire: trailing roster bytes");
    return roster;
}

std::vector<std::byte> encode_admit_payload(const AdmitWire& a) {
    ByteWriter w;
    w.buf.reserve(10);
    w.u8(static_cast<std::uint8_t>(a.status));
    w.u8(static_cast<std::uint8_t>(a.reject_reason));
    w.f64(a.retry_after);
    return std::move(w.buf);
}

AdmitWire decode_admit_payload(std::span<const std::byte> payload) {
    ByteReader r{payload};
    AdmitWire a;
    const std::uint8_t status = r.u8("admit status");
    if (status > static_cast<std::uint8_t>(AdmitStatus::Down)) {
        throw WireError("wire: bad admit status");
    }
    a.status = static_cast<AdmitStatus>(status);
    const std::uint8_t reason = r.u8("admit reject reason");
    if (reason > static_cast<std::uint8_t>(RejectReason::Quarantined)) {
        throw WireError("wire: bad admit reject reason");
    }
    a.reject_reason = static_cast<RejectReason>(reason);
    a.retry_after = r.f64("admit retry_after");
    if (r.remaining() != 0) throw WireError("wire: trailing admit bytes");
    return a;
}

}  // namespace wavehpc::svc::shard::wire
