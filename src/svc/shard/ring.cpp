#include "svc/shard/ring.hpp"

#include <algorithm>
#include <stdexcept>

namespace wavehpc::svc::shard {

namespace {

/// splitmix64 finalizer — the same mix the chaos and fault plans draw with.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

}  // namespace

HashRing::HashRing(std::size_t n_shards, std::size_t vnodes, std::uint64_t seed)
    : n_shards_(n_shards), vnodes_(vnodes), seed_(seed) {
    if (n_shards == 0 || vnodes == 0) {
        throw std::invalid_argument("HashRing: shard and vnode counts must be > 0");
    }
    points_.reserve(n_shards * vnodes);
    for (ShardId s = 0; s < n_shards; ++s) {
        const std::uint64_t shard_lane = mix64(seed ^ mix64(s + 1));
        for (std::size_t v = 0; v < vnodes; ++v) {
            points_.push_back({mix64(shard_lane ^ (v * 0x9E3779B97F4A7C15ULL)), s});
        }
    }
    std::sort(points_.begin(), points_.end(),
              [](const Point& a, const Point& b) {
                  return a.pos != b.pos ? a.pos < b.pos : a.shard < b.shard;
              });
}

std::uint64_t HashRing::ring_point(const CacheKey& key) noexcept {
    // Scene identity only: digest + dimensions. Transform parameters are
    // deliberately excluded so variants colocate (header comment).
    return mix64(key.digest_lo ^ mix64(key.digest_hi) ^
                 ((std::uint64_t{key.rows} << 32) | key.cols));
}

std::vector<ShardId> HashRing::replicas(const CacheKey& key, std::size_t k) const {
    if (points_.empty()) {
        throw std::logic_error("HashRing::replicas: ring not built");
    }
    k = std::min(k == 0 ? 1 : k, n_shards_);
    const std::uint64_t pos = ring_point(key);
    auto it = std::lower_bound(points_.begin(), points_.end(), pos,
                               [](const Point& p, std::uint64_t v) {
                                   return p.pos < v;
                               });
    std::vector<ShardId> out;
    out.reserve(k);
    std::vector<bool> seen(n_shards_, false);
    for (std::size_t walked = 0; walked < points_.size() && out.size() < k;
         ++walked) {
        if (it == points_.end()) it = points_.begin();
        if (!seen[it->shard]) {
            seen[it->shard] = true;
            out.push_back(it->shard);
        }
        ++it;
    }
    return out;
}

std::vector<double> HashRing::arc_fractions() const {
    std::vector<double> arc(n_shards_, 0.0);
    if (points_.empty()) return arc;
    constexpr double kRing = 18446744073709551616.0;  // 2^64
    for (std::size_t i = 0; i < points_.size(); ++i) {
        // The arc *ending* at point i belongs to point i's shard (clockwise
        // walk from anywhere in that arc reaches point i first).
        const std::uint64_t hi = points_[i].pos;
        const std::uint64_t lo = i == 0 ? points_.back().pos : points_[i - 1].pos;
        const double span = i == 0
                                ? static_cast<double>(hi) + (kRing - static_cast<double>(lo))
                                : static_cast<double>(hi - lo);
        arc[points_[i].shard] += span / kRing;
    }
    return arc;
}

}  // namespace wavehpc::svc::shard
