#pragma once
// In-process shard transport with the mesh machine's reliable-frame
// semantics (DESIGN.md §16).
//
// The live sharded cluster cannot run inside mesh::Machine — the machine
// is a run-to-completion virtual-time simulator, while the cluster serves
// real threads. ShardTransport closes that gap: it speaks the machine's
// exact NIC protocol (WHRC frame = magic + seq + CRC over seq‖payload,
// stop-and-wait ARQ with per-(src,dst,tag) sequence channels, duplicate
// suppression, give-up resync) against the same link-aware FaultPlan, so
// every byte the router exchanges with a shard takes the same losses,
// corruptions, and asymmetric partitions a mesh program would — just on
// the caller's clock instead of the simulator's.
//
// Nodes are small integers: shards 0..N-1, the router N. Two delivery
// shapes:
//   - send_datagram: one unacknowledged frame (gossip beats) — delivered
//     to the destination's Sink or lost, exactly one fault draw.
//   - rpc: request bytes travel under ARQ to the destination's Handler;
//     the handler's response travels back under ARQ on the reverse
//     channel. Either leg exhausting its retries yields nullopt (the
//     at-most-once ambiguity a real RPC client faces).
//
// Every fault decision is a pure function of (plan seed, src, dst, tag,
// the channel's own frame ordinal, transport time) — draws are counted
// per channel, not globally, so concurrent request traffic can never
// shift the gossip channels' deterministic draw stream. Concurrent
// callers are serialized by one mutex (handlers run under it — keep them
// admission-fast).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <tuple>
#include <vector>

#include "mesh/faults.hpp"

namespace wavehpc::svc::shard {

struct WireStats {
    std::uint64_t frames_sent = 0;        ///< every frame handed to the wire
    std::uint64_t frames_delivered = 0;   ///< fresh payloads reaching the app
    std::uint64_t drops = 0;              ///< plan- or reachability-dropped
    std::uint64_t corrupt_rejections = 0; ///< NIC CRC rejections
    std::uint64_t retransmits = 0;
    std::uint64_t duplicates_suppressed = 0;
    std::uint64_t gave_up = 0;            ///< ARQ transfers that exhausted retries
};

class ShardTransport {
public:
    /// RPC endpoint: (source node, request payload) -> response payload.
    using Handler =
        std::function<std::vector<std::byte>(int, std::span<const std::byte>)>;
    /// Datagram endpoint: (source node, payload).
    using Sink = std::function<void(int, std::span<const std::byte>)>;

    ShardTransport(int nodes, std::uint64_t seed, int max_retries = 4);

    /// Advance the transport clock (seconds); LinkFault windows in the
    /// plan match against this time.
    void set_time(double now);
    /// An unreachable node's NIC is off: every frame to or from it is
    /// lost (no draw consumed — the wire never saw it).
    void set_reachable(int node, bool on);
    void set_faults(mesh::FaultPlan plan);
    void set_handler(int node, int tag, Handler h);
    void set_sink(int node, int tag, Sink s);

    /// One best-effort frame. Returns true if it was delivered.
    bool send_datagram(int src, int dst, int tag,
                       std::span<const std::byte> data);

    /// Reliable request/response. nullopt when either leg gives up.
    std::optional<std::vector<std::byte>> rpc(int src, int dst, int tag,
                                              std::span<const std::byte> data);

    [[nodiscard]] WireStats stats() const;

private:
    struct Channel {
        std::uint32_t next_seq = 0;
        std::uint32_t expected_seq = 0;
        std::uint64_t draws = 0;  ///< fault draws consumed on this channel
        std::vector<std::byte> last_response;  ///< rpc response cache
    };

    using ChannelKey = std::tuple<int, int, int>;  // (src, dst, tag)

    /// One ARQ transfer src->dst. `on_fresh` runs when the payload is
    /// accepted for the first time (duplicates only re-ack). Returns true
    /// once an ack survives the reverse path.
    bool arq_locked(int src, int dst, int tag, std::span<const std::byte> data,
                    const std::function<void(std::span<const std::byte>)>& on_fresh);

    [[nodiscard]] bool reachable_locked(int node) const;

    mutable std::mutex mu_;
    int nodes_;
    int max_retries_;
    double now_ = 0.0;
    mesh::FaultPlan plan_;
    std::vector<bool> reachable_;
    std::map<ChannelKey, Channel> channels_;
    std::map<std::pair<int, int>, Handler> handlers_;  // (node, tag)
    std::map<std::pair<int, int>, Sink> sinks_;
    WireStats stats_;
};

}  // namespace wavehpc::svc::shard
