#pragma once
// The shard tier's failure detector run as a deterministic SPMD program on
// the mesh machine (mesh/machine.hpp) — the "same state machine, third
// clock" leg of membership.hpp's claim: the cluster drives FailureDetector
// with wall time, the tests with explicit doubles, and this program with
// *virtual* seconds over a simulated interconnect.
//
// Every rank beats every peer on the heartbeat interval and folds the
// beats it hears into its own private FailureDetector; nobody exchanges
// roster state — agreement must emerge from observing the same heartbeat
// stream. Ranks fail-stopped by the machine's FaultPlan go silent
// mid-run, and the claim under test is gossip-lite convergence: after the
// dust settles (dead_after << remaining run time), every *survivor* holds
// the same roster hash, with the dead ranks marked Dead — reproducibly,
// under any schedule seed, because the discrete-event engine is
// deterministic per seed.

#include <cstdint>
#include <utility>
#include <vector>

#include "svc/shard/membership.hpp"

namespace wavehpc::svc::shard {

struct MeshGossipParams {
    std::size_t ranks = 8;
    double run_seconds = 1.0;  ///< virtual; keep >> fail_at + dead_after
    MembershipConfig membership;
    /// (rank, virtual fail-stop time): the rank executes nothing from then
    /// on — no beats, no receives.
    std::vector<std::pair<int, double>> fail_at;
    /// Engine tie-break seed (Machine::set_schedule_seed); same seed ->
    /// bit-identical run. 0 keeps the default deterministic order.
    std::uint64_t schedule_seed = 0;
};

/// One rank's final (or last-before-death) membership view.
struct MeshGossipRankView {
    bool fail_stopped = false;
    std::uint64_t roster_hash = 0;
    std::uint64_t epoch = 0;
    std::vector<ShardHealth> health;
};

struct MeshGossipResult {
    std::vector<MeshGossipRankView> views;  ///< indexed by rank
    double makespan = 0.0;                  ///< virtual seconds
    /// All survivors ended on the same roster hash.
    bool converged = false;
    std::uint64_t survivor_roster_hash = 0;
};

/// Run the gossip program; throws std::invalid_argument on ranks == 0.
[[nodiscard]] MeshGossipResult run_mesh_gossip(const MeshGossipParams& params);

}  // namespace wavehpc::svc::shard
