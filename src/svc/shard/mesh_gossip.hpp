#pragma once
// The shard tier's failure detector run as a deterministic SPMD program on
// the mesh machine (mesh/machine.hpp) — the "same state machine, third
// clock" leg of membership.hpp's claim: the cluster drives FailureDetector
// with wall time, the tests with explicit doubles, and this program with
// *virtual* seconds over a simulated interconnect.
//
// Every rank beats every peer on the heartbeat interval. Since ISSUE 10 a
// beat is no longer a bare incarnation: it is a sealed wire::Gossip frame
// carrying the sender's full (incarnation, last_ok, health) roster vector
// (wire.hpp — the same encoding the live cluster transport ships), and
// every receiver folds the vector into its private FailureDetector through
// merge_entry(), whose freshness fence makes relayed duplicates of one
// beat count at most once. A machine-injected bit flip lands somewhere in
// the sealed frame and is caught by the wire CRC at unseal — the beat is
// simply lost.
//
// Split-brain resolution: a rank that reads a gossiped entry claiming
// *itself* Dead at its own (or a later) incarnation — with a last_ok stale
// enough to prove the claimant has not been hearing its recent beats —
// refutes by bumping its incarnation, exactly like a revived shard. The
// epoch fence then drives ordinary readmission: claimants re-admit it
// after readmit_oks beats of the new life, and both sides of a healed
// partition converge to one roster hash.
//
// Ranks fail-stopped by the machine's FaultPlan go silent mid-run, and
// directed LinkFault windows (params.link_faults) drop/corrupt gossip on
// individual links — true partition asymmetry: A hears B but not vice
// versa. The claim under test is convergence: after the dust settles,
// every *survivor* holds the same roster hash — reproducibly, under any
// schedule seed, because the discrete-event engine is deterministic per
// seed.

#include <cstdint>
#include <utility>
#include <vector>

#include "mesh/faults.hpp"
#include "svc/shard/membership.hpp"

namespace wavehpc::svc::shard {

struct MeshGossipParams {
    std::size_t ranks = 8;
    double run_seconds = 1.0;  ///< virtual; keep >> fail_at + dead_after
    MembershipConfig membership;
    /// (rank, virtual fail-stop time): the rank executes nothing from then
    /// on — no beats, no receives.
    std::vector<std::pair<int, double>> fail_at;
    /// Directed gossip-link fault windows (mesh::LinkFault), installed
    /// into the machine's FaultPlan: drop or corrupt beats on individual
    /// (src, dst) links for a time window — asymmetric partitions.
    std::vector<mesh::LinkFault> link_faults;
    /// Seed for the fault plan's probabilistic draws (link rules).
    std::uint64_t fault_seed = 1;
    /// Engine tie-break seed (Machine::set_schedule_seed); same seed ->
    /// bit-identical run. 0 keeps the default deterministic order.
    std::uint64_t schedule_seed = 0;
};

/// One rank's final (or last-before-death) membership view.
struct MeshGossipRankView {
    bool fail_stopped = false;
    std::uint64_t roster_hash = 0;
    std::uint64_t epoch = 0;
    std::uint64_t incarnation = 0;  ///< the rank's own, after refutations
    std::uint64_t refutations = 0;  ///< Dead-claim refutations it performed
    std::vector<ShardHealth> health;
};

struct MeshGossipResult {
    std::vector<MeshGossipRankView> views;  ///< indexed by rank
    double makespan = 0.0;                  ///< virtual seconds
    /// All survivors ended on the same roster hash.
    bool converged = false;
    std::uint64_t survivor_roster_hash = 0;
};

/// Run the gossip program; throws std::invalid_argument on ranks == 0.
[[nodiscard]] MeshGossipResult run_mesh_gossip(const MeshGossipParams& params);

}  // namespace wavehpc::svc::shard
