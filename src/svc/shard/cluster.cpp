#include "svc/shard/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "core/kernels.hpp"

namespace wavehpc::svc::shard {

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') return fallback;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(raw, &end, 10);
    if (end == raw || *end != '\0') return fallback;
    return std::max<std::uint64_t>(1, v);
}

/// Like env_u64 but 0 is a meaningful value (fanout "all", seed "inherit").
std::uint64_t env_u64_raw(const char* name, std::uint64_t fallback) {
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') return fallback;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(raw, &end, 10);
    if (end == raw || *end != '\0') return fallback;
    return v;
}

double env_millis(const char* name, double fallback_seconds) {
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') return fallback_seconds;
    char* end = nullptr;
    const double v = std::strtod(raw, &end);
    if (end == raw || *end != '\0' || !(v > 0.0)) return fallback_seconds;
    return v * 1e-3;
}

void sleep_seconds(double seconds) {
    if (seconds <= 0.0) return;
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

[[nodiscard]] std::vector<std::byte> roster_payload(const FailureDetector& det) {
    std::vector<wire::RosterEntry> roster;
    roster.reserve(det.shard_count());
    for (const ShardStatus& st : det.snapshot()) {
        roster.push_back({st.incarnation, st.last_ok,
                          static_cast<std::uint8_t>(st.health)});
    }
    return wire::encode_roster_payload(roster);
}

}  // namespace

ShardClusterConfig ShardClusterConfig::from_env() {
    ShardClusterConfig cfg;
    cfg.shard_count =
        static_cast<std::size_t>(env_u64("WAVEHPC_SHARD_COUNT", cfg.shard_count));
    cfg.vnodes = static_cast<std::size_t>(env_u64("WAVEHPC_SHARD_VNODES", cfg.vnodes));
    cfg.replicas =
        static_cast<std::size_t>(env_u64("WAVEHPC_SHARD_REPLICAS", cfg.replicas));
    cfg.seed = env_u64("WAVEHPC_SHARD_SEED",
                       env_u64("WAVEHPC_SCHED_SEED", cfg.seed));
    cfg.membership.heartbeat_interval =
        env_millis("WAVEHPC_SHARD_HB_MS", cfg.membership.heartbeat_interval);
    cfg.membership.suspect_after =
        env_millis("WAVEHPC_SHARD_SUSPECT_MS", cfg.membership.suspect_after);
    cfg.membership.dead_after =
        env_millis("WAVEHPC_SHARD_DEAD_MS", cfg.membership.dead_after);
    cfg.membership.readmit_oks = static_cast<std::uint32_t>(
        env_u64("WAVEHPC_SHARD_READMIT_OKS", cfg.membership.readmit_oks));
    cfg.gossip_seed = env_u64_raw("WAVEHPC_SHARD_GOSSIP_SEED", cfg.gossip_seed);
    cfg.gossip_fanout = static_cast<std::size_t>(
        env_u64_raw("WAVEHPC_SHARD_GOSSIP_FANOUT", cfg.gossip_fanout));
    cfg.wire_retries = static_cast<int>(env_u64_raw(
        "WAVEHPC_SHARD_WIRE_RETRIES", static_cast<std::uint64_t>(cfg.wire_retries)));
    if (const char* spec = std::getenv("WAVEHPC_SHARD_FAULTS");
        spec != nullptr && *spec != '\0') {
        cfg.transport_faults = mesh::FaultPlan::parse(
            spec, cfg.gossip_seed != 0 ? cfg.gossip_seed : cfg.seed);
    }
    cfg.service = ServiceConfig::from_env();
    return cfg;
}

ShardCluster::ShardCluster(runtime::ThreadPool& pool, ShardClusterConfig cfg)
    : pool_(pool),
      cfg_(cfg),
      ring_(cfg.shard_count, cfg.vnodes, cfg.seed),
      transport_(static_cast<int>(cfg.shard_count) + 1,
                 cfg.gossip_seed != 0 ? cfg.gossip_seed : cfg.seed,
                 cfg.wire_retries),
      detector_(cfg.shard_count, cfg.membership),
      nodes_(cfg.shard_count) {
    if (cfg_.transport_faults.enabled()) {
        transport_.set_faults(cfg_.transport_faults);
    }
    for (std::size_t s = 0; s < nodes_.size(); ++s) {
        Node& node = nodes_[s];
        node.service = std::make_shared<PyramidService>(pool_, cfg_.service);
        node.detector = FailureDetector(cfg_.shard_count, cfg_.membership);
        transport_.set_handler(
            static_cast<int>(s), wire::kRequestTag,
            [this, s](int, std::span<const std::byte> frame) {
                return handle_request(s, frame);
            });
        transport_.set_sink(
            static_cast<int>(s), wire::kGossipTag,
            [this, s](int src, std::span<const std::byte> frame) {
                nodes_[s].inbox.push_back({src, {frame.begin(), frame.end()}});
            });
    }
    // The router decodes incoming replies into the reply box; the ack the
    // rpc ships back is empty — the ARQ ack is the delivery receipt.
    transport_.set_handler(
        router_node(), wire::kReplyTag,
        [this](int, std::span<const std::byte> frame) -> std::vector<std::byte> {
            if (const auto un = wire::try_unseal(frame)) {
                try {
                    ReceivedReply rec;
                    rec.incarnation = un->header.incarnation;
                    rec.rw = wire::decode_reply_payload(un->payload);
                    std::lock_guard nk(nodes_mu_);
                    reply_box_[un->header.request_id] = std::move(rec);
                } catch (const wire::WireError&) {
                    // Malformed payload inside a CRC-valid frame: drop it;
                    // the pump falls back to the local outcome.
                }
            }
            return {};
        });
    transport_.set_sink(
        router_node(), wire::kGossipTag,
        [this](int src, std::span<const std::byte> frame) {
            router_inbox_.push_back({src, {frame.begin(), frame.end()}});
        });
    pump_ = std::thread([this] { pump_loop(); });
    if (!cfg_.manual_clock) {
        monitor_ = std::thread([this] { monitor_loop(); });
    }
}

ShardCluster::~ShardCluster() { shutdown(); }

double ShardCluster::now_seconds() const {
    return std::chrono::duration<double>(Clock::now() - epoch0_).count();
}

void ShardCluster::monitor_loop() {
    std::unique_lock lk(mu_);
    while (!stopping_) {
        cv_monitor_.wait_for(
            lk, std::chrono::duration<double>(cfg_.membership.heartbeat_interval),
            [this] { return stopping_; });
        if (stopping_) break;
        tick_locked(lk, std::max(now_, now_seconds()));
    }
}

void ShardCluster::tick(double now) {
    std::unique_lock lk(mu_);
    tick_locked(lk, now);
}

void ShardCluster::tick_locked(std::unique_lock<std::mutex>& lk, double now) {
    if (stopping_) return;
    now_ = std::max(now_, now);
    apply_due_actions(lk, now_);
    if (stopping_) return;
    gossip_round_locked(now_);
}

void ShardCluster::gossip_round_locked(double now) {
    transport_.set_time(now);
    const std::size_t n = nodes_.size();
    // Liveness + incarnation snapshot: the leaf lock is released before
    // any transport call (lock order mu_ -> transport -> nodes_mu_).
    std::vector<std::uint64_t> incs(n);
    std::vector<char> live(n);
    {
        std::lock_guard nk(nodes_mu_);
        for (std::size_t s = 0; s < n; ++s) {
            live[s] = nodes_[s].killed ? 0 : 1;
            incs[s] = nodes_[s].incarnation;
        }
    }
    const auto send_gossip = [this](int src, int dst, std::uint64_t inc,
                                    std::uint64_t epoch,
                                    const std::vector<std::byte>& payload) {
        wire::Header h;
        h.kind = wire::MsgKind::Gossip;
        h.src = static_cast<std::uint32_t>(src);
        h.dst = static_cast<std::uint32_t>(dst);
        h.incarnation = inc;
        h.epoch = epoch;
        const auto sealed = wire::seal(h, payload);
        (void)transport_.send_datagram(src, dst, wire::kGossipTag, sealed);
    };
    const std::size_t fanout = n <= 1 ? 0
                               : cfg_.gossip_fanout == 0
                                   ? n - 1
                                   : std::min(cfg_.gossip_fanout, n - 1);
    // Shard beats: self-observe, then ship the full roster to the router
    // and the fanout ring-successors. Partitioned shards still run — the
    // transport loses their frames without consuming a fault draw.
    for (std::size_t s = 0; s < n; ++s) {
        if (live[s] == 0) continue;
        FailureDetector& det = nodes_[s].detector;
        det.observe(s, true, now, incs[s]);
        const auto payload = roster_payload(det);
        send_gossip(static_cast<int>(s), router_node(), incs[s], det.epoch(),
                    payload);
        for (std::size_t k = 1; k <= fanout; ++k) {
            const std::size_t peer = (s + k) % n;
            if (peer == s) continue;
            send_gossip(static_cast<int>(s), static_cast<int>(peer), incs[s],
                        det.epoch(), payload);
        }
    }
    // Router broadcast: its PRE-merge roster, so a refutation lags the
    // accusation by exactly one tick — deterministically.
    {
        const auto payload = roster_payload(detector_);
        for (std::size_t s = 0; s < n; ++s) {
            if (live[s] == 0) continue;
            send_gossip(router_node(), static_cast<int>(s), 0, detector_.epoch(),
                        payload);
        }
    }
    // Merge phase: router inbox first, then shard inboxes in index order.
    // All relayed entries carry pre-round timestamps, so merge_entry's
    // freshness fence admits exactly the self-beats — the router's
    // detector sees the same observe() stream the old probe loop fed it.
    for (const GossipMsg& m : router_inbox_) {
        const auto un = wire::try_unseal(m.frame);
        if (!un) continue;
        std::vector<wire::RosterEntry> entries;
        try {
            entries = wire::decode_roster_payload(un->payload);
        } catch (const wire::WireError&) {
            continue;
        }
        for (std::size_t e = 0; e < entries.size() && e < n; ++e) {
            detector_.merge_entry(e, entries[e].incarnation, entries[e].last_ok,
                                  now);
        }
    }
    router_inbox_.clear();
    for (std::size_t s = 0; s < n; ++s) {
        Node& node = nodes_[s];
        if (live[s] == 0) {
            node.inbox.clear();
            continue;
        }
        for (const GossipMsg& m : node.inbox) {
            const auto un = wire::try_unseal(m.frame);
            if (!un) continue;
            std::vector<wire::RosterEntry> entries;
            try {
                entries = wire::decode_roster_payload(un->payload);
            } catch (const wire::WireError&) {
                continue;
            }
            for (std::size_t e = 0; e < entries.size() && e < n; ++e) {
                const wire::RosterEntry& ent = entries[e];
                if (e != s) {
                    node.detector.merge_entry(e, ent.incarnation, ent.last_ok,
                                              now);
                    continue;
                }
                // Split-brain refutation: someone claims *this* shard is
                // Dead at (or past) its current life, and the claim's
                // last_ok is stale enough to prove the claimant has not
                // heard its recent beats. Bump the incarnation: claimants
                // re-admit the new life through the ordinary epoch fence.
                // (A claimant mid-readmission gossips a *fresh* last_ok,
                // so counting is never restarted by a re-refutation.)
                const bool claims_dead =
                    ent.health == static_cast<std::uint8_t>(ShardHealth::Dead);
                bool refuted = false;
                std::uint64_t new_inc = 0;
                {
                    std::lock_guard nk(nodes_mu_);
                    if (claims_dead &&
                        ent.incarnation >= nodes_[s].incarnation &&
                        ent.last_ok + cfg_.membership.suspect_after <= now) {
                        new_inc = ent.incarnation + 1;
                        nodes_[s].incarnation = new_inc;
                        ++counters_.refutations;
                        refuted = true;
                    }
                }
                if (refuted) {
                    node.detector.observe(s, true, now, new_inc);
                }
            }
        }
        node.inbox.clear();
    }
    // Sweep every view at the same instant; only the router's transitions
    // feed the cluster counters (shard views are private).
    for (std::size_t s = 0; s < n; ++s) {
        if (live[s] == 0) continue;
        nodes_[s].detector.sweep(now);
        (void)nodes_[s].detector.drain_transitions();
    }
    detector_.sweep(now);
    absorb_transitions_locked();
}

void ShardCluster::absorb_transitions_locked() {
    std::lock_guard nk(nodes_mu_);
    for (const RosterTransition& t : detector_.drain_transitions()) {
        switch (t.to) {
        case ShardHealth::Suspect: ++counters_.suspicions; break;
        case ShardHealth::Dead: ++counters_.deaths; break;
        case ShardHealth::Alive:
            if (t.from == ShardHealth::Dead) ++counters_.readmissions;
            break;
        }
    }
}

void ShardCluster::set_chaos_plan(const ChaosPlan& plan) {
    // Validate and build first: a malformed plan must not half-install.
    std::vector<ChaosAction> actions;
    for (const ShardEvent& ev : plan.shard_events) {
        if (ev.shard >= cfg_.shard_count) {
            throw std::out_of_range("ShardCluster: chaos event names shard " +
                                    std::to_string(ev.shard) + " of " +
                                    std::to_string(cfg_.shard_count));
        }
        actions.push_back({ev.start_seconds, ev.shard, ev.kind, true,
                           ev.stall_seconds});
        actions.push_back({ev.start_seconds + ev.duration_seconds, ev.shard,
                           ev.kind, false, 0.0});
    }
    std::stable_sort(actions.begin(), actions.end(),
                     [](const ChaosAction& a, const ChaosAction& b) {
                         return a.at < b.at;
                     });

    std::lock_guard lk(mu_);
    service_plan_ = plan;
    have_service_plan_ = true;
    {
        std::lock_guard nk(nodes_mu_);
        for (Node& node : nodes_) {
            if (node.service) node.service->set_chaos_plan(plan);
        }
    }
    actions_ = std::move(actions);
    next_action_ = 0;
}

void ShardCluster::set_transport_faults(mesh::FaultPlan plan) {
    transport_.set_faults(std::move(plan));
}

void ShardCluster::sync_reachability(ShardId shard) {
    bool on = false;
    {
        std::lock_guard nk(nodes_mu_);
        const Node& node = nodes_[shard];
        on = !node.killed && !node.partitioned;
    }
    transport_.set_reachable(static_cast<int>(shard), on);
}

void ShardCluster::apply_due_actions(std::unique_lock<std::mutex>& lk, double now) {
    // Kills drain outside the lock (a drain blocks on in-flight compute and
    // submits need mu_); the state flip happens under it, so the transport
    // refuses from the instant the action is due.
    std::vector<std::shared_ptr<PyramidService>> drains;
    while (next_action_ < actions_.size() && actions_[next_action_].at <= now) {
        const ChaosAction a = actions_[next_action_++];
        switch (a.kind) {
        case ShardEventKind::Kill:
            if (a.begin) {
                kill_locked_phase1(a.shard, lk, drains);
            } else {
                revive_locked(a.shard);
            }
            break;
        case ShardEventKind::Partition: {
            {
                std::lock_guard nk(nodes_mu_);
                Node& node = nodes_[a.shard];
                if (node.partitioned == a.begin) break;
                node.partitioned = a.begin;
                a.begin ? ++counters_.partitions : ++counters_.heals;
            }
            sync_reachability(a.shard);
            break;
        }
        case ShardEventKind::Slow: {
            std::lock_guard nk(nodes_mu_);
            Node& node = nodes_[a.shard];
            if (a.begin) {
                node.stall_seconds = a.stall_seconds;
                ++counters_.slowdowns;
            } else {
                node.stall_seconds = 0.0;
                ++counters_.heals;
            }
            break;
        }
        }
    }
    if (!drains.empty()) {
        lk.unlock();
        drain_and_retire(drains);
        lk.lock();
    }
}

void ShardCluster::kill_locked_phase1(
    ShardId shard, std::unique_lock<std::mutex>& lk,
    std::vector<std::shared_ptr<PyramidService>>& drains) {
    (void)lk;  // documents the precondition: mu_ held
    {
        std::lock_guard nk(nodes_mu_);
        Node& node = nodes_[shard];
        if (node.killed) return;
        node.killed = true;
        node.pending.clear();
        ++counters_.kills;
        if (node.service) drains.push_back(std::move(node.service));
        node.service = nullptr;
    }
    sync_reachability(shard);
}

void ShardCluster::drain_and_retire(
    std::vector<std::shared_ptr<PyramidService>>& drains) {
    for (auto& svc : drains) {
        svc->shutdown();  // waiters resolve (ServiceShutdownError); nothing strands
        MetricsSnapshot m = svc->metrics();
        CacheStats c = svc->cache_stats();
        ArenaStats a = svc->arena_stats();
        // The dying life's pool is about to be freed with the service;
        // the fleet view keeps only its history, not its residency.
        a.bytes_pooled = 0;
        a.bytes_outstanding = 0;
        std::lock_guard lk(mu_);
        retired_.merge(m);
        retired_cache_.merge(c);
        retired_arena_.merge(a);
    }
    drains.clear();
}

void ShardCluster::revive_locked(ShardId shard) {
    {
        std::lock_guard nk(nodes_mu_);
        Node& node = nodes_[shard];
        if (!node.killed) return;
        node.service = std::make_shared<PyramidService>(pool_, cfg_.service);
        if (have_service_plan_) node.service->set_chaos_plan(service_plan_);
        node.killed = false;
        node.pending.clear();
        ++node.incarnation;  // the new life; the epoch fence keys on this
        ++counters_.revivals;
    }
    // The new life's membership view starts optimistic: every peer seeded
    // as heard-from-now, so the newborn neither mass-accuses the cluster
    // at its first sweep nor triggers spurious refutations.
    Node& node = nodes_[shard];
    node.detector = FailureDetector(nodes_.size(), cfg_.membership);
    for (std::size_t p = 0; p < nodes_.size(); ++p) {
        node.detector.observe(p, true, now_, 0);
    }
    node.inbox.clear();
    sync_reachability(shard);
}

void ShardCluster::kill(ShardId shard) {
    if (shard >= nodes_.size()) throw std::out_of_range("ShardCluster::kill");
    std::vector<std::shared_ptr<PyramidService>> drains;
    {
        std::unique_lock lk(mu_);
        kill_locked_phase1(shard, lk, drains);
    }
    drain_and_retire(drains);
}

void ShardCluster::revive(ShardId shard) {
    if (shard >= nodes_.size()) throw std::out_of_range("ShardCluster::revive");
    std::lock_guard lk(mu_);
    revive_locked(shard);
}

void ShardCluster::set_partitioned(ShardId shard, bool on) {
    if (shard >= nodes_.size()) throw std::out_of_range("ShardCluster::set_partitioned");
    {
        std::lock_guard nk(nodes_mu_);
        if (nodes_[shard].partitioned == on) return;
        nodes_[shard].partitioned = on;
        on ? ++counters_.partitions : ++counters_.heals;
    }
    sync_reachability(shard);
}

void ShardCluster::set_slow(ShardId shard, double stall_seconds) {
    if (shard >= nodes_.size()) throw std::out_of_range("ShardCluster::set_slow");
    std::lock_guard nk(nodes_mu_);
    if (stall_seconds > 0.0 && nodes_[shard].stall_seconds <= 0.0) {
        ++counters_.slowdowns;
    } else if (stall_seconds <= 0.0 && nodes_[shard].stall_seconds > 0.0) {
        ++counters_.heals;
    }
    nodes_[shard].stall_seconds = std::max(0.0, stall_seconds);
}

ShardCluster::Ticket ShardCluster::grab_ticket(ShardId shard) {
    std::lock_guard nk(nodes_mu_);
    Ticket t;
    Node& node = nodes_[shard];
    if (node.killed || node.partitioned || !node.service) {
        ++counters_.transport_refusals;
        t.refusal = RouteRefusal::Transport;
        return t;
    }
    t.service = node.service;  // ref held: a concurrent kill cannot free it
    t.stall_seconds = node.stall_seconds;
    return t;
}

std::vector<ShardId> ShardCluster::placement(const TransformRequest& request) const {
    if (!request.image) {
        throw std::invalid_argument("ShardCluster::placement: null image");
    }
    const CacheKey key = make_cache_key(*request.image, request.taps,
                                        request.levels, request.boundary,
                                        core::resolve_dwt_kernel(
                                            request.kernel,
                                            core::FilterPair::daubechies(request.taps)));
    return ring_.replicas(key, cfg_.replicas);
}

std::vector<std::byte> ShardCluster::handle_request(
    ShardId shard, std::span<const std::byte> frame) {
    // Runs under the transport mutex; takes only the leaf lock. The ARQ
    // layer already CRC-verified the frame, so unseal cannot fail short of
    // a router bug — the Down shape covers it defensively.
    wire::AdmitWire admit;  // defaults to Down
    const auto un = wire::try_unseal(frame);
    if (!un) return wire::encode_admit_payload(admit);
    std::shared_ptr<PyramidService> svc;
    {
        std::lock_guard nk(nodes_mu_);
        Node& node = nodes_[shard];
        if (node.killed || !node.service) {
            return wire::encode_admit_payload(admit);
        }
        // The receiver-side epoch fence: a request routed under a stale
        // belief must never reach a re-admitted shard's fresh life.
        if (node.incarnation != un->header.incarnation) {
            ++counters_.stale_epoch_refusals;
            admit.status = wire::AdmitStatus::StaleEpoch;
            return wire::encode_admit_payload(admit);
        }
        svc = node.service;
    }
    TransformRequest req;
    try {
        req = wire::decode_request_payload(un->payload, Clock::now());
    } catch (const wire::WireError&) {
        return wire::encode_admit_payload(admit);
    }
    SubmitResult r = svc->submit(std::move(req));
    if (!r.accepted) {
        admit.status = wire::AdmitStatus::Rejected;
        admit.reject_reason = r.reject_reason;
        admit.retry_after = r.retry_after_seconds;
        return wire::encode_admit_payload(admit);
    }
    {
        std::lock_guard nk(nodes_mu_);
        nodes_[shard].pending[un->header.request_id] = std::move(r.future);
    }
    admit.status = wire::AdmitStatus::Accepted;
    return wire::encode_admit_payload(admit);
}

ClusterSubmitResult ShardCluster::submit(TransformRequest request) {
    if (!request.image) {
        throw std::invalid_argument("ShardCluster::submit: null image");
    }
    // Resolve + hash once here, exactly as the shard's own submit would, so
    // routing, the epoch fence, and the degraded scan all talk about the
    // same key (the shard re-hashes on delivery; placement uses only the
    // digest + dims half of the key, which no shard ever recomputes
    // differently).
    const auto fp = core::FilterPair::daubechies(request.taps);
    request.kernel = core::resolve_dwt_kernel(request.kernel, fp);
    std::uint64_t digest_lo = 0;
    std::uint64_t digest_hi = 0;
    digest_memo_.digest(request.image, digest_lo, digest_hi);
    const CacheKey key =
        assemble_cache_key(digest_lo, digest_hi, *request.image, request.taps,
                           request.levels, request.boundary, request.kernel);
    const std::vector<ShardId> chain = ring_.replicas(key, cfg_.replicas);

    ClusterSubmitResult out;
    {
        std::lock_guard nk(nodes_mu_);
        ++counters_.routed;
    }
    // The pixels genuinely cross the wire: encode the request once, reseal
    // per replica (the header names the destination and its epoch).
    const auto req_payload = wire::encode_request_payload(request, Clock::now());
    for (const ShardId shard : chain) {
        // Roster check first: a Dead shard is skipped without touching its
        // transport (the whole point of the failure detector — no waiting
        // on a corpse's ARQ give-up per request).
        std::uint64_t expected = 0;
        {
            std::lock_guard lk(mu_);
            if (detector_.health(shard) == ShardHealth::Dead) {
                std::lock_guard nk(nodes_mu_);
                ++counters_.roster_skips;
                continue;
            }
            expected = detector_.incarnation(shard);
        }
        double stall = 0.0;
        std::uint64_t request_id = 0;
        {
            std::lock_guard nk(nodes_mu_);
            stall = nodes_[shard].stall_seconds;
            request_id = next_request_id_++;
        }
        sleep_seconds(stall);  // Slow shard: clients feel it before the wire
        wire::Header h;
        h.kind = wire::MsgKind::Request;
        h.src = static_cast<std::uint32_t>(router_node());
        h.dst = static_cast<std::uint32_t>(shard);
        h.incarnation = expected;
        h.request_id = request_id;
        const auto sealed = wire::seal(h, req_payload);
        const auto resp =
            transport_.rpc(router_node(), static_cast<int>(shard),
                           wire::kRequestTag, sealed);
        if (!resp) {
            // The request wire gave up: killed or partitioned. Fail over.
            std::lock_guard nk(nodes_mu_);
            ++counters_.transport_refusals;
            continue;
        }
        wire::AdmitWire admit;
        try {
            admit = wire::decode_admit_payload(*resp);
        } catch (const wire::WireError&) {
            std::lock_guard nk(nodes_mu_);
            ++counters_.transport_refusals;
            continue;
        }
        switch (admit.status) {
        case wire::AdmitStatus::Accepted: {
            ++out.hops;
            TransformFuture inner;
            {
                std::lock_guard nk(nodes_mu_);
                auto& pending = nodes_[shard].pending;
                if (const auto it = pending.find(request_id); it != pending.end()) {
                    inner = std::move(it->second);
                    pending.erase(it);
                }
            }
            if (!inner.valid()) {
                // A racing kill swept the pending future between the admit
                // and the claim: treat as a transport loss and fail over.
                std::lock_guard nk(nodes_mu_);
                ++counters_.transport_refusals;
                continue;
            }
            ReplyTask task;
            task.shard = shard;
            task.request_id = request_id;
            task.incarnation = expected;
            task.inner = std::move(inner);
            task.promise = std::make_shared<std::promise<TransformReply>>();
            out.shard = shard;
            out.result.accepted = true;
            out.result.reject_reason = RejectReason::None;
            out.result.future = task.promise->get_future().share();
            enqueue_reply(std::move(task));
            {
                std::lock_guard nk(nodes_mu_);
                ++counters_.accepted;
                if (shard != chain.front()) ++counters_.failovers;
            }
            return out;
        }
        case wire::AdmitStatus::Rejected:
            // Breaker-open / saturated / quarantined on this replica: the
            // next replica may be healthy. Keep the answer's shape for the
            // final reject if the whole chain refuses.
            ++out.hops;
            out.shard = shard;
            out.result.accepted = false;
            out.result.reject_reason = admit.reject_reason;
            out.result.retry_after_seconds = admit.retry_after;
            continue;
        case wire::AdmitStatus::StaleEpoch:
            // Counted by the receiver-side fence in handle_request.
            continue;
        case wire::AdmitStatus::Down: {
            std::lock_guard nk(nodes_mu_);
            ++counters_.transport_refusals;
            continue;
        }
        }
    }

    // Replica chain exhausted. Degraded clients take any live shard's
    // cached answer for the scene (exact key preferred).
    if (request.allow_degraded) {
        const auto started = Clock::now();
        for (std::size_t s = 0; s < shard_count(); ++s) {
            Ticket t = grab_ticket(s);
            if (t.refusal != RouteRefusal::None) continue;
            if (auto cached = t.service->peek_cached(key)) {
                TransformReply reply;
                reply.degraded = !(cached->key == key);
                reply.cache_hit = true;
                reply.result = std::move(cached);
                reply.total_seconds =
                    std::chrono::duration<double>(Clock::now() - started).count();
                std::promise<TransformReply> promise;
                promise.set_value(std::move(reply));
                out.shard = s;
                out.cross_shard_degraded = true;
                out.result = SubmitResult{};
                out.result.accepted = true;
                out.result.future = promise.get_future().share();
                std::lock_guard nk(nodes_mu_);
                ++counters_.accepted;
                ++counters_.cross_shard_degraded;
                return out;
            }
        }
    }
    std::lock_guard nk(nodes_mu_);
    ++counters_.rejected;
    if (out.result.reject_reason == RejectReason::None) {
        // Never reached a shard's admission: every replica was dead or
        // unreachable. Report it as saturation-shaped backpressure with a
        // heartbeat-scaled retry hint (the roster heals on that cadence).
        out.result.accepted = false;
        out.result.reject_reason = RejectReason::Saturated;
        out.result.retry_after_seconds = cfg_.membership.dead_after;
    }
    return out;
}

void ShardCluster::enqueue_reply(ReplyTask task) {
    bool inline_delivery = false;
    {
        std::lock_guard pk(pump_mu_);
        if (pump_stop_) {
            inline_delivery = true;
        } else {
            pump_queue_.push_back(std::move(task));
        }
    }
    if (inline_delivery) {
        // The pump is gone (post-shutdown race): deliver on this thread.
        deliver_reply(std::move(task));
        return;
    }
    cv_pump_.notify_one();
}

void ShardCluster::pump_loop() {
    for (;;) {
        ReplyTask task;
        {
            std::unique_lock pk(pump_mu_);
            cv_pump_.wait(pk, [this] { return pump_stop_ || !pump_queue_.empty(); });
            if (pump_queue_.empty()) return;  // pump_stop_ and drained
            task = std::move(pump_queue_.front());
            pump_queue_.pop_front();
        }
        deliver_reply(std::move(task));
    }
}

void ShardCluster::deliver_reply(ReplyTask task) {
    // Wait for the shard's outcome with no lock held, then encode it —
    // value or typed error — exactly as it crosses the wire.
    TransformReply local;
    std::exception_ptr error;
    std::vector<std::byte> payload;
    try {
        local = task.inner.get();
        payload = wire::encode_reply_payload(local);
    } catch (const ServiceShutdownError& e) {
        error = std::current_exception();
        payload = wire::encode_reply_error_payload(wire::ReplyErrorKind::Shutdown,
                                                   e.what());
    } catch (const DeadlineExpiredError& e) {
        error = std::current_exception();
        payload = wire::encode_reply_error_payload(wire::ReplyErrorKind::Deadline,
                                                   e.what());
    } catch (const WatchdogTimeoutError& e) {
        error = std::current_exception();
        payload = wire::encode_reply_error_payload(wire::ReplyErrorKind::Watchdog,
                                                   e.what());
    } catch (const CrcAuditError& e) {
        error = std::current_exception();
        payload = wire::encode_reply_error_payload(wire::ReplyErrorKind::CrcAudit,
                                                   e.what());
    } catch (const std::exception& e) {
        error = std::current_exception();
        payload = wire::encode_reply_error_payload(wire::ReplyErrorKind::Other,
                                                   e.what());
    }
    wire::Header h;
    h.kind = wire::MsgKind::Reply;
    h.src = static_cast<std::uint32_t>(task.shard);
    h.dst = static_cast<std::uint32_t>(router_node());
    h.incarnation = task.incarnation;
    h.request_id = task.request_id;
    const auto sealed = wire::seal(h, payload);
    const auto ack = transport_.rpc(static_cast<int>(task.shard), router_node(),
                                    wire::kReplyTag, sealed);
    bool have_rec = false;
    ReceivedReply rec;
    {
        std::lock_guard nk(nodes_mu_);
        if (const auto it = reply_box_.find(task.request_id);
            it != reply_box_.end()) {
            if (ack) {
                rec = std::move(it->second);
                have_rec = true;
            }
            reply_box_.erase(it);
        }
        if (!have_rec) ++counters_.reply_wire_fallbacks;
    }
    if (!have_rec) {
        // The reply wire gave up (shard killed or partitioned at
        // completion time): deliver the locally held outcome honestly.
        if (error) {
            task.promise->set_exception(error);
        } else {
            task.promise->set_value(std::move(local));
        }
        return;
    }
    // Deliver what the router received. A *value* reply arriving under a
    // different incarnation than the dispatch belief would be a
    // stale-epoch reply; the frame carries the dispatch incarnation, so
    // this is structurally impossible — the counter is the audited
    // invariant the partition drills assert stays zero.
    if (!rec.rw.is_error && rec.incarnation != task.incarnation) {
        {
            std::lock_guard nk(nodes_mu_);
            ++counters_.stale_replies_delivered;
        }
        task.promise->set_exception(std::make_exception_ptr(std::runtime_error(
            "shard wire: stale-epoch reply suppressed")));
        return;
    }
    if (rec.rw.is_error) {
        try {
            wire::rethrow_reply_error(rec.rw);
        } catch (...) {
            task.promise->set_exception(std::current_exception());
        }
        return;
    }
    task.promise->set_value(std::move(rec.rw.reply));
}

SubmitResult ShardCluster::submit_to_shard(ShardId shard, TransformRequest request) {
    if (shard >= nodes_.size()) {
        throw std::out_of_range("ShardCluster::submit_to_shard");
    }
    Ticket t = grab_ticket(shard);
    if (t.refusal != RouteRefusal::None) {
        SubmitResult r;
        r.accepted = false;
        r.reject_reason = RejectReason::ShuttingDown;
        return r;
    }
    sleep_seconds(t.stall_seconds);
    return t.service->submit(std::move(request));
}

PyramidService* ShardCluster::service(ShardId shard) {
    if (shard >= nodes_.size()) throw std::out_of_range("ShardCluster::service");
    std::lock_guard nk(nodes_mu_);
    return nodes_[shard].service.get();
}

std::size_t ShardCluster::shard_count() const noexcept { return nodes_.size(); }

ShardHealth ShardCluster::health(ShardId shard) const {
    std::lock_guard lk(mu_);
    return detector_.health(shard);
}

std::uint64_t ShardCluster::incarnation(ShardId shard) const {
    std::lock_guard lk(mu_);
    return detector_.incarnation(shard);
}

std::uint64_t ShardCluster::roster_epoch() const {
    std::lock_guard lk(mu_);
    return detector_.epoch();
}

std::uint64_t ShardCluster::roster_hash() const {
    std::lock_guard lk(mu_);
    return detector_.roster_hash();
}

std::uint64_t ShardCluster::node_roster_hash(ShardId shard) const {
    if (shard >= cfg_.shard_count) {
        throw std::out_of_range("ShardCluster::node_roster_hash");
    }
    std::lock_guard lk(mu_);
    return nodes_[shard].detector.roster_hash();
}

ClusterCounters ShardCluster::counters() const {
    std::lock_guard nk(nodes_mu_);
    return counters_;
}

WireStats ShardCluster::wire_stats() const { return transport_.stats(); }

MetricsSnapshot ShardCluster::fleet_metrics() const {
    std::vector<std::shared_ptr<PyramidService>> live;
    MetricsSnapshot fleet;
    {
        std::lock_guard lk(mu_);
        fleet = retired_;
    }
    {
        std::lock_guard nk(nodes_mu_);
        for (const Node& node : nodes_) {
            if (node.service) live.push_back(node.service);
        }
    }
    for (const auto& svc : live) fleet.merge(svc->metrics());
    return fleet;
}

CacheStats ShardCluster::fleet_cache_stats() const {
    std::vector<std::shared_ptr<PyramidService>> live;
    CacheStats fleet;
    {
        std::lock_guard lk(mu_);
        fleet = retired_cache_;
    }
    {
        std::lock_guard nk(nodes_mu_);
        for (const Node& node : nodes_) {
            if (node.service) live.push_back(node.service);
        }
    }
    for (const auto& svc : live) fleet.merge(svc->cache_stats());
    return fleet;
}

ArenaStats ShardCluster::fleet_arena_stats() const {
    std::vector<std::shared_ptr<PyramidService>> live;
    ArenaStats fleet;
    {
        std::lock_guard lk(mu_);
        fleet = retired_arena_;
    }
    {
        std::lock_guard nk(nodes_mu_);
        for (const Node& node : nodes_) {
            if (node.service) live.push_back(node.service);
        }
    }
    for (const auto& svc : live) fleet.merge(svc->arena_stats());
    return fleet;
}

void ShardCluster::shutdown() {
    std::vector<std::shared_ptr<PyramidService>> drains;
    bool first = false;
    {
        std::lock_guard lk(mu_);
        first = !stopping_;
        stopping_ = true;
        std::lock_guard nk(nodes_mu_);
        for (Node& node : nodes_) {
            if (node.service) drains.push_back(std::move(node.service));
            node.service = nullptr;
            node.killed = true;
            node.pending.clear();
        }
    }
    for (std::size_t s = 0; s < nodes_.size(); ++s) {
        transport_.set_reachable(static_cast<int>(s), false);
    }
    cv_monitor_.notify_all();
    if (first && monitor_.joinable()) monitor_.join();
    // Drain the services first (every inner future resolves), then let the
    // pump flush its queue: each remaining reply's wire attempt fails fast
    // (all NICs are off) and falls back to the local outcome, so every
    // client future is ready before shutdown returns.
    drain_and_retire(drains);
    {
        std::lock_guard pk(pump_mu_);
        pump_stop_ = true;
    }
    cv_pump_.notify_all();
    if (first && pump_.joinable()) pump_.join();
}

}  // namespace wavehpc::svc::shard
