#include "svc/shard/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <stdexcept>

#include "core/kernels.hpp"

namespace wavehpc::svc::shard {

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') return fallback;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(raw, &end, 10);
    if (end == raw || *end != '\0') return fallback;
    return std::max<std::uint64_t>(1, v);
}

double env_millis(const char* name, double fallback_seconds) {
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') return fallback_seconds;
    char* end = nullptr;
    const double v = std::strtod(raw, &end);
    if (end == raw || *end != '\0' || !(v > 0.0)) return fallback_seconds;
    return v * 1e-3;
}

void sleep_seconds(double seconds) {
    if (seconds <= 0.0) return;
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace

ShardClusterConfig ShardClusterConfig::from_env() {
    ShardClusterConfig cfg;
    cfg.shard_count =
        static_cast<std::size_t>(env_u64("WAVEHPC_SHARD_COUNT", cfg.shard_count));
    cfg.vnodes = static_cast<std::size_t>(env_u64("WAVEHPC_SHARD_VNODES", cfg.vnodes));
    cfg.replicas =
        static_cast<std::size_t>(env_u64("WAVEHPC_SHARD_REPLICAS", cfg.replicas));
    cfg.seed = env_u64("WAVEHPC_SHARD_SEED",
                       env_u64("WAVEHPC_SCHED_SEED", cfg.seed));
    cfg.membership.heartbeat_interval =
        env_millis("WAVEHPC_SHARD_HB_MS", cfg.membership.heartbeat_interval);
    cfg.membership.suspect_after =
        env_millis("WAVEHPC_SHARD_SUSPECT_MS", cfg.membership.suspect_after);
    cfg.membership.dead_after =
        env_millis("WAVEHPC_SHARD_DEAD_MS", cfg.membership.dead_after);
    cfg.membership.readmit_oks = static_cast<std::uint32_t>(
        env_u64("WAVEHPC_SHARD_READMIT_OKS", cfg.membership.readmit_oks));
    cfg.service = ServiceConfig::from_env();
    return cfg;
}

ShardCluster::ShardCluster(runtime::ThreadPool& pool, ShardClusterConfig cfg)
    : pool_(pool),
      cfg_(cfg),
      ring_(cfg.shard_count, cfg.vnodes, cfg.seed),
      nodes_(cfg.shard_count),
      detector_(cfg.shard_count, cfg.membership) {
    for (auto& node : nodes_) {
        node.service = std::make_shared<PyramidService>(pool_, cfg_.service);
    }
    if (!cfg_.manual_clock) {
        monitor_ = std::thread([this] { monitor_loop(); });
    }
}

ShardCluster::~ShardCluster() { shutdown(); }

double ShardCluster::now_seconds() const {
    return std::chrono::duration<double>(Clock::now() - epoch0_).count();
}

void ShardCluster::monitor_loop() {
    std::unique_lock lk(mu_);
    while (!stopping_) {
        cv_monitor_.wait_for(
            lk, std::chrono::duration<double>(cfg_.membership.heartbeat_interval),
            [this] { return stopping_; });
        if (stopping_) break;
        const double now = std::max(now_, now_seconds());
        now_ = now;
        apply_due_actions(lk, now);
        if (stopping_) break;
        for (std::size_t s = 0; s < nodes_.size(); ++s) {
            const Node& node = nodes_[s];
            const bool ok = !node.killed && !node.partitioned;
            detector_.observe(s, ok, now, node.incarnation);
        }
        detector_.sweep(now);
        absorb_transitions_locked();
    }
}

void ShardCluster::tick(double now) {
    std::unique_lock lk(mu_);
    if (stopping_) return;
    now_ = std::max(now_, now);
    apply_due_actions(lk, now_);
    if (stopping_) return;
    for (std::size_t s = 0; s < nodes_.size(); ++s) {
        const Node& node = nodes_[s];
        const bool ok = !node.killed && !node.partitioned;
        detector_.observe(s, ok, now_, node.incarnation);
    }
    detector_.sweep(now_);
    absorb_transitions_locked();
}

void ShardCluster::absorb_transitions_locked() {
    for (const RosterTransition& t : detector_.drain_transitions()) {
        switch (t.to) {
        case ShardHealth::Suspect: ++counters_.suspicions; break;
        case ShardHealth::Dead: ++counters_.deaths; break;
        case ShardHealth::Alive:
            if (t.from == ShardHealth::Dead) ++counters_.readmissions;
            break;
        }
    }
}

void ShardCluster::set_chaos_plan(const ChaosPlan& plan) {
    // Validate and build first: a malformed plan must not half-install.
    std::vector<ChaosAction> actions;
    for (const ShardEvent& ev : plan.shard_events) {
        if (ev.shard >= cfg_.shard_count) {
            throw std::out_of_range("ShardCluster: chaos event names shard " +
                                    std::to_string(ev.shard) + " of " +
                                    std::to_string(cfg_.shard_count));
        }
        actions.push_back({ev.start_seconds, ev.shard, ev.kind, true,
                           ev.stall_seconds});
        actions.push_back({ev.start_seconds + ev.duration_seconds, ev.shard,
                           ev.kind, false, 0.0});
    }
    std::stable_sort(actions.begin(), actions.end(),
                     [](const ChaosAction& a, const ChaosAction& b) {
                         return a.at < b.at;
                     });

    std::lock_guard lk(mu_);
    service_plan_ = plan;
    have_service_plan_ = true;
    for (Node& node : nodes_) {
        if (node.service) node.service->set_chaos_plan(plan);
    }
    actions_ = std::move(actions);
    next_action_ = 0;
}

void ShardCluster::apply_due_actions(std::unique_lock<std::mutex>& lk, double now) {
    // Kills drain outside the lock (a drain blocks on in-flight compute and
    // submits need mu_); the state flip happens under it, so the transport
    // refuses from the instant the action is due.
    std::vector<std::shared_ptr<PyramidService>> drains;
    while (next_action_ < actions_.size() && actions_[next_action_].at <= now) {
        const ChaosAction a = actions_[next_action_++];
        Node& node = nodes_[a.shard];
        switch (a.kind) {
        case ShardEventKind::Kill:
            if (a.begin) {
                kill_locked_phase1(a.shard, lk, drains);
            } else {
                revive_locked(a.shard);
            }
            break;
        case ShardEventKind::Partition:
            if (node.partitioned != a.begin) {
                node.partitioned = a.begin;
                a.begin ? ++counters_.partitions : ++counters_.heals;
            }
            break;
        case ShardEventKind::Slow:
            if (a.begin) {
                node.stall_seconds = a.stall_seconds;
                ++counters_.slowdowns;
            } else {
                node.stall_seconds = 0.0;
                ++counters_.heals;
            }
            break;
        }
    }
    if (!drains.empty()) {
        lk.unlock();
        drain_and_retire(drains);
        lk.lock();
    }
}

void ShardCluster::kill_locked_phase1(
    ShardId shard, std::unique_lock<std::mutex>& lk,
    std::vector<std::shared_ptr<PyramidService>>& drains) {
    (void)lk;  // documents the precondition: mu_ held
    Node& node = nodes_[shard];
    if (node.killed) return;
    node.killed = true;
    ++counters_.kills;
    if (node.service) drains.push_back(std::move(node.service));
    node.service = nullptr;
}

void ShardCluster::drain_and_retire(
    std::vector<std::shared_ptr<PyramidService>>& drains) {
    for (auto& svc : drains) {
        svc->shutdown();  // waiters resolve (ServiceShutdownError); nothing strands
        MetricsSnapshot m = svc->metrics();
        CacheStats c = svc->cache_stats();
        ArenaStats a = svc->arena_stats();
        // The dying life's pool is about to be freed with the service;
        // the fleet view keeps only its history, not its residency.
        a.bytes_pooled = 0;
        a.bytes_outstanding = 0;
        std::lock_guard lk(mu_);
        retired_.merge(m);
        retired_cache_.merge(c);
        retired_arena_.merge(a);
    }
    drains.clear();
}

void ShardCluster::revive_locked(ShardId shard) {
    Node& node = nodes_[shard];
    if (!node.killed) return;
    node.service = std::make_shared<PyramidService>(pool_, cfg_.service);
    if (have_service_plan_) node.service->set_chaos_plan(service_plan_);
    node.killed = false;
    ++node.incarnation;  // the new life; the roster's epoch fence keys on this
    ++counters_.revivals;
}

void ShardCluster::kill(ShardId shard) {
    if (shard >= nodes_.size()) throw std::out_of_range("ShardCluster::kill");
    std::vector<std::shared_ptr<PyramidService>> drains;
    {
        std::unique_lock lk(mu_);
        kill_locked_phase1(shard, lk, drains);
    }
    drain_and_retire(drains);
}

void ShardCluster::revive(ShardId shard) {
    if (shard >= nodes_.size()) throw std::out_of_range("ShardCluster::revive");
    std::lock_guard lk(mu_);
    revive_locked(shard);
}

void ShardCluster::set_partitioned(ShardId shard, bool on) {
    if (shard >= nodes_.size()) throw std::out_of_range("ShardCluster::set_partitioned");
    std::lock_guard lk(mu_);
    if (nodes_[shard].partitioned == on) return;
    nodes_[shard].partitioned = on;
    on ? ++counters_.partitions : ++counters_.heals;
}

void ShardCluster::set_slow(ShardId shard, double stall_seconds) {
    if (shard >= nodes_.size()) throw std::out_of_range("ShardCluster::set_slow");
    std::lock_guard lk(mu_);
    if (stall_seconds > 0.0 && nodes_[shard].stall_seconds <= 0.0) {
        ++counters_.slowdowns;
    } else if (stall_seconds <= 0.0 && nodes_[shard].stall_seconds > 0.0) {
        ++counters_.heals;
    }
    nodes_[shard].stall_seconds = std::max(0.0, stall_seconds);
}

ShardCluster::Ticket ShardCluster::grab_ticket(ShardId shard, bool fenced,
                                               std::uint64_t expected_incarnation) {
    std::lock_guard lk(mu_);
    Ticket t;
    Node& node = nodes_[shard];
    if (node.killed || node.partitioned || !node.service) {
        ++counters_.transport_refusals;
        t.refusal = RouteRefusal::Transport;
        return t;
    }
    if (fenced && node.incarnation != expected_incarnation) {
        ++counters_.stale_epoch_refusals;
        t.refusal = RouteRefusal::StaleEpoch;
        return t;
    }
    t.service = node.service;  // ref held: a concurrent kill cannot free it
    t.stall_seconds = node.stall_seconds;
    return t;
}

std::vector<ShardId> ShardCluster::placement(const TransformRequest& request) const {
    if (!request.image) {
        throw std::invalid_argument("ShardCluster::placement: null image");
    }
    const CacheKey key = make_cache_key(*request.image, request.taps,
                                        request.levels, request.boundary,
                                        core::resolve_dwt_kernel(
                                            request.kernel,
                                            core::FilterPair::daubechies(request.taps)));
    return ring_.replicas(key, cfg_.replicas);
}

ClusterSubmitResult ShardCluster::submit(TransformRequest request) {
    if (!request.image) {
        throw std::invalid_argument("ShardCluster::submit: null image");
    }
    // Resolve + hash once here, exactly as the shard's own submit would, so
    // routing, the epoch fence, and the degraded scan all talk about the
    // same key (the shard re-hashes on delivery; placement uses only the
    // digest + dims half of the key, which no shard ever recomputes
    // differently).
    const auto fp = core::FilterPair::daubechies(request.taps);
    request.kernel = core::resolve_dwt_kernel(request.kernel, fp);
    std::uint64_t digest_lo = 0;
    std::uint64_t digest_hi = 0;
    digest_memo_.digest(request.image, digest_lo, digest_hi);
    const CacheKey key =
        assemble_cache_key(digest_lo, digest_hi, *request.image, request.taps,
                           request.levels, request.boundary, request.kernel);
    const std::vector<ShardId> chain = ring_.replicas(key, cfg_.replicas);

    ClusterSubmitResult out;
    {
        std::lock_guard lk(mu_);
        ++counters_.routed;
    }
    for (const ShardId shard : chain) {
        // Roster check first: a Dead shard is skipped without touching its
        // transport (the whole point of the failure detector — no waiting
        // on a corpse's timeout per request).
        std::uint64_t expected = 0;
        {
            std::lock_guard lk(mu_);
            if (detector_.health(shard) == ShardHealth::Dead) {
                ++counters_.roster_skips;
                continue;
            }
            expected = detector_.incarnation(shard);
        }
        Ticket t = grab_ticket(shard, /*fenced=*/true, expected);
        if (t.refusal != RouteRefusal::None) continue;
        ++out.hops;
        sleep_seconds(t.stall_seconds);  // Slow shard: clients feel it
        SubmitResult r = t.service->submit(request);
        out.shard = shard;
        out.result = std::move(r);
        if (out.result.accepted) {
            std::lock_guard lk(mu_);
            ++counters_.accepted;
            if (shard != chain.front()) ++counters_.failovers;
            return out;
        }
        // Breaker-open / saturated / quarantined on this replica: the next
        // replica may be healthy. ShuttingDown means a racing kill — also
        // worth failing over.
    }

    // Replica chain exhausted. Degraded clients take any live shard's
    // cached answer for the scene (exact key preferred).
    if (request.allow_degraded) {
        const auto started = Clock::now();
        for (std::size_t s = 0; s < shard_count(); ++s) {
            Ticket t = grab_ticket(s, /*fenced=*/false, 0);
            if (t.refusal != RouteRefusal::None) continue;
            if (auto cached = t.service->peek_cached(key)) {
                TransformReply reply;
                reply.degraded = !(cached->key == key);
                reply.cache_hit = true;
                reply.result = std::move(cached);
                reply.total_seconds =
                    std::chrono::duration<double>(Clock::now() - started).count();
                std::promise<TransformReply> promise;
                promise.set_value(std::move(reply));
                out.shard = s;
                out.cross_shard_degraded = true;
                out.result = SubmitResult{};
                out.result.accepted = true;
                out.result.future = promise.get_future().share();
                std::lock_guard lk(mu_);
                ++counters_.accepted;
                ++counters_.cross_shard_degraded;
                return out;
            }
        }
    }
    std::lock_guard lk(mu_);
    ++counters_.rejected;
    if (out.result.reject_reason == RejectReason::None) {
        // Never reached a shard's admission: every replica was dead or
        // unreachable. Report it as saturation-shaped backpressure with a
        // heartbeat-scaled retry hint (the roster heals on that cadence).
        out.result.accepted = false;
        out.result.reject_reason = RejectReason::Saturated;
        out.result.retry_after_seconds = cfg_.membership.dead_after;
    }
    return out;
}

SubmitResult ShardCluster::submit_to_shard(ShardId shard, TransformRequest request) {
    if (shard >= nodes_.size()) {
        throw std::out_of_range("ShardCluster::submit_to_shard");
    }
    Ticket t = grab_ticket(shard, /*fenced=*/false, 0);
    if (t.refusal != RouteRefusal::None) {
        SubmitResult r;
        r.accepted = false;
        r.reject_reason = RejectReason::ShuttingDown;
        return r;
    }
    sleep_seconds(t.stall_seconds);
    return t.service->submit(std::move(request));
}

PyramidService* ShardCluster::service(ShardId shard) {
    if (shard >= nodes_.size()) throw std::out_of_range("ShardCluster::service");
    std::lock_guard lk(mu_);
    return nodes_[shard].service.get();
}

std::size_t ShardCluster::shard_count() const noexcept { return nodes_.size(); }

ShardHealth ShardCluster::health(ShardId shard) const {
    std::lock_guard lk(mu_);
    return detector_.health(shard);
}

std::uint64_t ShardCluster::incarnation(ShardId shard) const {
    std::lock_guard lk(mu_);
    return detector_.incarnation(shard);
}

std::uint64_t ShardCluster::roster_epoch() const {
    std::lock_guard lk(mu_);
    return detector_.epoch();
}

std::uint64_t ShardCluster::roster_hash() const {
    std::lock_guard lk(mu_);
    return detector_.roster_hash();
}

ClusterCounters ShardCluster::counters() const {
    std::lock_guard lk(mu_);
    return counters_;
}

MetricsSnapshot ShardCluster::fleet_metrics() const {
    std::vector<std::shared_ptr<PyramidService>> live;
    MetricsSnapshot fleet;
    {
        std::lock_guard lk(mu_);
        fleet = retired_;
        for (const Node& node : nodes_) {
            if (node.service) live.push_back(node.service);
        }
    }
    for (const auto& svc : live) fleet.merge(svc->metrics());
    return fleet;
}

CacheStats ShardCluster::fleet_cache_stats() const {
    std::vector<std::shared_ptr<PyramidService>> live;
    CacheStats fleet;
    {
        std::lock_guard lk(mu_);
        fleet = retired_cache_;
        for (const Node& node : nodes_) {
            if (node.service) live.push_back(node.service);
        }
    }
    for (const auto& svc : live) fleet.merge(svc->cache_stats());
    return fleet;
}

ArenaStats ShardCluster::fleet_arena_stats() const {
    std::vector<std::shared_ptr<PyramidService>> live;
    ArenaStats fleet;
    {
        std::lock_guard lk(mu_);
        fleet = retired_arena_;
        for (const Node& node : nodes_) {
            if (node.service) live.push_back(node.service);
        }
    }
    for (const auto& svc : live) fleet.merge(svc->arena_stats());
    return fleet;
}

void ShardCluster::shutdown() {
    std::vector<std::shared_ptr<PyramidService>> drains;
    bool first = false;
    {
        std::lock_guard lk(mu_);
        first = !stopping_;
        stopping_ = true;
        for (Node& node : nodes_) {
            if (node.service) drains.push_back(std::move(node.service));
            node.service = nullptr;
            node.killed = true;
        }
    }
    cv_monitor_.notify_all();
    if (first && monitor_.joinable()) monitor_.join();
    drain_and_retire(drains);
}

}  // namespace wavehpc::svc::shard
