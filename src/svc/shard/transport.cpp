#include "svc/shard/transport.hpp"

#include <algorithm>
#include <stdexcept>

namespace wavehpc::svc::shard {

namespace {

// The machine's NIC frame, byte for byte (mesh/machine.cpp): magic, seq,
// CRC over seq bytes chained with the payload.
constexpr std::uint32_t kFrameMagic = 0x57485243U;  // "WHRC"
constexpr std::size_t kFrameHeaderBytes = 12;

void put_u32(std::byte* dst, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        dst[i] = static_cast<std::byte>((v >> (8 * i)) & 0xFFU);
    }
}

std::uint32_t get_u32(const std::byte* src) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(src[i]) << (8 * i);
    }
    return v;
}

std::uint32_t frame_crc(const std::vector<std::byte>& frame) {
    const std::uint32_t seq_crc = mesh::crc32({frame.data() + 4, 4});
    return mesh::crc32(
        {frame.data() + kFrameHeaderBytes, frame.size() - kFrameHeaderBytes},
        seq_crc);
}

std::vector<std::byte> build_frame(std::uint32_t seq,
                                   std::span<const std::byte> data) {
    std::vector<std::byte> frame(kFrameHeaderBytes + data.size());
    put_u32(frame.data(), kFrameMagic);
    put_u32(frame.data() + 4, seq);
    std::copy(data.begin(), data.end(), frame.begin() + kFrameHeaderBytes);
    put_u32(frame.data() + 8, frame_crc(frame));
    return frame;
}

bool frame_valid(const std::vector<std::byte>& frame) {
    if (frame.size() < kFrameHeaderBytes) return false;
    if (get_u32(frame.data()) != kFrameMagic) return false;
    return get_u32(frame.data() + 8) == frame_crc(frame);
}

[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

// Fault-draw index for the channel's n-th frame. Per-channel (not global)
// so concurrent traffic on other channels can never shift this channel's
// draw sequence: the gossip channels see the same deterministic stream no
// matter how request/reply RPCs interleave with the beat schedule.
[[nodiscard]] std::uint64_t draw_index(int src, int dst, int tag,
                                       std::uint64_t n) noexcept {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 40) ^
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 20) ^
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag));
    return mix64(key) + n;
}

}  // namespace

ShardTransport::ShardTransport(int nodes, std::uint64_t seed, int max_retries)
    : nodes_(nodes), max_retries_(max_retries),
      reachable_(static_cast<std::size_t>(nodes), true) {
    if (nodes <= 0) throw std::invalid_argument("ShardTransport: nodes must be > 0");
    if (max_retries < 0) {
        throw std::invalid_argument("ShardTransport: negative max_retries");
    }
    plan_.seed = seed;
}

void ShardTransport::set_time(double now) {
    std::lock_guard lk(mu_);
    now_ = std::max(now_, now);
}

void ShardTransport::set_reachable(int node, bool on) {
    std::lock_guard lk(mu_);
    reachable_.at(static_cast<std::size_t>(node)) = on;
}

void ShardTransport::set_faults(mesh::FaultPlan plan) {
    std::lock_guard lk(mu_);
    const std::uint64_t seed = plan_.seed;
    plan_ = std::move(plan);
    if (plan_.seed == 0) plan_.seed = seed;
}

void ShardTransport::set_handler(int node, int tag, Handler h) {
    std::lock_guard lk(mu_);
    handlers_[{node, tag}] = std::move(h);
}

void ShardTransport::set_sink(int node, int tag, Sink s) {
    std::lock_guard lk(mu_);
    sinks_[{node, tag}] = std::move(s);
}

bool ShardTransport::reachable_locked(int node) const {
    return node >= 0 && node < nodes_ &&
           reachable_[static_cast<std::size_t>(node)];
}

bool ShardTransport::send_datagram(int src, int dst, int tag,
                                   std::span<const std::byte> data) {
    std::lock_guard lk(mu_);
    if (!reachable_locked(src) || !reachable_locked(dst)) return false;
    ++stats_.frames_sent;
    Channel& ch = channels_[{src, dst, tag}];
    const mesh::FaultDecision fd = plan_.decide_frame(
        draw_index(src, dst, tag, ch.draws++), src, dst, tag, now_);
    if (fd.drop) {
        ++stats_.drops;
        return false;
    }
    std::vector<std::byte> frame = build_frame(0, data);
    if (fd.corrupt) {
        frame[fd.flip_byte % frame.size()] ^=
            static_cast<std::byte>(1U << fd.flip_bit);
    }
    if (!frame_valid(frame)) {
        ++stats_.corrupt_rejections;
        return false;
    }
    const auto it = sinks_.find({dst, tag});
    if (it == sinks_.end()) return false;
    ++stats_.frames_delivered;
    it->second(src, {frame.data() + kFrameHeaderBytes,
                     frame.size() - kFrameHeaderBytes});
    return true;
}

bool ShardTransport::arq_locked(
    int src, int dst, int tag, std::span<const std::byte> data,
    const std::function<void(std::span<const std::byte>)>& on_fresh) {
    Channel& ch = channels_[{src, dst, tag}];
    const std::uint32_t seq = ch.next_seq;
    const std::vector<std::byte> frame = build_frame(seq, data);

    for (int attempt = 0; attempt <= max_retries_; ++attempt) {
        if (attempt > 0) ++stats_.retransmits;
        ++stats_.frames_sent;
        if (!reachable_locked(src) || !reachable_locked(dst)) continue;

        const mesh::FaultDecision fd = plan_.decide_frame(
            draw_index(src, dst, tag, ch.draws++), src, dst, tag, now_);
        if (fd.drop) {
            ++stats_.drops;
            continue;
        }
        std::vector<std::byte> wire_frame = frame;
        if (fd.corrupt) {
            wire_frame[fd.flip_byte % wire_frame.size()] ^=
                static_cast<std::byte>(1U << fd.flip_bit);
        }
        if (!frame_valid(wire_frame)) {
            // Receiver NIC rejects the frame (CRC/magic); no ack.
            ++stats_.corrupt_rejections;
            continue;
        }
        if (seq == ch.expected_seq) {
            ++ch.expected_seq;
            ++stats_.frames_delivered;
            on_fresh({wire_frame.data() + kFrameHeaderBytes,
                      wire_frame.size() - kFrameHeaderBytes});
        } else {
            ++stats_.duplicates_suppressed;
        }
        // Valid frames — fresh or duplicate — are acknowledged; the ack
        // travels the reverse direction and draws its own fault.
        ++stats_.frames_sent;
        // The ack draws from the data channel's sequence (not the reverse
        // channel's), keeping one transfer's fate a function of one stream.
        const mesh::FaultDecision fa = plan_.decide_frame(
            draw_index(src, dst, tag, ch.draws++), dst, src, tag, now_);
        if (fa.drop) {
            ++stats_.drops;
            continue;
        }
        if (fa.corrupt) {
            // A corrupted ack is rejected by the sender's NIC.
            ++stats_.corrupt_rejections;
            continue;
        }
        ch.next_seq = seq + 1;
        return true;
    }
    // Give up. The data frame may have been consumed even though every ack
    // was lost; mirror the receiver's expected seq (the model-level
    // stand-in for acks carrying it) so the channel stays in step.
    ++stats_.gave_up;
    ch.next_seq = ch.expected_seq;
    return false;
}

std::optional<std::vector<std::byte>> ShardTransport::rpc(
    int src, int dst, int tag, std::span<const std::byte> data) {
    std::lock_guard lk(mu_);
    Channel& fwd = channels_[{src, dst, tag}];
    const bool request_ok =
        arq_locked(src, dst, tag, data, [&](std::span<const std::byte> payload) {
            const auto it = handlers_.find({dst, tag});
            fwd.last_response =
                it != handlers_.end() ? it->second(src, payload)
                                      : std::vector<std::byte>{};
        });
    if (!request_ok) return std::nullopt;
    // Response leg: the cached response (ours — the channel is
    // stop-and-wait, so the last accepted request on it was this one)
    // travels back under its own ARQ channel.
    std::vector<std::byte> response = fwd.last_response;
    const bool response_ok = arq_locked(dst, src, tag, response,
                                        [](std::span<const std::byte>) {});
    if (!response_ok) return std::nullopt;
    return response;
}

WireStats ShardTransport::stats() const {
    std::lock_guard lk(mu_);
    return stats_;
}

}  // namespace wavehpc::svc::shard
