#pragma once
// Gossip-lite shard membership: a heartbeat failure detector with
// roster-hash epochs, in the telehash-c chat.c spirit — every observer
// runs the same small state machine over the heartbeat stream it sees, so
// observers that see the same stream agree on the roster without any
// coordination round.
//
// Per-shard state machine (time-based, driven by sweep()):
//
//           heartbeat ok                 no ok for suspect_after
//   Alive ───────────────► Alive   Alive ─────────────────────► Suspect
//   Suspect ── ok ───────► Alive   Suspect ── no ok, dead_after ► Dead
//   Dead ── readmit_oks consecutive oks at a *newer incarnation* ► Alive
//
// Re-admission is epoch-fenced: a dead shard comes back only by
// heartbeating with a higher incarnation (its replacement process), and
// the detector requires `readmit_oks` consecutive fresh beats before
// trusting it — one straggling packet from the old life cannot resurrect
// a corpse. Each transition bumps a monotonic epoch counter, and
// roster_hash() folds (shard, health, incarnation) into one 64-bit view
// id two detectors can compare for agreement.
//
// Like CircuitBreaker, this is externally synchronized pure decision
// logic: the cluster calls it under its own mutex with wall-clock-derived
// seconds, tests drive it single-threaded with explicit times, and the
// mesh gossip program (mesh_gossip.hpp) drives one instance per rank with
// *virtual* seconds — the same state machine in all three settings.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wavehpc::svc::shard {

enum class ShardHealth : std::uint8_t { Alive = 0, Suspect = 1, Dead = 2 };

[[nodiscard]] const char* health_name(ShardHealth h) noexcept;

struct MembershipConfig {
    double heartbeat_interval = 0.02;  ///< seconds between probe rounds
    double suspect_after = 0.06;       ///< no ok for this long -> Suspect
    double dead_after = 0.15;          ///< no ok for this long -> Dead
    std::uint32_t readmit_oks = 2;     ///< consecutive fresh oks to re-admit
};

struct ShardStatus {
    ShardHealth health = ShardHealth::Alive;
    std::uint64_t incarnation = 0;  ///< highest incarnation heard from
    double last_ok = 0.0;           ///< time of the newest ok heartbeat
    std::uint32_t consecutive_oks = 0;  ///< readmission progress while Dead
};

/// One roster transition, drained by the owner for counters/logging.
struct RosterTransition {
    std::size_t shard = 0;
    ShardHealth from = ShardHealth::Alive;
    ShardHealth to = ShardHealth::Alive;
    std::uint64_t incarnation = 0;
    double at = 0.0;
};

class FailureDetector {
public:
    FailureDetector() = default;
    FailureDetector(std::size_t n_shards, MembershipConfig cfg);

    /// Feed one probe result at time `now` (seconds on the caller's clock):
    /// ok=true records a live heartbeat carrying `incarnation`; ok=false is
    /// a missed probe (recorded for accounting, no state change — death is
    /// time-based via sweep()). A heartbeat with an *older* incarnation
    /// than the recorded one is stale traffic from a previous life and is
    /// ignored.
    void observe(std::size_t shard, bool ok, double now,
                 std::uint64_t incarnation = 0);

    /// Merge one gossiped roster entry about `shard`: the sender's record
    /// of (incarnation, last_ok). Counts as a heartbeat only when the
    /// entry is strictly fresher than what this detector already holds —
    /// a newer incarnation, or the same incarnation with a newer last_ok.
    /// Relayed duplicates of one beat (same incarnation, same last_ok)
    /// are ignored, so no matter how many peers relay a tick's beat it
    /// advances readmission progress at most once; the epoch fence and
    /// readmit_oks pacing are identical to direct observe(). Returns
    /// whether the entry was fresh (the dead-life epoch fence may still
    /// discard a fresh-looking beat without counting it).
    bool merge_entry(std::size_t shard, std::uint64_t incarnation,
                     double last_ok, double now);

    /// Advance time-based transitions (Alive -> Suspect -> Dead) to `now`.
    void sweep(double now);

    [[nodiscard]] ShardHealth health(std::size_t shard) const;
    [[nodiscard]] std::uint64_t incarnation(std::size_t shard) const;
    [[nodiscard]] const std::vector<ShardStatus>& snapshot() const noexcept {
        return status_;
    }
    [[nodiscard]] std::size_t shard_count() const noexcept { return status_.size(); }
    [[nodiscard]] std::size_t alive_count() const;

    /// Monotonic: +1 per roster transition (health change or re-admission).
    [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

    /// 64-bit digest of the roster view: fold of (shard, health,
    /// incarnation) in shard order. Two detectors agree on the membership
    /// view iff their roster hashes match.
    [[nodiscard]] std::uint64_t roster_hash() const;

    /// Transitions since the last drain, oldest first.
    [[nodiscard]] std::vector<RosterTransition> drain_transitions();

private:
    void transition(std::size_t shard, ShardHealth to, double now);

    MembershipConfig cfg_;
    std::vector<ShardStatus> status_;
    std::uint64_t epoch_ = 0;
    std::vector<RosterTransition> transitions_;
};

}  // namespace wavehpc::svc::shard
