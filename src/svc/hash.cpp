#include "svc/hash.hpp"

#include <cstring>

namespace wavehpc::svc {

namespace {

// splitmix64 finalizer: full-avalanche 64-bit mix.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr std::uint64_t kLane0Seed = 0x243f6a8885a308d3ULL;  // pi digits
constexpr std::uint64_t kLane1Seed = 0x13198a2e03707344ULL;

}  // namespace

void content_digest(const core::ImageF& img, std::uint64_t& lo, std::uint64_t& hi) {
    std::uint64_t h0 = kLane0Seed;
    std::uint64_t h1 = kLane1Seed;
    const auto pixels = img.flat();
    const auto* bytes = reinterpret_cast<const unsigned char*>(pixels.data());
    std::size_t n = pixels.size() * sizeof(float);
    std::uint64_t word = 0;
    while (n >= sizeof word) {
        std::memcpy(&word, bytes, sizeof word);
        h0 = mix64(h0 ^ word);
        h1 = mix64(h1 + word);
        bytes += sizeof word;
        n -= sizeof word;
    }
    if (n > 0) {
        word = 0;
        std::memcpy(&word, bytes, n);
        h0 = mix64(h0 ^ word);
        h1 = mix64(h1 + word);
    }
    // Length padding so prefixes of zeros cannot alias.
    const auto total = static_cast<std::uint64_t>(pixels.size());
    lo = mix64(h0 ^ total);
    hi = mix64(h1 + total);
}

CacheKey assemble_cache_key(std::uint64_t digest_lo, std::uint64_t digest_hi,
                            const core::ImageF& img, int taps, int levels,
                            core::BoundaryMode boundary, core::DwtKernel kernel) {
    CacheKey key;
    key.digest_lo = digest_lo;
    key.digest_hi = digest_hi;
    key.rows = static_cast<std::uint32_t>(img.rows());
    key.cols = static_cast<std::uint32_t>(img.cols());
    key.taps = static_cast<std::uint8_t>(taps);
    key.levels = static_cast<std::uint8_t>(levels);
    key.boundary = static_cast<std::uint8_t>(boundary);
    key.kernel = static_cast<std::uint8_t>(kernel);
    return key;
}

CacheKey make_cache_key(const core::ImageF& img, int taps, int levels,
                        core::BoundaryMode boundary, core::DwtKernel kernel) {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    content_digest(img, lo, hi);
    return assemble_cache_key(lo, hi, img, taps, levels, boundary, kernel);
}

DigestMemo::DigestMemo(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void DigestMemo::digest(const std::shared_ptr<const core::ImageF>& img,
                        std::uint64_t& lo, std::uint64_t& hi) {
    const core::ImageF* ptr = img.get();
    {
        std::lock_guard lk(mu_);
        auto it = map_.find(ptr);
        if (it != map_.end()) {
            // Trust the entry only if its weak_ptr still locks to THIS
            // object; a recycled address shows an expired or different
            // control block here and recomputes below.
            if (auto held = it->second.ref.lock(); held.get() == ptr) {
                ++hits_;
                lo = it->second.lo;
                hi = it->second.hi;
                return;
            }
            map_.erase(it);
        }
        ++misses_;
    }
    content_digest(*img, lo, hi);  // the linear pass, outside the lock
    std::lock_guard lk(mu_);
    if (map_.size() >= capacity_) {
        // Sweep dead entries first; if every entry is live the memo is
        // just a cache — drop arbitrarily rather than grow.
        for (auto it = map_.begin(); it != map_.end();) {
            it = it->second.ref.expired() ? map_.erase(it) : std::next(it);
        }
        while (map_.size() >= capacity_) map_.erase(map_.begin());
    }
    // A concurrent miss on the same image may have inserted already; both
    // computed the same digest, so keeping the first is fine.
    map_.emplace(ptr, Entry{img, lo, hi});
}

std::uint64_t DigestMemo::hits() const {
    std::lock_guard lk(mu_);
    return hits_;
}

std::uint64_t DigestMemo::misses() const {
    std::lock_guard lk(mu_);
    return misses_;
}

}  // namespace wavehpc::svc
