#include "svc/hash.hpp"

#include <cstring>

namespace wavehpc::svc {

namespace {

// splitmix64 finalizer: full-avalanche 64-bit mix.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

constexpr std::uint64_t kLane0Seed = 0x243f6a8885a308d3ULL;  // pi digits
constexpr std::uint64_t kLane1Seed = 0x13198a2e03707344ULL;

}  // namespace

void content_digest(const core::ImageF& img, std::uint64_t& lo, std::uint64_t& hi) {
    std::uint64_t h0 = kLane0Seed;
    std::uint64_t h1 = kLane1Seed;
    const auto pixels = img.flat();
    const auto* bytes = reinterpret_cast<const unsigned char*>(pixels.data());
    std::size_t n = pixels.size() * sizeof(float);
    std::uint64_t word = 0;
    while (n >= sizeof word) {
        std::memcpy(&word, bytes, sizeof word);
        h0 = mix64(h0 ^ word);
        h1 = mix64(h1 + word);
        bytes += sizeof word;
        n -= sizeof word;
    }
    if (n > 0) {
        word = 0;
        std::memcpy(&word, bytes, n);
        h0 = mix64(h0 ^ word);
        h1 = mix64(h1 + word);
    }
    // Length padding so prefixes of zeros cannot alias.
    const auto total = static_cast<std::uint64_t>(pixels.size());
    lo = mix64(h0 ^ total);
    hi = mix64(h1 + total);
}

CacheKey make_cache_key(const core::ImageF& img, int taps, int levels,
                        core::BoundaryMode boundary, core::DwtKernel kernel) {
    CacheKey key;
    content_digest(img, key.digest_lo, key.digest_hi);
    key.rows = static_cast<std::uint32_t>(img.rows());
    key.cols = static_cast<std::uint32_t>(img.cols());
    key.taps = static_cast<std::uint8_t>(taps);
    key.levels = static_cast<std::uint8_t>(levels);
    key.boundary = static_cast<std::uint8_t>(boundary);
    key.kernel = static_cast<std::uint8_t>(kernel);
    return key;
}

}  // namespace wavehpc::svc
