#pragma once
// Observable state of the pyramid service, in the style of perf/pool_stats:
// monotonic counters + latency histograms snapshotted on demand, printed as
// the same fixed-width tables the bench binaries use.

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "perf/histogram.hpp"
#include "svc/cache.hpp"

namespace wavehpc::svc {

/// Monotonic event counters. At quiescence (between submits, after every
/// future resolved):
///   submitted = accepted + rejected
///   accepted  = completed + deadline_failures + shutdown_failures
///             + compute_failures + watchdog_timeouts
/// completed includes degraded replies; rejected includes breaker and
/// quarantine fast-rejects alongside admission backpressure.
struct ServiceCounters {
    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;           ///< admission/breaker/quarantine rejects
    std::uint64_t cache_hits = 0;         ///< answered straight from the cache
    std::uint64_t dedup_joins = 0;        ///< joined an identical in-flight request
    std::uint64_t computes = 0;           ///< transform attempts actually started
    std::uint64_t completed = 0;          ///< replies delivered with a value
    std::uint64_t deadline_failures = 0;  ///< failed queued past their deadline
    std::uint64_t shutdown_failures = 0;  ///< failed queued (or in backoff) at shutdown
    std::uint64_t compute_failures = 0;   ///< transform threw and retries ran out
    // --- resilience layer (ISSUE 5) ---
    std::uint64_t retries = 0;            ///< failed attempts re-queued with backoff
    std::uint64_t watchdog_timeouts = 0;  ///< waiters failed by the compute watchdog
    std::uint64_t quarantined = 0;        ///< waiters perma-failed into quarantine
    std::uint64_t quarantine_rejects = 0; ///< resubmits of a quarantined request
    std::uint64_t breaker_rejects = 0;    ///< fast-rejected while a breaker was open
    std::uint64_t degraded_replies = 0;   ///< served a cached same-scene variant
    std::uint64_t crc_audit_failures = 0; ///< corrupted result buffers caught
    // --- batching + arena (ISSUE 8) ---
    std::uint64_t batches = 0;            ///< fused sweeps dispatched (size >= 1)
    std::uint64_t batched_requests = 0;   ///< flights that shared a sweep (batch > 1)
    std::uint64_t arena_hits = 0;         ///< slab checkouts served from the pool
    std::uint64_t arena_misses = 0;       ///< slab checkouts that allocated
    std::uint64_t heap_fallbacks = 0;     ///< oversize checkouts bypassing the pool
    // --- tiled progressive pipeline (ISSUE 9) ---
    std::uint64_t progressive = 0;        ///< flights computed via the tile stream
    std::uint64_t preview_hits = 0;       ///< degraded replies served a cached preview

    /// Fold another service's counters into this one; the accounting
    /// identities above hold for the sum iff they hold per shard.
    void merge(const ServiceCounters& o) noexcept;
};

/// Terminal outcome classes; one latency histogram per class so tail
/// reporting separates "clean" from "survived via the resilience layer".
enum class Outcome : std::uint8_t {
    Ok = 0,          ///< value on the first compute attempt (or cache hit)
    Retried,         ///< value after >= 1 retry
    Degraded,        ///< value from a cached same-scene variant
    Quarantined,     ///< perma-failed after exhausting retries
    BreakerRejected, ///< fast-rejected by an open circuit breaker
};
inline constexpr std::size_t kOutcomeCount = 5;

[[nodiscard]] const char* outcome_name(Outcome o) noexcept;

/// One coherent observation of the service.
struct MetricsSnapshot {
    ServiceCounters counters;
    perf::LatencyHistogram queue_wait;  ///< admit -> compute start, computed flights
    perf::LatencyHistogram compute;     ///< transform wall time, computed flights
    perf::LatencyHistogram total;       ///< submit -> reply, every completed request
    /// Submit -> resolution latency split by terminal outcome (index with
    /// static_cast<std::size_t>(Outcome::...)). Empty histograms report 0.
    std::array<perf::LatencyHistogram, kOutcomeCount> outcome;
    std::size_t queue_depth = 0;        ///< flights admitted, not yet dispatched
    std::size_t backoff_depth = 0;      ///< flights waiting out a retry backoff
    std::size_t running = 0;            ///< flights currently computing
    std::uint64_t queued_bytes = 0;     ///< image bytes held by queue + running

    /// Fold another shard's snapshot into this one for fleet reporting:
    /// counters and depth gauges add, histograms merge bucket-wise — the
    /// merged quantiles equal those of one histogram fed both streams.
    void merge(const MetricsSnapshot& o);
};

/// Print the full service report (counters, latency table incl. the
/// per-outcome rows, cache table) under a one-line label; the load bench,
/// chaos bench, and example use it verbatim.
void print_service_metrics(std::ostream& os, const std::string& label,
                           const MetricsSnapshot& m, const CacheStats& cache);

}  // namespace wavehpc::svc
