#pragma once
// Observable state of the pyramid service, in the style of perf/pool_stats:
// monotonic counters + latency histograms snapshotted on demand, printed as
// the same fixed-width tables the bench binaries use.

#include <cstdint>
#include <iosfwd>
#include <string>

#include "perf/histogram.hpp"
#include "svc/cache.hpp"

namespace wavehpc::svc {

/// Monotonic event counters. "submitted = accepted + rejected" and
/// "accepted = cache_hits + dedup_joins + computes + compute-path failures"
/// hold at quiescence (between submits, after futures resolve).
struct ServiceCounters {
    std::uint64_t submitted = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;           ///< admission backpressure
    std::uint64_t cache_hits = 0;         ///< answered straight from the cache
    std::uint64_t dedup_joins = 0;        ///< joined an identical in-flight request
    std::uint64_t computes = 0;           ///< cold transforms actually run
    std::uint64_t completed = 0;          ///< replies delivered with a value
    std::uint64_t deadline_failures = 0;  ///< failed queued past their deadline
    std::uint64_t shutdown_failures = 0;  ///< failed queued at shutdown
    std::uint64_t compute_failures = 0;   ///< transform threw (propagated)
};

/// One coherent observation of the service.
struct MetricsSnapshot {
    ServiceCounters counters;
    perf::LatencyHistogram queue_wait;  ///< admit -> compute start, computed flights
    perf::LatencyHistogram compute;     ///< transform wall time, computed flights
    perf::LatencyHistogram total;       ///< submit -> reply, every completed request
    std::size_t queue_depth = 0;        ///< flights admitted, not yet dispatched
    std::size_t running = 0;            ///< flights currently computing
    std::uint64_t queued_bytes = 0;     ///< image bytes held by queue + running
};

/// Print the full service report (counters, latency table, cache table)
/// under a one-line label; the load bench and example use it verbatim.
void print_service_metrics(std::ostream& os, const std::string& label,
                           const MetricsSnapshot& m, const CacheStats& cache);

}  // namespace wavehpc::svc
