#include "svc/cache.hpp"

#include <span>

#include "mesh/faults.hpp"

namespace wavehpc::svc {

std::uint64_t pyramid_bytes(const core::Pyramid& pyr) noexcept {
    std::uint64_t n = pyr.approx.size();
    for (const auto& level : pyr.levels) {
        n += level.lh.size() + level.hl.size() + level.hh.size();
    }
    return n * sizeof(float);
}

namespace {

std::uint32_t crc_band(std::span<const float> band, std::uint32_t seed) {
    return mesh::crc32(std::as_bytes(band), seed);
}

}  // namespace

std::uint32_t pyramid_crc32(const core::Pyramid& pyr) noexcept {
    std::uint32_t crc = 0;
    for (const auto& level : pyr.levels) {
        crc = crc_band(level.lh.flat(), crc);
        crc = crc_band(level.hl.flat(), crc);
        crc = crc_band(level.hh.flat(), crc);
    }
    return crc_band(pyr.approx.flat(), crc);
}

bool audit_result(const TransformResult& result) noexcept {
    return result.crc32 == 0 || pyramid_crc32(result.pyramid) == result.crc32;
}

std::shared_ptr<const TransformResult> ResultCache::lookup(const CacheKey& key) {
    std::lock_guard lk(mu_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
        ++stats_.misses;
        return nullptr;
    }
    if (audit_lookups_ && !audit_result(*it->second->result)) {
        // Resident entry rotted (or chaos flipped a bit): drop it and
        // report a miss so the caller recomputes instead of serving junk.
        ++stats_.audit_failures;
        ++stats_.misses;
        erase_entry_locked(it->second);
        return nullptr;
    }
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
    return it->second->result;
}

std::shared_ptr<const TransformResult> ResultCache::lookup_variant(
    const CacheKey& key) {
    std::lock_guard lk(mu_);
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
        const CacheKey& k = it->key;
        if (k.digest_lo != key.digest_lo || k.digest_hi != key.digest_hi ||
            k.rows != key.rows || k.cols != key.cols) {
            continue;
        }
        // Previews (band != 0) are served only through an explicit
        // preview_key lookup; the variant scan offers full pyramids.
        if (k.band != 0) continue;
        if (audit_lookups_ && !audit_result(*it->result)) {
            ++stats_.audit_failures;
            ++stats_.misses;  // the caller recomputes; hit-rate must see it
            erase_entry_locked(it);
            return nullptr;  // one shot; the next variant request rescans
        }
        ++stats_.variant_hits;
        lru_.splice(lru_.begin(), lru_, it);
        return lru_.front().result;
    }
    ++stats_.misses;  // scanned the whole cache and found no variant
    return nullptr;
}

void ResultCache::insert(const CacheKey& key,
                         std::shared_ptr<const TransformResult> result) {
    const std::uint64_t bytes = result->result_bytes;
    const bool clean = audit_result(*result);  // checksum pass outside the lock
    std::lock_guard lk(mu_);
    if (!clean) {
        ++stats_.audit_failures;
        return;
    }
    if (bytes > byte_budget_) {
        ++stats_.rejected_oversize;
        return;
    }
    if (const auto it = index_.find(key); it != index_.end()) {
        // Refresh (identical content — keys are content-addressed); keep
        // the existing buffer so earlier waiters still share it.
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    while (bytes_in_use_ + bytes > byte_budget_) evict_lru_locked();
    lru_.push_front(Entry{key, std::move(result)});
    index_.emplace(key, lru_.begin());
    bytes_in_use_ += bytes;
    ++stats_.insertions;
}

void ResultCache::evict_lru_locked() {
    const Entry& victim = lru_.back();
    const std::uint64_t bytes = victim.result->result_bytes;
    index_.erase(victim.key);
    bytes_in_use_ -= bytes;
    ++stats_.evictions;
    stats_.evicted_bytes += bytes;
    lru_.pop_back();
}

void ResultCache::erase_entry_locked(std::list<Entry>::iterator it) {
    bytes_in_use_ -= it->result->result_bytes;
    index_.erase(it->key);
    lru_.erase(it);
}

CacheStats ResultCache::stats() const {
    std::lock_guard lk(mu_);
    CacheStats s = stats_;
    s.bytes_in_use = bytes_in_use_;
    s.entries = index_.size();
    s.byte_budget = byte_budget_;
    return s;
}

std::vector<CacheKey> ResultCache::keys_mru_first() const {
    std::lock_guard lk(mu_);
    std::vector<CacheKey> keys;
    keys.reserve(lru_.size());
    for (const auto& e : lru_) keys.push_back(e.key);
    return keys;
}

}  // namespace wavehpc::svc
