#include "svc/cache.hpp"

namespace wavehpc::svc {

std::uint64_t pyramid_bytes(const core::Pyramid& pyr) noexcept {
    std::uint64_t n = pyr.approx.size();
    for (const auto& level : pyr.levels) {
        n += level.lh.size() + level.hl.size() + level.hh.size();
    }
    return n * sizeof(float);
}

std::shared_ptr<const TransformResult> ResultCache::lookup(const CacheKey& key) {
    std::lock_guard lk(mu_);
    const auto it = index_.find(key);
    if (it == index_.end()) {
        ++stats_.misses;
        return nullptr;
    }
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
    return it->second->result;
}

void ResultCache::insert(const CacheKey& key,
                         std::shared_ptr<const TransformResult> result) {
    const std::uint64_t bytes = result->result_bytes;
    std::lock_guard lk(mu_);
    if (bytes > byte_budget_) {
        ++stats_.rejected_oversize;
        return;
    }
    if (const auto it = index_.find(key); it != index_.end()) {
        // Refresh (identical content — keys are content-addressed); keep
        // the existing buffer so earlier waiters still share it.
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    while (bytes_in_use_ + bytes > byte_budget_) evict_lru_locked();
    lru_.push_front(Entry{key, std::move(result)});
    index_.emplace(key, lru_.begin());
    bytes_in_use_ += bytes;
    ++stats_.insertions;
}

void ResultCache::evict_lru_locked() {
    const Entry& victim = lru_.back();
    const std::uint64_t bytes = victim.result->result_bytes;
    index_.erase(victim.key);
    bytes_in_use_ -= bytes;
    ++stats_.evictions;
    stats_.evicted_bytes += bytes;
    lru_.pop_back();
}

CacheStats ResultCache::stats() const {
    std::lock_guard lk(mu_);
    CacheStats s = stats_;
    s.bytes_in_use = bytes_in_use_;
    s.entries = index_.size();
    s.byte_budget = byte_budget_;
    return s;
}

std::vector<CacheKey> ResultCache::keys_mru_first() const {
    std::lock_guard lk(mu_);
    std::vector<CacheKey> keys;
    keys.reserve(lru_.size());
    for (const auto& e : lru_) keys.push_back(e.key);
    return keys;
}

}  // namespace wavehpc::svc
