#include "svc/service.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <utility>

#include "tile/progressive.hpp"
#include "wavelet/threads_dwt.hpp"

namespace wavehpc::svc {

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') return fallback;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(raw, &end, 10);
    if (end == raw || *end != '\0') return fallback;
    return std::max<std::uint64_t>(1, v);
}

/// Like env_u64 but zero is a meaningful value (batch window off).
std::uint64_t env_u64_allow_zero(const char* name, std::uint64_t fallback) {
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') return fallback;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(raw, &end, 10);
    if (end == raw || *end != '\0') return fallback;
    return v;
}

double seconds_between(Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
}

std::size_t backend_index(Backend b) noexcept {
    return static_cast<std::size_t>(b) < 2 ? static_cast<std::size_t>(b) : 0;
}

}  // namespace

ServiceConfig ServiceConfig::from_env() {
    ServiceConfig cfg;
    cfg.max_queue_depth =
        static_cast<std::size_t>(env_u64("WAVEHPC_SVC_QUEUE_DEPTH", cfg.max_queue_depth));
    cfg.max_queued_bytes = env_u64("WAVEHPC_SVC_QUEUE_BYTES", cfg.max_queued_bytes);
    cfg.max_concurrency =
        static_cast<std::size_t>(env_u64("WAVEHPC_SVC_CONCURRENCY", cfg.max_concurrency));
    cfg.cache_bytes = env_u64("WAVEHPC_SVC_CACHE_BYTES", cfg.cache_bytes);
    cfg.resilience = ResilienceConfig::from_env();
    cfg.batch_max =
        static_cast<std::size_t>(env_u64("WAVEHPC_SVC_BATCH_MAX", cfg.batch_max));
    cfg.batch_window_us =
        env_u64_allow_zero("WAVEHPC_SVC_BATCH_WINDOW_US", cfg.batch_window_us);
    cfg.arena = ArenaConfig::from_env();
    return cfg;
}

PyramidService::PyramidService(runtime::ThreadPool& pool, ServiceConfig cfg)
    : pool_(pool),
      cfg_(cfg),
      arena_(cfg.arena),
      cache_(cfg.cache_bytes),
      chaos_(ChaosPlan::from_env()),
      breakers_{CircuitBreaker(cfg.resilience.breaker),
                CircuitBreaker(cfg.resilience.breaker)} {
    cache_.set_audit_lookups(chaos_.enabled());
    timer_ = std::thread([this] { timer_loop(); });
}

PyramidService::~PyramidService() {
    shutdown();
    if (timer_.joinable()) timer_.join();
}

void PyramidService::set_chaos_plan(ChaosPlan plan) {
    chaos_.set_plan(std::move(plan));
    cache_.set_audit_lookups(chaos_.enabled());
}

void PyramidService::record_outcome_locked(Outcome o, double seconds) {
    outcome_hist_[static_cast<std::size_t>(o)].record(seconds);
}

SubmitResult PyramidService::submit(TransformRequest request) {
    if (!request.image) {
        throw std::invalid_argument("PyramidService::submit: null image");
    }
    core::validate_decomposition_request(request.image->rows(),
                                         request.image->cols(), request.levels);
    const auto fp = core::FilterPair::daubechies(request.taps);  // eager taps validation
    // Resolve the kernel once at admission: the cache key, the flight, and
    // dedup all see the same concrete kernel even if the process selector
    // changes while the request is queued.
    request.kernel = core::resolve_dwt_kernel(request.kernel, fp);

    const auto submitted_at = Clock::now();
    // Digest outside the lock; the memo turns the linear pixel pass into
    // a pointer lookup for scenes the service has seen alive before.
    std::uint64_t digest_lo = 0;
    std::uint64_t digest_hi = 0;
    digest_memo_.digest(request.image, digest_lo, digest_hi);
    const CacheKey key =
        assemble_cache_key(digest_lo, digest_hi, *request.image, request.taps,
                           request.levels, request.boundary, request.kernel);
    const auto image_bytes =
        static_cast<std::uint64_t>(request.image->size()) * sizeof(float);

    std::vector<FailureBatch> failures;
    SubmitResult out;
    {
        std::unique_lock lk(mu_);
        ++counters_.submitted;

        if (stopping_) {
            ++counters_.rejected;
            out.accepted = false;
            out.reject_reason = RejectReason::ShuttingDown;
            out.retry_after_seconds = std::numeric_limits<double>::infinity();
            return out;
        }

        if (auto hit = cache_.lookup(key)) {
            ++counters_.accepted;
            ++counters_.cache_hits;
            ++counters_.completed;
            TransformReply reply;
            reply.result = std::move(hit);
            reply.cache_hit = true;
            reply.total_seconds = seconds_between(submitted_at, Clock::now());
            total_hist_.record(reply.total_seconds);
            record_outcome_locked(Outcome::Ok, reply.total_seconds);
            std::promise<TransformReply> ready;
            out.future = ready.get_future().share();
            ready.set_value(std::move(reply));
            out.accepted = true;
            return out;
        }

        if (quarantine_.contains(key)) {
            // Poison fingerprint: this exact request already burned its
            // whole retry budget; fail resubmissions fast instead of
            // letting them chew compute slots again.
            ++counters_.rejected;
            ++counters_.quarantine_rejects;
            record_outcome_locked(Outcome::Quarantined,
                                  seconds_between(submitted_at, Clock::now()));
            out.accepted = false;
            out.reject_reason = RejectReason::Quarantined;
            out.retry_after_seconds = std::numeric_limits<double>::infinity();
            return out;
        }

        if (const auto it = flights_.find(key); it != flights_.end()) {
            // Single-flight: identical request already admitted — join it.
            Flight& flight = *it->second;
            Waiter waiter;
            waiter.submitted_at = submitted_at;
            waiter.joined = true;
            out.future = waiter.promise.get_future().share();
            flight.waiters.push_back(std::move(waiter));
            const Priority prio = std::max(flight.priority, request.priority);
            const auto deadline = std::max(flight.deadline, request.deadline);
            if (prio != flight.priority || deadline != flight.deadline) {
                // Reorder only while the flight actually sits in pending_;
                // Backoff/Running flights pick the upgrade up on requeue.
                if (flight.state == FlightState::Pending) pending_.erase(&flight);
                flight.priority = prio;
                flight.deadline = deadline;
                if (flight.state == FlightState::Pending) pending_.insert(&flight);
            }
            ++counters_.accepted;
            ++counters_.dedup_joins;
            out.accepted = true;
            return out;
        }

        if (pending_.size() >= cfg_.max_queue_depth ||
            queued_bytes_ + image_bytes > cfg_.max_queued_bytes) {
            if (request.allow_degraded) {
                bool served = false;
                auto degraded = try_degraded_locked(key, submitted_at, served);
                if (served) return degraded;
            }
            ++counters_.rejected;
            out.accepted = false;
            out.reject_reason = RejectReason::Saturated;
            out.retry_after_seconds = retry_after_locked();
            return out;
        }

        // Last gate before admission, so a half-open probe reservation is
        // always followed by a real compute attempt.
        if (CircuitBreaker& breaker = breakers_[backend_index(request.backend)];
            !breaker.allow(submitted_at)) {
            if (request.allow_degraded) {
                bool served = false;
                auto degraded = try_degraded_locked(key, submitted_at, served);
                if (served) return degraded;
            }
            ++counters_.rejected;
            ++counters_.breaker_rejects;
            record_outcome_locked(Outcome::BreakerRejected,
                                  seconds_between(submitted_at, Clock::now()));
            out.accepted = false;
            out.reject_reason = RejectReason::BreakerOpen;
            out.retry_after_seconds = breaker.retry_after_seconds(submitted_at);
            return out;
        }

        auto flight = std::make_shared<Flight>();
        flight->key = key;
        flight->request = std::move(request);
        flight->image_bytes = image_bytes;
        flight->priority = flight->request.priority;
        flight->deadline = flight->request.deadline;
        flight->seq = next_seq_++;
        flight->admitted_at = submitted_at;
        Waiter waiter;
        waiter.submitted_at = submitted_at;
        out.future = waiter.promise.get_future().share();
        flight->waiters.push_back(std::move(waiter));
        pending_.insert(flight.get());
        flights_.emplace(key, std::move(flight));
        queued_bytes_ += image_bytes;
        ++counters_.accepted;
        out.accepted = true;

        dispatch_ready(lk, failures);
    }
    deliver_failures(failures);
    return out;
}

SubmitResult PyramidService::try_degraded_locked(const CacheKey& key,
                                                 Clock::time_point submitted_at,
                                                 bool& served) {
    SubmitResult out;
    auto variant = cache_.lookup_variant(key);
    bool is_preview = false;
    if (!variant) {
        // No full-pyramid variant of the scene: fall back to the
        // approximation-only preview a progressive flight may have cached.
        variant = cache_.lookup(preview_key(key));
        is_preview = variant != nullptr;
    }
    if (!variant) {
        served = false;
        return out;
    }
    served = true;
    ++counters_.accepted;
    ++counters_.completed;
    ++counters_.degraded_replies;
    if (is_preview) ++counters_.preview_hits;
    TransformReply reply;
    reply.result = std::move(variant);
    reply.degraded = true;
    reply.preview = is_preview;
    reply.total_seconds = seconds_between(submitted_at, Clock::now());
    total_hist_.record(reply.total_seconds);
    record_outcome_locked(Outcome::Degraded, reply.total_seconds);
    std::promise<TransformReply> ready;
    out.future = ready.get_future().share();
    ready.set_value(std::move(reply));
    out.accepted = true;
    return out;
}

double PyramidService::retry_after_locked() const {
    const double per_request =
        ewma_compute_seconds_ > 0.0 ? ewma_compute_seconds_ : 0.05;
    const double backlog = static_cast<double>(pending_.size() + running_ + 1);
    const double eta =
        backlog * per_request / static_cast<double>(cfg_.max_concurrency);
    return std::clamp(eta, 1e-3, 30.0);
}

void PyramidService::remove_flight_locked(Flight& flight) {
    queued_bytes_ -= flight.image_bytes;
    const CacheKey key = flight.key;  // copy: erase destroys the flight
    flights_.erase(key);
}

void PyramidService::erase_watch_locked(Flight& flight) {
    auto [lo, hi] = watch_.equal_range(flight.watch_deadline);
    for (auto it = lo; it != hi; ++it) {
        if (it->second == &flight) {
            watch_.erase(it);
            return;
        }
    }
}

void PyramidService::fail_flight_locked(Flight& flight,
                                        std::vector<FailureBatch>& failures,
                                        std::exception_ptr error, Outcome outcome) {
    const auto now = Clock::now();
    for (const Waiter& w : flight.waiters) {
        record_outcome_locked(outcome, seconds_between(w.submitted_at, now));
    }
    failures.push_back({std::move(flight.waiters), std::move(error), outcome, true});
}

bool PyramidService::batch_compatible(const Flight& a, const Flight& b) noexcept {
    // Progressive flights run the tile stream solo: fusing them into a
    // sweep would serialize the stream behind the batch anyway, and the
    // preview side-product is per-flight.
    if (a.request.progressive || b.request.progressive) return false;
    return a.priority == b.priority && a.deadline == b.deadline &&
           a.request.backend == b.request.backend &&
           a.request.taps == b.request.taps &&
           a.request.levels == b.request.levels &&
           a.request.boundary == b.request.boundary &&
           a.request.kernel == b.request.kernel &&
           a.request.image->rows() == b.request.image->rows() &&
           a.request.image->cols() == b.request.image->cols();
}

void PyramidService::release_slot_locked(BatchSlot& slot) {
    if (!slot.released) {
        slot.released = true;
        --running_;
    }
}

void PyramidService::dispatch_ready(std::unique_lock<std::mutex>& lk,
                                    std::vector<FailureBatch>& failures) {
    (void)lk;  // documents the precondition: mu_ is held
    const auto now = Clock::now();
    while (running_ < cfg_.max_concurrency && !pending_.empty()) {
        Flight* lead = *pending_.begin();
        if (lead->deadline < now) {
            // Expired while queued: fail, never compute.
            pending_.erase(pending_.begin());
            counters_.deadline_failures += lead->waiters.size();
            failures.push_back(
                {std::move(lead->waiters),
                 std::make_exception_ptr(DeadlineExpiredError{})});
            remove_flight_locked(*lead);
            continue;
        }

        // Batch planner: collect schedule-equivalent followers in pending
        // order. Because batch_compatible requires identical (priority,
        // deadline), members are contiguous seq-tiebreak equals — the
        // planner never lifts work over anything the order would have run
        // first.
        std::vector<Flight*> members{lead};
        if (cfg_.batch_max > 1) {
            for (auto it = std::next(pending_.begin());
                 it != pending_.end() && members.size() < cfg_.batch_max; ++it) {
                if (batch_compatible(*lead, **it)) members.push_back(*it);
            }
        }

        // Optional hold: an underfull non-interactive batch may wait for
        // company within the window, never past the lead's deadline.
        if (cfg_.batch_window_us > 0 && members.size() < cfg_.batch_max &&
            lead->priority != Priority::Interactive) {
            const auto hold_until =
                lead->admitted_at + std::chrono::microseconds(cfg_.batch_window_us);
            if (now < hold_until && hold_until < lead->deadline) {
                hold_wake_ = std::min(hold_wake_, hold_until);
                cv_timer_.notify_one();
                break;  // keep order: nothing behind the held lead dispatches
            }
        }

        auto slot = std::make_shared<BatchSlot>();
        slot->armed = members.size();
        std::vector<std::shared_ptr<Flight>> batch;
        batch.reserve(members.size());
        for (Flight* f : members) {
            pending_.erase(f);
            f->state = FlightState::Running;
            f->slot = slot;
            batch.push_back(flights_.at(f->key));
        }
        ++running_;
        ++inflight_computes_;
        ++counters_.batches;
        if (members.size() > 1) counters_.batched_requests += members.size();
        const auto prio = lead->priority == Priority::Interactive
                              ? runtime::TaskPriority::High
                              : runtime::TaskPriority::Normal;
        pool_.submit([this, batch = std::move(batch)] { run_batch(batch); }, prio);
    }
}

void PyramidService::run_batch(const std::vector<std::shared_ptr<Flight>>& batch) {
    const auto start = Clock::now();
    const std::shared_ptr<BatchSlot> slot = batch.front()->slot;
    std::vector<FailureBatch> failures;

    /// Per-member compute state carried across the phases.
    struct Cell {
        std::shared_ptr<Flight> flight;
        ChaosDecision decision{};
        std::shared_ptr<const TransformResult> result;
        std::shared_ptr<const TransformResult> preview;  ///< progressive only
        std::exception_ptr error;
        bool crc_failed = false;
    };
    std::vector<Cell> live;
    live.reserve(batch.size());

    {
        // Phase 1 (locked): per-member deadline recheck + watchdog arming.
        std::unique_lock lk(mu_);
        for (const auto& flight : batch) {
            if (flight->deadline < start) {
                // Expired between dispatch and a pool slot freeing up.
                counters_.deadline_failures += flight->waiters.size();
                failures.push_back(
                    {std::move(flight->waiters),
                     std::make_exception_ptr(DeadlineExpiredError{})});
                remove_flight_locked(*flight);
                --slot->armed;
                continue;
            }
            ++counters_.computes;
            // Arm the watchdog for this attempt: the budget is the
            // configured limit, tightened by whatever time the request
            // deadline leaves.
            double budget = cfg_.resilience.watchdog_seconds;
            if (flight->deadline != Clock::time_point::max()) {
                budget = budget > 0.0
                             ? std::min(budget,
                                        seconds_between(start, flight->deadline))
                             : seconds_between(start, flight->deadline);
            }
            if (budget > 0.0) {
                flight->watch_deadline =
                    start + std::chrono::duration_cast<Clock::duration>(
                                std::chrono::duration<double>(budget));
                watch_.emplace(flight->watch_deadline, flight.get());
                cv_timer_.notify_one();
            } else {
                flight->watch_deadline = Clock::time_point::max();
            }
            live.push_back(Cell{flight, {}, nullptr, nullptr, nullptr, false});
        }
        if (live.empty()) {
            release_slot_locked(*slot);
            --inflight_computes_;
            dispatch_ready(lk, failures);
            if (stopping_ && inflight_computes_ == 0) cv_drained_.notify_all();
            lk.unlock();
            deliver_failures(failures);
            return;
        }
    }

    // Chaos decisions per member, drawn in batch (= admission) order
    // outside the lock, so a fused batch consumes the deterministic
    // decision stream exactly as per-flight dispatch would have.
    for (Cell& cell : live) {
        cell.decision = chaos_.next_compute_decision();
        try {
            chaos_.inject_before_compute(cell.decision);
        } catch (...) {
            // This member's injected pre-compute fault: it takes the
            // retry path; the rest of the batch still computes.
            cell.error = std::current_exception();
        }
    }

    // Phase 2 (unlocked): ONE fused sweep for every member that survived
    // injection. Per-member results are bit-identical to solo computes
    // (decompose_batch contract); every buffer comes from the arena.
    const TransformRequest& req0 = live.front().flight->request;
    std::vector<const core::ImageF*> images;
    std::vector<Cell*> computing;
    for (Cell& cell : live) {
        if (!cell.error) {
            images.push_back(cell.flight->request.image.get());
            computing.push_back(&cell);
        }
    }
    if (!images.empty()) {
        std::vector<core::Pyramid> pyrs;
        double first_band_seconds = 0.0;
        std::exception_ptr sweep_error;
        try {
            const auto fp = core::FilterPair::daubechies(req0.taps);
            if (req0.progressive) {
                // batch_compatible never fuses progressive flights, so the
                // tile stream computes exactly one member; its output is
                // bit-identical to the fused sweep's.
                tile::TileStreamStats tstats;
                pyrs.push_back(tile::tiled_decompose(
                    *images.front(), fp, req0.levels, req0.boundary, req0.kernel,
                    tile::TileConfig::from_env(), &arena_, &tstats));
                first_band_seconds = tstats.approx_seal_seconds;
            } else {
                pyrs = wavelet::decompose_batch(
                    images, fp, req0.levels, req0.boundary,
                    req0.backend == Backend::Serial ? nullptr : &pool_,
                    req0.kernel, &arena_);
            }
        } catch (...) {
            sweep_error = std::current_exception();
        }
        const auto sweep_end = Clock::now();
        const double sweep_seconds = seconds_between(start, sweep_end);
        for (std::size_t i = 0; i < computing.size(); ++i) {
            Cell& cell = *computing[i];
            if (sweep_error) {
                cell.error = sweep_error;
                continue;
            }
            auto owned = std::make_unique<TransformResult>();
            owned->pyramid = std::move(pyrs[i]);
            owned->key = cell.flight->key;
            owned->result_bytes = pyramid_bytes(owned->pyramid);
            owned->compute_seconds = sweep_seconds;
            owned->first_band_seconds = first_band_seconds;
            // CRC point of truth, then the chaos corruption hook: an
            // injected bit flip lands *after* the checksum, so the audit
            // must catch it.
            owned->crc32 = pyramid_crc32(owned->pyramid);
            chaos_.corrupt_result(cell.decision, owned->pyramid);
            if (!audit_result(*owned)) {
                cell.crc_failed = true;
                cell.error = std::make_exception_ptr(CrcAuditError{});
                // The corrupted buffers still return to the pool: the
                // retry obtains fresh slabs and overwrites every element.
                arena_.recycle_pyramid(std::move(owned->pyramid));
                continue;
            }
            // The lease: cache + waiters share it; the last release
            // (typically cache eviction) recycles the slabs.
            cell.result = arena_.adopt(std::move(owned));
            if (req0.progressive) {
                // Approximation-only preview for allow_degraded clients,
                // cached under the flight's preview key in phase 3. Plain
                // heap-owned result: its one band is a copy, not arena
                // slabs, so no adopt lease.
                auto pv = std::make_shared<TransformResult>();
                pv->pyramid.approx = cell.result->pyramid.approx;
                pv->key = preview_key(cell.flight->key);
                pv->result_bytes = pyramid_bytes(pv->pyramid);
                pv->compute_seconds = sweep_seconds;
                pv->first_band_seconds = first_band_seconds;
                pv->crc32 = pyramid_crc32(pv->pyramid);
                cell.preview = std::move(pv);
            }
        }
    }
    const auto finish = Clock::now();

    /// Successful members to fulfil once the lock is dropped.
    struct Delivery {
        std::vector<Waiter> waiters;
        std::shared_ptr<const TransformResult> result;
        std::uint32_t attempts = 1;
    };
    std::vector<Delivery> deliveries;
    {
        // Phase 3 (locked): settle every member — the historical
        // per-flight success/retry/quarantine logic, minus the slot
        // bookkeeping, which happens once for the whole batch at the end.
        std::unique_lock lk(mu_);
        bool ewma_updated = false;
        for (Cell& cell : live) {
            Flight& flight = *cell.flight;
            erase_watch_locked(flight);
            if (cell.crc_failed) ++counters_.crc_audit_failures;

            if (flight.abandoned) {
                // The watchdog already failed the waiters (and the slot,
                // once every member was abandoned); all that is left is
                // salvage — cache a clean result so the work is not
                // wasted.
                if (cell.result) {
                    cache_.insert(flight.key, cell.result);
                    if (cell.preview) {
                        cache_.insert(cell.preview->key, cell.preview);
                        ++counters_.progressive;
                    }
                }
                continue;
            }

            ++flight.attempts;
            CircuitBreaker& breaker =
                breakers_[backend_index(flight.request.backend)];

            if (cell.result) {
                breaker.record_success(finish);
                Delivery d;
                d.waiters = std::move(flight.waiters);  // includes joins during compute
                d.result = cell.result;
                d.attempts = flight.attempts;
                remove_flight_locked(flight);
                cache_.insert(flight.key, cell.result);
                if (cell.preview) {
                    cache_.insert(cell.preview->key, cell.preview);
                    ++counters_.progressive;
                }
                const double compute_seconds = cell.result->compute_seconds;
                queue_wait_hist_.record(seconds_between(flight.admitted_at, start));
                compute_hist_.record(compute_seconds);
                if (!ewma_updated) {
                    // One smoothing step per sweep with the *per-request*
                    // effective service time — the retry-after estimator
                    // models throughput, which batching multiplies.
                    const double per_request =
                        compute_seconds / static_cast<double>(live.size());
                    ewma_compute_seconds_ =
                        ewma_compute_seconds_ == 0.0
                            ? per_request
                            : 0.8 * ewma_compute_seconds_ + 0.2 * per_request;
                    ewma_updated = true;
                }
                counters_.completed += d.waiters.size();
                const Outcome o =
                    flight.attempts > 1 ? Outcome::Retried : Outcome::Ok;
                for (const Waiter& w : d.waiters) {
                    const double total = seconds_between(w.submitted_at, finish);
                    total_hist_.record(total);
                    record_outcome_locked(o, total);
                }
                deliveries.push_back(std::move(d));
            } else {
                breaker.record_failure(finish);
                if (stopping_) {
                    // Draining: no retries; propagate the error so the
                    // drain finishes promptly.
                    counters_.compute_failures += flight.waiters.size();
                    failures.push_back({std::move(flight.waiters), cell.error});
                    remove_flight_locked(flight);
                } else if (flight.attempts >= cfg_.resilience.retry.max_attempts) {
                    // Poison request: quarantine the fingerprint and fail
                    // permanently with the last attempt's error.
                    quarantine_.insert(flight.key);
                    counters_.compute_failures += flight.waiters.size();
                    counters_.quarantined += flight.waiters.size();
                    fail_flight_locked(flight, failures, cell.error,
                                       Outcome::Quarantined);
                    remove_flight_locked(flight);
                } else {
                    // Transient failure: park the flight until its jittered
                    // backoff elapses (timer thread).
                    ++counters_.retries;
                    const double delay = cfg_.resilience.retry.backoff_seconds(
                        flight.attempts, (flight.seq << 16) ^ flight.attempts);
                    flight.retry_at =
                        finish + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(delay));
                    flight.state = FlightState::Backoff;
                    backoff_.emplace(flight.retry_at, &flight);
                    flight.slot.reset();
                    cv_timer_.notify_one();
                }
            }
        }
        release_slot_locked(*slot);
        --inflight_computes_;
        dispatch_ready(lk, failures);
        if (stopping_ && inflight_computes_ == 0) cv_drained_.notify_all();
    }

    const auto batch_size = static_cast<std::uint32_t>(live.size());
    for (Delivery& d : deliveries) {
        for (Waiter& w : d.waiters) {
            TransformReply reply;
            reply.result = d.result;
            reply.shared_flight = w.joined;
            reply.attempts = d.attempts;
            reply.batch_size = batch_size;
            reply.queue_seconds = seconds_between(w.submitted_at, start);
            reply.compute_seconds = d.result->compute_seconds;
            reply.total_seconds = seconds_between(w.submitted_at, finish);
            w.promise.set_value(std::move(reply));
        }
    }
    deliver_failures(failures);
}

void PyramidService::timer_loop() {
    std::unique_lock lk(mu_);
    while (!timer_stop_) {
        const auto now = Clock::now();
        std::vector<FailureBatch> failures;
        bool changed = false;

        // Backoffs that elapsed: requeue for dispatch.
        while (!backoff_.empty() && backoff_.begin()->first <= now) {
            Flight* flight = backoff_.begin()->second;
            backoff_.erase(backoff_.begin());
            flight->state = FlightState::Pending;
            pending_.insert(flight);
            changed = true;
        }

        // Watchdog deadlines that passed: fail the waiters, release the
        // batch's slot once no armed member remains, and leave the
        // still-running sweep to salvage-finish.
        while (!watch_.empty() && watch_.begin()->first <= now) {
            Flight* flight = watch_.begin()->second;
            watch_.erase(watch_.begin());
            flight->abandoned = true;
            counters_.watchdog_timeouts += flight->waiters.size();
            breakers_[backend_index(flight->request.backend)].record_failure(now);
            failures.push_back(
                {std::move(flight->waiters),
                 std::make_exception_ptr(WatchdogTimeoutError{})});
            remove_flight_locked(*flight);
            if (flight->slot && --flight->slot->armed == 0) {
                release_slot_locked(*flight->slot);
            }
            changed = true;
        }

        // A batch-window hold elapsed: let dispatch_ready re-plan.
        if (hold_wake_ <= now) {
            hold_wake_ = Clock::time_point::max();
            changed = true;
        }

        if (changed) dispatch_ready(lk, failures);
        if (!failures.empty()) {
            lk.unlock();
            deliver_failures(failures);
            lk.lock();
            continue;  // re-evaluate under fresh state
        }

        auto next = Clock::time_point::max();
        if (!backoff_.empty()) next = std::min(next, backoff_.begin()->first);
        if (!watch_.empty()) next = std::min(next, watch_.begin()->first);
        next = std::min(next, hold_wake_);
        if (next == Clock::time_point::max()) {
            cv_timer_.wait(lk);
        } else {
            cv_timer_.wait_until(lk, next);
        }
    }
}

void PyramidService::deliver_failures(std::vector<FailureBatch>& failures) {
    for (FailureBatch& batch : failures) {
        for (Waiter& w : batch.waiters) w.promise.set_exception(batch.error);
    }
    failures.clear();
}

void PyramidService::shutdown() {
    std::vector<FailureBatch> failures;
    {
        std::unique_lock lk(mu_);
        if (!stopping_) {
            stopping_ = true;
            for (Flight* flight : pending_) {
                counters_.shutdown_failures += flight->waiters.size();
                failures.push_back(
                    {std::move(flight->waiters),
                     std::make_exception_ptr(ServiceShutdownError{})});
                remove_flight_locked(*flight);
            }
            pending_.clear();
            // Flights parked in retry backoff die the same way: their
            // timer entry is dropped here, so no retry fires post-drain.
            for (auto& [retry_at, flight] : backoff_) {
                counters_.shutdown_failures += flight->waiters.size();
                failures.push_back(
                    {std::move(flight->waiters),
                     std::make_exception_ptr(ServiceShutdownError{})});
                remove_flight_locked(*flight);
            }
            backoff_.clear();
        }
    }
    deliver_failures(failures);
    {
        std::unique_lock lk(mu_);
        cv_drained_.wait(lk, [this] { return inflight_computes_ == 0; });
        timer_stop_ = true;
    }
    cv_timer_.notify_all();
}

MetricsSnapshot PyramidService::metrics() const {
    std::lock_guard lk(mu_);
    MetricsSnapshot m;
    m.counters = counters_;
    m.queue_wait = queue_wait_hist_;
    m.compute = compute_hist_;
    m.total = total_hist_;
    m.outcome = outcome_hist_;
    m.queue_depth = pending_.size();
    m.backoff_depth = backoff_.size();
    m.running = running_;
    m.queued_bytes = queued_bytes_;
    // Arena counters live behind the arena's own mutex (mu_ -> arena.mu is
    // the only order ever taken, so this nesting cannot deadlock).
    const ArenaStats a = arena_.stats();
    m.counters.arena_hits = a.hits;
    m.counters.arena_misses = a.misses;
    m.counters.heap_fallbacks = a.heap_fallbacks;
    return m;
}

std::shared_ptr<const TransformResult> PyramidService::peek_cached(
    const CacheKey& key) {
    if (auto exact = cache_.lookup(key)) return exact;
    return cache_.lookup_variant(key);
}

}  // namespace wavehpc::svc
