#include "svc/service.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <utility>

#include "wavelet/threads_dwt.hpp"

namespace wavehpc::svc {

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') return fallback;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(raw, &end, 10);
    if (end == raw || *end != '\0') return fallback;
    return std::max<std::uint64_t>(1, v);
}

double seconds_between(Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
}

}  // namespace

ServiceConfig ServiceConfig::from_env() {
    ServiceConfig cfg;
    cfg.max_queue_depth =
        static_cast<std::size_t>(env_u64("WAVEHPC_SVC_QUEUE_DEPTH", cfg.max_queue_depth));
    cfg.max_queued_bytes = env_u64("WAVEHPC_SVC_QUEUE_BYTES", cfg.max_queued_bytes);
    cfg.max_concurrency =
        static_cast<std::size_t>(env_u64("WAVEHPC_SVC_CONCURRENCY", cfg.max_concurrency));
    cfg.cache_bytes = env_u64("WAVEHPC_SVC_CACHE_BYTES", cfg.cache_bytes);
    return cfg;
}

PyramidService::PyramidService(runtime::ThreadPool& pool, ServiceConfig cfg)
    : pool_(pool), cfg_(cfg), cache_(cfg.cache_bytes) {}

PyramidService::~PyramidService() { shutdown(); }

SubmitResult PyramidService::submit(TransformRequest request) {
    if (!request.image) {
        throw std::invalid_argument("PyramidService::submit: null image");
    }
    core::validate_decomposition_request(request.image->rows(),
                                         request.image->cols(), request.levels);
    (void)core::FilterPair::daubechies(request.taps);  // eager taps validation

    const auto submitted_at = Clock::now();
    // Hash outside the lock: one linear pass over the pixels.
    const CacheKey key = make_cache_key(*request.image, request.taps,
                                        request.levels, request.boundary);
    const auto image_bytes =
        static_cast<std::uint64_t>(request.image->size()) * sizeof(float);

    std::vector<FailureBatch> failures;
    SubmitResult out;
    {
        std::unique_lock lk(mu_);
        ++counters_.submitted;

        if (stopping_) {
            ++counters_.rejected;
            out.accepted = false;
            out.retry_after_seconds = std::numeric_limits<double>::infinity();
            return out;
        }

        if (auto hit = cache_.lookup(key)) {
            ++counters_.accepted;
            ++counters_.cache_hits;
            ++counters_.completed;
            TransformReply reply;
            reply.result = std::move(hit);
            reply.cache_hit = true;
            reply.total_seconds = seconds_between(submitted_at, Clock::now());
            total_hist_.record(reply.total_seconds);
            std::promise<TransformReply> ready;
            out.future = ready.get_future().share();
            ready.set_value(std::move(reply));
            out.accepted = true;
            return out;
        }

        if (const auto it = flights_.find(key); it != flights_.end()) {
            // Single-flight: identical request already admitted — join it.
            Flight& flight = *it->second;
            Waiter waiter;
            waiter.submitted_at = submitted_at;
            waiter.joined = true;
            out.future = waiter.promise.get_future().share();
            flight.waiters.push_back(std::move(waiter));
            const Priority prio = std::max(flight.priority, request.priority);
            const auto deadline = std::max(flight.deadline, request.deadline);
            if (prio != flight.priority || deadline != flight.deadline) {
                if (!flight.dispatched) pending_.erase(&flight);
                flight.priority = prio;
                flight.deadline = deadline;
                if (!flight.dispatched) pending_.insert(&flight);
            }
            ++counters_.accepted;
            ++counters_.dedup_joins;
            out.accepted = true;
            return out;
        }

        if (pending_.size() >= cfg_.max_queue_depth ||
            queued_bytes_ + image_bytes > cfg_.max_queued_bytes) {
            ++counters_.rejected;
            out.accepted = false;
            out.retry_after_seconds = retry_after_locked();
            return out;
        }

        auto flight = std::make_shared<Flight>();
        flight->key = key;
        flight->request = std::move(request);
        flight->image_bytes = image_bytes;
        flight->priority = flight->request.priority;
        flight->deadline = flight->request.deadline;
        flight->seq = next_seq_++;
        flight->admitted_at = submitted_at;
        Waiter waiter;
        waiter.submitted_at = submitted_at;
        out.future = waiter.promise.get_future().share();
        flight->waiters.push_back(std::move(waiter));
        pending_.insert(flight.get());
        flights_.emplace(key, std::move(flight));
        queued_bytes_ += image_bytes;
        ++counters_.accepted;
        out.accepted = true;

        dispatch_ready(lk, failures);
    }
    deliver_failures(failures);
    return out;
}

double PyramidService::retry_after_locked() const {
    const double per_request =
        ewma_compute_seconds_ > 0.0 ? ewma_compute_seconds_ : 0.05;
    const double backlog = static_cast<double>(pending_.size() + running_ + 1);
    const double eta =
        backlog * per_request / static_cast<double>(cfg_.max_concurrency);
    return std::clamp(eta, 1e-3, 30.0);
}

void PyramidService::remove_flight_locked(Flight& flight) {
    queued_bytes_ -= flight.image_bytes;
    const CacheKey key = flight.key;  // copy: erase destroys the flight
    flights_.erase(key);
}

void PyramidService::dispatch_ready(std::unique_lock<std::mutex>& lk,
                                    std::vector<FailureBatch>& failures) {
    (void)lk;  // documents the precondition: mu_ is held
    const auto now = Clock::now();
    while (running_ < cfg_.max_concurrency && !pending_.empty()) {
        Flight* flight = *pending_.begin();
        pending_.erase(pending_.begin());
        if (flight->deadline < now) {
            // Expired while queued: fail, never compute.
            counters_.deadline_failures += flight->waiters.size();
            failures.push_back(
                {std::move(flight->waiters),
                 std::make_exception_ptr(DeadlineExpiredError{})});
            remove_flight_locked(*flight);
            continue;
        }
        flight->dispatched = true;
        ++running_;
        auto sp = flights_.at(flight->key);
        const auto prio = flight->priority == Priority::Interactive
                              ? runtime::TaskPriority::High
                              : runtime::TaskPriority::Normal;
        pool_.submit([this, sp = std::move(sp)] { run_flight(sp); }, prio);
    }
}

void PyramidService::run_flight(const std::shared_ptr<Flight>& flight) {
    const auto start = Clock::now();
    std::vector<FailureBatch> failures;
    {
        std::unique_lock lk(mu_);
        if (flight->deadline < start) {
            // Expired between dispatch and a pool slot freeing up.
            counters_.deadline_failures += flight->waiters.size();
            failures.push_back(
                {std::move(flight->waiters),
                 std::make_exception_ptr(DeadlineExpiredError{})});
            remove_flight_locked(*flight);
            --running_;
            dispatch_ready(lk, failures);
            if (stopping_ && running_ == 0) cv_drained_.notify_all();
            lk.unlock();
            deliver_failures(failures);
            return;
        }
        ++counters_.computes;
    }

    const TransformRequest& req = flight->request;
    std::shared_ptr<const TransformResult> result;
    std::exception_ptr compute_error;
    try {
        const auto fp = core::FilterPair::daubechies(req.taps);
        core::Pyramid pyr =
            req.backend == Backend::Serial
                ? core::decompose(*req.image, fp, req.levels, req.boundary)
                : wavelet::decompose_parallel(*req.image, fp, req.levels,
                                              req.boundary, pool_);
        auto owned = std::make_shared<TransformResult>();
        owned->pyramid = std::move(pyr);
        owned->key = flight->key;
        owned->result_bytes = pyramid_bytes(owned->pyramid);
        owned->compute_seconds = seconds_between(start, Clock::now());
        result = std::move(owned);
    } catch (...) {
        compute_error = std::current_exception();
    }
    const auto finish = Clock::now();

    std::vector<Waiter> waiters;
    {
        std::unique_lock lk(mu_);
        waiters = std::move(flight->waiters);  // includes joins during compute
        remove_flight_locked(*flight);
        --running_;
        if (result) {
            cache_.insert(flight->key, result);
            const double compute_seconds = result->compute_seconds;
            queue_wait_hist_.record(seconds_between(flight->admitted_at, start));
            compute_hist_.record(compute_seconds);
            ewma_compute_seconds_ = ewma_compute_seconds_ == 0.0
                                        ? compute_seconds
                                        : 0.8 * ewma_compute_seconds_ +
                                              0.2 * compute_seconds;
            counters_.completed += waiters.size();
            for (const Waiter& w : waiters) {
                total_hist_.record(seconds_between(w.submitted_at, finish));
            }
        } else {
            counters_.compute_failures += waiters.size();
        }
        dispatch_ready(lk, failures);
        if (stopping_ && running_ == 0) cv_drained_.notify_all();
    }

    if (result) {
        for (Waiter& w : waiters) {
            TransformReply reply;
            reply.result = result;
            reply.shared_flight = w.joined;
            reply.queue_seconds = seconds_between(w.submitted_at, start);
            reply.compute_seconds = result->compute_seconds;
            reply.total_seconds = seconds_between(w.submitted_at, finish);
            w.promise.set_value(std::move(reply));
        }
    } else {
        for (Waiter& w : waiters) w.promise.set_exception(compute_error);
    }
    deliver_failures(failures);
}

void PyramidService::deliver_failures(std::vector<FailureBatch>& failures) {
    for (FailureBatch& batch : failures) {
        for (Waiter& w : batch.waiters) w.promise.set_exception(batch.error);
    }
    failures.clear();
}

void PyramidService::shutdown() {
    std::vector<FailureBatch> failures;
    {
        std::unique_lock lk(mu_);
        if (!stopping_) {
            stopping_ = true;
            for (Flight* flight : pending_) {
                counters_.shutdown_failures += flight->waiters.size();
                failures.push_back(
                    {std::move(flight->waiters),
                     std::make_exception_ptr(ServiceShutdownError{})});
                remove_flight_locked(*flight);
            }
            pending_.clear();
        }
    }
    deliver_failures(failures);
    std::unique_lock lk(mu_);
    cv_drained_.wait(lk, [this] { return running_ == 0; });
}

MetricsSnapshot PyramidService::metrics() const {
    std::lock_guard lk(mu_);
    MetricsSnapshot m;
    m.counters = counters_;
    m.queue_wait = queue_wait_hist_;
    m.compute = compute_hist_;
    m.total = total_hist_;
    m.queue_depth = pending_.size();
    m.running = running_;
    m.queued_bytes = queued_bytes_;
    return m;
}

}  // namespace wavehpc::svc
