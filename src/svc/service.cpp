#include "svc/service.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <utility>

#include "wavelet/threads_dwt.hpp"

namespace wavehpc::svc {

namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') return fallback;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(raw, &end, 10);
    if (end == raw || *end != '\0') return fallback;
    return std::max<std::uint64_t>(1, v);
}

double seconds_between(Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double>(b - a).count();
}

std::size_t backend_index(Backend b) noexcept {
    return static_cast<std::size_t>(b) < 2 ? static_cast<std::size_t>(b) : 0;
}

}  // namespace

ServiceConfig ServiceConfig::from_env() {
    ServiceConfig cfg;
    cfg.max_queue_depth =
        static_cast<std::size_t>(env_u64("WAVEHPC_SVC_QUEUE_DEPTH", cfg.max_queue_depth));
    cfg.max_queued_bytes = env_u64("WAVEHPC_SVC_QUEUE_BYTES", cfg.max_queued_bytes);
    cfg.max_concurrency =
        static_cast<std::size_t>(env_u64("WAVEHPC_SVC_CONCURRENCY", cfg.max_concurrency));
    cfg.cache_bytes = env_u64("WAVEHPC_SVC_CACHE_BYTES", cfg.cache_bytes);
    cfg.resilience = ResilienceConfig::from_env();
    return cfg;
}

PyramidService::PyramidService(runtime::ThreadPool& pool, ServiceConfig cfg)
    : pool_(pool),
      cfg_(cfg),
      cache_(cfg.cache_bytes),
      chaos_(ChaosPlan::from_env()),
      breakers_{CircuitBreaker(cfg.resilience.breaker),
                CircuitBreaker(cfg.resilience.breaker)} {
    cache_.set_audit_lookups(chaos_.enabled());
    timer_ = std::thread([this] { timer_loop(); });
}

PyramidService::~PyramidService() {
    shutdown();
    if (timer_.joinable()) timer_.join();
}

void PyramidService::set_chaos_plan(ChaosPlan plan) {
    chaos_.set_plan(std::move(plan));
    cache_.set_audit_lookups(chaos_.enabled());
}

void PyramidService::record_outcome_locked(Outcome o, double seconds) {
    outcome_hist_[static_cast<std::size_t>(o)].record(seconds);
}

SubmitResult PyramidService::submit(TransformRequest request) {
    if (!request.image) {
        throw std::invalid_argument("PyramidService::submit: null image");
    }
    core::validate_decomposition_request(request.image->rows(),
                                         request.image->cols(), request.levels);
    const auto fp = core::FilterPair::daubechies(request.taps);  // eager taps validation
    // Resolve the kernel once at admission: the cache key, the flight, and
    // dedup all see the same concrete kernel even if the process selector
    // changes while the request is queued.
    request.kernel = core::resolve_dwt_kernel(request.kernel, fp);

    const auto submitted_at = Clock::now();
    // Hash outside the lock: one linear pass over the pixels.
    const CacheKey key = make_cache_key(*request.image, request.taps,
                                        request.levels, request.boundary,
                                        request.kernel);
    const auto image_bytes =
        static_cast<std::uint64_t>(request.image->size()) * sizeof(float);

    std::vector<FailureBatch> failures;
    SubmitResult out;
    {
        std::unique_lock lk(mu_);
        ++counters_.submitted;

        if (stopping_) {
            ++counters_.rejected;
            out.accepted = false;
            out.reject_reason = RejectReason::ShuttingDown;
            out.retry_after_seconds = std::numeric_limits<double>::infinity();
            return out;
        }

        if (auto hit = cache_.lookup(key)) {
            ++counters_.accepted;
            ++counters_.cache_hits;
            ++counters_.completed;
            TransformReply reply;
            reply.result = std::move(hit);
            reply.cache_hit = true;
            reply.total_seconds = seconds_between(submitted_at, Clock::now());
            total_hist_.record(reply.total_seconds);
            record_outcome_locked(Outcome::Ok, reply.total_seconds);
            std::promise<TransformReply> ready;
            out.future = ready.get_future().share();
            ready.set_value(std::move(reply));
            out.accepted = true;
            return out;
        }

        if (quarantine_.contains(key)) {
            // Poison fingerprint: this exact request already burned its
            // whole retry budget; fail resubmissions fast instead of
            // letting them chew compute slots again.
            ++counters_.rejected;
            ++counters_.quarantine_rejects;
            record_outcome_locked(Outcome::Quarantined,
                                  seconds_between(submitted_at, Clock::now()));
            out.accepted = false;
            out.reject_reason = RejectReason::Quarantined;
            out.retry_after_seconds = std::numeric_limits<double>::infinity();
            return out;
        }

        if (const auto it = flights_.find(key); it != flights_.end()) {
            // Single-flight: identical request already admitted — join it.
            Flight& flight = *it->second;
            Waiter waiter;
            waiter.submitted_at = submitted_at;
            waiter.joined = true;
            out.future = waiter.promise.get_future().share();
            flight.waiters.push_back(std::move(waiter));
            const Priority prio = std::max(flight.priority, request.priority);
            const auto deadline = std::max(flight.deadline, request.deadline);
            if (prio != flight.priority || deadline != flight.deadline) {
                // Reorder only while the flight actually sits in pending_;
                // Backoff/Running flights pick the upgrade up on requeue.
                if (flight.state == FlightState::Pending) pending_.erase(&flight);
                flight.priority = prio;
                flight.deadline = deadline;
                if (flight.state == FlightState::Pending) pending_.insert(&flight);
            }
            ++counters_.accepted;
            ++counters_.dedup_joins;
            out.accepted = true;
            return out;
        }

        if (pending_.size() >= cfg_.max_queue_depth ||
            queued_bytes_ + image_bytes > cfg_.max_queued_bytes) {
            if (request.allow_degraded) {
                bool served = false;
                auto degraded = try_degraded_locked(key, submitted_at, served);
                if (served) return degraded;
            }
            ++counters_.rejected;
            out.accepted = false;
            out.reject_reason = RejectReason::Saturated;
            out.retry_after_seconds = retry_after_locked();
            return out;
        }

        // Last gate before admission, so a half-open probe reservation is
        // always followed by a real compute attempt.
        if (CircuitBreaker& breaker = breakers_[backend_index(request.backend)];
            !breaker.allow(submitted_at)) {
            if (request.allow_degraded) {
                bool served = false;
                auto degraded = try_degraded_locked(key, submitted_at, served);
                if (served) return degraded;
            }
            ++counters_.rejected;
            ++counters_.breaker_rejects;
            record_outcome_locked(Outcome::BreakerRejected,
                                  seconds_between(submitted_at, Clock::now()));
            out.accepted = false;
            out.reject_reason = RejectReason::BreakerOpen;
            out.retry_after_seconds = breaker.retry_after_seconds(submitted_at);
            return out;
        }

        auto flight = std::make_shared<Flight>();
        flight->key = key;
        flight->request = std::move(request);
        flight->image_bytes = image_bytes;
        flight->priority = flight->request.priority;
        flight->deadline = flight->request.deadline;
        flight->seq = next_seq_++;
        flight->admitted_at = submitted_at;
        Waiter waiter;
        waiter.submitted_at = submitted_at;
        out.future = waiter.promise.get_future().share();
        flight->waiters.push_back(std::move(waiter));
        pending_.insert(flight.get());
        flights_.emplace(key, std::move(flight));
        queued_bytes_ += image_bytes;
        ++counters_.accepted;
        out.accepted = true;

        dispatch_ready(lk, failures);
    }
    deliver_failures(failures);
    return out;
}

SubmitResult PyramidService::try_degraded_locked(const CacheKey& key,
                                                 Clock::time_point submitted_at,
                                                 bool& served) {
    SubmitResult out;
    auto variant = cache_.lookup_variant(key);
    if (!variant) {
        served = false;
        return out;
    }
    served = true;
    ++counters_.accepted;
    ++counters_.completed;
    ++counters_.degraded_replies;
    TransformReply reply;
    reply.result = std::move(variant);
    reply.degraded = true;
    reply.total_seconds = seconds_between(submitted_at, Clock::now());
    total_hist_.record(reply.total_seconds);
    record_outcome_locked(Outcome::Degraded, reply.total_seconds);
    std::promise<TransformReply> ready;
    out.future = ready.get_future().share();
    ready.set_value(std::move(reply));
    out.accepted = true;
    return out;
}

double PyramidService::retry_after_locked() const {
    const double per_request =
        ewma_compute_seconds_ > 0.0 ? ewma_compute_seconds_ : 0.05;
    const double backlog = static_cast<double>(pending_.size() + running_ + 1);
    const double eta =
        backlog * per_request / static_cast<double>(cfg_.max_concurrency);
    return std::clamp(eta, 1e-3, 30.0);
}

void PyramidService::remove_flight_locked(Flight& flight) {
    queued_bytes_ -= flight.image_bytes;
    const CacheKey key = flight.key;  // copy: erase destroys the flight
    flights_.erase(key);
}

void PyramidService::erase_watch_locked(Flight& flight) {
    auto [lo, hi] = watch_.equal_range(flight.watch_deadline);
    for (auto it = lo; it != hi; ++it) {
        if (it->second == &flight) {
            watch_.erase(it);
            return;
        }
    }
}

void PyramidService::fail_flight_locked(Flight& flight,
                                        std::vector<FailureBatch>& failures,
                                        std::exception_ptr error, Outcome outcome) {
    const auto now = Clock::now();
    for (const Waiter& w : flight.waiters) {
        record_outcome_locked(outcome, seconds_between(w.submitted_at, now));
    }
    failures.push_back({std::move(flight.waiters), std::move(error), outcome, true});
}

void PyramidService::dispatch_ready(std::unique_lock<std::mutex>& lk,
                                    std::vector<FailureBatch>& failures) {
    (void)lk;  // documents the precondition: mu_ is held
    const auto now = Clock::now();
    while (running_ < cfg_.max_concurrency && !pending_.empty()) {
        Flight* flight = *pending_.begin();
        pending_.erase(pending_.begin());
        if (flight->deadline < now) {
            // Expired while queued: fail, never compute.
            counters_.deadline_failures += flight->waiters.size();
            failures.push_back(
                {std::move(flight->waiters),
                 std::make_exception_ptr(DeadlineExpiredError{})});
            remove_flight_locked(*flight);
            continue;
        }
        flight->state = FlightState::Running;
        ++running_;
        ++inflight_computes_;
        auto sp = flights_.at(flight->key);
        const auto prio = flight->priority == Priority::Interactive
                              ? runtime::TaskPriority::High
                              : runtime::TaskPriority::Normal;
        pool_.submit([this, sp = std::move(sp)] { run_flight(sp); }, prio);
    }
}

void PyramidService::run_flight(const std::shared_ptr<Flight>& flight) {
    const auto start = Clock::now();
    std::vector<FailureBatch> failures;
    {
        std::unique_lock lk(mu_);
        if (flight->deadline < start) {
            // Expired between dispatch and a pool slot freeing up.
            counters_.deadline_failures += flight->waiters.size();
            failures.push_back(
                {std::move(flight->waiters),
                 std::make_exception_ptr(DeadlineExpiredError{})});
            remove_flight_locked(*flight);
            --running_;
            --inflight_computes_;
            dispatch_ready(lk, failures);
            if (stopping_ && inflight_computes_ == 0) cv_drained_.notify_all();
            lk.unlock();
            deliver_failures(failures);
            return;
        }
        ++counters_.computes;
        // Arm the watchdog for this attempt: the budget is the configured
        // limit, tightened by whatever time the request deadline leaves.
        double budget = cfg_.resilience.watchdog_seconds;
        if (flight->deadline != Clock::time_point::max()) {
            budget = budget > 0.0
                         ? std::min(budget, seconds_between(start, flight->deadline))
                         : seconds_between(start, flight->deadline);
        }
        if (budget > 0.0) {
            flight->watch_deadline =
                start + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double>(budget));
            watch_.emplace(flight->watch_deadline, flight.get());
            cv_timer_.notify_one();
        } else {
            flight->watch_deadline = Clock::time_point::max();
        }
    }

    // Chaos decision for this attempt (no-op, all-zero decision when no
    // plan is active); drawn outside the service lock.
    const ChaosDecision chaos_decision = chaos_.next_compute_decision();

    const TransformRequest& req = flight->request;
    std::shared_ptr<TransformResult> result;
    std::exception_ptr compute_error;
    bool crc_failed = false;
    try {
        chaos_.inject_before_compute(chaos_decision);
        const auto fp = core::FilterPair::daubechies(req.taps);
        core::Pyramid pyr =
            req.backend == Backend::Serial
                ? core::decompose(*req.image, fp, req.levels, req.boundary,
                                  req.kernel)
                : wavelet::decompose_parallel(*req.image, fp, req.levels,
                                              req.boundary, pool_, req.kernel);
        auto owned = std::make_shared<TransformResult>();
        owned->pyramid = std::move(pyr);
        owned->key = flight->key;
        owned->result_bytes = pyramid_bytes(owned->pyramid);
        owned->compute_seconds = seconds_between(start, Clock::now());
        // CRC point of truth, then the chaos corruption hook: an injected
        // bit flip lands *after* the checksum, so the audit must catch it.
        owned->crc32 = pyramid_crc32(owned->pyramid);
        chaos_.corrupt_result(chaos_decision, owned->pyramid);
        if (!audit_result(*owned)) {
            crc_failed = true;
            throw CrcAuditError{};
        }
        result = std::move(owned);
    } catch (...) {
        compute_error = std::current_exception();
    }
    const auto finish = Clock::now();

    std::vector<Waiter> waiters;
    std::uint32_t delivered_attempts = 1;
    {
        std::unique_lock lk(mu_);
        erase_watch_locked(*flight);
        if (crc_failed) ++counters_.crc_audit_failures;

        if (flight->abandoned) {
            // The watchdog already failed the waiters and released the
            // slot; all that is left is salvage (cache a clean result so
            // the work is not wasted) and the drain accounting.
            if (result) cache_.insert(flight->key, result);
            --inflight_computes_;
            if (stopping_ && inflight_computes_ == 0) cv_drained_.notify_all();
            return;
        }

        ++flight->attempts;
        delivered_attempts = flight->attempts;
        CircuitBreaker& breaker = breakers_[backend_index(req.backend)];

        if (result) {
            breaker.record_success(finish);
            waiters = std::move(flight->waiters);  // includes joins during compute
            remove_flight_locked(*flight);
            --running_;
            --inflight_computes_;
            cache_.insert(flight->key, result);
            const double compute_seconds = result->compute_seconds;
            queue_wait_hist_.record(seconds_between(flight->admitted_at, start));
            compute_hist_.record(compute_seconds);
            ewma_compute_seconds_ = ewma_compute_seconds_ == 0.0
                                        ? compute_seconds
                                        : 0.8 * ewma_compute_seconds_ +
                                              0.2 * compute_seconds;
            counters_.completed += waiters.size();
            const Outcome o =
                delivered_attempts > 1 ? Outcome::Retried : Outcome::Ok;
            for (const Waiter& w : waiters) {
                const double total = seconds_between(w.submitted_at, finish);
                total_hist_.record(total);
                record_outcome_locked(o, total);
            }
        } else {
            breaker.record_failure(finish);
            if (stopping_) {
                // Draining: no retries; propagate the error so the drain
                // finishes promptly.
                counters_.compute_failures += flight->waiters.size();
                failures.push_back({std::move(flight->waiters), compute_error});
                remove_flight_locked(*flight);
                --running_;
                --inflight_computes_;
            } else if (flight->attempts >= cfg_.resilience.retry.max_attempts) {
                // Poison request: quarantine the fingerprint and fail
                // permanently with the last attempt's error.
                quarantine_.insert(flight->key);
                counters_.compute_failures += flight->waiters.size();
                counters_.quarantined += flight->waiters.size();
                fail_flight_locked(*flight, failures, compute_error,
                                   Outcome::Quarantined);
                remove_flight_locked(*flight);
                --running_;
                --inflight_computes_;
            } else {
                // Transient failure: release the slot and park the flight
                // until its jittered backoff elapses (timer thread).
                ++counters_.retries;
                const double delay = cfg_.resilience.retry.backoff_seconds(
                    flight->attempts,
                    (flight->seq << 16) ^ flight->attempts);
                flight->retry_at =
                    finish + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(delay));
                flight->state = FlightState::Backoff;
                backoff_.emplace(flight->retry_at, flight.get());
                --running_;
                --inflight_computes_;
                cv_timer_.notify_one();
            }
        }
        dispatch_ready(lk, failures);
        if (stopping_ && inflight_computes_ == 0) cv_drained_.notify_all();
    }

    if (result) {
        for (Waiter& w : waiters) {
            TransformReply reply;
            reply.result = result;
            reply.shared_flight = w.joined;
            reply.attempts = delivered_attempts;
            reply.queue_seconds = seconds_between(w.submitted_at, start);
            reply.compute_seconds = result->compute_seconds;
            reply.total_seconds = seconds_between(w.submitted_at, finish);
            w.promise.set_value(std::move(reply));
        }
    }
    deliver_failures(failures);
}

void PyramidService::timer_loop() {
    std::unique_lock lk(mu_);
    while (!timer_stop_) {
        const auto now = Clock::now();
        std::vector<FailureBatch> failures;
        bool changed = false;

        // Backoffs that elapsed: requeue for dispatch.
        while (!backoff_.empty() && backoff_.begin()->first <= now) {
            Flight* flight = backoff_.begin()->second;
            backoff_.erase(backoff_.begin());
            flight->state = FlightState::Pending;
            pending_.insert(flight);
            changed = true;
        }

        // Watchdog deadlines that passed: fail the waiters, release the
        // slot, and leave the still-running compute to salvage-finish.
        while (!watch_.empty() && watch_.begin()->first <= now) {
            Flight* flight = watch_.begin()->second;
            watch_.erase(watch_.begin());
            flight->abandoned = true;
            counters_.watchdog_timeouts += flight->waiters.size();
            breakers_[backend_index(flight->request.backend)].record_failure(now);
            failures.push_back(
                {std::move(flight->waiters),
                 std::make_exception_ptr(WatchdogTimeoutError{})});
            remove_flight_locked(*flight);
            --running_;
            changed = true;
        }

        if (changed) dispatch_ready(lk, failures);
        if (!failures.empty()) {
            lk.unlock();
            deliver_failures(failures);
            lk.lock();
            continue;  // re-evaluate under fresh state
        }

        auto next = Clock::time_point::max();
        if (!backoff_.empty()) next = std::min(next, backoff_.begin()->first);
        if (!watch_.empty()) next = std::min(next, watch_.begin()->first);
        if (next == Clock::time_point::max()) {
            cv_timer_.wait(lk);
        } else {
            cv_timer_.wait_until(lk, next);
        }
    }
}

void PyramidService::deliver_failures(std::vector<FailureBatch>& failures) {
    for (FailureBatch& batch : failures) {
        for (Waiter& w : batch.waiters) w.promise.set_exception(batch.error);
    }
    failures.clear();
}

void PyramidService::shutdown() {
    std::vector<FailureBatch> failures;
    {
        std::unique_lock lk(mu_);
        if (!stopping_) {
            stopping_ = true;
            for (Flight* flight : pending_) {
                counters_.shutdown_failures += flight->waiters.size();
                failures.push_back(
                    {std::move(flight->waiters),
                     std::make_exception_ptr(ServiceShutdownError{})});
                remove_flight_locked(*flight);
            }
            pending_.clear();
            // Flights parked in retry backoff die the same way: their
            // timer entry is dropped here, so no retry fires post-drain.
            for (auto& [retry_at, flight] : backoff_) {
                counters_.shutdown_failures += flight->waiters.size();
                failures.push_back(
                    {std::move(flight->waiters),
                     std::make_exception_ptr(ServiceShutdownError{})});
                remove_flight_locked(*flight);
            }
            backoff_.clear();
        }
    }
    deliver_failures(failures);
    {
        std::unique_lock lk(mu_);
        cv_drained_.wait(lk, [this] { return inflight_computes_ == 0; });
        timer_stop_ = true;
    }
    cv_timer_.notify_all();
}

MetricsSnapshot PyramidService::metrics() const {
    std::lock_guard lk(mu_);
    MetricsSnapshot m;
    m.counters = counters_;
    m.queue_wait = queue_wait_hist_;
    m.compute = compute_hist_;
    m.total = total_hist_;
    m.outcome = outcome_hist_;
    m.queue_depth = pending_.size();
    m.backoff_depth = backoff_.size();
    m.running = running_;
    m.queued_bytes = queued_bytes_;
    return m;
}

std::shared_ptr<const TransformResult> PyramidService::peek_cached(
    const CacheKey& key) {
    if (auto exact = cache_.lookup(key)) return exact;
    return cache_.lookup_variant(key);
}

}  // namespace wavehpc::svc
