#pragma once
// Resilience policies for the pyramid service: per-request retry with
// capped jittered exponential backoff (the reliable transport's backoff
// shape, mesh/machine.hpp), a per-backend circuit breaker, a compute
// watchdog budget, and poison-request quarantine. The policies are plain
// data + pure decision logic; the service owns the state machine wiring
// (service.cpp) so everything here unit-tests without threads.
//
// All knobs come from WAVEHPC_SVC_RETRY_* / WAVEHPC_SVC_BREAKER_* /
// WAVEHPC_SVC_WATCHDOG_MS (see from_env docs below); unset or unparsable
// variables keep the defaults, mirroring ServiceConfig::from_env.

#include <chrono>
#include <cstdint>
#include <stdexcept>

namespace wavehpc::svc {

/// Capped jittered exponential backoff between compute retries:
/// delay(attempt) = min(base * multiplier^(attempt-1), cap), then scaled
/// by a deterministic jitter draw in [1-jitter, 1]. attempt is 1-based
/// (the delay before the 2nd attempt is backoff_seconds(1, ...)).
struct RetryPolicy {
    std::uint32_t max_attempts = 4;  ///< total attempts, first one included
    double base_seconds = 0.010;
    double multiplier = 2.0;
    double cap_seconds = 0.500;
    double jitter = 0.5;  ///< fraction of the delay randomized away

    /// Deterministic delay before attempt `attempt + 1`; `draw` is a
    /// splitmix64-style random word (e.g. mixed from flight seq +
    /// attempt), so replays of the same schedule back off identically.
    [[nodiscard]] double backoff_seconds(std::uint32_t attempt,
                                         std::uint64_t draw) const;
};

/// Circuit-breaker tuning. The breaker trips when the EWMA failure rate
/// over compute attempts exceeds `failure_threshold` (after at least
/// `min_samples` attempts), rejects fast for `open_seconds`, then lets
/// `half_open_probes` requests through; all probes succeeding closes it,
/// any probe failing re-opens it.
struct BreakerConfig {
    double failure_threshold = 0.5;
    double ewma_alpha = 0.25;        ///< weight of the newest attempt
    std::uint32_t min_samples = 4;   ///< attempts before the EWMA is trusted
    double open_seconds = 1.0;
    std::uint32_t half_open_probes = 2;
};

/// Per-backend closed/open/half-open breaker. Externally synchronized:
/// the service calls every method under its own mutex (like Flight
/// bookkeeping), so there is no lock here and unit tests drive it
/// single-threaded with explicit time points.
class CircuitBreaker {
public:
    using Clock = std::chrono::steady_clock;

    enum class State : std::uint8_t { Closed, Open, HalfOpen };

    CircuitBreaker() = default;
    explicit CircuitBreaker(BreakerConfig cfg) : cfg_(cfg) {}

    /// Current state, advancing Open -> HalfOpen when the open window
    /// elapsed.
    [[nodiscard]] State state(Clock::time_point now);

    /// May a new request be admitted for this backend right now? In
    /// HalfOpen, each allowed request reserves one probe slot (released
    /// by the record_* call for its attempt).
    [[nodiscard]] bool allow(Clock::time_point now);

    /// Suggested client wait when allow() said no: remaining open time
    /// (>= a small floor so callers never spin).
    [[nodiscard]] double retry_after_seconds(Clock::time_point now) const;

    /// Outcome of one compute attempt. Also drives Open (threshold
    /// crossed) and Closed/re-Open (half-open probe verdicts).
    void record_success(Clock::time_point now);
    void record_failure(Clock::time_point now);

    [[nodiscard]] double failure_rate() const noexcept { return ewma_; }
    [[nodiscard]] std::uint64_t times_opened() const noexcept { return times_opened_; }

private:
    void trip(Clock::time_point now);

    BreakerConfig cfg_;
    State state_ = State::Closed;
    double ewma_ = 0.0;
    std::uint64_t samples_ = 0;
    std::uint64_t times_opened_ = 0;
    Clock::time_point opened_at_{};
    std::uint32_t probes_allowed_ = 0;   ///< half-open admissions handed out
    std::uint32_t probes_succeeded_ = 0;
};

/// The service's full resilience posture; embedded in ServiceConfig.
struct ResilienceConfig {
    RetryPolicy retry;
    BreakerConfig breaker;
    /// Watchdog budget for one compute attempt. The effective budget is
    /// min(watchdog_seconds, time left to the request deadline) taken at
    /// compute start; a compute still running past it has its waiters
    /// failed (WatchdogTimeoutError) and its concurrency slot released,
    /// so a stalled kernel never wedges the whole service. 0 disables.
    double watchdog_seconds = 30.0;

    /// WAVEHPC_SVC_RETRY_MAX / _RETRY_BASE_MS / _RETRY_CAP_MS /
    /// _RETRY_JITTER, WAVEHPC_SVC_BREAKER_THRESHOLD / _BREAKER_ALPHA /
    /// _BREAKER_MIN_SAMPLES / _BREAKER_OPEN_MS / _BREAKER_PROBES, and
    /// WAVEHPC_SVC_WATCHDOG_MS. Unset/unparsable keeps the default.
    [[nodiscard]] static ResilienceConfig from_env();
};

}  // namespace wavehpc::svc
