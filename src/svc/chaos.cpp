#include "svc/chaos.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <new>
#include <thread>

namespace wavehpc::svc {

namespace {

/// splitmix64 finalizer — the same mix mesh::FaultPlan draws with.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

[[nodiscard]] double u01(std::uint64_t x) {
    return static_cast<double>(x >> 11) * 0x1.0p-53;
}

// Independent per-fault lanes: one draw per (seed, index, lane).
enum Lane : std::uint64_t {
    kComputeLane = 0,
    kAllocLane = 1,
    kStallLane = 2,
    kCorruptLane = 3,
    kPoolLane = 4,
};

[[nodiscard]] std::uint64_t lane_draw(std::uint64_t seed, std::uint64_t index,
                                      std::uint64_t lane) {
    return mix64(seed ^ (index * 8 + lane));
}

/// Parse errors name the offending token AND its byte offset in the spec
/// string, mirroring mesh::FaultPlan::parse — a fat chaos spec in an env
/// var is unreadable without a position to jump to.
[[noreturn]] void parse_fail(std::string_view key, const std::string& what,
                             std::string_view token, std::size_t offset) {
    throw std::invalid_argument("ChaosPlan: '" + std::string(key) + "' " +
                                what + ", got '" + std::string(token) +
                                "' (byte " + std::to_string(offset) + ")");
}

[[nodiscard]] double parse_probability(std::string_view key, std::string_view text,
                                       std::size_t off) {
    char* end = nullptr;
    const std::string owned(text);
    const double v = std::strtod(owned.c_str(), &end);
    if (end != owned.c_str() + owned.size() || !(v >= 0.0) || v > 1.0) {
        parse_fail(key, "needs a probability in [0, 1]", text, off);
    }
    return v;
}

[[nodiscard]] double parse_millis(std::string_view key, std::string_view text,
                                  std::size_t off) {
    char* end = nullptr;
    const std::string owned(text);
    const double v = std::strtod(owned.c_str(), &end);
    if (end != owned.c_str() + owned.size() || !(v >= 0.0)) {
        parse_fail(key, "needs a non-negative millisecond value", text, off);
    }
    return v * 1e-3;
}

void sleep_seconds(double seconds) {
    if (seconds <= 0.0) return;
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

[[nodiscard]] std::uint64_t parse_uint(std::string_view key, std::string_view num,
                                       std::size_t off) {
    if (num.empty()) {
        parse_fail(key, "has an empty numeric field", num, off);
    }
    std::uint64_t v = 0;
    for (const char c : num) {
        if (c < '0' || c > '9') {
            parse_fail(key, "needs unsigned integers", num, off);
        }
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return v;
}

/// One SHARD:START_MS:DURATION_MS[:STALL_MS] entry of a shard-event list.
/// `off` is the entry's byte offset in the full spec string.
[[nodiscard]] ShardEvent parse_shard_event(std::string_view key,
                                           std::string_view text, std::size_t off,
                                           ShardEventKind kind) {
    std::vector<std::string_view> fields;
    std::vector<std::size_t> offsets;
    std::size_t p = 0;
    while (p <= text.size()) {
        std::size_t colon = text.find(':', p);
        if (colon == std::string_view::npos) colon = text.size();
        fields.push_back(text.substr(p, colon - p));
        offsets.push_back(off + p);
        p = colon + 1;
    }
    const std::size_t want_max = kind == ShardEventKind::Slow ? 4 : 3;
    if (fields.size() < 3 || fields.size() > want_max) {
        parse_fail(key,
                   std::string("entries are SHARD:START_MS:DURATION_MS") +
                       (kind == ShardEventKind::Slow ? "[:STALL_MS]" : ""),
                   text, off);
    }
    ShardEvent ev;
    ev.kind = kind;
    ev.shard = static_cast<std::size_t>(parse_uint(key, fields[0], offsets[0]));
    ev.start_seconds = parse_millis(key, fields[1], offsets[1]);
    ev.duration_seconds = parse_millis(key, fields[2], offsets[2]);
    if (fields.size() == 4) ev.stall_seconds = parse_millis(key, fields[3], offsets[3]);
    return ev;
}

void parse_shard_events(std::string_view key, std::string_view value,
                        std::size_t off, ShardEventKind kind,
                        std::vector<ShardEvent>& out) {
    bool any = false;
    std::size_t p = 0;
    while (p <= value.size()) {
        std::size_t semi = value.find(';', p);
        if (semi == std::string_view::npos) semi = value.size();
        const std::string_view item = value.substr(p, semi - p);
        if (!item.empty()) {
            out.push_back(parse_shard_event(key, item, off + p, kind));
            any = true;
        }
        p = semi + 1;
    }
    if (!any) {
        // A key that injects nothing would silently test nothing.
        parse_fail(key, "needs at least one SHARD:START_MS:DURATION_MS entry",
                   value, off);
    }
}

}  // namespace

bool ChaosPlan::enabled() const noexcept {
    return compute_error_probability > 0.0 || alloc_failure_probability > 0.0 ||
           stall_probability > 0.0 || corrupt_probability > 0.0 ||
           pool_stall_probability > 0.0 || !compute_error_exact.empty() ||
           !shard_events.empty();
}

ChaosDecision ChaosPlan::decide(std::uint64_t index) const {
    ChaosDecision d;
    d.draw = index;
    if (std::find(compute_error_exact.begin(), compute_error_exact.end(), index) !=
        compute_error_exact.end()) {
        d.compute_error = true;
        return d;
    }
    if (stall_probability > 0.0 &&
        u01(lane_draw(seed, index, kStallLane)) < stall_probability) {
        d.stall_seconds = stall_seconds;
    }
    if (alloc_failure_probability > 0.0 &&
        u01(lane_draw(seed, index, kAllocLane)) < alloc_failure_probability) {
        d.alloc_failure = true;
        return d;  // the attempt dies before computing; nothing to corrupt
    }
    if (compute_error_probability > 0.0 &&
        u01(lane_draw(seed, index, kComputeLane)) < compute_error_probability) {
        d.compute_error = true;
        return d;
    }
    if (corrupt_probability > 0.0) {
        const std::uint64_t h = lane_draw(seed, index, kCorruptLane);
        if (u01(h) < corrupt_probability) {
            d.corrupt = true;
            const std::uint64_t h2 = mix64(h);
            d.corrupt_word = h2 >> 5;
            d.corrupt_bit = static_cast<unsigned>(h2 & 31U);
        }
    }
    return d;
}

double ChaosPlan::pool_stall(std::uint64_t index) const {
    if (pool_stall_probability <= 0.0) return 0.0;
    return u01(lane_draw(seed, index, kPoolLane)) < pool_stall_probability
               ? pool_stall_seconds
               : 0.0;
}

ChaosPlan ChaosPlan::parse(std::string_view spec, std::uint64_t seed) {
    ChaosPlan plan;
    plan.seed = seed;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string_view::npos) comma = spec.size();
        const std::string_view item = spec.substr(pos, comma - pos);
        const std::size_t item_off = pos;
        pos = comma + 1;
        if (item.empty()) continue;
        const std::size_t eq = item.find('=');
        if (eq == std::string_view::npos) {
            throw std::invalid_argument("ChaosPlan: expected key=value, got '" +
                                        std::string(item) + "' (byte " +
                                        std::to_string(item_off) + ")");
        }
        const std::string_view key = item.substr(0, eq);
        const std::string_view value = item.substr(eq + 1);
        const std::size_t value_off = item_off + eq + 1;
        if (key == "compute") {
            plan.compute_error_probability = parse_probability(key, value, value_off);
        } else if (key == "alloc") {
            plan.alloc_failure_probability = parse_probability(key, value, value_off);
        } else if (key == "stall") {
            plan.stall_probability = parse_probability(key, value, value_off);
        } else if (key == "stall_ms") {
            plan.stall_seconds = parse_millis(key, value, value_off);
        } else if (key == "corrupt") {
            plan.corrupt_probability = parse_probability(key, value, value_off);
        } else if (key == "pool_stall") {
            plan.pool_stall_probability = parse_probability(key, value, value_off);
        } else if (key == "pool_stall_ms") {
            plan.pool_stall_seconds = parse_millis(key, value, value_off);
        } else if (key == "shard_kill") {
            parse_shard_events(key, value, value_off, ShardEventKind::Kill,
                               plan.shard_events);
        } else if (key == "shard_partition") {
            parse_shard_events(key, value, value_off, ShardEventKind::Partition,
                               plan.shard_events);
        } else if (key == "shard_slow") {
            parse_shard_events(key, value, value_off, ShardEventKind::Slow,
                               plan.shard_events);
        } else if (key == "compute_exact") {
            std::size_t p = 0;
            while (p <= value.size()) {
                std::size_t colon = value.find(':', p);
                if (colon == std::string_view::npos) colon = value.size();
                const std::string_view num = value.substr(p, colon - p);
                if (!num.empty()) {
                    std::uint64_t v = 0;
                    for (const char c : num) {
                        if (c < '0' || c > '9') {
                            parse_fail(key, "needs ':'-separated indices", num,
                                       value_off + p);
                        }
                        v = v * 10 + static_cast<std::uint64_t>(c - '0');
                    }
                    plan.compute_error_exact.push_back(v);
                }
                p = colon + 1;
            }
        } else {
            throw std::invalid_argument("ChaosPlan: unknown key '" +
                                        std::string(key) + "' (byte " +
                                        std::to_string(item_off) + ")");
        }
    }
    std::stable_sort(plan.shard_events.begin(), plan.shard_events.end(),
                     [](const ShardEvent& a, const ShardEvent& b) {
                         return a.start_seconds < b.start_seconds;
                     });
    return plan;
}

ChaosPlan ChaosPlan::from_env() {
    const char* spec = std::getenv("WAVEHPC_CHAOS_PLAN");
    if (spec == nullptr || *spec == '\0') return {};
    std::uint64_t seed = 1;
    if (const char* raw = std::getenv("WAVEHPC_CHAOS_SEED");
        raw != nullptr && *raw != '\0') {
        char* end = nullptr;
        const unsigned long long v = std::strtoull(raw, &end, 10);
        if (end != raw && *end == '\0') seed = v;
    }
    return parse(spec, seed);
}

void ChaosEngine::set_plan(ChaosPlan plan) {
    std::lock_guard lk(mu_);
    plan_ = std::move(plan);
}

bool ChaosEngine::enabled() const {
    std::lock_guard lk(mu_);
    return plan_.enabled();
}

ChaosDecision ChaosEngine::next_compute_decision() {
    std::lock_guard lk(mu_);
    if (!plan_.enabled()) return {};
    ++stats_.draws;
    return plan_.decide(next_draw_++);
}

void ChaosEngine::inject_before_compute(const ChaosDecision& d) {
    if (d.stall_seconds > 0.0) {
        {
            std::lock_guard lk(mu_);
            ++stats_.stalls;
        }
        sleep_seconds(d.stall_seconds);
    }
    if (d.alloc_failure) {
        {
            std::lock_guard lk(mu_);
            ++stats_.alloc_failures;
        }
        throw std::bad_alloc();
    }
    if (d.compute_error) {
        {
            std::lock_guard lk(mu_);
            ++stats_.compute_errors;
        }
        throw ChaosComputeError(d.draw);
    }
}

void ChaosEngine::corrupt_result(const ChaosDecision& d, core::Pyramid& pyr) {
    if (!d.corrupt) return;
    std::vector<std::span<float>> bands;
    bands.reserve(1 + 3 * pyr.levels.size());
    for (auto& level : pyr.levels) {
        bands.push_back(level.lh.flat());
        bands.push_back(level.hl.flat());
        bands.push_back(level.hh.flat());
    }
    bands.push_back(pyr.approx.flat());
    std::uint64_t words = 0;
    for (const auto& b : bands) words += b.size();
    if (words == 0) return;
    std::uint64_t target = d.corrupt_word % words;
    for (auto& b : bands) {
        if (target < b.size()) {
            float& f = b[static_cast<std::size_t>(target)];
            std::uint32_t bits = 0;
            std::memcpy(&bits, &f, sizeof bits);
            bits ^= 1U << d.corrupt_bit;
            std::memcpy(&f, &bits, sizeof bits);
            break;
        }
        target -= b.size();
    }
    std::lock_guard lk(mu_);
    ++stats_.corruptions;
}

std::function<void()> ChaosEngine::pool_observer() {
    {
        std::lock_guard lk(mu_);
        if (plan_.pool_stall_probability <= 0.0) return {};
    }
    return [this] {
        double stall = 0.0;
        {
            std::lock_guard lk(mu_);
            stall = plan_.pool_stall(next_pool_draw_++);
            if (stall > 0.0) ++stats_.pool_stalls;
        }
        sleep_seconds(stall);
    };
}

ChaosStats ChaosEngine::stats() const {
    std::lock_guard lk(mu_);
    return stats_;
}

}  // namespace wavehpc::svc
