#include "svc/arena.hpp"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <utility>

namespace wavehpc::svc {

namespace {

std::uint64_t arena_env_u64(const char* name, std::uint64_t fallback) {
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') return fallback;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(raw, &end, 10);
    if (end == raw || *end != '\0') return fallback;
    return std::max<std::uint64_t>(1, v);
}

}  // namespace

ArenaConfig ArenaConfig::from_env() {
    ArenaConfig cfg;
    cfg.arena_bytes = arena_env_u64("WAVEHPC_SVC_ARENA_BYTES", cfg.arena_bytes);
    cfg.slab_classes = static_cast<std::size_t>(
        arena_env_u64("WAVEHPC_SVC_ARENA_SLAB_CLASSES", cfg.slab_classes));
    // Guard the shift below: 63 classes of >= 1 float already covers any
    // addressable buffer.
    cfg.slab_classes = std::min<std::size_t>(cfg.slab_classes, 48);
    return cfg;
}

void ArenaStats::merge(const ArenaStats& o) noexcept {
    hits += o.hits;
    misses += o.misses;
    heap_fallbacks += o.heap_fallbacks;
    returns += o.returns;
    dropped_over_budget += o.dropped_over_budget;
    freed_after_shutdown += o.freed_after_shutdown;
    reserved_slabs += o.reserved_slabs;
    bytes_pooled += o.bytes_pooled;
    bytes_outstanding += o.bytes_outstanding;
    high_water_bytes += o.high_water_bytes;
}

struct BufferArena::Shared {
    explicit Shared(ArenaConfig c) : cfg(c), free_lists(c.slab_classes) {}

    const ArenaConfig cfg;
    std::mutex mu;
    bool shutdown = false;                              // guarded by mu
    std::vector<std::vector<std::vector<float>>> free_lists;  // per class, guarded by mu
    ArenaStats stats;                                   // guarded by mu

    [[nodiscard]] std::size_t class_floats(std::size_t idx) const noexcept {
        return cfg.min_slab_floats << idx;
    }
    /// Smallest class with class_floats >= n; cfg.slab_classes if oversize.
    [[nodiscard]] std::size_t class_for(std::size_t n) const noexcept {
        for (std::size_t i = 0; i < cfg.slab_classes; ++i) {
            if (class_floats(i) >= n) return i;
        }
        return cfg.slab_classes;
    }
    /// The class whose size EXACTLY matches `capacity`; slab_classes when
    /// none does (foreign/oversize buffer — never pooled, so a vector the
    /// allocator over-reserved can't skew the byte accounting).
    [[nodiscard]] std::size_t class_for_capacity(std::size_t capacity) const noexcept {
        for (std::size_t i = 0; i < cfg.slab_classes; ++i) {
            if (class_floats(i) == capacity) return i;
        }
        return cfg.slab_classes;
    }
};

BufferArena::BufferArena(ArenaConfig cfg) : s_(std::make_shared<Shared>(cfg)) {}

BufferArena::~BufferArena() {
    std::vector<std::vector<std::vector<float>>> drop;
    {
        std::lock_guard lk(s_->mu);
        s_->shutdown = true;
        drop.swap(s_->free_lists);  // free pooled slabs outside the lock
        s_->stats.bytes_pooled = 0;
    }
}

const ArenaConfig& BufferArena::config() const noexcept { return s_->cfg; }

std::size_t BufferArena::class_floats(std::size_t idx) const noexcept {
    return s_->class_floats(idx);
}

std::size_t BufferArena::class_for(std::size_t n) const noexcept {
    return s_->class_for(n);
}

std::vector<float> BufferArena::obtain(std::size_t n, bool zeroed) {
    Shared& s = *s_;
    const std::size_t cls = s.class_for(n);
    if (cls >= s.cfg.slab_classes) {
        // Oversize: plain heap vector, never pooled. Born zeroed either way.
        std::lock_guard lk(s.mu);
        ++s.stats.heap_fallbacks;
        return std::vector<float>(n);
    }
    const std::size_t slab_floats = s.class_floats(cls);
    const auto slab_bytes = static_cast<std::uint64_t>(slab_floats) * sizeof(float);
    std::vector<float> slab;
    bool hit = false;
    {
        std::lock_guard lk(s.mu);
        auto& free = s.free_lists[cls];
        if (!free.empty()) {
            slab = std::move(free.back());
            free.pop_back();
            s.stats.bytes_pooled -= slab_bytes;
            hit = true;
            ++s.stats.hits;
        } else {
            ++s.stats.misses;
        }
        s.stats.bytes_outstanding += slab_bytes;
        s.stats.high_water_bytes = std::max(
            s.stats.high_water_bytes, s.stats.bytes_pooled + s.stats.bytes_outstanding);
    }
    if (!hit) {
        slab.reserve(slab_floats);  // capacity == class size: the pool key
    }
    if (zeroed) {
        slab.assign(n, 0.0F);  // within capacity: no reallocation
    } else {
        slab.resize(n);  // stale contents allowed: caller overwrites all
    }
    return slab;
}

void BufferArena::give_back(const std::shared_ptr<Shared>& sp,
                            std::vector<float>&& buf) {
    Shared& s = *sp;
    std::vector<float> local = std::move(buf);
    if (local.capacity() == 0) return;  // moved-from band (e.g. emptied image)
    const std::size_t cls = s.class_for_capacity(local.capacity());
    const bool pooled_class = cls < s.cfg.slab_classes;
    const auto slab_bytes =
        static_cast<std::uint64_t>(local.capacity()) * sizeof(float);
    bool keep = false;
    {
        std::lock_guard lk(s.mu);
        ++s.stats.returns;
        // Min-clamp keeps a foreign class-sized vector (recycled without a
        // matching obtain) from wrapping the gauge.
        if (pooled_class) {
            s.stats.bytes_outstanding -=
                std::min(slab_bytes, s.stats.bytes_outstanding);
        }
        if (s.shutdown) {
            ++s.stats.freed_after_shutdown;
        } else if (!pooled_class) {
            // Heap fallback or foreign capacity: freed, not pooled.
        } else if (s.stats.bytes_pooled + slab_bytes > s.cfg.arena_bytes) {
            ++s.stats.dropped_over_budget;
        } else {
            s.stats.bytes_pooled += slab_bytes;
            keep = true;
        }
        if (keep) s.free_lists[cls].push_back(std::move(local));
    }
    // !keep: `local` frees here, outside the lock.
}

void BufferArena::recycle(std::vector<float>&& buf) {
    give_back(s_, std::move(buf));
}

std::shared_ptr<const TransformResult> BufferArena::adopt(
    std::unique_ptr<TransformResult> result) {
    // The deleter co-owns the shared state, so a lease can outlive the
    // arena object itself; a post-shutdown release frees instead of pools.
    return std::shared_ptr<const TransformResult>(
        result.release(), [s = s_](const TransformResult* r) {
            auto* owned = const_cast<TransformResult*>(r);
            for (core::DetailBands& d : owned->pyramid.levels) {
                give_back(s, d.lh.release_data());
                give_back(s, d.hl.release_data());
                give_back(s, d.hh.release_data());
            }
            give_back(s, owned->pyramid.approx.release_data());
            delete owned;
        });
}

void BufferArena::recycle_pyramid(core::Pyramid&& pyr) {
    core::Pyramid local = std::move(pyr);
    for (core::DetailBands& d : local.levels) {
        give_back(s_, d.lh.release_data());
        give_back(s_, d.hl.release_data());
        give_back(s_, d.hh.release_data());
    }
    give_back(s_, local.approx.release_data());
}

void BufferArena::reserve(std::size_t floats, std::size_t count) {
    Shared& s = *s_;
    const std::size_t cls = s.class_for(floats);
    if (cls >= s.cfg.slab_classes) return;  // oversize: always heap, nothing to pool
    const std::size_t slab_floats = s.class_floats(cls);
    const auto slab_bytes = static_cast<std::uint64_t>(slab_floats) * sizeof(float);
    for (std::size_t i = 0; i < count; ++i) {
        // Allocate outside the lock; capacity == class size is the pool key.
        std::vector<float> slab;
        slab.reserve(slab_floats);
        std::lock_guard lk(s.mu);
        if (s.shutdown) return;
        if (s.stats.bytes_pooled + slab_bytes > s.cfg.arena_bytes) return;  // at budget
        s.stats.bytes_pooled += slab_bytes;
        ++s.stats.reserved_slabs;
        s.stats.high_water_bytes = std::max(
            s.stats.high_water_bytes, s.stats.bytes_pooled + s.stats.bytes_outstanding);
        s.free_lists[cls].push_back(std::move(slab));
    }
}

std::vector<std::size_t> BufferArena::pooled_per_class() const {
    Shared& s = *s_;
    std::lock_guard lk(s.mu);
    std::vector<std::size_t> counts(s.cfg.slab_classes, 0);
    for (std::size_t i = 0; i < s.cfg.slab_classes; ++i) {
        counts[i] = s.free_lists[i].size();
    }
    return counts;
}

ArenaStats BufferArena::stats() const {
    std::lock_guard lk(s_->mu);
    return s_->stats;
}

}  // namespace wavehpc::svc
