#pragma once
// Slab arena backing the pyramid service's hot path (ISSUE 8).
//
// Every scratch and subband buffer a compute needs is checked out of the
// arena as a power-of-two "slab" (a std::vector<float> whose CAPACITY is
// exactly a size class) and returned when its holder lets go, so the warm
// steady state performs no heap allocation at all. Three return routes
// feed the free lists:
//
//   * decompose recycles its transient row-pass scratch directly
//     (core::FloatBufferSource::recycle) at the end of every level;
//   * finished results are wrapped by adopt(): a shared_ptr whose deleter
//     harvests the pyramid's slabs when the LAST holder — the result
//     cache, any number of waiters, a shard peer — releases it. Cache
//     insertion therefore *donates* the compute's slabs instead of the
//     cache copying anything, and cache eviction is what returns them;
//   * oversize requests (beyond the largest class) fall back to plain
//     heap vectors, counted separately (heap_fallbacks), and are freed on
//     return rather than pooled.
//
// Slabs are classified by vector capacity: obtain() reserves exactly the
// class size and return classification only pools capacities that exactly
// match a class, so a foreign buffer can never corrupt the byte
// accounting. The byte budget (WAVEHPC_SVC_ARENA_BYTES) caps the POOLED
// (idle) bytes — checkout never fails, and returns beyond the budget are
// freed (dropped_over_budget).
//
// Lifetime: all state lives behind a shared_ptr<Shared> that every lease
// deleter co-owns, so a result outliving the arena (a client still holding
// a reply after service shutdown) stays valid and its late return simply
// frees (freed_after_shutdown) instead of pooling.
//
// Thread-safe: one mutex; obtain/recycle/adopt run concurrently from pool
// workers, client threads, and the cache eviction path.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/buffers.hpp"
#include "svc/request.hpp"

namespace wavehpc::svc {

struct ArenaConfig {
    /// Byte cap on idle (pooled) slabs; returns past it are freed.
    std::uint64_t arena_bytes = 256u << 20;
    /// Number of power-of-two size classes, starting at min_slab_floats.
    std::size_t slab_classes = 12;
    /// Smallest class, in floats (16 KiB). Requests above the largest
    /// class (min_slab_floats << (slab_classes-1)) fall back to the heap.
    std::size_t min_slab_floats = 4096;

    /// Defaults overridden by WAVEHPC_SVC_ARENA_BYTES /
    /// WAVEHPC_SVC_ARENA_SLAB_CLASSES (unset or unparsable keep the
    /// default; zeroes clamp to 1).
    [[nodiscard]] static ArenaConfig from_env();
};

/// Monotonic counters + resident gauges. bytes_outstanding counts slabs
/// currently checked out (including slabs donated to the result cache);
/// high_water_bytes is the max ever of pooled + outstanding.
struct ArenaStats {
    std::uint64_t hits = 0;            ///< checkouts served from a free list
    std::uint64_t misses = 0;          ///< checkouts that had to allocate a slab
    std::uint64_t heap_fallbacks = 0;  ///< oversize checkouts (never pooled)
    std::uint64_t returns = 0;         ///< slabs handed back (pooled or dropped)
    std::uint64_t dropped_over_budget = 0;  ///< returns freed: pool at budget
    std::uint64_t freed_after_shutdown = 0; ///< returns freed: arena gone
    std::uint64_t reserved_slabs = 0;  ///< slabs pre-provisioned by reserve()
    std::uint64_t bytes_pooled = 0;         ///< idle bytes on free lists
    std::uint64_t bytes_outstanding = 0;    ///< checked-out slab bytes
    std::uint64_t high_water_bytes = 0;     ///< max(pooled + outstanding) seen

    /// Fold another arena's stats into this one (fleet aggregation):
    /// every field adds; high_water adds too (fleet-wide peak footprint
    /// bound, matching how CacheStats merges its resident gauges).
    void merge(const ArenaStats& o) noexcept;
};

class BufferArena final : public core::FloatBufferSource {
public:
    explicit BufferArena(ArenaConfig cfg = {});
    /// Frees pooled slabs and flips the shared state to shutdown; leases
    /// still out there stay valid and free on their own release.
    ~BufferArena() override;

    BufferArena(const BufferArena&) = delete;
    BufferArena& operator=(const BufferArena&) = delete;

    /// Check out a buffer with size() == n (zero-filled iff `zeroed`).
    /// Never fails for lack of pool: a cold class allocates (miss), an
    /// oversize n falls back to the heap (heap_fallbacks).
    [[nodiscard]] std::vector<float> obtain(std::size_t n, bool zeroed) override;

    /// Return a buffer. Pooled iff its capacity exactly matches a size
    /// class and the idle budget holds; freed otherwise.
    void recycle(std::vector<float>&& buf) override;

    /// Wrap a freshly computed result in the shared lease: when the last
    /// holder releases it, every band's slab flows back through recycle().
    [[nodiscard]] std::shared_ptr<const TransformResult> adopt(
        std::unique_ptr<TransformResult> result);

    /// Hand back every band of a pyramid that will NOT become a lease
    /// (e.g. a result that failed its CRC audit). The pyramid is emptied.
    void recycle_pyramid(core::Pyramid&& pyr);

    /// Pre-provision the pool: push `count` fresh idle slabs onto the
    /// free list of the class that serves `floats`-float checkouts
    /// (no-op for oversize requests). Additive on purpose: reservations
    /// that round to the same class sum instead of aliasing, so a plan's
    /// whole reservation list can be replayed verbatim. Provisioned slabs
    /// count as
    /// reserved_slabs and bytes_pooled — NOT as hits or misses — so a
    /// caller that reserves its whole working set up front (the tile
    /// stream driver, via TilePlan::reservations()) can assert a
    /// zero-warm-allocation steady state: misses stays 0. Respects the
    /// idle byte budget; provisioning stops silently at the cap.
    void reserve(std::size_t floats, std::size_t count);

    /// Idle slab count per class (index = class, size = slab_classes) —
    /// the arena-stats line bench_tiled_stream prints for tile classes.
    [[nodiscard]] std::vector<std::size_t> pooled_per_class() const;

    [[nodiscard]] ArenaStats stats() const;
    [[nodiscard]] const ArenaConfig& config() const noexcept;

    /// Size (floats) of class `idx` — test hook.
    [[nodiscard]] std::size_t class_floats(std::size_t idx) const noexcept;
    /// Smallest class holding n floats; slab_classes (one past the last
    /// index) when n is oversize — test hook.
    [[nodiscard]] std::size_t class_for(std::size_t n) const noexcept;

private:
    struct Shared;
    static void give_back(const std::shared_ptr<Shared>& s, std::vector<float>&& buf);

    std::shared_ptr<Shared> s_;
};

}  // namespace wavehpc::svc
