#include "svc/metrics.hpp"

#include <ostream>

#include "perf/report.hpp"

namespace wavehpc::svc {

void ServiceCounters::merge(const ServiceCounters& o) noexcept {
    submitted += o.submitted;
    accepted += o.accepted;
    rejected += o.rejected;
    cache_hits += o.cache_hits;
    dedup_joins += o.dedup_joins;
    computes += o.computes;
    completed += o.completed;
    deadline_failures += o.deadline_failures;
    shutdown_failures += o.shutdown_failures;
    compute_failures += o.compute_failures;
    retries += o.retries;
    watchdog_timeouts += o.watchdog_timeouts;
    quarantined += o.quarantined;
    quarantine_rejects += o.quarantine_rejects;
    breaker_rejects += o.breaker_rejects;
    degraded_replies += o.degraded_replies;
    crc_audit_failures += o.crc_audit_failures;
    batches += o.batches;
    batched_requests += o.batched_requests;
    arena_hits += o.arena_hits;
    arena_misses += o.arena_misses;
    heap_fallbacks += o.heap_fallbacks;
    progressive += o.progressive;
    preview_hits += o.preview_hits;
}

void MetricsSnapshot::merge(const MetricsSnapshot& o) {
    counters.merge(o.counters);
    queue_wait.merge(o.queue_wait);
    compute.merge(o.compute);
    total.merge(o.total);
    for (std::size_t i = 0; i < kOutcomeCount; ++i) outcome[i].merge(o.outcome[i]);
    queue_depth += o.queue_depth;
    backoff_depth += o.backoff_depth;
    running += o.running;
    queued_bytes += o.queued_bytes;
}

const char* outcome_name(Outcome o) noexcept {
    switch (o) {
    case Outcome::Ok: return "ok";
    case Outcome::Retried: return "retried";
    case Outcome::Degraded: return "degraded";
    case Outcome::Quarantined: return "quarantined";
    case Outcome::BreakerRejected: return "breaker-rejected";
    }
    return "?";
}

void print_service_metrics(std::ostream& os, const std::string& label,
                           const MetricsSnapshot& m, const CacheStats& cache) {
    const auto& c = m.counters;
    os << label << ": submitted=" << c.submitted << " accepted=" << c.accepted
       << " rejected=" << c.rejected << " completed=" << c.completed
       << " computes=" << c.computes << " cache_hits=" << c.cache_hits
       << " dedup_joins=" << c.dedup_joins
       << " failures(deadline/shutdown/compute/watchdog)=" << c.deadline_failures
       << "/" << c.shutdown_failures << "/" << c.compute_failures << "/"
       << c.watchdog_timeouts << " queue_depth=" << m.queue_depth
       << " backoff_depth=" << m.backoff_depth << " running=" << m.running
       << " queued_bytes=" << m.queued_bytes << "\n";
    if (c.batches > 0) {
        const double avg = c.batches == 0
                               ? 0.0
                               : static_cast<double>(c.computes) /
                                     static_cast<double>(c.batches);
        os << label << " batching: batches=" << c.batches
           << " batched_requests=" << c.batched_requests
           << " avg_batch=" << avg << " arena(hits/misses/heap_fallbacks)="
           << c.arena_hits << "/" << c.arena_misses << "/" << c.heap_fallbacks
           << "\n";
    }
    if (c.progressive + c.preview_hits > 0) {
        os << label << " progressive: computes=" << c.progressive
           << " preview_hits=" << c.preview_hits << "\n";
    }
    if (c.retries + c.quarantined + c.quarantine_rejects + c.breaker_rejects +
            c.degraded_replies + c.crc_audit_failures >
        0) {
        os << label << " resilience: retries=" << c.retries
           << " degraded=" << c.degraded_replies
           << " quarantined=" << c.quarantined << " (+"
           << c.quarantine_rejects << " resubmits rejected)"
           << " breaker_rejects=" << c.breaker_rejects
           << " crc_audit_failures=" << c.crc_audit_failures << "\n";
    }

    perf::TableWriter lat(perf::latency_headers("latency"));
    perf::print_latency_row(lat, "queue_wait", m.queue_wait);
    perf::print_latency_row(lat, "compute", m.compute);
    perf::print_latency_row(lat, "total", m.total);
    for (std::size_t i = 0; i < kOutcomeCount; ++i) {
        if (m.outcome[i].count() == 0) continue;  // keep the quiet path quiet
        perf::print_latency_row(lat, outcome_name(static_cast<Outcome>(i)),
                                m.outcome[i]);
    }
    lat.print(os);

    perf::TableWriter ct({"cache", "hits", "misses", "hit_rate", "entries",
                          "bytes", "budget", "evictions", "evicted_bytes"});
    ct.add_row({"results", std::to_string(cache.hits), std::to_string(cache.misses),
                perf::TableWriter::pct(cache.hit_rate()),
                std::to_string(cache.entries), std::to_string(cache.bytes_in_use),
                std::to_string(cache.byte_budget), std::to_string(cache.evictions),
                std::to_string(cache.evicted_bytes)});
    ct.print(os);
    if (cache.audit_failures + cache.variant_hits > 0) {
        os << "cache audits: crc_failures=" << cache.audit_failures
           << " variant_hits=" << cache.variant_hits << "\n";
    }
}

}  // namespace wavehpc::svc
