#include "svc/metrics.hpp"

#include <ostream>

#include "perf/report.hpp"

namespace wavehpc::svc {

void print_service_metrics(std::ostream& os, const std::string& label,
                           const MetricsSnapshot& m, const CacheStats& cache) {
    const auto& c = m.counters;
    os << label << ": submitted=" << c.submitted << " accepted=" << c.accepted
       << " rejected=" << c.rejected << " completed=" << c.completed
       << " computes=" << c.computes << " cache_hits=" << c.cache_hits
       << " dedup_joins=" << c.dedup_joins
       << " failures(deadline/shutdown/compute)=" << c.deadline_failures << "/"
       << c.shutdown_failures << "/" << c.compute_failures
       << " queue_depth=" << m.queue_depth << " running=" << m.running
       << " queued_bytes=" << m.queued_bytes << "\n";

    perf::TableWriter lat(perf::latency_headers("latency"));
    perf::print_latency_row(lat, "queue_wait", m.queue_wait);
    perf::print_latency_row(lat, "compute", m.compute);
    perf::print_latency_row(lat, "total", m.total);
    lat.print(os);

    perf::TableWriter ct({"cache", "hits", "misses", "hit_rate", "entries",
                          "bytes", "budget", "evictions", "evicted_bytes"});
    ct.add_row({"results", std::to_string(cache.hits), std::to_string(cache.misses),
                perf::TableWriter::pct(cache.hit_rate()),
                std::to_string(cache.entries), std::to_string(cache.bytes_in_use),
                std::to_string(cache.byte_budget), std::to_string(cache.evictions),
                std::to_string(cache.evicted_bytes)});
    ct.print(os);
}

}  // namespace wavehpc::svc
