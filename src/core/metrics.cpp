#include "core/metrics.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace wavehpc::core {

namespace {
void require_same_shape(const ImageF& a, const ImageF& b) {
    if (a.rows() != b.rows() || a.cols() != b.cols()) {
        throw std::invalid_argument("metrics: image shapes differ");
    }
}
}  // namespace

double max_abs_diff(const ImageF& a, const ImageF& b) {
    require_same_shape(a, b);
    double m = 0.0;
    auto fa = a.flat();
    auto fb = b.flat();
    for (std::size_t i = 0; i < fa.size(); ++i) {
        m = std::max(m, std::abs(static_cast<double>(fa[i]) - fb[i]));
    }
    return m;
}

double rms_diff(const ImageF& a, const ImageF& b) {
    require_same_shape(a, b);
    if (a.size() == 0) return 0.0;
    double acc = 0.0;
    auto fa = a.flat();
    auto fb = b.flat();
    for (std::size_t i = 0; i < fa.size(); ++i) {
        const double d = static_cast<double>(fa[i]) - fb[i];
        acc += d * d;
    }
    return std::sqrt(acc / static_cast<double>(a.size()));
}

double psnr(const ImageF& a, const ImageF& b, double peak) {
    const double rms = rms_diff(a, b);
    if (rms == 0.0) return std::numeric_limits<double>::infinity();
    return 20.0 * std::log10(peak / rms);
}

double energy(const ImageF& img) {
    double acc = 0.0;
    for (float v : img.flat()) acc += static_cast<double>(v) * v;
    return acc;
}

}  // namespace wavehpc::core
