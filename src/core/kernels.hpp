#pragma once
// The unified DWT kernel layer: every backend (serial, threads, mesh,
// maspar) runs its analysis and synthesis arithmetic through the entry
// points below, so boundary handling, accumulation order, and kernel
// selection live in exactly one place.
//
// Two kernels implement the per-level analysis:
//
//   * Convolve — the paper's separable filter+decimate sweeps, fused so
//     one row pass emits both row bands and one cache-tiled column pass
//     emits all four subbands. Bit-identical to the historical
//     convolve_decimate_* reference (same per-coefficient accumulation
//     order); this is the golden kernel.
//
//   * Lifting — a fused in-place factorization of the analysis polyphase
//     matrix into taps/2 plane-rotation stages (the paraunitary lattice
//     form of the lifting scheme, Daubechies–Sweldens / Vaidyanathan),
//     derived *numerically from the registered filter bank* at plan-build
//     time and verified against the filter taps before use. Each stage is
//     two fused multiply-adds per sample pair in shear form (rotation =
//     scale x shear), so an analysis costs ~(taps+2) multiplies per
//     coefficient pair instead of convolution's 2*taps, the inner loops
//     are unit-stride and compiler-vectorizable, and the whole level runs
//     in-place over cache-sized polyphase strips. Haar reduces to the
//     single exact butterfly and stays bit-identical to Convolve; wider
//     filters agree within float tolerance (see DESIGN.md).
//
// Selection: callers pass DwtKernel::Auto to defer to the process-wide
// selector — set_default_dwt_kernel() if called, else the
// WAVEHPC_DWT_KERNEL environment variable ("convolve" | "lifting"), else
// Convolve. A Lifting request silently falls back to Convolve when no
// verified plan exists for the filter (never happens for the registered
// Daubechies banks; pinned by test_kernels).

#include <cstdint>
#include <functional>
#include <span>
#include <string_view>
#include <vector>

#include "core/boundary.hpp"
#include "core/filters.hpp"
#include "core/image.hpp"

namespace wavehpc::core {

enum class DwtKernel : std::uint8_t {
    Auto,      ///< resolve via set_default_dwt_kernel / WAVEHPC_DWT_KERNEL
    Convolve,  ///< separable convolve+decimate (bit-exact golden reference)
    Lifting,   ///< fused in-place lattice lifting (fast path)
};

/// "convolve" / "lifting" / "auto" (for diagnostics and bench labels).
[[nodiscard]] const char* to_string(DwtKernel k) noexcept;

/// Parse a kernel name ("convolve" | "lifting" | "auto", case-sensitive).
/// Returns false (out untouched) for anything else.
[[nodiscard]] bool parse_dwt_kernel(std::string_view text, DwtKernel& out) noexcept;

/// Process-wide kernel default used to resolve DwtKernel::Auto: the last
/// set_default_dwt_kernel() value, else WAVEHPC_DWT_KERNEL, else Convolve.
[[nodiscard]] DwtKernel default_dwt_kernel() noexcept;

/// Programmatic selector (overrides the environment until reset). Passing
/// DwtKernel::Auto clears the override and re-reads the environment.
void set_default_dwt_kernel(DwtKernel k) noexcept;

/// The kernel that will actually run for `fp`: Auto resolves through
/// default_dwt_kernel(), and Lifting degrades to Convolve when the filter
/// has no verified lifting plan.
[[nodiscard]] DwtKernel resolve_dwt_kernel(DwtKernel requested, const FilterPair& fp);

// ---------------------------------------------------------------------------
// Lifting plan (exposed for tests and the bench reporters).
// ---------------------------------------------------------------------------

/// Factorization of one orthonormal analysis filter pair into lattice
/// lifting stages. With polyphase inputs a[i] = x[2k+2i], b[i] = x[2k+2i+1]:
///
///   stage 0:        u[i] = a[i] + shear[0]*b[i]
///                   v[i] = b[i] - shear[0]*a[i]
///   stage t>=1:     u[i] = u[i] + shear[t]*v[i+1]
///                   v[i] = v[i+1] - shear[t]*u_old[i]
///   outputs:        lo[k] = scale_lo * u[k],  hi[k] = scale_hi * v[k]
///
/// where shear[t] = tan(theta_t) and scale_* fold the per-stage cos(theta_t)
/// factors plus the lattice output signs. Built from the filter taps by
/// peeling rotations off the polyphase matrix (double precision) and
/// verified by regenerating the impulse responses; `valid` is false when
/// the factorization does not reproduce the filter to 1e-6 or a shear
/// coefficient is too large to be numerically safe in float.
struct LiftingPlan {
    std::vector<float> shear;  ///< tan(theta_t), one per stage (taps/2 stages)
    float scale_lo = 1.0F;     ///< sign_lo * prod_t cos(theta_t)
    float scale_hi = 1.0F;     ///< sign_hi * prod_t cos(theta_t)
    bool valid = false;

    [[nodiscard]] std::size_t stages() const noexcept { return shear.size(); }
};

/// Derive (and verify) the lifting plan for `fp`. Deterministic and cheap
/// (a few hundred double ops); callers on hot paths build it once per level
/// sweep, not per row.
[[nodiscard]] LiftingPlan build_lifting_plan(const FilterPair& fp);

// ---------------------------------------------------------------------------
// Analysis entry points. `kernel` must be a *resolved* kernel
// (resolve_dwt_kernel); passing Auto resolves internally.
// ---------------------------------------------------------------------------

/// Fused 1-D analysis of one signal: both decimated bands in one pass.
/// lo/hi must have size x.size()/2. Bit-identical to two
/// convolve_decimate_1d calls for the Convolve kernel.
void analyze_1d(std::span<const float> x, const FilterPair& fp, std::span<float> lo,
                std::span<float> hi, BoundaryMode mode,
                DwtKernel kernel = DwtKernel::Auto);

/// Fused row analysis over rows [r0, r1): each input row is read once and
/// produces its low- and high-pass decimated rows together. lo/hi must be
/// (in.rows(), in.cols()/2). Threads backend parallelizes by row range;
/// serial passes [0, rows).
void analyze_rows_range(const ImageF& in, const FilterPair& fp, ImageF& lo, ImageF& hi,
                        BoundaryMode mode, DwtKernel kernel, std::size_t r0,
                        std::size_t r1);

/// Fused column analysis over output rows [k0, k1): one sweep over the two
/// row-band intermediates produces all four subbands. Outputs must be
/// (rows/2, cols); freshly constructed (zero) rows are assumed for the
/// Convolve accumulation path.
void analyze_cols_range(const ImageF& low_rows, const ImageF& high_rows,
                        const FilterPair& fp, ImageF& ll, ImageF& lh, ImageF& hl,
                        ImageF& hh, BoundaryMode mode, DwtKernel kernel,
                        std::size_t k0, std::size_t k1);

/// Column analysis over *pre-extended* stripes (the mesh backend gathers
/// its guard rows explicitly, so row indices 2k+n are used verbatim with
/// no boundary mapping). Output row k reads extended rows 2k..2k+taps-1.
void analyze_cols_ext_range(const ImageF& low_ext, const ImageF& high_ext,
                            const FilterPair& fp, ImageF& ll, ImageF& lh, ImageF& hl,
                            ImageF& hh, std::size_t k0, std::size_t k1);

// ---------------------------------------------------------------------------
// Tile-local analysis (the streaming tile driver, src/tile). The driver
// keeps only a sliding window of each level resident, so these entry
// points address the *global* signal/plane geometry while reading and
// writing tile-local storage. Both are bit-identical per coefficient to
// the full-plane sweeps above for every kernel: convolve computes each
// output independently, and the lifting ladder only ever reads pair
// indices to the RIGHT of an output (output k depends on polyphase pairs
// k .. k+stages-1), so a segment primed with stage-0 values for that
// window reproduces the monolithic expression tree exactly.
// ---------------------------------------------------------------------------

/// Fused 1-D analysis restricted to output range [k0, k1) of the FULL
/// signal `x`. lo/hi receive k1-k0 values (output k lands at lo[k-k0]);
/// boundary extension is applied at the true signal edges, never at k0/k1.
void analyze_1d_range(std::span<const float> x, const FilterPair& fp,
                      std::span<float> lo, std::span<float> hi, BoundaryMode mode,
                      DwtKernel kernel, std::size_t k0, std::size_t k1);

/// Maps an in-range global row-band row index (boundary mapping has
/// already been applied, so the argument is always < plane_rows) to the
/// storage of that row's column segment. The tile driver backs this with
/// its ring buffer; tests back it with a plain ImageF.
using RowAccessor = std::function<const float*(std::size_t)>;

/// Fused column analysis of one tile: output rows [k0, k1) of a plane
/// with `plane_rows` global row-band rows, over a `width`-column segment.
/// Outputs are (k1-k0, width) and written at LOCAL row k-k0 (the Convolve
/// path accumulates, so they must start zeroed). Row k touches global
/// rows 2k .. 2k+taps-1 mapped through `mode`, so the accessors are only
/// asked for rows the boundary maps into [0, plane_rows).
void analyze_cols_tile(const RowAccessor& low_row, const RowAccessor& high_row,
                       std::size_t plane_rows, std::size_t width,
                       const FilterPair& fp, ImageF& ll, ImageF& lh, ImageF& hl,
                       ImageF& hh, BoundaryMode mode, DwtKernel kernel,
                       std::size_t k0, std::size_t k1);

/// Whole-level fused analysis (serial convenience): rows then columns.
/// Allocates/reshapes the outputs as needed.
void analyze_level(const ImageF& in, const FilterPair& fp, ImageF& ll, ImageF& lh,
                   ImageF& hl, ImageF& hh, BoundaryMode mode,
                   DwtKernel kernel = DwtKernel::Auto);

// ---------------------------------------------------------------------------
// Synthesis boundary mapping: the one enumeration of (coefficient k, tap j)
// pairs contributing to synthesis output m, shared by the gather-form
// synthesis kernels (convolve.cpp) and the mesh backend's guard-row
// planner (mesh_idwt.cpp). Synthesis is the adjoint of analysis under the
// same BoundaryMode:
//   * Periodic — taps wrap modulo the signal (the historical behavior,
//     enumerated in the identical order: j ascending from m%2 by 2).
//   * ZeroPad — analysis windows that spilled past the end read zeros, so
//     nothing is accumulated back; only direct (unwrapped) taps contribute.
//   * Symmetric — spilled taps read the reflection 2n-1-i, so their
//     adjoint folds the contribution back onto the reflected sample:
//     output m additionally receives the taps of windows that reflected
//     onto it (direct taps first, then the single reflected image of m).
// Analysis windows start at 2k >= 0, so only the right edge ever extends;
// with taps <= n a spilled index reflects at most once, which is the fast
// enumeration below. Smaller bands (taps > n, deep pyramid levels) fall
// back to a full window scan so multiple wraps/reflections stay correct.
// ---------------------------------------------------------------------------

template <typename Fn>
inline void for_each_synthesis_tap(std::size_t m, std::size_t half, std::size_t taps,
                                   BoundaryMode mode, Fn&& fn) {
    const std::size_t n = 2 * half;
    if (mode == BoundaryMode::Periodic) {
        for (std::size_t j = m % 2; j < taps; j += 2) {
            std::ptrdiff_t d =
                static_cast<std::ptrdiff_t>(m) - static_cast<std::ptrdiff_t>(j);
            d %= static_cast<std::ptrdiff_t>(n);
            if (d < 0) d += static_cast<std::ptrdiff_t>(n);
            fn(static_cast<std::size_t>(d) / 2, j);
        }
        return;
    }
    if (taps > n) {
        // Tiny band: scan every window; extend_index handles repeated
        // reflection. ZeroPad windows outside the signal contribute nothing.
        for (std::size_t k = 0; k < half; ++k) {
            for (std::size_t j = 0; j < taps; ++j) {
                if (extend_index(static_cast<std::ptrdiff_t>(2 * k + j), n, mode) == m) {
                    fn(k, j);
                }
            }
        }
        return;
    }
    // Direct taps: windows that cover m without extension.
    for (std::size_t j = m % 2; j < taps && j <= m; j += 2) {
        fn((m - j) / 2, j);
    }
    if (mode == BoundaryMode::Symmetric) {
        // The unique extended index that reflects onto m (if any).
        const std::size_t i = 2 * n - 1 - m;
        if (i >= n && i + 3 <= n + taps) {
            const std::size_t jmin = i - n + 2;  // smallest tap with k < half
            for (std::size_t j = jmin; j < taps; j += 2) {
                fn((i - j) / 2, j);
            }
        }
    }
}

}  // namespace wavehpc::core
