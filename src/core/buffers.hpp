#pragma once
// Pluggable float-buffer supply for the decomposition paths (ISSUE 8).
//
// The decompose loops allocate two kinds of buffers per level: transient
// row-pass scratch (freed at the end of the level) and the subband planes
// that outlive the call inside the returned Pyramid. Routing both through a
// FloatBufferSource lets a caller substitute a recycling pool (svc's
// BufferArena) without the core layer depending on the service layer; the
// default HeapBufferSource preserves the historical new/delete behaviour
// exactly.
//
// Contract:
//   * obtain(n, zeroed) returns a vector with size() == n. When `zeroed`
//     is true every element is 0.0f; otherwise the contents are
//     unspecified (callers must fully overwrite them — the convolve column
//     pass ACCUMULATES into its outputs and therefore asks for zeroed
//     buffers, the row pass writes every element and does not).
//   * recycle(v) takes back a buffer the caller no longer needs. The
//     source may pool the capacity or free it; `v` is consumed either way.
//   * Both methods must be callable from any thread concurrently
//     (HeapBufferSource is trivially so; pooling sources synchronize).

#include <cstddef>
#include <utility>
#include <vector>

#include "core/image.hpp"

namespace wavehpc::core {

class FloatBufferSource {
public:
    virtual ~FloatBufferSource() = default;

    [[nodiscard]] virtual std::vector<float> obtain(std::size_t n, bool zeroed) = 0;
    virtual void recycle(std::vector<float>&& buf) = 0;
};

/// The identity source: plain heap vectors, nothing pooled. obtain()
/// value-initializes (vectors are born zeroed), so `zeroed` is vacuous and
/// behaviour is byte-for-byte the pre-ISSUE-8 allocation pattern.
class HeapBufferSource final : public FloatBufferSource {
public:
    [[nodiscard]] std::vector<float> obtain(std::size_t n, bool /*zeroed*/) override {
        return std::vector<float>(n);
    }
    void recycle(std::vector<float>&& buf) override {
        std::vector<float> drop = std::move(buf);  // free now
    }
};

/// Build an ImageF over a buffer from `src` (size rows*cols, zero-filled
/// iff `zeroed`).
[[nodiscard]] inline ImageF obtain_image(FloatBufferSource& src, std::size_t rows,
                                         std::size_t cols, bool zeroed) {
    return ImageF(rows, cols, src.obtain(rows * cols, zeroed));
}

}  // namespace wavehpc::core
