#pragma once
// Deterministic synthetic Landsat-Thematic-Mapper-like test scenes.
//
// The paper's experiments use a 512x512 Landsat-TM band of the Pacific
// Northwest, which we cannot redistribute. DWT cost is data independent, but
// correctness and compression-quality checks want realistic imagery, so this
// module synthesizes terrain with the statistics that make wavelet pyramids
// interesting: fractional-Brownian relief (broad 1/f spectrum), a meandering
// dark river (sharp edges for the detail bands), and faint along-track sensor
// striping (a TM artifact). Fully deterministic in (size, seed, band).

#include <cstdint>

#include "core/image.hpp"

namespace wavehpc::core {

/// Spectral band flavour, loosely mimicking TM band radiometry.
enum class TmBand : std::uint8_t {
    Visible,   ///< mid-toned terrain, strong relief shading
    NearIr,    ///< bright vegetated uplands, very dark water
    Thermal,   ///< smooth low-frequency field
};

/// Render a rows x cols scene with pixel values in [0, 255].
[[nodiscard]] ImageF landsat_tm_like(std::size_t rows, std::size_t cols,
                                     std::uint64_t seed = 1996,
                                     TmBand band = TmBand::Visible);

/// Low-level ingredient, exposed for tests: smooth value-noise fBm field in
/// [0, 1] with `octaves` octaves of persistence 0.55.
[[nodiscard]] ImageF fbm_field(std::size_t rows, std::size_t cols, std::uint64_t seed,
                               int octaves);

}  // namespace wavehpc::core
