#pragma once
// Minimal PGM (P5 binary / P2 ASCII) reader and writer so real remotely
// sensed scenes can be fed to the pipeline in place of the synthetic one.

#include <string>

#include "core/image.hpp"

namespace wavehpc::core {

/// Read an 8- or 16-bit PGM into floats in [0, maxval]. Throws
/// std::runtime_error on malformed input or I/O failure.
[[nodiscard]] ImageF read_pgm(const std::string& path);

/// Write an 8-bit binary (P5) PGM, clamping pixels to [0, 255] and rounding
/// to nearest. Throws std::runtime_error on I/O failure.
void write_pgm(const ImageF& img, const std::string& path);

}  // namespace wavehpc::core
