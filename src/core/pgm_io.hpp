#pragma once
// Minimal PGM (P5 binary / P2 ASCII) reader and writer so real remotely
// sensed scenes can be fed to the pipeline in place of the synthetic one.

#include <cstddef>
#include <string>

#include "core/image.hpp"

namespace wavehpc::core {

/// Read an 8- or 16-bit PGM into floats in [0, maxval]. Throws
/// std::runtime_error on malformed input or I/O failure.
[[nodiscard]] ImageF read_pgm(const std::string& path);

/// Dimensions from a PGM header without touching the raster.
struct PgmInfo {
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::size_t maxval = 0;
};

/// Parse just the header (magic, dims, maxval) of `path`.
[[nodiscard]] PgmInfo read_pgm_header(const std::string& path);

/// Windowed read: rows [y0, y0+rows) of the PGM at `path`, full width.
/// The streaming tile driver calls this band by band, so only the
/// *window* is bounded by the whole-file pixel cap — a 16k x 16k scene
/// that read_pgm would refuse streams fine. P5 seeks straight to the
/// window; P2 skips tokens. Same header caps and junk-after-maxval
/// handling as read_pgm. Throws std::runtime_error on malformed input,
/// I/O failure, or a window outside the image.
[[nodiscard]] ImageF read_pgm_rows(const std::string& path, std::size_t y0,
                                   std::size_t rows);

/// Write an 8-bit binary (P5) PGM, clamping pixels to [0, 255] and rounding
/// to nearest. Throws std::runtime_error on I/O failure.
void write_pgm(const ImageF& img, const std::string& path);

}  // namespace wavehpc::core
