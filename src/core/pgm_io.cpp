#include "core/pgm_io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace wavehpc::core {

namespace {

// Refuse headers that would make us allocate multi-GB buffers: the paper's
// scenes are 512x512; allow generous headroom but nothing hostile.
constexpr std::size_t kMaxDim = 1U << 16;      // 65536 px per side
constexpr std::size_t kMaxPixels = 1U << 26;   // 64 Mpx = 256 MiB as float

// Skip whitespace and '#' comment lines between PGM header tokens.
void skip_separators(std::istream& in) {
    for (;;) {
        const int c = in.peek();
        if (c == std::char_traits<char>::eof()) return;
        if (c == '#') {
            std::string line;
            std::getline(in, line);
        } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
            // The cast matters: passing a plain char with the high bit set
            // (negative) to std::isspace is undefined behaviour.
            in.get();
        } else {
            return;
        }
    }
}

std::size_t read_header_value(std::istream& in, const char* what) {
    skip_separators(in);
    long long v = -1;
    in >> v;
    if (!in || v <= 0) {
        throw std::runtime_error(std::string("read_pgm: bad header field: ") + what);
    }
    return static_cast<std::size_t>(v);
}

}  // namespace

ImageF read_pgm(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("read_pgm: cannot open " + path);

    std::string magic;
    in >> magic;
    if (magic != "P5" && magic != "P2") {
        throw std::runtime_error("read_pgm: not a PGM file: " + path);
    }
    const std::size_t cols = read_header_value(in, "width");
    const std::size_t rows = read_header_value(in, "height");
    if (cols > kMaxDim || rows > kMaxDim || cols * rows > kMaxPixels) {
        throw std::runtime_error("read_pgm: implausible image dimensions in " + path);
    }
    const std::size_t maxval = read_header_value(in, "maxval");
    if (maxval > 65535) throw std::runtime_error("read_pgm: maxval out of range");

    ImageF img(rows, cols);
    if (magic == "P2") {
        for (float& px : img.flat()) {
            long long v = 0;
            in >> v;
            if (!in) throw std::runtime_error("read_pgm: truncated ASCII data");
            px = static_cast<float>(v);
        }
        return img;
    }

    // Exactly one whitespace byte separates maxval from the raster. Anything
    // else (junk after maxval) would silently shift every pixel by a byte.
    const int sep = in.get();
    if (sep == std::char_traits<char>::eof() ||
        std::isspace(static_cast<unsigned char>(sep)) == 0) {
        throw std::runtime_error("read_pgm: junk after maxval in " + path);
    }
    const bool two_bytes = maxval > 255;
    std::vector<unsigned char> raw(rows * cols * (two_bytes ? 2 : 1));
    in.read(reinterpret_cast<char*>(raw.data()), static_cast<std::streamsize>(raw.size()));
    if (static_cast<std::size_t>(in.gcount()) != raw.size()) {
        throw std::runtime_error("read_pgm: truncated binary data");
    }
    auto flat = img.flat();
    for (std::size_t i = 0; i < flat.size(); ++i) {
        flat[i] = two_bytes
                      ? static_cast<float>((raw[2 * i] << 8) | raw[2 * i + 1])  // big-endian
                      : static_cast<float>(raw[i]);
    }
    return img;
}

void write_pgm(const ImageF& img, const std::string& path) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("write_pgm: cannot open " + path);
    out << "P5\n" << img.cols() << ' ' << img.rows() << "\n255\n";
    std::vector<unsigned char> raw;
    raw.reserve(img.size());
    for (float v : img.flat()) {
        const float clamped = std::min(255.0F, std::max(0.0F, v));
        raw.push_back(static_cast<unsigned char>(std::lround(clamped)));
    }
    out.write(reinterpret_cast<const char*>(raw.data()),
              static_cast<std::streamsize>(raw.size()));
    if (!out) throw std::runtime_error("write_pgm: write failed for " + path);
}

}  // namespace wavehpc::core
