#include "core/pgm_io.hpp"

#include <cmath>
#include <cstdint>
#include <fstream>
#include <span>
#include <sstream>
#include <stdexcept>

namespace wavehpc::core {

namespace {

// Refuse headers that would make us allocate multi-GB buffers: the paper's
// scenes are 512x512; allow generous headroom but nothing hostile.
constexpr std::size_t kMaxDim = 1U << 16;      // 65536 px per side
constexpr std::size_t kMaxPixels = 1U << 26;   // 64 Mpx = 256 MiB as float

// Skip whitespace and '#' comment lines between PGM header tokens.
void skip_separators(std::istream& in) {
    for (;;) {
        const int c = in.peek();
        if (c == std::char_traits<char>::eof()) return;
        if (c == '#') {
            std::string line;
            std::getline(in, line);
        } else if (std::isspace(static_cast<unsigned char>(c)) != 0) {
            // The cast matters: passing a plain char with the high bit set
            // (negative) to std::isspace is undefined behaviour.
            in.get();
        } else {
            return;
        }
    }
}

std::size_t read_header_value(std::istream& in, const char* what) {
    skip_separators(in);
    long long v = -1;
    in >> v;
    if (!in || v <= 0) {
        throw std::runtime_error(std::string("read_pgm: bad header field: ") + what);
    }
    return static_cast<std::size_t>(v);
}

struct PgmHeader {
    bool binary = false;  // P5 (vs P2 ASCII)
    std::size_t cols = 0;
    std::size_t rows = 0;
    std::size_t maxval = 0;
};

// Parse magic, dims, and maxval; on return the stream sits at the first
// raster byte (P5: the single post-maxval separator consumed and
// verified) or the first sample token (P2). Per-dimension caps apply
// here; total-pixel caps are the caller's, because the windowed reader
// only bounds the window it materializes.
PgmHeader parse_pgm_header(std::istream& in, const std::string& path) {
    std::string magic;
    in >> magic;
    if (magic != "P5" && magic != "P2") {
        throw std::runtime_error("read_pgm: not a PGM file: " + path);
    }
    PgmHeader h;
    h.binary = magic == "P5";
    h.cols = read_header_value(in, "width");
    h.rows = read_header_value(in, "height");
    if (h.cols > kMaxDim || h.rows > kMaxDim) {
        throw std::runtime_error("read_pgm: implausible image dimensions in " + path);
    }
    h.maxval = read_header_value(in, "maxval");
    if (h.maxval > 65535) throw std::runtime_error("read_pgm: maxval out of range");
    if (h.binary) {
        // Exactly one whitespace byte separates maxval from the raster.
        // Anything else (junk after maxval) would silently shift every
        // pixel by a byte.
        const int sep = in.get();
        if (sep == std::char_traits<char>::eof() ||
            std::isspace(static_cast<unsigned char>(sep)) == 0) {
            throw std::runtime_error("read_pgm: junk after maxval in " + path);
        }
    }
    return h;
}

// Decode `count` raster samples that are already in `raw` into `dst`.
void decode_samples(const std::vector<unsigned char>& raw, bool two_bytes,
                    std::span<float> dst) {
    for (std::size_t i = 0; i < dst.size(); ++i) {
        dst[i] = two_bytes
                     ? static_cast<float>((raw[2 * i] << 8) | raw[2 * i + 1])  // big-endian
                     : static_cast<float>(raw[i]);
    }
}

}  // namespace

ImageF read_pgm(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("read_pgm: cannot open " + path);
    const PgmHeader h = parse_pgm_header(in, path);
    // Widened to 64-bit before multiplying: on a 32-bit size_t the
    // in-cap 65536 x 65536 header would wrap cols*rows to 0 and dodge
    // the guard entirely.
    if (static_cast<std::uint64_t>(h.cols) * h.rows > kMaxPixels) {
        throw std::runtime_error("read_pgm: implausible image dimensions in " + path);
    }

    ImageF img(h.rows, h.cols);
    if (!h.binary) {
        for (float& px : img.flat()) {
            long long v = 0;
            in >> v;
            if (!in) throw std::runtime_error("read_pgm: truncated ASCII data");
            px = static_cast<float>(v);
        }
        return img;
    }

    const bool two_bytes = h.maxval > 255;
    std::vector<unsigned char> raw(h.rows * h.cols * (two_bytes ? 2 : 1));
    in.read(reinterpret_cast<char*>(raw.data()), static_cast<std::streamsize>(raw.size()));
    if (static_cast<std::size_t>(in.gcount()) != raw.size()) {
        throw std::runtime_error("read_pgm: truncated binary data");
    }
    decode_samples(raw, two_bytes, img.flat());
    return img;
}

PgmInfo read_pgm_header(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("read_pgm_header: cannot open " + path);
    const PgmHeader h = parse_pgm_header(in, path);
    return PgmInfo{h.rows, h.cols, h.maxval};
}

ImageF read_pgm_rows(const std::string& path, std::size_t y0, std::size_t rows) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("read_pgm_rows: cannot open " + path);
    const PgmHeader h = parse_pgm_header(in, path);
    if (rows == 0 || y0 > h.rows || rows > h.rows - y0) {
        throw std::runtime_error("read_pgm_rows: window outside image in " + path);
    }
    if (static_cast<std::uint64_t>(h.cols) * rows > kMaxPixels) {
        throw std::runtime_error("read_pgm_rows: window too large in " + path);
    }

    ImageF img(rows, h.cols);
    if (!h.binary) {
        // P2: the samples before the window must be tokenized past.
        const std::uint64_t skip = static_cast<std::uint64_t>(y0) * h.cols;
        for (std::uint64_t i = 0; i < skip; ++i) {
            long long v = 0;
            in >> v;
            if (!in) throw std::runtime_error("read_pgm_rows: truncated ASCII data");
        }
        for (float& px : img.flat()) {
            long long v = 0;
            in >> v;
            if (!in) throw std::runtime_error("read_pgm_rows: truncated ASCII data");
            px = static_cast<float>(v);
        }
        return img;
    }

    const bool two_bytes = h.maxval > 255;
    const std::uint64_t bpp = two_bytes ? 2 : 1;
    // P5: the raster is fixed-pitch, so the window start is one seek away
    // and nothing before (or after) it is ever read.
    in.seekg(static_cast<std::streamoff>(static_cast<std::uint64_t>(y0) * h.cols * bpp),
             std::ios::cur);
    if (!in) throw std::runtime_error("read_pgm_rows: seek failed in " + path);
    std::vector<unsigned char> raw(rows * h.cols * bpp);
    in.read(reinterpret_cast<char*>(raw.data()), static_cast<std::streamsize>(raw.size()));
    if (static_cast<std::size_t>(in.gcount()) != raw.size()) {
        throw std::runtime_error("read_pgm_rows: truncated binary data");
    }
    decode_samples(raw, two_bytes, img.flat());
    return img;
}

void write_pgm(const ImageF& img, const std::string& path) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("write_pgm: cannot open " + path);
    out << "P5\n" << img.cols() << ' ' << img.rows() << "\n255\n";
    std::vector<unsigned char> raw;
    raw.reserve(img.size());
    for (float v : img.flat()) {
        const float clamped = std::min(255.0F, std::max(0.0F, v));
        raw.push_back(static_cast<unsigned char>(std::lround(clamped)));
    }
    out.write(reinterpret_cast<const char*>(raw.data()),
              static_cast<std::streamsize>(raw.size()));
    if (!out) throw std::runtime_error("write_pgm: write failed for " + path);
}

}  // namespace wavehpc::core
