#include "core/synthetic.hpp"

#include <cmath>

namespace wavehpc::core {

namespace {

// splitmix64: tiny, high-quality, stateless hash — keeps the scene
// deterministic without touching any global RNG.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

[[nodiscard]] float hash01(std::uint64_t seed, std::int64_t gx, std::int64_t gy) noexcept {
    const std::uint64_t h = splitmix64(seed ^ splitmix64(static_cast<std::uint64_t>(gx) *
                                                         0x9e3779b97f4a7c15ULL) ^
                                       splitmix64(static_cast<std::uint64_t>(gy) + 0x7f4a7c15ULL));
    return static_cast<float>(h >> 11) * (1.0F / 9007199254740992.0F);  // 53-bit mantissa
}

[[nodiscard]] float smoothstep(float t) noexcept { return t * t * (3.0F - 2.0F * t); }

// Bilinear value noise on an integer lattice of spacing `cell`.
[[nodiscard]] float value_noise(std::uint64_t seed, float x, float y) noexcept {
    const auto gx = static_cast<std::int64_t>(std::floor(x));
    const auto gy = static_cast<std::int64_t>(std::floor(y));
    const float tx = smoothstep(x - static_cast<float>(gx));
    const float ty = smoothstep(y - static_cast<float>(gy));
    const float v00 = hash01(seed, gx, gy);
    const float v10 = hash01(seed, gx + 1, gy);
    const float v01 = hash01(seed, gx, gy + 1);
    const float v11 = hash01(seed, gx + 1, gy + 1);
    const float a = v00 + (v10 - v00) * tx;
    const float b = v01 + (v11 - v01) * tx;
    return a + (b - a) * ty;
}

}  // namespace

ImageF fbm_field(std::size_t rows, std::size_t cols, std::uint64_t seed, int octaves) {
    ImageF out(rows, cols);
    const float base_freq = 4.0F / static_cast<float>(std::max(rows, cols));
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            float amp = 1.0F;
            float freq = base_freq;
            float acc = 0.0F;
            float norm = 0.0F;
            for (int o = 0; o < octaves; ++o) {
                acc += amp * value_noise(seed + static_cast<std::uint64_t>(o) * 0x51ed2701ULL,
                                         static_cast<float>(c) * freq,
                                         static_cast<float>(r) * freq);
                norm += amp;
                amp *= 0.55F;
                freq *= 2.0F;
            }
            out(r, c) = acc / norm;
        }
    }
    return out;
}

ImageF landsat_tm_like(std::size_t rows, std::size_t cols, std::uint64_t seed, TmBand band) {
    ImageF relief = fbm_field(rows, cols, seed, 7);
    ImageF texture = fbm_field(rows, cols, seed ^ 0xabcdef1234ULL, 5);

    ImageF out(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) {
            const float h = relief(r, c);

            // Hill shading from the local relief gradient (east-facing sun).
            const std::size_t ce = (c + 1 < cols) ? c + 1 : c;
            const std::size_t rs = (r + 1 < rows) ? r + 1 : r;
            const float shade =
                0.5F + 2.5F * (relief(r, ce) - h) - 1.5F * (relief(rs, c) - h);

            // A meandering river: dark where we are close to the sine track.
            const float track = 0.5F + 0.22F * std::sin(6.28318F * static_cast<float>(r) /
                                                        static_cast<float>(rows) * 1.7F) +
                                0.08F * (texture(r, c) - 0.5F);
            const float d = std::abs(static_cast<float>(c) / static_cast<float>(cols) - track);
            const float river = std::exp(-d * d * 900.0F);

            float v = 0.0F;
            switch (band) {
                case TmBand::Visible:
                    v = 90.0F + 110.0F * h + 35.0F * (shade - 0.5F) +
                        18.0F * (texture(r, c) - 0.5F);
                    v = v * (1.0F - 0.75F * river) + 20.0F * river;
                    break;
                case TmBand::NearIr:
                    v = 60.0F + 160.0F * h + 25.0F * (texture(r, c) - 0.5F);
                    v = v * (1.0F - 0.95F * river) + 6.0F * river;
                    break;
                case TmBand::Thermal:
                    v = 120.0F + 70.0F * relief(r, c) + 10.0F * river;
                    break;
            }

            // Along-track sensor striping: TM's 16-detector whiskbroom leaves
            // a faint period-16 row signature.
            const float stripe =
                1.5F * std::sin(6.28318F * static_cast<float>(r % 16) / 16.0F);
            v += stripe;

            out(r, c) = std::min(255.0F, std::max(0.0F, v));
        }
    }
    return out;
}

}  // namespace wavehpc::core
