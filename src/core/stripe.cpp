#include "core/stripe.hpp"

namespace wavehpc::core {

StripePartition::StripePartition(std::size_t rows, std::size_t parts,
                                 std::size_t granularity)
    : rows_(rows), parts_(parts) {
    if (parts == 0) throw std::invalid_argument("StripePartition: parts must be > 0");
    if (granularity == 0 || granularity % 2 != 0) {
        throw std::invalid_argument(
            "StripePartition: granularity must be a positive multiple of 2");
    }
    if (rows % granularity != 0 || rows < granularity * parts) {
        throw std::invalid_argument(
            "StripePartition: rows must be a multiple of granularity and >= "
            "granularity * parts");
    }
    // Distribute rows/granularity units as evenly as possible; every stripe
    // height is then a multiple of the granularity, so decimated output rows
    // stay aligned per rank at every level.
    const std::size_t units = rows / granularity;
    starts_.resize(parts + 1);
    starts_[0] = 0;
    for (std::size_t i = 0; i < parts; ++i) {
        const std::size_t share = units / parts + ((i < units % parts) ? 1 : 0);
        starts_[i + 1] = starts_[i] + granularity * share;
    }
}

std::size_t StripePartition::first_row(std::size_t rank) const {
    if (rank >= parts_) throw std::out_of_range("StripePartition::first_row: bad rank");
    return starts_[rank];
}

std::size_t StripePartition::height(std::size_t rank) const {
    if (rank >= parts_) throw std::out_of_range("StripePartition::height: bad rank");
    return starts_[rank + 1] - starts_[rank];
}

std::size_t StripePartition::owner(std::size_t r) const {
    if (r >= rows_) throw std::out_of_range("StripePartition::owner: bad row");
    // Binary search over the stripe starts.
    std::size_t lo = 0;
    std::size_t hi = parts_;
    while (hi - lo > 1) {
        const std::size_t mid = (lo + hi) / 2;
        if (starts_[mid] <= r) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return lo;
}

Coord2 place_rank(std::size_t rank, std::size_t mesh_width, MappingPolicy policy) {
    if (mesh_width == 0) throw std::invalid_argument("place_rank: mesh width must be > 0");
    const std::size_t row = rank / mesh_width;
    const std::size_t col = rank % mesh_width;
    switch (policy) {
        case MappingPolicy::Naive:
            return {col, row};
        case MappingPolicy::Snake:
            return {(row % 2 == 0) ? col : mesh_width - 1 - col, row};
    }
    throw std::logic_error("place_rank: unknown policy");
}

std::vector<Coord2> make_placement(std::size_t nranks, std::size_t mesh_width,
                                   MappingPolicy policy) {
    std::vector<Coord2> out;
    out.reserve(nranks);
    for (std::size_t r = 0; r < nranks; ++r) {
        out.push_back(place_rank(r, mesh_width, policy));
    }
    return out;
}

}  // namespace wavehpc::core
