#pragma once
// 2-D row-major image container used throughout the suite.
//
// Pixels are stored contiguously; row() hands out std::span views so the
// filtering kernels never touch raw pointers. The paper processes 8-bit
// Landsat bands as single-precision floats, hence the ImageF alias.

#include <cstddef>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

namespace wavehpc::core {

template <typename T>
class Image {
public:
    Image() = default;

    Image(std::size_t rows, std::size_t cols, T fill = T{})
        : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

    Image(std::size_t rows, std::size_t cols, std::vector<T> data)
        : rows_(rows), cols_(cols), data_(std::move(data)) {
        if (data_.size() != rows_ * cols_) {
            throw std::invalid_argument("Image: data size does not match rows*cols");
        }
    }

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
    [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
    [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

    [[nodiscard]] T& operator()(std::size_t r, std::size_t c) noexcept {
        return data_[r * cols_ + c];
    }
    [[nodiscard]] const T& operator()(std::size_t r, std::size_t c) const noexcept {
        return data_[r * cols_ + c];
    }

    [[nodiscard]] T& at(std::size_t r, std::size_t c) {
        bounds_check(r, c);
        return data_[r * cols_ + c];
    }
    [[nodiscard]] const T& at(std::size_t r, std::size_t c) const {
        bounds_check(r, c);
        return data_[r * cols_ + c];
    }

    [[nodiscard]] std::span<T> row(std::size_t r) noexcept {
        return {data_.data() + r * cols_, cols_};
    }
    [[nodiscard]] std::span<const T> row(std::size_t r) const noexcept {
        return {data_.data() + r * cols_, cols_};
    }

    [[nodiscard]] std::span<T> flat() noexcept { return {data_.data(), data_.size()}; }
    [[nodiscard]] std::span<const T> flat() const noexcept {
        return {data_.data(), data_.size()};
    }

    /// Copy out the rectangle [r0, r0+h) x [c0, c0+w).
    [[nodiscard]] Image sub(std::size_t r0, std::size_t c0, std::size_t h,
                            std::size_t w) const {
        if (r0 + h > rows_ || c0 + w > cols_) {
            throw std::out_of_range("Image::sub: rectangle exceeds image bounds");
        }
        Image out(h, w);
        for (std::size_t r = 0; r < h; ++r) {
            auto src = row(r0 + r).subspan(c0, w);
            auto dst = out.row(r);
            std::copy(src.begin(), src.end(), dst.begin());
        }
        return out;
    }

    /// Paste `patch` with its top-left corner at (r0, c0).
    void paste(const Image& patch, std::size_t r0, std::size_t c0) {
        if (r0 + patch.rows() > rows_ || c0 + patch.cols() > cols_) {
            throw std::out_of_range("Image::paste: patch exceeds image bounds");
        }
        for (std::size_t r = 0; r < patch.rows(); ++r) {
            auto src = patch.row(r);
            auto dst = row(r0 + r).subspan(c0, patch.cols());
            std::copy(src.begin(), src.end(), dst.begin());
        }
    }

    friend bool operator==(const Image& a, const Image& b) {
        return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
    }

    /// Move the pixel storage out (capacity preserved), leaving an empty
    /// 0x0 image. This is the buffer-recycling hand-off: a pooling
    /// FloatBufferSource classifies the returned vector by capacity, so
    /// pyramids built from pooled slabs give their slabs back intact.
    [[nodiscard]] std::vector<T> release_data() noexcept {
        rows_ = 0;
        cols_ = 0;
        return std::move(data_);
    }

private:
    void bounds_check(std::size_t r, std::size_t c) const {
        if (r >= rows_ || c >= cols_) {
            throw std::out_of_range("Image: index out of range");
        }
    }

    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<T> data_;
};

using ImageF = Image<float>;
using ImageD = Image<double>;

}  // namespace wavehpc::core
