#include "core/filters.hpp"

#include <cmath>
#include <stdexcept>

namespace wavehpc::core {

FilterPair::FilterPair(std::vector<float> low, std::string name)
    : low_(std::move(low)), name_(std::move(name)) {
    if (low_.empty() || low_.size() % 2 != 0) {
        throw std::invalid_argument("FilterPair: filter length must be even and > 0");
    }
    const int n = static_cast<int>(low_.size());
    high_.resize(low_.size());
    for (int k = 0; k < n; ++k) {
        const float sign = (k % 2 == 0) ? 1.0F : -1.0F;
        high_[static_cast<std::size_t>(k)] = sign * low_[static_cast<std::size_t>(n - 1 - k)];
    }
}

FilterPair FilterPair::daubechies(int taps) {
    // Standard double-precision Daubechies scaling coefficients, normalized
    // so that sum(l^2) = 1 and sum(l) = sqrt(2).
    switch (taps) {
        case 2:
            return FilterPair({0.70710678118654752F, 0.70710678118654752F}, "haar");
        case 4:
            return FilterPair({0.48296291314469025F, 0.83651630373746899F,
                               0.22414386804185735F, -0.12940952255092145F},
                              "daub4");
        case 6:
            return FilterPair({0.33267055295095688F, 0.80689150931333875F,
                               0.45987750211933132F, -0.13501102001039084F,
                               -0.08544127388224149F, 0.03522629188210562F},
                              "daub6");
        case 8:
            return FilterPair({0.23037781330885523F, 0.71484657055254153F,
                               0.63088076792959036F, -0.02798376941698385F,
                               -0.18703481171888114F, 0.03084138183598697F,
                               0.03288301166698295F, -0.01059740178499728F},
                              "daub8");
        default:
            throw std::invalid_argument("FilterPair::daubechies: taps must be 2, 4, 6 or 8");
    }
}

}  // namespace wavehpc::core
