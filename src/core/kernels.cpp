#include "core/kernels.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace wavehpc::core {

namespace {

// Column-tile width (floats) for the fused convolve column sweep: per tile
// the inner loops touch 4 output slices + 2 source slices, 6 * 512 * 4 B =
// 12 KiB, comfortably inside L1 alongside the filter taps.
constexpr std::size_t kColTile = 512;

// Process-wide programmatic override; Auto = defer to the environment.
std::atomic<DwtKernel> g_default_kernel{DwtKernel::Auto};

[[nodiscard]] DwtKernel env_kernel() noexcept {
    const char* text = std::getenv("WAVEHPC_DWT_KERNEL");
    DwtKernel k = DwtKernel::Convolve;
    if (text != nullptr) {
        // Unrecognized values keep the safe default (documented in README).
        (void)parse_dwt_kernel(text, k);
        if (k == DwtKernel::Auto) k = DwtKernel::Convolve;
    }
    return k;
}

void require_even(std::size_t n, const char* what) {
    if (n == 0 || n % 2 != 0) {
        throw std::invalid_argument(std::string("kernels: ") + what +
                                    " must be even and non-zero");
    }
}

// ---------------------------------------------------------------------------
// Lifting plan construction: peel plane rotations off the analysis filter
// functionals in double precision, then verify by regenerating the filter.
//
// State: after stage t the lattice outputs are shift-invariant functionals
//   u_t[i] = sum_j pU[j] a[i+j] + qU[j] b[i+j]   (likewise pV/qV for v_t)
// over the polyphase streams a[i] = x[2k+2i], b[i] = x[2k+2i+1]. The
// forward recursion (see kernels.hpp) grows the support by one per stage;
// peeling inverts it one rotation at a time, choosing the angle that
// annihilates the tail coefficient.
// ---------------------------------------------------------------------------

struct Lattice {
    std::vector<double> c;  // cos(theta_t)
    std::vector<double> s;  // sin(theta_t)
};

// Forward-regenerate the functional coefficient arrays from a lattice and
// return the max abs deviation from the target polyphase coefficients.
[[nodiscard]] double lattice_residual(const Lattice& lat, const std::vector<double>& tpU,
                                      const std::vector<double>& tqU,
                                      const std::vector<double>& tpV,
                                      const std::vector<double>& tqV) {
    const std::size_t m = lat.c.size();
    std::vector<double> pU{lat.c[0]}, qU{lat.s[0]}, pV{-lat.s[0]}, qV{lat.c[0]};
    for (std::size_t t = 1; t < m; ++t) {
        std::vector<double> npU(t + 1, 0.0), nqU(t + 1, 0.0), npV(t + 1, 0.0),
            nqV(t + 1, 0.0);
        const double c = lat.c[t];
        const double s = lat.s[t];
        for (std::size_t j = 0; j <= t; ++j) {
            const double pu = j < t ? pU[j] : 0.0;
            const double qu = j < t ? qU[j] : 0.0;
            const double pv = j > 0 ? pV[j - 1] : 0.0;
            const double qv = j > 0 ? qV[j - 1] : 0.0;
            npU[j] = c * pu + s * pv;
            nqU[j] = c * qu + s * qv;
            npV[j] = -s * pu + c * pv;
            nqV[j] = -s * qu + c * qv;
        }
        pU = std::move(npU);
        qU = std::move(nqU);
        pV = std::move(npV);
        qV = std::move(nqV);
    }
    double worst = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
        worst = std::max(worst, std::abs(pU[j] - tpU[j]));
        worst = std::max(worst, std::abs(qU[j] - tqU[j]));
        worst = std::max(worst, std::abs(pV[j] - tpV[j]));
        worst = std::max(worst, std::abs(qV[j] - tqV[j]));
    }
    return worst;
}

// Attempt the peeling for one output-sign combination. Returns the residual
// of the forward verification (infinity when the peeling degenerates).
[[nodiscard]] double try_factorize(const FilterPair& fp, double sign_lo, double sign_hi,
                                   Lattice& out) {
    const auto fl = fp.low();
    const auto fh = fp.high();
    const std::size_t m = fl.size() / 2;
    std::vector<double> pU(m), qU(m), pV(m), qV(m);
    for (std::size_t j = 0; j < m; ++j) {
        pU[j] = sign_lo * static_cast<double>(fl[2 * j]);
        qU[j] = sign_lo * static_cast<double>(fl[2 * j + 1]);
        pV[j] = sign_hi * static_cast<double>(fh[2 * j]);
        qV[j] = sign_hi * static_cast<double>(fh[2 * j + 1]);
    }
    const std::vector<double> tpU = pU, tqU = qU, tpV = pV, tqV = qV;

    Lattice lat;
    lat.c.assign(m, 1.0);
    lat.s.assign(m, 0.0);
    for (std::size_t t = m; t-- > 1;) {
        // Tail annihilation: (c, s) proportional to (pV[t], pU[t]) zeroes
        // the stage-t coefficient of the inverted U functional.
        const double r = std::hypot(pV[t], pU[t]);
        if (r < 1e-12) return std::numeric_limits<double>::infinity();
        const double c = pV[t] / r;
        const double s = pU[t] / r;
        lat.c[t] = c;
        lat.s[t] = s;
        std::vector<double> npU(t), nqU(t), npV(t), nqV(t);
        for (std::size_t j = 0; j < t; ++j) {
            npU[j] = c * pU[j] - s * pV[j];
            nqU[j] = c * qU[j] - s * qV[j];
            npV[j] = s * pU[j + 1] + c * pV[j + 1];
            nqV[j] = s * qU[j + 1] + c * qV[j + 1];
        }
        pU = std::move(npU);
        qU = std::move(nqU);
        pV = std::move(npV);
        qV = std::move(nqV);
    }
    // Stage 0 must be a pure rotation: (pU, qU) = (c, s), (pV, qV) = (-s, c).
    lat.c[0] = pU[0];
    lat.s[0] = qU[0];
    // The head-zero conditions of every peeled stage, the rotation form of
    // stage 0, and the sign choice are all checked at once by regenerating
    // the filter from the lattice.
    const double residual = lattice_residual(lat, tpU, tqU, tpV, tqV);
    out = std::move(lat);
    return residual;
}

}  // namespace

const char* to_string(DwtKernel k) noexcept {
    switch (k) {
        case DwtKernel::Auto:
            return "auto";
        case DwtKernel::Convolve:
            return "convolve";
        case DwtKernel::Lifting:
            return "lifting";
    }
    return "convolve";  // unreachable
}

bool parse_dwt_kernel(std::string_view text, DwtKernel& out) noexcept {
    if (text == "auto") {
        out = DwtKernel::Auto;
    } else if (text == "convolve") {
        out = DwtKernel::Convolve;
    } else if (text == "lifting") {
        out = DwtKernel::Lifting;
    } else {
        return false;
    }
    return true;
}

DwtKernel default_dwt_kernel() noexcept {
    const DwtKernel k = g_default_kernel.load(std::memory_order_relaxed);
    return k == DwtKernel::Auto ? env_kernel() : k;
}

void set_default_dwt_kernel(DwtKernel k) noexcept {
    g_default_kernel.store(k, std::memory_order_relaxed);
}

DwtKernel resolve_dwt_kernel(DwtKernel requested, const FilterPair& fp) {
    DwtKernel k = requested == DwtKernel::Auto ? default_dwt_kernel() : requested;
    if (k == DwtKernel::Lifting && !build_lifting_plan(fp).valid) {
        k = DwtKernel::Convolve;
    }
    return k;
}

LiftingPlan build_lifting_plan(const FilterPair& fp) {
    LiftingPlan plan;
    const std::size_t taps = fp.low().size();
    if (taps < 2 || taps % 2 != 0) return plan;
    const std::size_t m = taps / 2;

    // The lattice output signs are a convention, not a degree of freedom we
    // control: try the four combinations and keep the one whose forward
    // regeneration reproduces the registered filter bank.
    constexpr double kResidualTol = 1e-5;  // filter taps are floats (~6e-8 ulp)
    Lattice best;
    double best_sign_lo = 1.0;
    double best_sign_hi = 1.0;
    double best_residual = std::numeric_limits<double>::infinity();
    for (const double sign_lo : {1.0, -1.0}) {
        for (const double sign_hi : {1.0, -1.0}) {
            Lattice lat;
            const double residual = try_factorize(fp, sign_lo, sign_hi, lat);
            if (residual < best_residual) {
                best_residual = residual;
                best = lat;
                best_sign_lo = sign_lo;
                best_sign_hi = sign_hi;
            }
        }
    }
    if (best_residual > kResidualTol) return plan;  // not lattice-factorizable

    // Fold the rotations into shear form: rotation = cos * [[1, T], [-T, 1]]
    // with T = tan(theta); the cosines accumulate into the output scales.
    double prod_c = 1.0;
    plan.shear.resize(m);
    for (std::size_t t = 0; t < m; ++t) {
        // A near-90-degree stage would blow the shear coefficient up and
        // lose float precision to cancellation; refuse and let the caller
        // fall back to convolution.
        if (std::abs(best.c[t]) < 1e-2) return plan;
        const double shear = best.s[t] / best.c[t];
        if (std::abs(shear) > 64.0) return plan;
        plan.shear[t] = static_cast<float>(shear);
        prod_c *= best.c[t];
    }
    plan.scale_lo = static_cast<float>(best_sign_lo * prod_c);
    plan.scale_hi = static_cast<float>(best_sign_hi * prod_c);
    plan.valid = true;
    return plan;
}

// ---------------------------------------------------------------------------
// Fused convolve kernels (the golden path). These are the loop bodies the
// threads backend proved bit-identical to the unfused convolve_decimate_*
// reference; every backend now shares them.
// ---------------------------------------------------------------------------

namespace {

// One tap of the fused column accumulation. Kept as a standalone function
// because GCC only tracks __restrict reliably on parameters: the six streams
// (four destination subband rows, two source rows) are distinct allocations,
// and making that visible here is what lets the loop vectorize.
void accumulate_tap(float* __restrict dll, float* __restrict dlh, float* __restrict dhl,
                    float* __restrict dhh, const float* __restrict sl,
                    const float* __restrict sh, float wl, float wh, std::size_t c0,
                    std::size_t c1) {
    for (std::size_t c = c0; c < c1; ++c) {
        dll[c] += wl * sl[c];
        dlh[c] += wh * sl[c];
        dhl[c] += wl * sh[c];
        dhh[c] += wh * sh[c];
    }
}

void convolve_row(std::span<const float> src, const FilterPair& fp, std::span<float> dlo,
                  std::span<float> dhi, BoundaryMode mode) {
    const std::size_t cols = src.size();
    const std::size_t half = cols / 2;
    const auto fl = fp.low();
    const auto fh = fp.high();
    const std::size_t taps = fl.size();
    for (std::size_t k = 0; k < half; ++k) {
        float acc_lo = 0.0F;
        float acc_hi = 0.0F;
        if (2 * k + taps <= cols) {
            const float* base = src.data() + 2 * k;
            for (std::size_t n = 0; n < taps; ++n) {
                acc_lo += fl[n] * base[n];
                acc_hi += fh[n] * base[n];
            }
        } else {
            for (std::size_t n = 0; n < taps; ++n) {
                const std::size_t idx =
                    extend_index(static_cast<std::ptrdiff_t>(2 * k + n), cols, mode);
                if (idx >= cols) continue;  // ZeroPad outside
                acc_lo += fl[n] * src[idx];
                acc_hi += fh[n] * src[idx];
            }
        }
        dlo[k] = acc_lo;
        dhi[k] = acc_hi;
    }
}

void convolve_cols_range(const ImageF& low_rows, const ImageF& high_rows,
                         const FilterPair& fp, ImageF& ll, ImageF& lh, ImageF& hl,
                         ImageF& hh, BoundaryMode mode, std::size_t k0,
                         std::size_t k1) {
    const std::size_t rows = low_rows.rows();
    const std::size_t cols = low_rows.cols();
    const auto fl = fp.low();
    const auto fh = fp.high();
    const std::size_t taps = fl.size();
    for (std::size_t k = k0; k < k1; ++k) {
        float* dll = ll.row(k).data();
        float* dlh = lh.row(k).data();
        float* dhl = hl.row(k).data();
        float* dhh = hh.row(k).data();
        for (std::size_t c0 = 0; c0 < cols; c0 += kColTile) {
            const std::size_t c1 = std::min(cols, c0 + kColTile);
            for (std::size_t n = 0; n < taps; ++n) {
                const std::size_t idx = extend_index(
                    static_cast<std::ptrdiff_t>(2 * k + n), rows, mode);
                if (idx >= rows) continue;  // ZeroPad sentinel
                accumulate_tap(dll, dlh, dhl, dhh, low_rows.row(idx).data(),
                               high_rows.row(idx).data(), fl[n], fh[n], c0, c1);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Lifting kernels. All loops are unit-stride over distinct buffers; the
// in-place stage updates read v[i+1] before writing v[i] (anti-dependence
// of distance one), which auto-vectorizes cleanly.
// ---------------------------------------------------------------------------

// taps == 2: the lattice collapses to a single rotation whose entries ARE
// the filter coefficients, so it is executed in rotation form straight from
// the filter floats — the identical multiply/add sequence as the convolve
// kernel, hence bit-exact (the window never reaches the boundary either).
void haar_row(const float* __restrict x, std::size_t half, float fl0, float fl1,
              float fh0, float fh1, float* __restrict lo, float* __restrict hi) {
    for (std::size_t k = 0; k < half; ++k) {
        const float x0 = x[2 * k];
        const float x1 = x[2 * k + 1];
        float acc_lo = fl0 * x0;
        acc_lo += fl1 * x1;
        float acc_hi = fh0 * x0;
        acc_hi += fh1 * x1;
        lo[k] = acc_lo;
        hi[k] = acc_hi;
    }
}

void haar_col(const float* __restrict e, const float* __restrict o, std::size_t w,
              float f0, float f1, float g0, float g1, float* __restrict dlo,
              float* __restrict dhi) {
    for (std::size_t c = 0; c < w; ++c) {
        float acc_lo = f0 * e[c];
        acc_lo += f1 * o[c];
        float acc_hi = g0 * e[c];
        acc_hi += g1 * o[c];
        dlo[c] = acc_lo;
        dhi[c] = acc_hi;
    }
}

void lift_stage(float* __restrict u, float* __restrict v, std::size_t len, float t) {
    for (std::size_t i = 0; i < len; ++i) {
        const float a = u[i];
        const float b = v[i + 1];
        u[i] = a + t * b;
        v[i] = b - t * a;
    }
}

void lift_final(const float* __restrict u, const float* __restrict v, std::size_t half,
                float t, float sl, float sh, float* __restrict lo,
                float* __restrict hi) {
    for (std::size_t k = 0; k < half; ++k) {
        const float a = u[k];
        const float b = v[k + 1];
        lo[k] = sl * (a + t * b);
        hi[k] = sh * (b - t * a);
    }
}

/// Extended sample of the signal at (possibly out-of-range) index `i`.
[[nodiscard]] inline float ext_sample(std::span<const float> x, std::ptrdiff_t i,
                                      BoundaryMode mode) noexcept {
    const std::size_t idx = extend_index(i, x.size(), mode);
    return idx < x.size() ? x[idx] : 0.0F;
}

// One row (or one column signal) through the full lifting ladder, m >= 2.
// u/v are caller scratch of at least half + m - 1 floats each.
void lifting_row(std::span<const float> x, const LiftingPlan& plan,
                 std::span<float> lo, std::span<float> hi, BoundaryMode mode,
                 float* __restrict u, float* __restrict v) {
    const std::size_t n = x.size();
    const std::size_t half = n / 2;
    const std::size_t m = plan.stages();
    const std::size_t ext = m - 1;
    const float t0 = plan.shear[0];
    // Stage 0, fused with the polyphase split (and the boundary extension
    // for the trailing `ext` pairs).
    {
        const float* __restrict xs = x.data();
        for (std::size_t i = 0; i < half; ++i) {
            const float a = xs[2 * i];
            const float b = xs[2 * i + 1];
            u[i] = a + t0 * b;
            v[i] = b - t0 * a;
        }
    }
    for (std::size_t j = 0; j < ext; ++j) {
        const std::size_t i = half + j;
        const float a = ext_sample(x, static_cast<std::ptrdiff_t>(2 * i), mode);
        const float b = ext_sample(x, static_cast<std::ptrdiff_t>(2 * i + 1), mode);
        u[i] = a + t0 * b;
        v[i] = b - t0 * a;
    }
    // Middle stages, in place over the strip.
    for (std::size_t t = 1; t + 1 < m; ++t) {
        lift_stage(u, v, half + ext - t, plan.shear[t]);
    }
    // Last stage fused with the output scaling.
    lift_final(u, v, half, plan.shear[m - 1], plan.scale_lo, plan.scale_hi, lo.data(),
               hi.data());
}

/// Source row of the even (parity == 0) or odd (parity == 1) polyphase
/// plane at plane index `i`, mapped through the boundary when 2i+parity
/// falls outside; returns nullptr for a ZeroPad row of zeros.
[[nodiscard]] const float* polyphase_row(const ImageF& src, std::size_t i, int parity,
                                         BoundaryMode mode) noexcept {
    const std::size_t idx = extend_index(
        static_cast<std::ptrdiff_t>(2 * i) + parity, src.rows(), mode);
    return idx < src.rows() ? src.row(idx).data() : nullptr;
}

void lift_col_stage0(const float* __restrict e, const float* __restrict o,
                     std::size_t w, float t0, float* __restrict u,
                     float* __restrict v) {
    for (std::size_t c = 0; c < w; ++c) {
        const float a = e[c];
        const float b = o[c];
        u[c] = a + t0 * b;
        v[c] = b - t0 * a;
    }
}

// Rolling column-stage kernels for the single-pass sweep: a stage consumes
// v_{t-1}[li+1] from `vprev` and leaves v_{t-1}[li] there for the next
// (descending) iteration.
void lift_col_roll(float* __restrict u, float* __restrict v,
                   float* __restrict vprev, std::size_t w, float t) {
    for (std::size_t c = 0; c < w; ++c) {
        const float a = u[c];
        const float b = vprev[c];
        u[c] = a + t * b;
        const float keep = v[c];
        v[c] = b - t * a;
        vprev[c] = keep;
    }
}

void lift_col_final_roll(const float* __restrict u, const float* __restrict v,
                         float* __restrict vprev, std::size_t w, float t, float sl,
                         float sh, float* __restrict dlo, float* __restrict dhi) {
    for (std::size_t c = 0; c < w; ++c) {
        const float a = u[c];
        const float b = vprev[c];
        dlo[c] = sl * (a + t * b);
        dhi[c] = sh * (b - t * a);
        vprev[c] = v[c];
    }
}

// Column lifting for one source plane over output rows [k0, k1): writes
// out_lo (low-pass columns) and out_hi (high-pass columns). Outputs are
// written, not accumulated, and every output row k depends only on source
// rows 2k .. 2k+taps-1, so any range split reproduces the serial result
// bit for bit.
void lifting_cols_plane(const ImageF& src, const LiftingPlan& plan, ImageF& out_lo,
                        ImageF& out_hi, BoundaryMode mode, std::size_t k0,
                        std::size_t k1) {
    // Single descending sweep with rolling per-stage state. Iteration li
    // computes stage 0 of polyphase strip li, then advances each middle
    // stage t using v_{t-1}[li+1] stashed in vprev[t-1] by iteration li+1,
    // and emits output row li once every stage is available. All state
    // between the source read and the output write is m+1 rows (~L1), so
    // the pass streams the source once instead of once per stage. Each
    // output element evaluates exactly the expression tree of the naive
    // stage-by-stage ladder, so any [k0, k1) split is bit-identical.
    const std::size_t cols = src.cols();
    const std::size_t m = plan.stages();
    const std::size_t ext = m - 1;
    const std::size_t strips_end = k1 + ext;  // strip rows k0 .. strips_end-1
    thread_local std::vector<float> scratch;
    if (scratch.size() < (m + 1) * cols) scratch.resize((m + 1) * cols);
    float* const uwork = scratch.data() + ext * cols;
    float* const vwork = uwork + cols;
    const auto vprev = [&](std::size_t t) { return scratch.data() + t * cols; };
    std::vector<float> zeros;  // lazily sized; ZeroPad rows only
    for (std::size_t li = strips_end; li-- > k0;) {
        const float* e = polyphase_row(src, li, 0, mode);
        const float* o = polyphase_row(src, li, 1, mode);
        if (e == nullptr || o == nullptr) {
            if (zeros.size() != cols) zeros.assign(cols, 0.0F);
            if (e == nullptr) e = zeros.data();
            if (o == nullptr) o = zeros.data();
        }
        lift_col_stage0(e, o, cols, plan.shear[0], uwork, vwork);
        std::size_t t = 1;
        for (; t + 1 < m && li + t < strips_end; ++t) {
            lift_col_roll(uwork, vwork, vprev(t - 1), cols, plan.shear[t]);
        }
        if (li < k1) {
            lift_col_final_roll(uwork, vwork, vprev(m - 2), cols, plan.shear[m - 1],
                                plan.scale_lo, plan.scale_hi, out_lo.row(li).data(),
                                out_hi.row(li).data());
        } else {
            // Priming strip (li >= k1): no output yet; seed the deepest
            // completed stage's v for the next iteration.
            float* const dst = vprev(t - 1);
            for (std::size_t c = 0; c < cols; ++c) dst[c] = vwork[c];
        }
    }
}

// ---------------------------------------------------------------------------
// Range/tile variants (ISSUE 9). Each reuses the exact loop bodies above
// (accumulate_tap, haar_row/haar_col, lift_stage, lift_final, the rolling
// column kernels), so the per-coefficient float expression trees — and
// therefore the bits — match the full-plane sweeps.
// ---------------------------------------------------------------------------

void convolve_row_range(std::span<const float> src, const FilterPair& fp,
                        std::span<float> dlo, std::span<float> dhi, BoundaryMode mode,
                        std::size_t k0, std::size_t k1) {
    const std::size_t cols = src.size();
    const auto fl = fp.low();
    const auto fh = fp.high();
    const std::size_t taps = fl.size();
    for (std::size_t k = k0; k < k1; ++k) {
        float acc_lo = 0.0F;
        float acc_hi = 0.0F;
        if (2 * k + taps <= cols) {
            const float* base = src.data() + 2 * k;
            for (std::size_t n = 0; n < taps; ++n) {
                acc_lo += fl[n] * base[n];
                acc_hi += fh[n] * base[n];
            }
        } else {
            for (std::size_t n = 0; n < taps; ++n) {
                const std::size_t idx =
                    extend_index(static_cast<std::ptrdiff_t>(2 * k + n), cols, mode);
                if (idx >= cols) continue;  // ZeroPad outside
                acc_lo += fl[n] * src[idx];
                acc_hi += fh[n] * src[idx];
            }
        }
        dlo[k - k0] = acc_lo;
        dhi[k - k0] = acc_hi;
    }
}

// Lifting ladder over the pair window [k0, k1+ext): stage-0 values are
// seeded from the global signal (direct loads while the pair is in range,
// ext_sample past the edge — exactly lifting_row's split at i == half),
// then the shrinking middle stages and the fused final stage run on the
// segment. Output k reads only pairs k..k+ext, all inside the window, so
// every intermediate equals its monolithic counterpart bit for bit.
void lifting_row_range(std::span<const float> x, const LiftingPlan& plan,
                       std::span<float> lo, std::span<float> hi, BoundaryMode mode,
                       std::size_t k0, std::size_t k1) {
    const std::size_t half = x.size() / 2;
    const std::size_t m = plan.stages();
    const std::size_t ext = m - 1;
    const std::size_t seg = k1 - k0;
    const float t0 = plan.shear[0];
    thread_local std::vector<float> scratch;
    if (scratch.size() < 2 * (seg + ext)) scratch.resize(2 * (seg + ext));
    float* const u = scratch.data();
    float* const v = u + (seg + ext);
    const float* __restrict xs = x.data();
    const std::size_t direct = std::min(seg + ext, half - std::min(half, k0));
    for (std::size_t j = 0; j < direct; ++j) {
        const std::size_t i = k0 + j;
        const float a = xs[2 * i];
        const float b = xs[2 * i + 1];
        u[j] = a + t0 * b;
        v[j] = b - t0 * a;
    }
    for (std::size_t j = direct; j < seg + ext; ++j) {
        const std::size_t i = k0 + j;
        const float a = ext_sample(x, static_cast<std::ptrdiff_t>(2 * i), mode);
        const float b = ext_sample(x, static_cast<std::ptrdiff_t>(2 * i + 1), mode);
        u[j] = a + t0 * b;
        v[j] = b - t0 * a;
    }
    for (std::size_t t = 1; t + 1 < m; ++t) {
        lift_stage(u, v, seg + ext - t, plan.shear[t]);
    }
    lift_final(u, v, seg, plan.shear[m - 1], plan.scale_lo, plan.scale_hi, lo.data(),
               hi.data());
}

void convolve_cols_tile(const RowAccessor& low_row, const RowAccessor& high_row,
                        std::size_t plane_rows, std::size_t width,
                        const FilterPair& fp, ImageF& ll, ImageF& lh, ImageF& hl,
                        ImageF& hh, BoundaryMode mode, std::size_t k0,
                        std::size_t k1) {
    const auto fl = fp.low();
    const auto fh = fp.high();
    const std::size_t taps = fl.size();
    for (std::size_t k = k0; k < k1; ++k) {
        float* dll = ll.row(k - k0).data();
        float* dlh = lh.row(k - k0).data();
        float* dhl = hl.row(k - k0).data();
        float* dhh = hh.row(k - k0).data();
        for (std::size_t c0 = 0; c0 < width; c0 += kColTile) {
            const std::size_t c1 = std::min(width, c0 + kColTile);
            for (std::size_t n = 0; n < taps; ++n) {
                const std::size_t idx = extend_index(
                    static_cast<std::ptrdiff_t>(2 * k + n), plane_rows, mode);
                if (idx >= plane_rows) continue;  // ZeroPad sentinel
                accumulate_tap(dll, dlh, dhl, dhh, low_row(idx), high_row(idx), fl[n],
                               fh[n], c0, c1);
            }
        }
    }
}

/// Accessor-backed polyphase row (the tile twin of polyphase_row).
[[nodiscard]] const float* tile_polyphase_row(const RowAccessor& row,
                                              std::size_t plane_rows, std::size_t i,
                                              int parity, BoundaryMode mode) {
    const std::size_t idx =
        extend_index(static_cast<std::ptrdiff_t>(2 * i) + parity, plane_rows, mode);
    return idx < plane_rows ? row(idx) : nullptr;
}

// Accessor-backed twin of lifting_cols_plane: the same descending rolling
// sweep over polyphase strips, restricted to a `width`-column segment and
// writing outputs at local row li - k0. Every column is independent, so
// restricting the width changes nothing per element.
void lifting_cols_tile(const RowAccessor& src_row, std::size_t plane_rows,
                       std::size_t width, const LiftingPlan& plan, ImageF& out_lo,
                       ImageF& out_hi, BoundaryMode mode, std::size_t k0,
                       std::size_t k1) {
    const std::size_t m = plan.stages();
    const std::size_t ext = m - 1;
    const std::size_t strips_end = k1 + ext;  // strip rows k0 .. strips_end-1
    thread_local std::vector<float> scratch;
    if (scratch.size() < (m + 1) * width) scratch.resize((m + 1) * width);
    float* const uwork = scratch.data() + ext * width;
    float* const vwork = uwork + width;
    const auto vprev = [&](std::size_t t) { return scratch.data() + t * width; };
    std::vector<float> zeros;  // lazily sized; ZeroPad rows only
    for (std::size_t li = strips_end; li-- > k0;) {
        const float* e = tile_polyphase_row(src_row, plane_rows, li, 0, mode);
        const float* o = tile_polyphase_row(src_row, plane_rows, li, 1, mode);
        if (e == nullptr || o == nullptr) {
            if (zeros.size() != width) zeros.assign(width, 0.0F);
            if (e == nullptr) e = zeros.data();
            if (o == nullptr) o = zeros.data();
        }
        lift_col_stage0(e, o, width, plan.shear[0], uwork, vwork);
        std::size_t t = 1;
        for (; t + 1 < m && li + t < strips_end; ++t) {
            lift_col_roll(uwork, vwork, vprev(t - 1), width, plan.shear[t]);
        }
        if (li < k1) {
            lift_col_final_roll(uwork, vwork, vprev(m - 2), width, plan.shear[m - 1],
                                plan.scale_lo, plan.scale_hi,
                                out_lo.row(li - k0).data(), out_hi.row(li - k0).data());
        } else {
            float* const dst = vprev(t - 1);
            for (std::size_t c = 0; c < width; ++c) dst[c] = vwork[c];
        }
    }
}

}  // namespace

void analyze_1d(std::span<const float> x, const FilterPair& fp, std::span<float> lo,
                std::span<float> hi, BoundaryMode mode, DwtKernel kernel) {
    require_even(x.size(), "signal length");
    const std::size_t half = x.size() / 2;
    if (lo.size() != half || hi.size() != half) {
        throw std::invalid_argument("analyze_1d: band size must be n/2");
    }
    if (kernel == DwtKernel::Auto) kernel = default_dwt_kernel();
    if (kernel == DwtKernel::Lifting) {
        const auto fl = fp.low();
        const auto fh = fp.high();
        if (fl.size() == 2) {
            haar_row(x.data(), half, fl[0], fl[1], fh[0], fh[1], lo.data(), hi.data());
            return;
        }
        const LiftingPlan plan = build_lifting_plan(fp);
        if (plan.valid) {
            std::vector<float> u(half + plan.stages() - 1);
            std::vector<float> v(half + plan.stages() - 1);
            lifting_row(x, plan, lo, hi, mode, u.data(), v.data());
            return;
        }
    }
    convolve_row(x, fp, lo, hi, mode);
}

void analyze_rows_range(const ImageF& in, const FilterPair& fp, ImageF& lo, ImageF& hi,
                        BoundaryMode mode, DwtKernel kernel, std::size_t r0,
                        std::size_t r1) {
    require_even(in.cols(), "column count");
    const std::size_t half = in.cols() / 2;
    if (lo.rows() != in.rows() || lo.cols() != half || hi.rows() != in.rows() ||
        hi.cols() != half) {
        throw std::invalid_argument("analyze_rows_range: bad band shape");
    }
    if (kernel == DwtKernel::Auto) kernel = default_dwt_kernel();
    if (kernel == DwtKernel::Lifting) {
        const auto fl = fp.low();
        const auto fh = fp.high();
        if (fl.size() == 2) {
            for (std::size_t r = r0; r < r1; ++r) {
                haar_row(in.row(r).data(), half, fl[0], fl[1], fh[0], fh[1],
                         lo.row(r).data(), hi.row(r).data());
            }
            return;
        }
        const LiftingPlan plan = build_lifting_plan(fp);
        if (plan.valid) {
            std::vector<float> u(half + plan.stages() - 1);
            std::vector<float> v(half + plan.stages() - 1);
            for (std::size_t r = r0; r < r1; ++r) {
                lifting_row(in.row(r), plan, lo.row(r), hi.row(r), mode, u.data(),
                            v.data());
            }
            return;
        }
    }
    for (std::size_t r = r0; r < r1; ++r) {
        convolve_row(in.row(r), fp, lo.row(r), hi.row(r), mode);
    }
}

void analyze_cols_range(const ImageF& low_rows, const ImageF& high_rows,
                        const FilterPair& fp, ImageF& ll, ImageF& lh, ImageF& hl,
                        ImageF& hh, BoundaryMode mode, DwtKernel kernel,
                        std::size_t k0, std::size_t k1) {
    require_even(low_rows.rows(), "row count");
    const std::size_t half = low_rows.rows() / 2;
    const std::size_t cols = low_rows.cols();
    if (high_rows.rows() != low_rows.rows() || high_rows.cols() != cols) {
        throw std::invalid_argument("analyze_cols_range: band shapes differ");
    }
    for (const ImageF* out : {&ll, &lh, &hl, &hh}) {
        if (out->rows() != half || out->cols() != cols) {
            throw std::invalid_argument("analyze_cols_range: bad output shape");
        }
    }
    if (kernel == DwtKernel::Auto) kernel = default_dwt_kernel();
    if (kernel == DwtKernel::Lifting) {
        const auto fl = fp.low();
        const auto fh = fp.high();
        if (fl.size() == 2) {
            for (std::size_t k = k0; k < k1; ++k) {
                const float* le = low_rows.row(2 * k).data();
                const float* lodd = low_rows.row(2 * k + 1).data();
                const float* he = high_rows.row(2 * k).data();
                const float* hodd = high_rows.row(2 * k + 1).data();
                haar_col(le, lodd, cols, fl[0], fl[1], fh[0], fh[1], ll.row(k).data(),
                         lh.row(k).data());
                haar_col(he, hodd, cols, fl[0], fl[1], fh[0], fh[1], hl.row(k).data(),
                         hh.row(k).data());
            }
            return;
        }
        const LiftingPlan plan = build_lifting_plan(fp);
        if (plan.valid) {
            lifting_cols_plane(low_rows, plan, ll, lh, mode, k0, k1);
            lifting_cols_plane(high_rows, plan, hl, hh, mode, k0, k1);
            return;
        }
    }
    convolve_cols_range(low_rows, high_rows, fp, ll, lh, hl, hh, mode, k0, k1);
}

void analyze_cols_ext_range(const ImageF& low_ext, const ImageF& high_ext,
                            const FilterPair& fp, ImageF& ll, ImageF& lh, ImageF& hl,
                            ImageF& hh, std::size_t k0, std::size_t k1) {
    const std::size_t cols = low_ext.cols();
    const auto fl = fp.low();
    const auto fh = fp.high();
    const std::size_t taps = fl.size();
    for (std::size_t k = k0; k < k1; ++k) {
        float* dll = ll.row(k).data();
        float* dlh = lh.row(k).data();
        float* dhl = hl.row(k).data();
        float* dhh = hh.row(k).data();
        for (std::size_t c0 = 0; c0 < cols; c0 += kColTile) {
            const std::size_t c1 = std::min(cols, c0 + kColTile);
            for (std::size_t n = 0; n < taps; ++n) {
                const std::size_t src_row = 2 * k + n;  // pre-extended: no mapping
                accumulate_tap(dll, dlh, dhl, dhh, low_ext.row(src_row).data(),
                               high_ext.row(src_row).data(), fl[n], fh[n], c0, c1);
            }
        }
    }
}

void analyze_1d_range(std::span<const float> x, const FilterPair& fp,
                      std::span<float> lo, std::span<float> hi, BoundaryMode mode,
                      DwtKernel kernel, std::size_t k0, std::size_t k1) {
    require_even(x.size(), "signal length");
    const std::size_t half = x.size() / 2;
    if (k0 > k1 || k1 > half) {
        throw std::invalid_argument("analyze_1d_range: bad output range");
    }
    if (lo.size() != k1 - k0 || hi.size() != k1 - k0) {
        throw std::invalid_argument("analyze_1d_range: band size must be k1-k0");
    }
    if (k0 == k1) return;
    if (kernel == DwtKernel::Auto) kernel = default_dwt_kernel();
    if (kernel == DwtKernel::Lifting) {
        const auto fl = fp.low();
        const auto fh = fp.high();
        if (fl.size() == 2) {
            // Haar windows never reach the boundary: x + 2*k0 re-bases the
            // same in-range loads.
            haar_row(x.data() + 2 * k0, k1 - k0, fl[0], fl[1], fh[0], fh[1], lo.data(),
                     hi.data());
            return;
        }
        const LiftingPlan plan = build_lifting_plan(fp);
        if (plan.valid) {
            lifting_row_range(x, plan, lo, hi, mode, k0, k1);
            return;
        }
    }
    convolve_row_range(x, fp, lo, hi, mode, k0, k1);
}

void analyze_cols_tile(const RowAccessor& low_row, const RowAccessor& high_row,
                       std::size_t plane_rows, std::size_t width,
                       const FilterPair& fp, ImageF& ll, ImageF& lh, ImageF& hl,
                       ImageF& hh, BoundaryMode mode, DwtKernel kernel,
                       std::size_t k0, std::size_t k1) {
    require_even(plane_rows, "row count");
    const std::size_t half = plane_rows / 2;
    if (k0 > k1 || k1 > half) {
        throw std::invalid_argument("analyze_cols_tile: bad output range");
    }
    for (const ImageF* out : {&ll, &lh, &hl, &hh}) {
        if (out->rows() != k1 - k0 || out->cols() != width) {
            throw std::invalid_argument("analyze_cols_tile: bad output shape");
        }
    }
    if (k0 == k1) return;
    if (kernel == DwtKernel::Auto) kernel = default_dwt_kernel();
    if (kernel == DwtKernel::Lifting) {
        const auto fl = fp.low();
        const auto fh = fp.high();
        if (fl.size() == 2) {
            for (std::size_t k = k0; k < k1; ++k) {
                haar_col(low_row(2 * k), low_row(2 * k + 1), width, fl[0], fl[1],
                         fh[0], fh[1], ll.row(k - k0).data(), lh.row(k - k0).data());
                haar_col(high_row(2 * k), high_row(2 * k + 1), width, fl[0], fl[1],
                         fh[0], fh[1], hl.row(k - k0).data(), hh.row(k - k0).data());
            }
            return;
        }
        const LiftingPlan plan = build_lifting_plan(fp);
        if (plan.valid) {
            lifting_cols_tile(low_row, plane_rows, width, plan, ll, lh, mode, k0, k1);
            lifting_cols_tile(high_row, plane_rows, width, plan, hl, hh, mode, k0, k1);
            return;
        }
    }
    convolve_cols_tile(low_row, high_row, plane_rows, width, fp, ll, lh, hl, hh, mode,
                       k0, k1);
}

void analyze_level(const ImageF& in, const FilterPair& fp, ImageF& ll, ImageF& lh,
                   ImageF& hl, ImageF& hh, BoundaryMode mode, DwtKernel kernel) {
    require_even(in.rows(), "row count");
    require_even(in.cols(), "column count");
    const std::size_t half_r = in.rows() / 2;
    const std::size_t half_c = in.cols() / 2;
    if (kernel == DwtKernel::Auto) kernel = default_dwt_kernel();
    ImageF low_rows(in.rows(), half_c);
    ImageF high_rows(in.rows(), half_c);
    analyze_rows_range(in, fp, low_rows, high_rows, mode, kernel, 0, in.rows());
    // Freshly constructed images are zero-filled, which the convolve
    // accumulation path relies on.
    ll = ImageF(half_r, half_c);
    lh = ImageF(half_r, half_c);
    hl = ImageF(half_r, half_c);
    hh = ImageF(half_r, half_c);
    analyze_cols_range(low_rows, high_rows, fp, ll, lh, hl, hh, mode, kernel, 0,
                       half_r);
}

}  // namespace wavehpc::core
