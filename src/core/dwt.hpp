#pragma once
// The multi-resolution wavelet decomposition of Mallat [Mal89] as used by
// the paper (section 2): repeated row filtering + column decimation followed
// by column filtering + row decimation, recursing on the LL band.

#include <cstddef>
#include <vector>

#include "core/boundary.hpp"
#include "core/buffers.hpp"
#include "core/convolve.hpp"
#include "core/filters.hpp"
#include "core/image.hpp"
#include "core/kernels.hpp"

namespace wavehpc::core {

/// One level of detail subbands. The LL band is either carried to the next
/// level or stored as the Pyramid approximation.
struct DetailBands {
    ImageF lh;  ///< low-pass rows, high-pass columns
    ImageF hl;  ///< high-pass rows, low-pass columns
    ImageF hh;  ///< high-pass rows, high-pass columns
};

/// Result of one full decomposition level (figure 1 of the paper).
struct Subbands {
    ImageF ll;
    DetailBands detail;
};

/// Multi-resolution pyramid: detail bands per level (finest first) plus the
/// final coarse approximation I_L.
struct Pyramid {
    std::vector<DetailBands> levels;
    ImageF approx;

    [[nodiscard]] std::size_t depth() const noexcept { return levels.size(); }
};

/// Steps (1)-(4) of the paper's algorithm: decompose one level. `kernel`
/// selects the arithmetic path (core/kernels.hpp); Auto defers to the
/// process-wide selector and resolves to Convolve by default.
[[nodiscard]] Subbands decompose_level(const ImageF& in, const FilterPair& fp,
                                       BoundaryMode mode = BoundaryMode::Periodic,
                                       DwtKernel kernel = DwtKernel::Auto);

/// Inverse of decompose_level under the same boundary mode.
[[nodiscard]] ImageF reconstruct_level(const Subbands& sb, const FilterPair& fp,
                                       BoundaryMode mode = BoundaryMode::Periodic);

/// Full multi-resolution decomposition to `levels` levels. The image
/// dimensions must be divisible by 2^levels.
[[nodiscard]] Pyramid decompose(const ImageF& img, const FilterPair& fp, int levels,
                                BoundaryMode mode = BoundaryMode::Periodic,
                                DwtKernel kernel = DwtKernel::Auto);

/// Buffer-source variant: every scratch and subband buffer comes from
/// `buffers` (core/buffers.hpp) and transient intermediates are recycled
/// back into it, so a pooling source (svc::BufferArena) makes the warm
/// path allocation-free. Reads `img` in place at level 0 (no working
/// copy). Bit-identical to decompose(): same kernel-layer calls over the
/// same full ranges.
[[nodiscard]] Pyramid decompose(const ImageF& img, const FilterPair& fp, int levels,
                                BoundaryMode mode, DwtKernel kernel,
                                FloatBufferSource& buffers);

/// Full reconstruction (figure 2). Pass the mode used for analysis; the
/// inverse is exact (up to float rounding) for Periodic, and edge-consistent
/// for Symmetric/ZeroPad.
[[nodiscard]] ImageF reconstruct(const Pyramid& pyr, const FilterPair& fp,
                                 BoundaryMode mode = BoundaryMode::Periodic);

/// Gather-form reconstruction: identical mathematics with a per-output
/// accumulation order; the bit-exact reference for the parallel backends
/// (each parallel rank computes whole outputs). Differences from
/// reconstruct() stay at float rounding level.
[[nodiscard]] ImageF reconstruct_gather(const Pyramid& pyr, const FilterPair& fp,
                                        BoundaryMode mode = BoundaryMode::Periodic);

/// One gather-form synthesis level.
[[nodiscard]] ImageF reconstruct_level_gather(const Subbands& sb, const FilterPair& fp,
                                              BoundaryMode mode = BoundaryMode::Periodic);

/// Throws std::invalid_argument unless rows and cols are divisible by
/// 2^levels and levels >= 1.
void validate_decomposition_request(std::size_t rows, std::size_t cols, int levels);

}  // namespace wavehpc::core
