#include "core/convolve.hpp"

#include <stdexcept>

#include "core/kernels.hpp"

namespace wavehpc::core {

namespace {

void require_even(std::size_t n, const char* what) {
    if (n == 0 || n % 2 != 0) {
        throw std::invalid_argument(std::string("convolve: ") + what +
                                    " must be even and non-zero");
    }
}

// True when all taps of the window starting at 2k stay inside [0, n) —
// the fast path that needs no boundary mapping.
[[nodiscard]] inline bool interior(std::size_t k, std::size_t taps, std::size_t n) noexcept {
    return 2 * k + taps <= n;
}

}  // namespace

void convolve_decimate_1d(std::span<const float> x, std::span<const float> f,
                          std::span<float> y, BoundaryMode mode) {
    require_even(x.size(), "signal length");
    const std::size_t half = x.size() / 2;
    if (y.size() != half) {
        throw std::invalid_argument("convolve_decimate_1d: output size must be n/2");
    }
    const std::size_t taps = f.size();
    for (std::size_t k = 0; k < half; ++k) {
        float acc = 0.0F;
        if (interior(k, taps, x.size())) {
            const float* base = x.data() + 2 * k;
            for (std::size_t n = 0; n < taps; ++n) acc += f[n] * base[n];
        } else {
            for (std::size_t n = 0; n < taps; ++n) {
                const std::size_t idx =
                    extend_index(static_cast<std::ptrdiff_t>(2 * k + n), x.size(), mode);
                if (idx < x.size()) acc += f[n] * x[idx];
            }
        }
        y[k] = acc;
    }
}

void convolve_decimate_rows(const ImageF& in, std::span<const float> f, ImageF& out,
                            BoundaryMode mode) {
    require_even(in.cols(), "column count");
    const std::size_t half = in.cols() / 2;
    if (out.rows() != in.rows() || out.cols() != half) {
        out = ImageF(in.rows(), half);
    }
    for (std::size_t r = 0; r < in.rows(); ++r) {
        convolve_decimate_1d(in.row(r), f, out.row(r), mode);
    }
}

void convolve_decimate_cols(const ImageF& in, std::span<const float> f, ImageF& out,
                            BoundaryMode mode) {
    require_even(in.rows(), "row count");
    const std::size_t half = in.rows() / 2;
    const std::size_t taps = f.size();
    if (out.rows() != half || out.cols() != in.cols()) {
        out = ImageF(half, in.cols());
    }
    // Process whole rows in the inner loop to stay cache-friendly.
    for (std::size_t k = 0; k < half; ++k) {
        auto dst = out.row(k);
        for (auto& v : dst) v = 0.0F;
        for (std::size_t n = 0; n < taps; ++n) {
            const std::size_t idx =
                extend_index(static_cast<std::ptrdiff_t>(2 * k + n), in.rows(), mode);
            if (idx >= in.rows()) continue;  // ZeroPad outside
            const float w = f[n];
            auto src = in.row(idx);
            for (std::size_t c = 0; c < in.cols(); ++c) dst[c] += w * src[c];
        }
    }
}

void synthesize_rows(const ImageF& low, const ImageF& high, std::span<const float> lowf,
                     std::span<const float> highf, ImageF& out, BoundaryMode mode) {
    if (low.rows() != high.rows() || low.cols() != high.cols()) {
        throw std::invalid_argument("synthesize_rows: band shapes differ");
    }
    const std::size_t half = low.cols();
    const std::size_t n = 2 * half;
    const std::size_t taps = lowf.size();
    if (out.rows() != low.rows() || out.cols() != n) {
        out = ImageF(low.rows(), n);
    }
    for (std::size_t r = 0; r < low.rows(); ++r) {
        const auto lo = low.row(r);
        const auto hi = high.row(r);
        auto dst = out.row(r);
        for (std::size_t m = 0; m < n; ++m) {
            float acc = 0.0F;
            for_each_synthesis_tap(m, half, taps, mode, [&](std::size_t k, std::size_t j) {
                acc += lowf[j] * lo[k];
                acc += highf[j] * hi[k];
            });
            dst[m] = acc;
        }
    }
}

void synthesize_col_row(std::size_t m, std::size_t half_rows,
                        std::span<const float> lowf, std::span<const float> highf,
                        const std::function<std::span<const float>(std::size_t)>& low_row,
                        const std::function<std::span<const float>(std::size_t)>& high_row,
                        std::span<float> out, BoundaryMode mode) {
    const std::size_t taps = lowf.size();
    for (auto& v : out) v = 0.0F;
    for_each_synthesis_tap(m, half_rows, taps, mode, [&](std::size_t k, std::size_t j) {
        const float wl = lowf[j];
        const float wh = highf[j];
        const auto lo = low_row(k);
        const auto hi = high_row(k);
        for (std::size_t c = 0; c < out.size(); ++c) {
            out[c] += wl * lo[c];
            out[c] += wh * hi[c];
        }
    });
}

void synthesize_cols(const ImageF& low, const ImageF& high, std::span<const float> lowf,
                     std::span<const float> highf, ImageF& out, BoundaryMode mode) {
    if (low.rows() != high.rows() || low.cols() != high.cols()) {
        throw std::invalid_argument("synthesize_cols: band shapes differ");
    }
    const std::size_t half = low.rows();
    const std::size_t n = 2 * half;
    if (out.rows() != n || out.cols() != low.cols()) {
        out = ImageF(n, low.cols());
    }
    for (std::size_t m = 0; m < n; ++m) {
        synthesize_col_row(
            m, half, lowf, highf, [&](std::size_t k) { return low.row(k); },
            [&](std::size_t k) { return high.row(k); }, out.row(m), mode);
    }
}

void upsample_accumulate_rows(const ImageF& in, std::span<const float> f, ImageF& out,
                              BoundaryMode mode) {
    const std::size_t n = 2 * in.cols();
    if (out.rows() != in.rows() || out.cols() != n) {
        throw std::invalid_argument("upsample_accumulate_rows: bad output shape");
    }
    const std::size_t taps = f.size();
    for (std::size_t r = 0; r < in.rows(); ++r) {
        auto src = in.row(r);
        auto dst = out.row(r);
        for (std::size_t k = 0; k < in.cols(); ++k) {
            const float v = src[k];
            for (std::size_t j = 0; j < taps; ++j) {
                const std::size_t idx =
                    extend_index(static_cast<std::ptrdiff_t>(2 * k + j), n, mode);
                if (idx >= n) continue;  // ZeroPad: analysis read a zero here
                dst[idx] += f[j] * v;
            }
        }
    }
}

void upsample_accumulate_cols(const ImageF& in, std::span<const float> f, ImageF& out,
                              BoundaryMode mode) {
    const std::size_t n = 2 * in.rows();
    if (out.rows() != n || out.cols() != in.cols()) {
        throw std::invalid_argument("upsample_accumulate_cols: bad output shape");
    }
    const std::size_t taps = f.size();
    for (std::size_t k = 0; k < in.rows(); ++k) {
        auto src = in.row(k);
        for (std::size_t j = 0; j < taps; ++j) {
            const std::size_t idx =
                extend_index(static_cast<std::ptrdiff_t>(2 * k + j), n, mode);
            if (idx >= n) continue;  // ZeroPad: analysis read a zero here
            const float w = f[j];
            auto dst = out.row(idx);
            for (std::size_t c = 0; c < in.cols(); ++c) dst[c] += w * src[c];
        }
    }
}

}  // namespace wavehpc::core
