#include "core/cost_model.hpp"

#include <cmath>
#include <stdexcept>

namespace wavehpc::core {

std::size_t WaveletWork::outputs() const noexcept {
    std::size_t n = 0;
    for (const auto& lw : per_level) n += lw.outputs;
    return n;
}

std::size_t WaveletWork::macs() const noexcept {
    std::size_t n = 0;
    for (const auto& lw : per_level) n += lw.macs;
    return n;
}

WaveletWork WaveletWork::analyze(std::size_t rows, std::size_t cols, int taps, int levels) {
    if (taps <= 0 || levels <= 0) {
        throw std::invalid_argument("WaveletWork::analyze: taps and levels must be positive");
    }
    WaveletWork w;
    std::size_t r = rows;
    std::size_t c = cols;
    for (int k = 0; k < levels; ++k) {
        LevelWork lw;
        lw.outputs = 2 * r * c;  // row pass R*C samples + column pass R*C samples
        lw.macs = lw.outputs * static_cast<std::size_t>(taps);
        w.per_level.push_back(lw);
        r /= 2;
        c /= 2;
    }
    return w;
}

SequentialCostModel::SequentialCostModel(std::string name, double per_output,
                                         double per_mac, double per_level)
    : name_(std::move(name)),
      per_output_(per_output),
      per_mac_(per_mac),
      per_level_(per_level) {}

SequentialCostModel SequentialCostModel::fit(std::string name, std::size_t rows,
                                             std::size_t cols,
                                             const std::array<CalibrationPoint, 3>& pts) {
    // Assemble the 3x3 system  A * [per_output, per_mac, per_level]^T = t.
    double A[3][3];
    double t[3];
    for (int i = 0; i < 3; ++i) {
        const WaveletWork w =
            WaveletWork::analyze(rows, cols, pts[static_cast<std::size_t>(i)].taps,
                                 pts[static_cast<std::size_t>(i)].levels);
        A[i][0] = static_cast<double>(w.outputs());
        A[i][1] = static_cast<double>(w.macs());
        A[i][2] = pts[static_cast<std::size_t>(i)].levels;
        t[i] = pts[static_cast<std::size_t>(i)].seconds;
    }

    // Cramer's rule — the system is tiny and the determinant check doubles
    // as the singularity guard.
    const auto det3 = [](const double m[3][3]) {
        return m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
               m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
               m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
    };
    const double det = det3(A);
    if (std::abs(det) < 1e-12) {
        throw std::runtime_error("SequentialCostModel::fit: singular calibration system");
    }
    double coeff[3];
    for (int j = 0; j < 3; ++j) {
        double B[3][3];
        for (int i = 0; i < 3; ++i) {
            for (int k = 0; k < 3; ++k) B[i][k] = A[i][k];
            B[i][j] = t[i];
        }
        coeff[j] = det3(B) / det;
    }
    if (coeff[0] <= 0.0 || coeff[1] <= 0.0 || coeff[2] <= 0.0) {
        throw std::runtime_error(
            "SequentialCostModel::fit: unphysical (non-positive) coefficient");
    }
    return {std::move(name), coeff[0], coeff[1], coeff[2]};
}

const SequentialCostModel& SequentialCostModel::paragon_node() {
    static const SequentialCostModel model =
        fit("paragon-i860-node", 512, 512, Table1Reference::paragon_1proc);
    return model;
}

const SequentialCostModel& SequentialCostModel::dec5000() {
    static const SequentialCostModel model =
        fit("dec5000", 512, 512, Table1Reference::dec5000);
    return model;
}

double SequentialCostModel::seconds(const WaveletWork& w) const noexcept {
    double s = 0.0;
    for (const auto& lw : w.per_level) s += seconds(lw);
    return s + per_level_ * w.levels();
}

double SequentialCostModel::seconds(const LevelWork& w) const noexcept {
    return seconds(w.outputs, w.macs);
}

double SequentialCostModel::seconds(std::size_t outputs, std::size_t macs) const noexcept {
    return per_output_ * static_cast<double>(outputs) +
           per_mac_ * static_cast<double>(macs);
}

}  // namespace wavehpc::core
