#pragma once
// Filtering + dyadic decimation primitives of the Mallat algorithm
// (steps 1-4 of the paper's section 2), plus the adjoint upsample+filter
// primitives used by reconstruction (figure 2).
//
// Analysis convention, along a length-N signal x with filter f of length F:
//     y[k] = sum_{n=0}^{F-1} f[n] * x~[2k + n],  k in [0, N/2)
// where x~ is x extended per BoundaryMode. Synthesis is the exact adjoint
//     x[m] += sum_{k : 0 <= m-2k < F} f[m-2k] * y[k]
// (computed with periodic wrap-around), so an orthonormal QMF pair gives
// perfect reconstruction under BoundaryMode::Periodic.

#include <functional>
#include <span>

#include "core/boundary.hpp"
#include "core/image.hpp"

namespace wavehpc::core {

/// Filter every row of `in` with `f` and keep every second output column.
/// Output shape: (in.rows(), in.cols()/2). in.cols() must be even.
void convolve_decimate_rows(const ImageF& in, std::span<const float> f, ImageF& out,
                            BoundaryMode mode);

/// Filter every column of `in` with `f` and keep every second output row.
/// Output shape: (in.rows()/2, in.cols()). in.rows() must be even.
void convolve_decimate_cols(const ImageF& in, std::span<const float> f, ImageF& out,
                            BoundaryMode mode);

/// Adjoint of convolve_decimate_rows under periodic extension: upsample the
/// columns of `in` by 2 and filter; result is accumulated into `out`
/// (callers zero `out` first). Output shape: (in.rows(), 2*in.cols()).
void upsample_accumulate_rows(const ImageF& in, std::span<const float> f, ImageF& out);

/// Adjoint of convolve_decimate_cols under periodic extension.
/// Output shape: (2*in.rows(), in.cols()).
void upsample_accumulate_cols(const ImageF& in, std::span<const float> f, ImageF& out);

/// 1-D analysis step used by unit tests and by the stripe kernels:
/// y[k] = sum f[n] x~[2k+n] for k in [0, x.size()/2).
void convolve_decimate_1d(std::span<const float> x, std::span<const float> f,
                          std::span<float> y, BoundaryMode mode);

/// Gather-form synthesis along rows (periodic): each output sample is
/// evaluated independently —
///   out(r, m) = sum_{j in [0,taps), j ≡ m (mod 2)}
///                 lowf[j]*low(r, k) + highf[j]*high(r, k),
///   k = (m - j)/2 mod low.cols().
/// Mathematically equal to the two upsample_accumulate_* calls but with a
/// per-output accumulation order, which is what the parallel reconstruction
/// backends need (each rank owns whole outputs). Output: (rows, 2*cols).
void synthesize_rows(const ImageF& low, const ImageF& high,
                     std::span<const float> lowf, std::span<const float> highf,
                     ImageF& out);

/// Gather-form synthesis along columns; output: (2*rows, cols).
void synthesize_cols(const ImageF& low, const ImageF& high,
                     std::span<const float> lowf, std::span<const float> highf,
                     ImageF& out);

/// One output row of synthesize_cols, exposed for the distributed backend:
/// computes global output row m from coefficient rows of the half-size
/// bands accessed through `coeff_row(k)` (k already wrapped to [0, half)).
void synthesize_col_row(std::size_t m, std::size_t half_rows,
                        std::span<const float> lowf, std::span<const float> highf,
                        const std::function<std::span<const float>(std::size_t)>& low_row,
                        const std::function<std::span<const float>(std::size_t)>& high_row,
                        std::span<float> out);

}  // namespace wavehpc::core
