#pragma once
// Filtering + dyadic decimation primitives of the Mallat algorithm
// (steps 1-4 of the paper's section 2), plus the adjoint upsample+filter
// primitives used by reconstruction (figure 2).
//
// Analysis convention, along a length-N signal x with filter f of length F:
//     y[k] = sum_{n=0}^{F-1} f[n] * x~[2k + n],  k in [0, N/2)
// where x~ is x extended per BoundaryMode. Synthesis is the exact adjoint
//     x~[2k + j] += f[j] * y[k]
// folded back through the same BoundaryMode (wrapped for Periodic,
// reflected for Symmetric, dropped for ZeroPad), so an orthonormal QMF
// pair inverts the interior exactly and treats the edges consistently
// with how analysis extended them. All synthesis entry points take the
// mode used for analysis; it defaults to Periodic, the historical
// behavior, for which outputs are bit-identical to the pre-mode code.

#include <functional>
#include <span>

#include "core/boundary.hpp"
#include "core/image.hpp"

namespace wavehpc::core {

/// Filter every row of `in` with `f` and keep every second output column.
/// Output shape: (in.rows(), in.cols()/2). in.cols() must be even.
void convolve_decimate_rows(const ImageF& in, std::span<const float> f, ImageF& out,
                            BoundaryMode mode);

/// Filter every column of `in` with `f` and keep every second output row.
/// Output shape: (in.rows()/2, in.cols()). in.rows() must be even.
void convolve_decimate_cols(const ImageF& in, std::span<const float> f, ImageF& out,
                            BoundaryMode mode);

/// Adjoint of convolve_decimate_rows under `mode` extension: upsample the
/// columns of `in` by 2 and filter; result is accumulated into `out`
/// (callers zero `out` first). Output shape: (in.rows(), 2*in.cols()).
void upsample_accumulate_rows(const ImageF& in, std::span<const float> f, ImageF& out,
                              BoundaryMode mode = BoundaryMode::Periodic);

/// Adjoint of convolve_decimate_cols under `mode` extension.
/// Output shape: (2*in.rows(), in.cols()).
void upsample_accumulate_cols(const ImageF& in, std::span<const float> f, ImageF& out,
                              BoundaryMode mode = BoundaryMode::Periodic);

/// 1-D analysis step used by unit tests and by the stripe kernels:
/// y[k] = sum f[n] x~[2k+n] for k in [0, x.size()/2).
void convolve_decimate_1d(std::span<const float> x, std::span<const float> f,
                          std::span<float> y, BoundaryMode mode);

/// Gather-form synthesis along rows: each output sample is evaluated
/// independently by enumerating the (k, j) pairs whose analysis window
/// covered it under `mode` (core/kernels.hpp, for_each_synthesis_tap) —
///   out(r, m) = sum_{(k,j)} lowf[j]*low(r, k) + highf[j]*high(r, k).
/// Mathematically equal to the two upsample_accumulate_* calls but with a
/// per-output accumulation order, which is what the parallel reconstruction
/// backends need (each rank owns whole outputs). Output: (rows, 2*cols).
void synthesize_rows(const ImageF& low, const ImageF& high,
                     std::span<const float> lowf, std::span<const float> highf,
                     ImageF& out, BoundaryMode mode = BoundaryMode::Periodic);

/// Gather-form synthesis along columns; output: (2*rows, cols).
void synthesize_cols(const ImageF& low, const ImageF& high,
                     std::span<const float> lowf, std::span<const float> highf,
                     ImageF& out, BoundaryMode mode = BoundaryMode::Periodic);

/// One output row of synthesize_cols, exposed for the distributed backend:
/// computes global output row m from coefficient rows of the half-size
/// bands accessed through `coeff_row(k)` (k already mapped to [0, half)).
void synthesize_col_row(std::size_t m, std::size_t half_rows,
                        std::span<const float> lowf, std::span<const float> highf,
                        const std::function<std::span<const float>(std::size_t)>& low_row,
                        const std::function<std::span<const float>(std::size_t)>& high_row,
                        std::span<float> out,
                        BoundaryMode mode = BoundaryMode::Periodic);

}  // namespace wavehpc::core
