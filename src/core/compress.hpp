#pragma once
// Wavelet compression operators — the application the paper's introduction
// motivates (EOSDIS-scale image archives): detail thresholding, retention
// by largest magnitude, uniform quantization, and a codec-independent
// first-order entropy estimate of the coded size.

#include "core/dwt.hpp"

namespace wavehpc::core {

/// Zero every detail coefficient with |c| <= threshold (the approximation
/// band is always kept). Returns the number of surviving coefficients,
/// approximation included.
std::size_t threshold_pyramid(Pyramid& pyr, float threshold);

/// Keep (approximately) the `keep_fraction` in (0, 1] largest-magnitude
/// detail coefficients, zeroing the rest. Returns survivors including the
/// approximation band.
std::size_t keep_largest(Pyramid& pyr, double keep_fraction);

/// Uniform scalar quantization of the detail bands with step `step` > 0
/// (round to nearest; the approximation stays exact). The pyramid is left
/// dequantized, i.e. ready for reconstruct(); max introduced error per
/// coefficient is step/2.
void quantize_details(Pyramid& pyr, float step);

/// First-order entropy, in bits per detail coefficient, of the detail bands
/// quantized with `step` — a lower bound on what an entropy coder would
/// spend. Returns 0 for an all-zero detail set.
[[nodiscard]] double detail_entropy_bits(const Pyramid& pyr, float step);

/// Same estimate for ONE band (its own histogram): the progressive
/// delivery planner (src/tile) prices each subband individually to place
/// it on the rate-limited preview link. Returns 0 for an empty band.
[[nodiscard]] double band_entropy_bits(const ImageF& band, float step);

struct CompressionReport {
    std::size_t total_coefficients = 0;
    std::size_t stored_coefficients = 0;
    double compression_ratio = 0.0;  ///< total / stored
    double psnr_db = 0.0;            ///< against the original, peak 255
    double entropy_bits = 0.0;       ///< per detail coefficient at step 1.0
};

/// End-to-end rate/distortion point: decompose, keep the largest fraction,
/// reconstruct, measure.
[[nodiscard]] CompressionReport compress_report(const ImageF& img, const FilterPair& fp,
                                                int levels, double keep_fraction);

}  // namespace wavehpc::core
