#pragma once
// Work accounting and calibrated sequential cost models.
//
// The simulators charge virtual time for computation through a three-term
// model fitted once against the paper's own *sequential* measurements
// (Table 1 column entries for the Paragon single node and the DEC 5000):
//
//     t = per_output * outputs + per_mac * macs + per_level * levels
//
// where `outputs` is the number of subband samples produced, `macs` the
// multiply-accumulates, and the per-level term captures fixed level setup
// (buffer management, subband bookkeeping). Three (filter, level) points
// determine the three coefficients exactly; parallel-run predictions are
// then emergent, never re-fitted (DESIGN.md section 5.3).

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace wavehpc::core {

/// Work in one decomposition level of an R x C input: row pass + column pass.
struct LevelWork {
    std::size_t outputs = 0;
    std::size_t macs = 0;
};

/// Work of a full multi-resolution decomposition.
struct WaveletWork {
    std::vector<LevelWork> per_level;

    [[nodiscard]] std::size_t outputs() const noexcept;
    [[nodiscard]] std::size_t macs() const noexcept;
    [[nodiscard]] int levels() const noexcept { return static_cast<int>(per_level.size()); }

    /// Work for decomposing a rows x cols image with a `taps`-tap filter
    /// pair over `levels` levels. Each level on an R x C input produces
    /// R*C row-pass samples plus R*C column-pass samples, `taps` MACs each.
    [[nodiscard]] static WaveletWork analyze(std::size_t rows, std::size_t cols, int taps,
                                             int levels);
};

/// Calibration datum: a (taps, levels) configuration and its measured time.
struct CalibrationPoint {
    int taps;
    int levels;
    double seconds;
};

class SequentialCostModel {
public:
    SequentialCostModel(std::string name, double per_output, double per_mac,
                        double per_level);

    /// Fit the three coefficients exactly through three measured points for
    /// a rows x cols image. Throws if the system is singular or any fitted
    /// coefficient comes out non-positive (an unphysical calibration).
    [[nodiscard]] static SequentialCostModel fit(std::string name, std::size_t rows,
                                                 std::size_t cols,
                                                 const std::array<CalibrationPoint, 3>& pts);

    /// Paper Table 1, "Intel Paragon 1 Proc." row (512x512 Landsat scene).
    [[nodiscard]] static const SequentialCostModel& paragon_node();
    /// Paper Table 1, "DEC 5000 Workstation" row.
    [[nodiscard]] static const SequentialCostModel& dec5000();

    [[nodiscard]] double seconds(const WaveletWork& w) const noexcept;
    [[nodiscard]] double seconds(const LevelWork& w) const noexcept;
    /// Charge for a partial slab of work with no level constant.
    [[nodiscard]] double seconds(std::size_t outputs, std::size_t macs) const noexcept;

    [[nodiscard]] double per_output() const noexcept { return per_output_; }
    [[nodiscard]] double per_mac() const noexcept { return per_mac_; }
    [[nodiscard]] double per_level() const noexcept { return per_level_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

private:
    std::string name_;
    double per_output_;
    double per_mac_;
    double per_level_;
};

/// Paper Table 1 measurements, used both for calibration and for the
/// paper-vs-measured comparison printed by bench_table1_comparative.
struct Table1Reference {
    static constexpr std::array<CalibrationPoint, 3> paragon_1proc{
        CalibrationPoint{8, 1, 4.227},
        CalibrationPoint{4, 2, 3.45},
        CalibrationPoint{2, 4, 2.78},
    };
    static constexpr std::array<CalibrationPoint, 3> paragon_32proc{
        CalibrationPoint{8, 1, 0.613},
        CalibrationPoint{4, 2, 0.632},
        CalibrationPoint{2, 4, 0.6623},
    };
    static constexpr std::array<CalibrationPoint, 3> maspar_mp2_16k{
        CalibrationPoint{8, 1, 0.0169},
        CalibrationPoint{4, 2, 0.0138},
        CalibrationPoint{2, 4, 0.0123},
    };
    static constexpr std::array<CalibrationPoint, 3> dec5000{
        CalibrationPoint{8, 1, 5.47},
        CalibrationPoint{4, 2, 4.54},
        CalibrationPoint{2, 4, 4.11},
    };
};

}  // namespace wavehpc::core
