#pragma once
// Image comparison and energy metrics used by correctness tests and by the
// reconstruction-quality reports in the examples.

#include "core/image.hpp"

namespace wavehpc::core {

/// Largest absolute pixel difference; throws if shapes differ.
[[nodiscard]] double max_abs_diff(const ImageF& a, const ImageF& b);

/// Root-mean-square difference; throws if shapes differ.
[[nodiscard]] double rms_diff(const ImageF& a, const ImageF& b);

/// Peak signal-to-noise ratio in dB against `peak` (255 for 8-bit data).
/// Returns +inf when the images are identical.
[[nodiscard]] double psnr(const ImageF& a, const ImageF& b, double peak = 255.0);

/// Sum of squared pixel values — conserved across an orthonormal DWT.
[[nodiscard]] double energy(const ImageF& img);

}  // namespace wavehpc::core
