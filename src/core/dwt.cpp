#include "core/dwt.hpp"

#include <stdexcept>

namespace wavehpc::core {

void validate_decomposition_request(std::size_t rows, std::size_t cols, int levels) {
    if (levels < 1) {
        throw std::invalid_argument("decompose: levels must be >= 1");
    }
    if (levels >= 63) {
        throw std::invalid_argument("decompose: levels out of range");
    }
    const std::size_t div = std::size_t{1} << levels;
    if (rows == 0 || cols == 0 || rows % div != 0 || cols % div != 0) {
        throw std::invalid_argument(
            "decompose: image dimensions must be non-zero and divisible by 2^levels");
    }
}

Subbands decompose_level(const ImageF& in, const FilterPair& fp, BoundaryMode mode,
                         DwtKernel kernel) {
    validate_decomposition_request(in.rows(), in.cols(), 1);
    // Steps 1-4 run through the shared kernel layer: one fused row pass
    // (I -> L, H) and one fused column pass (L, H -> LL, LH, HL, HH).
    Subbands sb;
    analyze_level(in, fp, sb.ll, sb.detail.lh, sb.detail.hl, sb.detail.hh, mode,
                  kernel);
    return sb;
}

ImageF reconstruct_level(const Subbands& sb, const FilterPair& fp, BoundaryMode mode) {
    const std::size_t half_r = sb.ll.rows();
    const std::size_t half_c = sb.ll.cols();

    // Column synthesis: (LL, LH) -> L and (HL, HH) -> H.
    ImageF low_rows(2 * half_r, half_c, 0.0F);
    upsample_accumulate_cols(sb.ll, fp.low(), low_rows, mode);
    upsample_accumulate_cols(sb.detail.lh, fp.high(), low_rows, mode);

    ImageF high_rows(2 * half_r, half_c, 0.0F);
    upsample_accumulate_cols(sb.detail.hl, fp.low(), high_rows, mode);
    upsample_accumulate_cols(sb.detail.hh, fp.high(), high_rows, mode);

    // Row synthesis: (L, H) -> I.
    ImageF out(2 * half_r, 2 * half_c, 0.0F);
    upsample_accumulate_rows(low_rows, fp.low(), out, mode);
    upsample_accumulate_rows(high_rows, fp.high(), out, mode);
    return out;
}

ImageF reconstruct_level_gather(const Subbands& sb, const FilterPair& fp,
                                BoundaryMode mode) {
    ImageF low_rows;
    ImageF high_rows;
    synthesize_cols(sb.ll, sb.detail.lh, fp.low(), fp.high(), low_rows, mode);
    synthesize_cols(sb.detail.hl, sb.detail.hh, fp.low(), fp.high(), high_rows, mode);
    ImageF out;
    synthesize_rows(low_rows, high_rows, fp.low(), fp.high(), out, mode);
    return out;
}

ImageF reconstruct_gather(const Pyramid& pyr, const FilterPair& fp, BoundaryMode mode) {
    if (pyr.depth() == 0) {
        throw std::invalid_argument("reconstruct_gather: empty pyramid");
    }
    ImageF current = pyr.approx;
    for (std::size_t k = pyr.depth(); k-- > 0;) {
        Subbands sb;
        sb.ll = std::move(current);
        sb.detail = pyr.levels[k];
        current = reconstruct_level_gather(sb, fp, mode);
    }
    return current;
}

Pyramid decompose(const ImageF& img, const FilterPair& fp, int levels, BoundaryMode mode,
                  DwtKernel kernel) {
    validate_decomposition_request(img.rows(), img.cols(), levels);
    kernel = resolve_dwt_kernel(kernel, fp);  // resolve once for all levels
    Pyramid pyr;
    pyr.levels.reserve(static_cast<std::size_t>(levels));
    ImageF current = img;
    for (int k = 0; k < levels; ++k) {
        Subbands sb = decompose_level(current, fp, mode, kernel);
        pyr.levels.push_back(std::move(sb.detail));
        current = std::move(sb.ll);
    }
    pyr.approx = std::move(current);
    return pyr;
}

Pyramid decompose(const ImageF& img, const FilterPair& fp, int levels,
                  BoundaryMode mode, DwtKernel kernel, FloatBufferSource& buffers) {
    validate_decomposition_request(img.rows(), img.cols(), levels);
    kernel = resolve_dwt_kernel(kernel, fp);  // resolve once for all levels
    // Only the convolve column pass accumulates into its outputs; the
    // lifting/haar column planes and every row pass write each element, so
    // their buffers can be handed out dirty.
    const bool zero_cols = kernel == DwtKernel::Convolve;
    Pyramid pyr;
    pyr.levels.reserve(static_cast<std::size_t>(levels));
    ImageF current;  // empty at level 0: the input is read in place
    for (int k = 0; k < levels; ++k) {
        const ImageF& in = k == 0 ? img : current;
        const std::size_t rows = in.rows();
        const std::size_t half_r = rows / 2;
        const std::size_t half_c = in.cols() / 2;
        ImageF low_rows = obtain_image(buffers, rows, half_c, false);
        ImageF high_rows = obtain_image(buffers, rows, half_c, false);
        analyze_rows_range(in, fp, low_rows, high_rows, mode, kernel, 0, rows);
        if (k > 0) buffers.recycle(current.release_data());

        ImageF ll = obtain_image(buffers, half_r, half_c, zero_cols);
        DetailBands d;
        d.lh = obtain_image(buffers, half_r, half_c, zero_cols);
        d.hl = obtain_image(buffers, half_r, half_c, zero_cols);
        d.hh = obtain_image(buffers, half_r, half_c, zero_cols);
        analyze_cols_range(low_rows, high_rows, fp, ll, d.lh, d.hl, d.hh, mode,
                           kernel, 0, half_r);
        buffers.recycle(low_rows.release_data());
        buffers.recycle(high_rows.release_data());
        pyr.levels.push_back(std::move(d));
        current = std::move(ll);
    }
    pyr.approx = std::move(current);
    return pyr;
}

ImageF reconstruct(const Pyramid& pyr, const FilterPair& fp, BoundaryMode mode) {
    if (pyr.depth() == 0) {
        throw std::invalid_argument("reconstruct: empty pyramid");
    }
    ImageF current = pyr.approx;
    for (std::size_t k = pyr.depth(); k-- > 0;) {
        Subbands sb;
        sb.ll = std::move(current);
        sb.detail = pyr.levels[k];  // copy: the pyramid stays usable
        current = reconstruct_level(sb, fp, mode);
    }
    return current;
}

}  // namespace wavehpc::core
