#include "core/dwt.hpp"

#include <stdexcept>

namespace wavehpc::core {

void validate_decomposition_request(std::size_t rows, std::size_t cols, int levels) {
    if (levels < 1) {
        throw std::invalid_argument("decompose: levels must be >= 1");
    }
    if (levels >= 63) {
        throw std::invalid_argument("decompose: levels out of range");
    }
    const std::size_t div = std::size_t{1} << levels;
    if (rows == 0 || cols == 0 || rows % div != 0 || cols % div != 0) {
        throw std::invalid_argument(
            "decompose: image dimensions must be non-zero and divisible by 2^levels");
    }
}

Subbands decompose_level(const ImageF& in, const FilterPair& fp, BoundaryMode mode) {
    validate_decomposition_request(in.rows(), in.cols(), 1);
    // Row filtering + column decimation: I -> L, H (steps 1-2).
    ImageF low_rows;
    ImageF high_rows;
    convolve_decimate_rows(in, fp.low(), low_rows, mode);
    convolve_decimate_rows(in, fp.high(), high_rows, mode);

    // Column filtering + row decimation: L -> LL, LH; H -> HL, HH (steps 3-4).
    Subbands sb;
    convolve_decimate_cols(low_rows, fp.low(), sb.ll, mode);
    convolve_decimate_cols(low_rows, fp.high(), sb.detail.lh, mode);
    convolve_decimate_cols(high_rows, fp.low(), sb.detail.hl, mode);
    convolve_decimate_cols(high_rows, fp.high(), sb.detail.hh, mode);
    return sb;
}

ImageF reconstruct_level(const Subbands& sb, const FilterPair& fp) {
    const std::size_t half_r = sb.ll.rows();
    const std::size_t half_c = sb.ll.cols();

    // Column synthesis: (LL, LH) -> L and (HL, HH) -> H.
    ImageF low_rows(2 * half_r, half_c, 0.0F);
    upsample_accumulate_cols(sb.ll, fp.low(), low_rows);
    upsample_accumulate_cols(sb.detail.lh, fp.high(), low_rows);

    ImageF high_rows(2 * half_r, half_c, 0.0F);
    upsample_accumulate_cols(sb.detail.hl, fp.low(), high_rows);
    upsample_accumulate_cols(sb.detail.hh, fp.high(), high_rows);

    // Row synthesis: (L, H) -> I.
    ImageF out(2 * half_r, 2 * half_c, 0.0F);
    upsample_accumulate_rows(low_rows, fp.low(), out);
    upsample_accumulate_rows(high_rows, fp.high(), out);
    return out;
}

ImageF reconstruct_level_gather(const Subbands& sb, const FilterPair& fp) {
    ImageF low_rows;
    ImageF high_rows;
    synthesize_cols(sb.ll, sb.detail.lh, fp.low(), fp.high(), low_rows);
    synthesize_cols(sb.detail.hl, sb.detail.hh, fp.low(), fp.high(), high_rows);
    ImageF out;
    synthesize_rows(low_rows, high_rows, fp.low(), fp.high(), out);
    return out;
}

ImageF reconstruct_gather(const Pyramid& pyr, const FilterPair& fp) {
    if (pyr.depth() == 0) {
        throw std::invalid_argument("reconstruct_gather: empty pyramid");
    }
    ImageF current = pyr.approx;
    for (std::size_t k = pyr.depth(); k-- > 0;) {
        Subbands sb;
        sb.ll = std::move(current);
        sb.detail = pyr.levels[k];
        current = reconstruct_level_gather(sb, fp);
    }
    return current;
}

Pyramid decompose(const ImageF& img, const FilterPair& fp, int levels, BoundaryMode mode) {
    validate_decomposition_request(img.rows(), img.cols(), levels);
    Pyramid pyr;
    pyr.levels.reserve(static_cast<std::size_t>(levels));
    ImageF current = img;
    for (int k = 0; k < levels; ++k) {
        Subbands sb = decompose_level(current, fp, mode);
        pyr.levels.push_back(std::move(sb.detail));
        current = std::move(sb.ll);
    }
    pyr.approx = std::move(current);
    return pyr;
}

ImageF reconstruct(const Pyramid& pyr, const FilterPair& fp) {
    if (pyr.depth() == 0) {
        throw std::invalid_argument("reconstruct: empty pyramid");
    }
    ImageF current = pyr.approx;
    for (std::size_t k = pyr.depth(); k-- > 0;) {
        Subbands sb;
        sb.ll = std::move(current);
        sb.detail = pyr.levels[k];  // copy: the pyramid stays usable
        current = reconstruct_level(sb, fp);
    }
    return current;
}

}  // namespace wavehpc::core
