#pragma once
// Orthonormal quadrature-mirror filter pairs for the Mallat decomposition.
//
// Following Mallat [Mal89], the wavelet basis is defined by a low-pass
// scaling filter L; the high-pass filter is its mirror
//     H[n] = (-1)^n L[taps-1-n],
// so the pair forms a quadrature mirror filter bank. The paper uses filters
// of sizes 8, 4 and 2, which correspond to Daubechies D8, D4 and D2 (Haar).

#include <span>
#include <string>
#include <vector>

namespace wavehpc::core {

class FilterPair {
public:
    /// Build a pair from a low-pass filter; the high-pass is derived by the
    /// QMF mirror relation. Throws if `low` is empty or has odd length.
    explicit FilterPair(std::vector<float> low, std::string name = "custom");

    /// Daubechies orthonormal filter with `taps` coefficients
    /// (2 = Haar, 4 = D4, 6 = D6, 8 = D8 — the paper's filter sizes).
    [[nodiscard]] static FilterPair daubechies(int taps);

    [[nodiscard]] std::span<const float> low() const noexcept { return low_; }
    [[nodiscard]] std::span<const float> high() const noexcept { return high_; }
    [[nodiscard]] int taps() const noexcept { return static_cast<int>(low_.size()); }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

private:
    std::vector<float> low_;
    std::vector<float> high_;
    std::string name_;
};

}  // namespace wavehpc::core
