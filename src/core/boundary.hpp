#pragma once
// Signal-extension policies for filtering near image edges.

#include <cstddef>
#include <cstdint>

namespace wavehpc::core {

enum class BoundaryMode : std::uint8_t {
    Periodic,   ///< circular extension — the only mode with exact reconstruction
    Symmetric,  ///< half-sample reflection: x[-1] = x[0]
    ZeroPad,    ///< values outside the signal are zero
};

/// Map a possibly out-of-range index `i` (may be negative when passed as a
/// signed value, here encoded as ptrdiff_t) into [0, n) under `mode`.
/// Returns n for ZeroPad when the sample is outside (callers must treat
/// index == n as "value 0").
[[nodiscard]] inline std::size_t extend_index(std::ptrdiff_t i, std::size_t n,
                                              BoundaryMode mode) noexcept {
    const auto sn = static_cast<std::ptrdiff_t>(n);
    if (i >= 0 && i < sn) return static_cast<std::size_t>(i);
    switch (mode) {
        case BoundaryMode::Periodic: {
            std::ptrdiff_t m = i % sn;
            if (m < 0) m += sn;
            return static_cast<std::size_t>(m);
        }
        case BoundaryMode::Symmetric: {
            // Half-sample symmetry has period 2n: ... 1 0 | 0 1 ... n-1 | n-1 ...
            std::ptrdiff_t m = i % (2 * sn);
            if (m < 0) m += 2 * sn;
            if (m >= sn) m = 2 * sn - 1 - m;
            return static_cast<std::size_t>(m);
        }
        case BoundaryMode::ZeroPad:
            return n;
    }
    return n;  // unreachable; keeps -Wreturn-type quiet
}

}  // namespace wavehpc::core
