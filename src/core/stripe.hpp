#pragma once
// Striped domain decomposition for the coarse-grain MIMD algorithm
// (paper section 4.2, figures 3 and 4).
//
// The image is cut into horizontal stripes, one per SPMD rank. Stripes keep
// row filtering fully local; column filtering needs a guard zone of
// (taps - 2) rows fetched from the stripe(s) below (south), because the
// analysis window for output row k covers input rows [2k, 2k + taps).
// Stripe heights are kept even at every level so decimated output rows stay
// contiguous per rank and the decomposition recurses without redistribution.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace wavehpc::core {

/// Balanced partition of `rows` image rows into `parts` stripes whose
/// heights are multiples of `granularity`.
class StripePartition {
public:
    /// `granularity` must be a positive multiple of 2; use 2^levels for a
    /// multi-level decomposition so every level's stripe height stays even
    /// under repeated halving. Throws unless rows is a multiple of
    /// granularity and rows >= granularity * parts (every rank must own at
    /// least one coarsest-level output row).
    StripePartition(std::size_t rows, std::size_t parts, std::size_t granularity = 2);

    [[nodiscard]] std::size_t parts() const noexcept { return parts_; }
    [[nodiscard]] std::size_t total_rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t first_row(std::size_t rank) const;
    [[nodiscard]] std::size_t height(std::size_t rank) const;
    [[nodiscard]] std::size_t end_row(std::size_t rank) const {
        return first_row(rank) + height(rank);
    }
    /// Which rank owns global row `r`.
    [[nodiscard]] std::size_t owner(std::size_t r) const;

private:
    std::size_t rows_;
    std::size_t parts_;
    std::vector<std::size_t> starts_;  // parts_ + 1 entries
};

/// How SPMD ranks are laid onto the physical mesh (paper figure 4).
enum class MappingPolicy : std::uint8_t {
    Naive,  ///< row-major: rank r at (r % width, r / width)
    Snake,  ///< serpentine: odd mesh rows reversed, neighbours 1 hop apart
};

struct Coord2 {
    std::size_t x = 0;
    std::size_t y = 0;
    friend bool operator==(Coord2, Coord2) = default;
};

/// Physical coordinate of SPMD rank `rank` on a mesh of the given width.
[[nodiscard]] Coord2 place_rank(std::size_t rank, std::size_t mesh_width,
                                MappingPolicy policy);

/// Full placement vector for `nranks` ranks.
[[nodiscard]] std::vector<Coord2> make_placement(std::size_t nranks,
                                                 std::size_t mesh_width,
                                                 MappingPolicy policy);

}  // namespace wavehpc::core
