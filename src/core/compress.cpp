#include "core/compress.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "core/metrics.hpp"

namespace wavehpc::core {

namespace {

template <typename Fn>
void for_each_detail_band(Pyramid& pyr, Fn&& fn) {
    for (auto& d : pyr.levels) {
        fn(d.lh);
        fn(d.hl);
        fn(d.hh);
    }
}

template <typename Fn>
void for_each_detail_band(const Pyramid& pyr, Fn&& fn) {
    for (const auto& d : pyr.levels) {
        fn(d.lh);
        fn(d.hl);
        fn(d.hh);
    }
}

}  // namespace

std::size_t threshold_pyramid(Pyramid& pyr, float threshold) {
    if (threshold < 0.0F) {
        throw std::invalid_argument("threshold_pyramid: threshold must be >= 0");
    }
    std::size_t kept = pyr.approx.size();
    for_each_detail_band(pyr, [&](ImageF& band) {
        for (float& v : band.flat()) {
            if (std::abs(v) <= threshold) {
                v = 0.0F;
            } else {
                ++kept;
            }
        }
    });
    return kept;
}

std::size_t keep_largest(Pyramid& pyr, double keep_fraction) {
    if (keep_fraction <= 0.0 || keep_fraction > 1.0) {
        throw std::invalid_argument("keep_largest: fraction must be in (0, 1]");
    }
    std::vector<float> mags;
    for_each_detail_band(static_cast<const Pyramid&>(pyr), [&](const ImageF& band) {
        for (float v : band.flat()) mags.push_back(std::abs(v));
    });
    if (mags.empty()) return pyr.approx.size();
    const auto keep = static_cast<std::size_t>(
        keep_fraction * static_cast<double>(mags.size()));
    if (keep >= mags.size()) return pyr.approx.size() + mags.size();
    auto nth = mags.begin() + static_cast<std::ptrdiff_t>(mags.size() - 1 - keep);
    std::nth_element(mags.begin(), nth, mags.end());
    return threshold_pyramid(pyr, *nth);
}

void quantize_details(Pyramid& pyr, float step) {
    if (step <= 0.0F) throw std::invalid_argument("quantize_details: step must be > 0");
    for_each_detail_band(pyr, [&](ImageF& band) {
        for (float& v : band.flat()) {
            v = step * static_cast<float>(std::lround(v / step));
        }
    });
}

namespace {

double histogram_entropy_bits(const std::map<long, std::size_t>& histogram,
                              std::size_t total) {
    if (total == 0) return 0.0;
    double bits = 0.0;
    for (const auto& [symbol, count] : histogram) {
        const double p = static_cast<double>(count) / static_cast<double>(total);
        bits -= p * std::log2(p);
    }
    return bits;
}

}  // namespace

double detail_entropy_bits(const Pyramid& pyr, float step) {
    if (step <= 0.0F) {
        throw std::invalid_argument("detail_entropy_bits: step must be > 0");
    }
    std::map<long, std::size_t> histogram;
    std::size_t total = 0;
    for_each_detail_band(pyr, [&](const ImageF& band) {
        for (float v : band.flat()) {
            ++histogram[std::lround(v / step)];
            ++total;
        }
    });
    return histogram_entropy_bits(histogram, total);
}

double band_entropy_bits(const ImageF& band, float step) {
    if (step <= 0.0F) {
        throw std::invalid_argument("band_entropy_bits: step must be > 0");
    }
    std::map<long, std::size_t> histogram;
    for (float v : band.flat()) ++histogram[std::lround(v / step)];
    return histogram_entropy_bits(histogram, band.size());
}

CompressionReport compress_report(const ImageF& img, const FilterPair& fp, int levels,
                                  double keep_fraction) {
    Pyramid pyr = decompose(img, fp, levels, BoundaryMode::Periodic);
    CompressionReport rep;
    rep.total_coefficients = img.size();
    rep.stored_coefficients = keep_largest(pyr, keep_fraction);
    rep.compression_ratio = static_cast<double>(rep.total_coefficients) /
                            static_cast<double>(std::max<std::size_t>(
                                1, rep.stored_coefficients));
    rep.entropy_bits = detail_entropy_bits(pyr, 1.0F);
    const ImageF back = reconstruct(pyr, fp);
    rep.psnr_db = psnr(img, back);
    return rep;
}

}  // namespace wavehpc::core
