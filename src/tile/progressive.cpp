#include "tile/progressive.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "core/compress.hpp"

namespace wavehpc::tile {

namespace {

// Fixed per-band framing cost (header, lengths, checksums) so an all-zero
// band still takes non-zero link time and delivery times stay strictly
// increasing.
constexpr double kBandHeaderBytes = 64.0;

void recycle_bands(core::FloatBufferSource& buffers, core::DetailBands&& bands) {
    buffers.recycle(bands.lh.release_data());
    buffers.recycle(bands.hl.release_data());
    buffers.recycle(bands.hh.release_data());
}

}  // namespace

PyramidAssembler::PyramidAssembler(std::size_t rows, std::size_t cols, int levels,
                                   core::FloatBufferSource& buffers)
    : buffers_(buffers) {
    core::validate_decomposition_request(rows, cols, levels);
    pyr_.levels.reserve(static_cast<std::size_t>(levels));
    for (int l = 0; l < levels; ++l) {
        const std::size_t hr = rows >> (l + 1);
        const std::size_t hc = cols >> (l + 1);
        core::DetailBands d;
        d.lh = core::obtain_image(buffers_, hr, hc, false);
        d.hl = core::obtain_image(buffers_, hr, hc, false);
        d.hh = core::obtain_image(buffers_, hr, hc, false);
        pyr_.levels.push_back(std::move(d));
    }
    pyr_.approx = core::obtain_image(buffers_, rows >> levels, cols >> levels, false);
}

void PyramidAssembler::on_detail(const TileCoord& coord, core::DetailBands&& bands) {
    if (coord.level < 0 || static_cast<std::size_t>(coord.level) >= pyr_.depth()) {
        throw std::out_of_range("PyramidAssembler: bad detail level");
    }
    core::DetailBands& dst = pyr_.levels[static_cast<std::size_t>(coord.level)];
    dst.lh.paste(bands.lh, coord.row0, coord.col0);
    dst.hl.paste(bands.hl, coord.row0, coord.col0);
    dst.hh.paste(bands.hh, coord.row0, coord.col0);
    recycle_bands(buffers_, std::move(bands));
}

void PyramidAssembler::on_approx(const TileCoord& coord, core::ImageF&& ll) {
    pyr_.approx.paste(ll, coord.row0, coord.col0);
    buffers_.recycle(ll.release_data());
}

void DiscardSink::on_detail(const TileCoord& /*coord*/, core::DetailBands&& bands) {
    recycle_bands(buffers_, std::move(bands));
}

void DiscardSink::on_approx(const TileCoord& /*coord*/, core::ImageF&& ll) {
    buffers_.recycle(ll.release_data());
}

ProgressiveStore::ProgressiveStore(std::size_t rows, std::size_t cols, int levels,
                                   core::FloatBufferSource& buffers)
    : PyramidAssembler(rows, cols, levels, buffers),
      start_(std::chrono::steady_clock::now()),
      level_seal_(static_cast<std::size_t>(levels), 0.0) {}

void ProgressiveStore::on_level_complete(int level) {
    if (level >= 0 && static_cast<std::size_t>(level) < level_seal_.size()) {
        level_seal_[static_cast<std::size_t>(level)] =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
                .count();
    }
}

void ProgressiveStore::on_approx_complete() {
    approx_seal_ =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
}

double ProgressiveStore::level_seal_seconds(int level) const {
    if (level < 0 || static_cast<std::size_t>(level) >= level_seal_.size()) {
        throw std::out_of_range("ProgressiveStore: bad level");
    }
    return level_seal_[static_cast<std::size_t>(level)];
}

ProgressiveDelivery::ProgressiveDelivery(const core::Pyramid& pyr,
                                         double bytes_per_second,
                                         double sealed_seconds, float quant_step) {
    if (bytes_per_second <= 0.0) {
        throw std::invalid_argument("ProgressiveDelivery: bytes_per_second must be > 0");
    }
    if (pyr.depth() == 0) {
        throw std::invalid_argument("ProgressiveDelivery: empty pyramid");
    }
    const auto coded = [quant_step](const core::ImageF& band) {
        return kBandHeaderBytes +
               static_cast<double>(band.size()) *
                   core::band_entropy_bits(band, quant_step) / 8.0;
    };
    double cum_bytes = 0.0;
    const auto push = [&](BandKind kind, int level, const core::ImageF& band) {
        DeliveryItem item;
        item.kind = kind;
        item.level = level;
        item.coded_bytes = coded(band);
        cum_bytes += item.coded_bytes;
        item.deliver_seconds = sealed_seconds + cum_bytes / bytes_per_second;
        items_.push_back(item);
    };
    push(BandKind::Approx, static_cast<int>(pyr.depth()), pyr.approx);
    for (std::size_t l = pyr.depth(); l-- > 0;) {  // coarsest detail level first
        const core::DetailBands& d = pyr.levels[l];
        push(BandKind::LH, static_cast<int>(l), d.lh);
        push(BandKind::HL, static_cast<int>(l), d.hl);
        push(BandKind::HH, static_cast<int>(l), d.hh);
    }
}

double ProgressiveDelivery::time_to_first_band() const {
    return items_.front().deliver_seconds;
}

double ProgressiveDelivery::time_to_full() const {
    return items_.back().deliver_seconds;
}

double preview_bytes_per_second() {
    constexpr double kDefault = 8.0 * (1 << 20);  // 8 MiB/s
    const char* raw = std::getenv("WAVEHPC_TILE_PREVIEW_BPS");
    if (raw == nullptr || *raw == '\0') return kDefault;
    char* end = nullptr;
    const double v = std::strtod(raw, &end);
    if (end == raw || *end != '\0' || !(v > 0.0)) return kDefault;
    return std::max(1.0, v);
}

core::Pyramid tiled_decompose(const core::ImageF& img, const core::FilterPair& fp,
                              int levels, core::BoundaryMode mode,
                              core::DwtKernel kernel, const TileConfig& cfg,
                              core::FloatBufferSource* buffers,
                              TileStreamStats* stats) {
    core::HeapBufferSource fallback;
    core::FloatBufferSource& buf = buffers != nullptr ? *buffers : fallback;
    InMemoryTileSource src(img);
    PyramidAssembler sink(img.rows(), img.cols(), levels, buf);
    const TileStreamStats st =
        stream_decompose(src, fp, levels, mode, kernel, cfg, sink, &buf);
    if (stats != nullptr) *stats = st;
    return sink.take();
}

}  // namespace wavehpc::tile
