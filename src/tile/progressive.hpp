#pragma once
// Progressive band assembly and delivery (ISSUE 9).
//
// The tile stream emits the approximation band and each level's detail
// subbands as independent units, which is exactly the granularity a
// preview protocol wants: a rate-limited client fetches the (tiny)
// approximation first — 1/4^levels of the coefficients — and streams
// detail levels coarsest-to-finest on demand. The sinks here assemble
// tiles back into core::Pyramid bands; ProgressiveDelivery prices each
// band with core::band_entropy_bits and lays it on a simulated
// bytes-per-second link, giving the time-to-first-band /
// time-to-full-pyramid split bench_tiled_stream reports and the service's
// allow_degraded preview path uses.

#include <chrono>
#include <cstdint>
#include <vector>

#include "core/buffers.hpp"
#include "core/dwt.hpp"
#include "tile/tiled_dwt.hpp"

namespace wavehpc::tile {

/// Assembles the tile stream back into a core::Pyramid. Band planes come
/// from `buffers`; every delivered tile is pasted then recycled back, so
/// with an arena source the assembly is allocation-free after warmup.
class PyramidAssembler : public TileSink {
public:
    PyramidAssembler(std::size_t rows, std::size_t cols, int levels,
                     core::FloatBufferSource& buffers);

    void on_detail(const TileCoord& coord, core::DetailBands&& bands) override;
    void on_approx(const TileCoord& coord, core::ImageF&& ll) override;

    /// The assembled pyramid; call once, after the stream completes.
    [[nodiscard]] core::Pyramid take() { return std::move(pyr_); }
    [[nodiscard]] const core::Pyramid& pyramid() const { return pyr_; }

private:
    core::FloatBufferSource& buffers_;
    core::Pyramid pyr_;
};

/// Swallows the stream, recycling every tile immediately — the
/// constant-memory consumer the bench's height-invariance gate uses.
class DiscardSink final : public TileSink {
public:
    explicit DiscardSink(core::FloatBufferSource& buffers) : buffers_(buffers) {}

    void on_detail(const TileCoord& coord, core::DetailBands&& bands) override;
    void on_approx(const TileCoord& coord, core::ImageF&& ll) override;

private:
    core::FloatBufferSource& buffers_;
};

/// Band identifiers in progressive delivery order within a level.
enum class BandKind : std::uint8_t { Approx, LH, HL, HH };

/// PyramidAssembler that also timestamps band completion (relative to its
/// own construction), feeding the delivery planner's sealed times.
class ProgressiveStore final : public PyramidAssembler {
public:
    ProgressiveStore(std::size_t rows, std::size_t cols, int levels,
                     core::FloatBufferSource& buffers);

    void on_level_complete(int level) override;
    void on_approx_complete() override;

    [[nodiscard]] double approx_seal_seconds() const { return approx_seal_; }
    [[nodiscard]] double level_seal_seconds(int level) const;

private:
    std::chrono::steady_clock::time_point start_;
    double approx_seal_ = 0.0;
    std::vector<double> level_seal_;
};

struct DeliveryItem {
    BandKind kind = BandKind::Approx;
    int level = 0;                 ///< pyramid level index (ignored for Approx)
    double coded_bytes = 0.0;      ///< first-order entropy estimate + header
    double deliver_seconds = 0.0;  ///< simulated finish time on the link
};

/// Rate-limited progressive schedule over a finished pyramid: the
/// approximation band first, then detail levels coarsest-to-finest (LH,
/// HL, HH each). Coded size is the band's first-order entropy at
/// `quant_step` plus a fixed per-band header; the link is SIMULATED (no
/// sleeping) at `bytes_per_second`, opening once the `sealed_seconds` of
/// compute are done. time_to_first_band() < time_to_full() structurally,
/// since the approximation is a 4^levels-th of the coefficients.
class ProgressiveDelivery {
public:
    ProgressiveDelivery(const core::Pyramid& pyr, double bytes_per_second,
                        double sealed_seconds, float quant_step = 1.0F);

    [[nodiscard]] const std::vector<DeliveryItem>& schedule() const { return items_; }
    [[nodiscard]] double time_to_first_band() const;
    [[nodiscard]] double time_to_full() const;

private:
    std::vector<DeliveryItem> items_;
};

/// WAVEHPC_TILE_PREVIEW_BPS: bytes/second of the simulated preview link
/// (default 8 MiB/s; unset/unparsable keep the default, values clamp
/// to >= 1).
[[nodiscard]] double preview_bytes_per_second();

/// One-call tiled decomposition of an in-memory image — the service's
/// progressive compute path: InMemoryTileSource -> stream_decompose ->
/// PyramidAssembler. Bit-identical to core::decompose for every kernel
/// and boundary mode.
[[nodiscard]] core::Pyramid tiled_decompose(const core::ImageF& img,
                                            const core::FilterPair& fp, int levels,
                                            core::BoundaryMode mode,
                                            core::DwtKernel kernel,
                                            const TileConfig& cfg,
                                            core::FloatBufferSource* buffers,
                                            TileStreamStats* stats = nullptr);

}  // namespace wavehpc::tile
