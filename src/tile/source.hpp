#pragma once
// Row-band scene sources for the streaming tile driver (ISSUE 9).
//
// A TileSource hands out horizontal bands of a W x H scene on demand, so
// the driver's resident footprint is the band it asked for — never the
// scene. Three backends:
//
//   * SyntheticTileSource — deterministic multi-octave value noise,
//     computed row by row with per-row lattice interpolation (a handful
//     of hashes per lattice cell, not per pixel), cheap enough to feed a
//     16k x 16k bench scene. Any (rows, cols, seed) always generates the
//     identical pixels regardless of the band split, which is what the
//     tiled-vs-monolithic bit-identity tests rely on.
//   * PgmTileSource — windowed reads over a PGM file via read_pgm_rows;
//     only the header is touched at construction.
//   * InMemoryTileSource — adapter over an existing ImageF (the service's
//     progressive path); no copy, the image must outlive the source.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "core/image.hpp"
#include "core/pgm_io.hpp"

namespace wavehpc::tile {

class TileSource {
public:
    virtual ~TileSource() = default;

    [[nodiscard]] virtual std::size_t rows() const = 0;
    [[nodiscard]] virtual std::size_t cols() const = 0;

    /// Fill `dst` (n * cols() floats, row-major) with rows [y0, y0+n).
    /// Throws std::out_of_range / std::runtime_error on a bad window.
    virtual void read_rows(std::size_t y0, std::size_t n, std::span<float> dst) = 0;
};

class SyntheticTileSource final : public TileSource {
public:
    SyntheticTileSource(std::size_t rows, std::size_t cols, std::uint64_t seed,
                        int octaves = 2);

    [[nodiscard]] std::size_t rows() const override { return rows_; }
    [[nodiscard]] std::size_t cols() const override { return cols_; }
    void read_rows(std::size_t y0, std::size_t n, std::span<float> dst) override;

    /// The whole scene materialized (tests compare against the monolithic
    /// decompose of exactly this image). Intended for small scenes only.
    [[nodiscard]] core::ImageF materialize();

private:
    std::size_t rows_;
    std::size_t cols_;
    std::uint64_t seed_;
    int octaves_;
};

class PgmTileSource final : public TileSource {
public:
    explicit PgmTileSource(std::string path);

    [[nodiscard]] std::size_t rows() const override { return info_.rows; }
    [[nodiscard]] std::size_t cols() const override { return info_.cols; }
    void read_rows(std::size_t y0, std::size_t n, std::span<float> dst) override;

private:
    std::string path_;
    core::PgmInfo info_;
};

class InMemoryTileSource final : public TileSource {
public:
    explicit InMemoryTileSource(const core::ImageF& img) : img_(img) {}

    [[nodiscard]] std::size_t rows() const override { return img_.rows(); }
    [[nodiscard]] std::size_t cols() const override { return img_.cols(); }
    void read_rows(std::size_t y0, std::size_t n, std::span<float> dst) override;

private:
    const core::ImageF& img_;
};

}  // namespace wavehpc::tile
