#pragma once
// Constant-memory streaming tile DWT driver (ISSUE 9).
//
// stream_decompose ingests a scene row-band by row-band from a TileSource
// and pushes it through a cascade of per-level states. Each level keeps:
//
//   * a full-width RING of row-pass output rows (lo and hi), capacity
//     min(in_rows, 2*tile_rows + taps) — enough that when the emission
//     gate for output band [k0, k1) opens (input row 2*k1+taps-3
//     ingested), rows 2*k0 .. 2*k1+taps-3 are all still resident;
//   * the first taps-2 row-pass rows (HEAD), which the Periodic bottom
//     edge wraps back onto (Symmetric reflects into recent ring rows and
//     ZeroPad reads nothing, so the head is only read by Periodic);
//   * an LL cascade band that forwards finished approximation rows to the
//     next level's ingest (absent at the last level, whose LL tiles ARE
//     the approximation output).
//
// Row transforms run per tile column through core::analyze_1d_range (the
// horizontal halo is the neighbouring pixels of the shared scanline);
// column transforms run per tile through core::analyze_cols_tile with a
// RowAccessor that resolves global row indices against ring/head storage
// (the vertical halo). Both entry points reproduce the monolithic kernels'
// expression trees exactly, so the whole pyramid — interior AND edges —
// is bit-identical to core::decompose for every kernel and boundary mode.
//
// Resident memory is the TilePlan reservation set: independent of the
// image height, which is what makes images >> RAM streamable.

#include <cstddef>
#include <cstdint>

#include "core/buffers.hpp"
#include "core/dwt.hpp"
#include "core/filters.hpp"
#include "core/kernels.hpp"
#include "tile/plan.hpp"
#include "tile/source.hpp"

namespace wavehpc::tile {

/// Position of one delivered tile. `level` is the 0-based pyramid index
/// (core::Pyramid::levels[level], finest first) for detail tiles, and the
/// pyramid depth for approximation tiles. row0/col0 locate the tile's
/// top-left corner in its SUBBAND plane.
struct TileCoord {
    int level = 0;
    std::size_t row0 = 0;
    std::size_t col0 = 0;
};

/// Consumer of the progressive tile stream. Tiles arrive coarse-to-fine
/// in scan order within a level; ownership of the band buffers transfers
/// with the call (recycle them into your buffer source when done).
class TileSink {
public:
    virtual ~TileSink() = default;

    virtual void on_detail(const TileCoord& coord, core::DetailBands&& bands) = 0;
    virtual void on_approx(const TileCoord& coord, core::ImageF&& ll) = 0;

    /// All detail tiles of pyramid level `level` have been delivered.
    virtual void on_level_complete(int level) { (void)level; }
    /// All approximation tiles have been delivered (the stream's
    /// "first-band sealed" moment for progressive preview clients).
    virtual void on_approx_complete() {}
};

struct TileStreamStats {
    std::size_t rows = 0;
    std::size_t cols = 0;
    int levels = 0;
    std::uint64_t bytes_in = 0;  ///< source bytes ingested (rows*cols*4)
    double seconds = 0.0;        ///< wall time of the whole stream
    /// Wall time at which the last approximation tile left the driver.
    double approx_seal_seconds = 0.0;
    /// High-water mark of driver-held buffer bytes (rings, heads, staging,
    /// cascade bands, tiles until handed to the sink). Bounded by
    /// TilePlan::resident_bytes_bound() and independent of image height.
    std::uint64_t peak_resident_bytes = 0;
};

/// Stream-decompose `src` into `sink`. `buffers` supplies every driver
/// buffer (nullptr: a private heap source); pre-provision it from
/// TilePlan::reservations() for an allocation-free run. Dimensions must
/// satisfy core::validate_decomposition_request.
TileStreamStats stream_decompose(TileSource& src, const core::FilterPair& fp,
                                 int levels, core::BoundaryMode mode,
                                 core::DwtKernel kernel, const TileConfig& cfg,
                                 TileSink& sink,
                                 core::FloatBufferSource* buffers = nullptr);

}  // namespace wavehpc::tile
