#include "tile/plan.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "core/dwt.hpp"

namespace wavehpc::tile {

namespace {

std::size_t tile_env_dim(const char* name, std::size_t fallback) {
    const char* raw = std::getenv(name);
    if (raw == nullptr || *raw == '\0') return fallback;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(raw, &end, 10);
    if (end == raw || *end != '\0' || v == 0) return fallback;
    return static_cast<std::size_t>(std::min<unsigned long long>(v, 65536));
}

}  // namespace

TileConfig TileConfig::from_env() {
    TileConfig cfg;
    cfg.tile_rows = tile_env_dim("WAVEHPC_TILE_ROWS", cfg.tile_rows);
    cfg.tile_cols = tile_env_dim("WAVEHPC_TILE_COLS", cfg.tile_cols);
    return cfg;
}

TilePlan TilePlan::build(std::size_t rows, std::size_t cols, int levels,
                         std::size_t taps, const TileConfig& cfg) {
    core::validate_decomposition_request(rows, cols, levels);
    if (taps < 2 || taps % 2 != 0) {
        throw std::invalid_argument("TilePlan: taps must be even and >= 2");
    }
    if (cfg.tile_rows == 0 || cfg.tile_cols == 0) {
        throw std::invalid_argument("TilePlan: tile dimensions must be non-zero");
    }
    TilePlan plan;
    plan.rows = rows;
    plan.cols = cols;
    plan.levels = levels;
    plan.taps = taps;
    plan.halo = taps - 1;
    plan.tile_rows = cfg.tile_rows;
    plan.tile_cols = cfg.tile_cols;
    plan.level.reserve(static_cast<std::size_t>(levels));
    for (int l = 0; l < levels; ++l) {
        LevelGeometry g;
        g.in_rows = rows >> l;
        g.in_cols = cols >> l;
        g.out_rows = g.in_rows / 2;
        g.out_cols = g.in_cols / 2;
        g.tiles_down = (g.out_rows + cfg.tile_rows - 1) / cfg.tile_rows;
        g.tiles_across = (g.out_cols + cfg.tile_cols - 1) / cfg.tile_cols;
        const std::size_t band = std::min(cfg.tile_rows, g.out_rows);
        g.ring_rows = std::min(g.in_rows, 2 * band + taps);
        g.head_rows = std::min(g.in_rows, taps - 2);
        plan.level.push_back(g);
    }
    return plan;
}

std::vector<Reservation> TilePlan::reservations() const {
    std::vector<Reservation> res;
    // Level-0 ingest staging: the driver reads the source in bands of
    // min(tile_rows, rows) full-width rows.
    res.push_back({std::min(tile_rows, rows) * cols, 1});
    for (int l = 0; l < levels; ++l) {
        const LevelGeometry& g = level[static_cast<std::size_t>(l)];
        res.push_back({g.ring_rows * g.out_cols, 2});  // lo + hi rings
        if (g.head_rows > 0) {
            res.push_back({g.head_rows * g.out_cols, 2});  // lo + hi heads
        }
        if (l + 1 < levels) {
            // LL cascade band feeding the next level's ingest.
            res.push_back({std::min(tile_rows, g.out_rows) * g.out_cols, 1});
        }
        // Tile shapes: interior plus (possibly equal) bottom/right edge
        // remainders. Only one tile's four subband buffers are ever live
        // in the driver at once, so four slabs per DISTINCT size suffice;
        // duplicates (an evenly dividing grid, or coincidentally equal
        // areas) are collapsed rather than double-provisioned.
        const std::size_t th_i = std::min(tile_rows, g.out_rows);
        const std::size_t th_e = g.out_rows - (g.tiles_down - 1) * tile_rows;
        const std::size_t tw_i = std::min(tile_cols, g.out_cols);
        const std::size_t tw_e = g.out_cols - (g.tiles_across - 1) * tile_cols;
        std::vector<std::size_t> shapes;
        for (const std::size_t th : {th_i, th_e}) {
            for (const std::size_t tw : {tw_i, tw_e}) {
                const std::size_t floats = th * tw;
                if (std::find(shapes.begin(), shapes.end(), floats) == shapes.end()) {
                    shapes.push_back(floats);
                }
            }
        }
        for (const std::size_t floats : shapes) res.push_back({floats, 4});
    }
    return res;
}

std::uint64_t TilePlan::resident_bytes_bound() const {
    std::uint64_t floats = 0;
    for (const Reservation& r : reservations()) {
        floats += static_cast<std::uint64_t>(r.floats) * r.count;
    }
    return floats * sizeof(float);
}

}  // namespace wavehpc::tile
