#include "tile/tiled_dwt.hpp"

#include <algorithm>
#include <chrono>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

namespace wavehpc::tile {

namespace {

using core::ImageF;

/// Driver-resident byte gauge: obtains add, recycles and sink handoffs
/// subtract, so the peak is exactly the driver's working set regardless
/// of what the sink retains.
struct ResidentMeter {
    std::uint64_t current = 0;
    std::uint64_t peak = 0;

    void add(std::size_t floats) noexcept {
        current += static_cast<std::uint64_t>(floats) * sizeof(float);
        peak = std::max(peak, current);
    }
    void sub(std::size_t floats) noexcept {
        current -= std::min<std::uint64_t>(
            current, static_cast<std::uint64_t>(floats) * sizeof(float));
    }
};

struct LevelState {
    ImageF lo_ring;  // ring_rows x out_cols of row-pass low rows
    ImageF hi_ring;
    ImageF lo_head;  // head_rows x out_cols: the Periodic wrap target
    ImageF hi_head;
    ImageF ll_band;  // cascade staging toward the next level (absent at last)
    std::size_t ingested = 0;  // input rows pushed through the row pass
    std::size_t next_out = 0;  // first output row not yet emitted
};

class StreamContext {
public:
    StreamContext(const TilePlan& plan, const core::FilterPair& fp,
                  core::BoundaryMode mode, core::DwtKernel kernel, TileSink& sink,
                  core::FloatBufferSource& buffers)
        : plan_(plan),
          fp_(fp),
          mode_(mode),
          kernel_(kernel),
          sink_(sink),
          buffers_(buffers),
          zero_tiles_(kernel == core::DwtKernel::Convolve),
          start_(std::chrono::steady_clock::now()) {
        states_.resize(plan_.level.size());
        for (std::size_t l = 0; l < states_.size(); ++l) {
            const LevelGeometry& g = plan_.level[l];
            LevelState& st = states_[l];
            st.lo_ring = obtain(g.ring_rows, g.out_cols, false);
            st.hi_ring = obtain(g.ring_rows, g.out_cols, false);
            if (g.head_rows > 0) {
                st.lo_head = obtain(g.head_rows, g.out_cols, false);
                st.hi_head = obtain(g.head_rows, g.out_cols, false);
            }
            if (l + 1 < states_.size()) {
                st.ll_band =
                    obtain(std::min(plan_.tile_rows, g.out_rows), g.out_cols, false);
            }
        }
    }

    ~StreamContext() {
        for (LevelState& st : states_) {
            recycle(std::move(st.lo_ring));
            recycle(std::move(st.hi_ring));
            recycle(std::move(st.lo_head));
            recycle(std::move(st.hi_head));
            recycle(std::move(st.ll_band));
        }
    }

    [[nodiscard]] ImageF obtain(std::size_t rows, std::size_t cols, bool zeroed) {
        meter_.add(rows * cols);
        return core::obtain_image(buffers_, rows, cols, zeroed);
    }

    void recycle(ImageF&& img) {
        if (img.size() == 0) return;
        meter_.sub(img.size());
        buffers_.recycle(img.release_data());
    }

    /// Row pass: one full-width input row of level `l` lands in the ring,
    /// transformed per tile column (horizontal halo = neighbouring pixels
    /// of the shared scanline, read by analyze_1d_range at the segment
    /// edges).
    void push_row(std::size_t l, const float* row) {
        LevelState& st = states_[l];
        const LevelGeometry& g = plan_.level[l];
        const std::span<const float> in(row, g.in_cols);
        const auto lo = st.lo_ring.row(st.ingested % g.ring_rows);
        const auto hi = st.hi_ring.row(st.ingested % g.ring_rows);
        for (std::size_t tj = 0; tj < g.tiles_across; ++tj) {
            const std::size_t c0 = tj * plan_.tile_cols;
            const std::size_t c1 = std::min(g.out_cols, c0 + plan_.tile_cols);
            core::analyze_1d_range(in, fp_, lo.subspan(c0, c1 - c0),
                                   hi.subspan(c0, c1 - c0), mode_, kernel_, c0, c1);
        }
        if (st.ingested < g.head_rows) {
            std::copy(lo.begin(), lo.end(), st.lo_head.row(st.ingested).begin());
            std::copy(hi.begin(), hi.end(), st.hi_head.row(st.ingested).begin());
        }
        ++st.ingested;
        drain(l, false);
    }

    /// Emit every output band whose source window is fully ingested (all
    /// of them once `final` — the boundary supplies the rest).
    void drain(std::size_t l, bool final) {
        LevelState& st = states_[l];
        const LevelGeometry& g = plan_.level[l];
        while (st.next_out < g.out_rows) {
            const std::size_t k0 = st.next_out;
            const std::size_t k1 = std::min(g.out_rows, k0 + plan_.tile_rows);
            // Band [k0, k1) reads source rows through 2*k1 + taps - 3.
            if (!final && st.ingested < 2 * k1 + plan_.taps - 2) break;
            emit_band(l, k0, k1);
            st.next_out = k1;
        }
    }

    /// Stream end: flush levels in cascade order — level l's final drain
    /// pushes its remaining LL rows into level l+1 before l+1 flushes.
    void finalize() {
        for (std::size_t l = 0; l < states_.size(); ++l) {
            drain(l, true);
        }
        seconds_ = elapsed();
    }

    [[nodiscard]] TileStreamStats stats(const TileSource& src) const {
        TileStreamStats s;
        s.rows = src.rows();
        s.cols = src.cols();
        s.levels = plan_.levels;
        s.bytes_in = static_cast<std::uint64_t>(src.rows()) * src.cols() *
                     sizeof(float);
        s.seconds = seconds_;
        s.approx_seal_seconds = approx_seal_seconds_;
        s.peak_resident_bytes = meter_.peak;
        return s;
    }

private:
    [[nodiscard]] double elapsed() const {
        return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             start_)
            .count();
    }

    /// Resolve a global row-band row against ring/head storage. The
    /// emission gate and the head retention together guarantee every row
    /// the boundary maps a band onto is still resident (see plan.hpp).
    [[nodiscard]] const float* ring_row(const LevelState& st, const LevelGeometry& g,
                                        bool low, std::size_t r) const {
        if (r >= st.ingested) {
            throw std::logic_error("tile stream: row not yet produced");
        }
        if (st.ingested > g.ring_rows && r + g.ring_rows < st.ingested) {
            // Evicted from the ring: only the head retains it (Periodic
            // bottom wrap).
            if (r < g.head_rows) {
                return (low ? st.lo_head : st.hi_head).row(r).data();
            }
            throw std::logic_error("tile stream: row evicted from ring");
        }
        return (low ? st.lo_ring : st.hi_ring).row(r % g.ring_rows).data();
    }

    void emit_band(std::size_t l, std::size_t k0, std::size_t k1) {
        LevelState& st = states_[l];
        const LevelGeometry& g = plan_.level[l];
        const std::size_t th = k1 - k0;
        const bool last_level = l + 1 == states_.size();
        for (std::size_t tj = 0; tj < g.tiles_across; ++tj) {
            const std::size_t c0 = tj * plan_.tile_cols;
            const std::size_t c1 = std::min(g.out_cols, c0 + plan_.tile_cols);
            const std::size_t tw = c1 - c0;
            ImageF ll = obtain(th, tw, zero_tiles_);
            ImageF lh = obtain(th, tw, zero_tiles_);
            ImageF hl = obtain(th, tw, zero_tiles_);
            ImageF hh = obtain(th, tw, zero_tiles_);
            const core::RowAccessor lo_at = [this, &st, &g, c0](std::size_t r) {
                return ring_row(st, g, true, r) + c0;
            };
            const core::RowAccessor hi_at = [this, &st, &g, c0](std::size_t r) {
                return ring_row(st, g, false, r) + c0;
            };
            core::analyze_cols_tile(lo_at, hi_at, g.in_rows, tw, fp_, ll, lh, hl, hh,
                                    mode_, kernel_, k0, k1);
            if (last_level) {
                meter_.sub(ll.size());
                sink_.on_approx(TileCoord{plan_.levels, k0, c0}, std::move(ll));
            } else {
                st.ll_band.paste(ll, 0, c0);
                recycle(std::move(ll));
            }
            core::DetailBands bands;
            bands.lh = std::move(lh);
            bands.hl = std::move(hl);
            bands.hh = std::move(hh);
            meter_.sub(3 * th * tw);
            sink_.on_detail(TileCoord{static_cast<int>(l), k0, c0}, std::move(bands));
        }
        if (last_level && k1 == g.out_rows) {
            approx_seal_seconds_ = elapsed();
            sink_.on_approx_complete();
        }
        if (k1 == g.out_rows) {
            sink_.on_level_complete(static_cast<int>(l));
        }
        if (!last_level) {
            for (std::size_t j = 0; j < th; ++j) {
                push_row(l + 1, st.ll_band.row(j).data());
            }
        }
    }

    const TilePlan& plan_;
    const core::FilterPair& fp_;
    const core::BoundaryMode mode_;
    const core::DwtKernel kernel_;
    TileSink& sink_;
    core::FloatBufferSource& buffers_;
    const bool zero_tiles_;
    const std::chrono::steady_clock::time_point start_;
    std::vector<LevelState> states_;
    ResidentMeter meter_;
    double approx_seal_seconds_ = 0.0;
    double seconds_ = 0.0;
};

}  // namespace

TileStreamStats stream_decompose(TileSource& src, const core::FilterPair& fp,
                                 int levels, core::BoundaryMode mode,
                                 core::DwtKernel kernel, const TileConfig& cfg,
                                 TileSink& sink, core::FloatBufferSource* buffers) {
    core::validate_decomposition_request(src.rows(), src.cols(), levels);
    const core::DwtKernel resolved = core::resolve_dwt_kernel(kernel, fp);
    const TilePlan plan =
        TilePlan::build(src.rows(), src.cols(), levels, fp.low().size(), cfg);
    core::HeapBufferSource fallback;
    core::FloatBufferSource& buf = buffers != nullptr ? *buffers : fallback;
    StreamContext ctx(plan, fp, mode, resolved, sink, buf);
    // Ingest in bands of tile_rows full-width rows; only this staging band
    // of the source is ever materialized.
    const std::size_t band = std::min(cfg.tile_rows, src.rows());
    ImageF staging = ctx.obtain(band, src.cols(), false);
    for (std::size_t y0 = 0; y0 < src.rows(); y0 += band) {
        const std::size_t n = std::min(band, src.rows() - y0);
        src.read_rows(y0, n, staging.flat().first(n * src.cols()));
        for (std::size_t j = 0; j < n; ++j) {
            ctx.push_row(0, staging.row(j).data());
        }
    }
    ctx.recycle(std::move(staging));
    ctx.finalize();
    return ctx.stats(src);
}

}  // namespace wavehpc::tile
