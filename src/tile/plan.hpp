#pragma once
// Tile plan for the streaming gigapixel DWT (ISSUE 9).
//
// A W x H scene is decomposed as a grid of fixed-size tiles per level:
// output rows advance in bands of `tile_rows`, output columns split into
// `tile_cols`-wide segments. Neighbouring tiles exchange a halo of
// taps-1 input samples — vertically the driver realizes the exchange by
// retaining guard rows in a per-level ring buffer, horizontally by
// letting each tile's row transform read its neighbours' pixels from the
// shared full-width scanline. (The exact vertical overhang of an output
// band is taps-2 source rows past its nominal edge — output k reads
// inputs 2k .. 2k+taps-1 — so taps-1 is the safe guard width the plan
// provisions.) True image edges are handled by the boundary mode, never
// by the tile seams, which is what keeps every interior AND edge
// coefficient bit-identical to the monolithic decompose.
//
// The plan is pure arithmetic: level geometry, ring capacities, and the
// exact buffer reservation list the streaming driver will obtain, so a
// caller can pre-provision a BufferArena (BufferArena::reserve) and then
// assert the stream ran with zero warm allocations. Every quantity is
// independent of the image HEIGHT (rings are capped at 2*tile_rows+taps
// rows), which is the constant-memory claim bench_tiled_stream gates on.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wavehpc::tile {

struct TileConfig {
    std::size_t tile_rows = 128;  ///< output rows per tile band
    std::size_t tile_cols = 256;  ///< output cols per tile

    /// Defaults overridden by WAVEHPC_TILE_ROWS / WAVEHPC_TILE_COLS
    /// (unset or unparsable keep the default; values clamp to [1, 65536]).
    [[nodiscard]] static TileConfig from_env();
};

/// Geometry of one pyramid level in the tile grid.
struct LevelGeometry {
    std::size_t in_rows = 0;   ///< level input plane height
    std::size_t in_cols = 0;   ///< level input plane width
    std::size_t out_rows = 0;  ///< each subband = in/2
    std::size_t out_cols = 0;
    std::size_t tiles_down = 0;    ///< ceil(out_rows / tile_rows)
    std::size_t tiles_across = 0;  ///< ceil(out_cols / tile_cols)
    /// Row-band ring capacity: min(in_rows, 2*tile_rows + taps) rows of
    /// row-pass output retained per band (lo and hi). Emitting output
    /// band [k0, k1) needs rows 2*k0 .. 2*k1+taps-3 — span 2*(k1-k0) +
    /// taps - 2 — so this capacity always covers the oldest pending band.
    std::size_t ring_rows = 0;
    /// First taps-2 row-pass rows retained for the Periodic bottom wrap
    /// (Symmetric reflects into recent ring rows; ZeroPad reads nothing).
    std::size_t head_rows = 0;
};

/// One pre-provisioning entry: `count` buffers of `floats` floats.
struct Reservation {
    std::size_t floats = 0;
    std::size_t count = 0;
};

struct TilePlan {
    std::size_t rows = 0;
    std::size_t cols = 0;
    int levels = 0;
    std::size_t taps = 0;
    std::size_t halo = 0;  ///< guard width provisioned between tiles: taps-1
    std::size_t tile_rows = 0;
    std::size_t tile_cols = 0;
    std::vector<LevelGeometry> level;  ///< one per pyramid level, finest first

    /// Build the plan. Validates like core::decompose (dims divisible by
    /// 2^levels) plus even taps >= 2; throws std::invalid_argument.
    [[nodiscard]] static TilePlan build(std::size_t rows, std::size_t cols, int levels,
                                        std::size_t taps, const TileConfig& cfg);

    /// Exactly the buffers stream_decompose obtains, as (floats, count)
    /// pairs: the level-0 ingest staging band, each level's lo/hi rings
    /// and head rows, the LL cascade band, and every distinct tile shape
    /// (interior and edge) times its four subband buffers. Replaying this
    /// list through BufferArena::reserve makes the stream allocation-free.
    [[nodiscard]] std::vector<Reservation> reservations() const;

    /// Upper bound (bytes) on driver-resident buffer memory: the summed
    /// reservation list. Independent of the image height by construction.
    [[nodiscard]] std::uint64_t resident_bytes_bound() const;
};

}  // namespace wavehpc::tile
