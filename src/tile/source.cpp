#include "tile/source.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace wavehpc::tile {

namespace {

// Same mixing family as core::synthetic's generators, reimplemented here
// because those helpers are internal to synthetic.cpp; determinism only
// has to hold against *this* source, not against fbm_field.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

[[nodiscard]] float hash01(std::uint64_t seed, std::uint64_t gx,
                           std::uint64_t gy) noexcept {
    const std::uint64_t h = splitmix64(seed ^ (gx * 0x9e3779b97f4a7c15ULL) ^
                                       (gy * 0xc2b2ae3d27d4eb4fULL));
    return static_cast<float>(h >> 40) / static_cast<float>(1ULL << 24);
}

[[nodiscard]] float smoothstep(float t) noexcept { return t * t * (3.0F - 2.0F * t); }

// Add one octave of bilinear value noise to a row: the two lattice rows
// bracketing `r` are hashed once per lattice COLUMN and interpolated
// across the cell, so cost is ~2 hashes per `cell` pixels instead of 4
// per pixel — this is what keeps a 16k x 16k synthetic scene cheap.
void add_octave_row(std::uint64_t seed, std::size_t r, std::size_t cols,
                    std::size_t cell, float amp, float* dst) {
    const std::uint64_t gy = r / cell;
    const float ty = smoothstep(static_cast<float>(r % cell) /
                                static_cast<float>(cell));
    std::size_t c = 0;
    std::uint64_t gx = 0;
    float left = (1.0F - ty) * hash01(seed, gx, gy) + ty * hash01(seed, gx, gy + 1);
    while (c < cols) {
        const float right = (1.0F - ty) * hash01(seed, gx + 1, gy) +
                            ty * hash01(seed, gx + 1, gy + 1);
        const std::size_t span = std::min(cell, cols - c);
        for (std::size_t i = 0; i < span; ++i) {
            const float tx = smoothstep(static_cast<float>(i) /
                                        static_cast<float>(cell));
            dst[c + i] += amp * ((1.0F - tx) * left + tx * right);
        }
        c += span;
        ++gx;
        left = right;
    }
}

}  // namespace

SyntheticTileSource::SyntheticTileSource(std::size_t rows, std::size_t cols,
                                         std::uint64_t seed, int octaves)
    : rows_(rows), cols_(cols), seed_(seed), octaves_(std::clamp(octaves, 1, 8)) {
    if (rows == 0 || cols == 0) {
        throw std::invalid_argument("SyntheticTileSource: dimensions must be non-zero");
    }
}

void SyntheticTileSource::read_rows(std::size_t y0, std::size_t n,
                                    std::span<float> dst) {
    if (y0 > rows_ || n > rows_ - y0) {
        throw std::out_of_range("SyntheticTileSource: window outside image");
    }
    if (dst.size() != n * cols_) {
        throw std::invalid_argument("SyntheticTileSource: bad destination size");
    }
    for (std::size_t j = 0; j < n; ++j) {
        const std::size_t r = y0 + j;
        float* row = dst.data() + j * cols_;
        std::fill(row, row + cols_, 0.0F);
        // Octave o: lattice cell 64 >> o (floor 4), halving amplitude —
        // a coarse relief with progressively finer grain, scaled to a
        // radiometrically plausible [0, 255]-ish range.
        float amp = 160.0F;
        for (int o = 0; o < octaves_; ++o) {
            const std::size_t cell = std::max<std::size_t>(4, 64 >> o);
            add_octave_row(seed_ + static_cast<std::uint64_t>(o) * 0x51ed270b9ULL, r,
                           cols_, cell, amp, row);
            amp *= 0.5F;
        }
    }
}

core::ImageF SyntheticTileSource::materialize() {
    core::ImageF img(rows_, cols_);
    read_rows(0, rows_, img.flat());
    return img;
}

PgmTileSource::PgmTileSource(std::string path)
    : path_(std::move(path)), info_(core::read_pgm_header(path_)) {}

void PgmTileSource::read_rows(std::size_t y0, std::size_t n, std::span<float> dst) {
    if (dst.size() != n * info_.cols) {
        throw std::invalid_argument("PgmTileSource: bad destination size");
    }
    const core::ImageF band = core::read_pgm_rows(path_, y0, n);
    std::copy(band.flat().begin(), band.flat().end(), dst.begin());
}

void InMemoryTileSource::read_rows(std::size_t y0, std::size_t n,
                                   std::span<float> dst) {
    if (y0 > img_.rows() || n > img_.rows() - y0) {
        throw std::out_of_range("InMemoryTileSource: window outside image");
    }
    if (dst.size() != n * img_.cols()) {
        throw std::invalid_argument("InMemoryTileSource: bad destination size");
    }
    std::memcpy(dst.data(), img_.row(y0).data(), n * img_.cols() * sizeof(float));
}

}  // namespace wavehpc::tile
