#pragma once
// The oracle scheduler (Appendix C, section 5.2 / [Theobald's SITA]): pack
// a dependency-annotated trace into parallel instructions, each instruction
// placed at the earliest level permitted by its true dependencies; plus the
// finite-processor list schedule used to measure smoothability.

#include "workload/trace.hpp"

namespace wavehpc::workload {

/// One machine cycle of the ideal machine: how many operations of each type
/// issued together.
struct ParallelInstruction {
    std::array<double, kOpTypes> counts{};

    [[nodiscard]] double total() const noexcept {
        double s = 0.0;
        for (double c : counts) s += c;
        return s;
    }
};

struct Schedule {
    std::vector<ParallelInstruction> cycles;
    std::size_t operations = 0;

    /// Critical path length (cycles of the schedule).
    [[nodiscard]] std::size_t length() const noexcept { return cycles.size(); }
    /// Average degree of parallelism: operations / cycles.
    [[nodiscard]] double average_parallelism() const noexcept {
        return cycles.empty() ? 0.0
                              : static_cast<double>(operations) /
                                    static_cast<double>(cycles.size());
    }
};

/// Unlimited-processor oracle schedule: level(i) = 1 + max(level(deps)).
/// Throws std::invalid_argument on a forward or self dependency.
[[nodiscard]] Schedule oracle_schedule(const Trace& trace);

/// Greedy list schedule with at most `max_ops` operations per cycle (ready
/// operations issued in trace order). max_ops = 0 is invalid.
[[nodiscard]] Schedule list_schedule(const Trace& trace, std::size_t max_ops);

struct SmoothabilityReport {
    std::size_t cpl_unlimited = 0;    ///< oracle critical path
    double avg_parallelism = 0.0;     ///< P_avg on the oracle
    std::size_t cpl_limited = 0;      ///< list schedule at P = round(P_avg)
    double smoothability = 0.0;       ///< cpl_unlimited / cpl_limited
    double avg_op_delay = 0.0;        ///< mean (limited level - oracle level)
};

/// Smoothability [Theobald]: how little the schedule stretches when the
/// machine width is capped at the average parallelism. Close to 1 means the
/// parallelism profile is flat and the centroid is a faithful summary.
[[nodiscard]] SmoothabilityReport smoothability(const Trace& trace);

}  // namespace wavehpc::workload
