#include "workload/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wavehpc::workload {

namespace {

void add_to_cycle(std::vector<ParallelInstruction>& cycles, std::size_t level,
                  OpType type) {
    if (level >= cycles.size()) cycles.resize(level + 1);
    cycles[level].counts[static_cast<std::size_t>(type)] += 1.0;
}

std::vector<std::size_t> oracle_levels(const Trace& trace) {
    std::vector<std::size_t> level(trace.size(), 0);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        std::size_t lvl = 0;
        for (std::uint32_t d : trace[i].deps) {
            if (d >= i) {
                throw std::invalid_argument(
                    "oracle_schedule: dependency must reference an earlier entry");
            }
            lvl = std::max(lvl, level[d] + 1);
        }
        level[i] = lvl;
    }
    return level;
}

}  // namespace

Schedule oracle_schedule(const Trace& trace) {
    const auto level = oracle_levels(trace);
    Schedule s;
    s.operations = trace.size();
    for (std::size_t i = 0; i < trace.size(); ++i) {
        add_to_cycle(s.cycles, level[i], trace[i].type);
    }
    return s;
}

Schedule list_schedule(const Trace& trace, std::size_t max_ops) {
    if (max_ops == 0) throw std::invalid_argument("list_schedule: max_ops must be > 0");
    // Greedy by cycles: each op's earliest start is after its deps' cycles;
    // within a cycle, ready ops issue in trace order until the width cap.
    std::vector<std::size_t> cycle_of(trace.size());
    std::vector<std::size_t> width;  // ops issued per cycle so far
    for (std::size_t i = 0; i < trace.size(); ++i) {
        std::size_t earliest = 0;
        for (std::uint32_t d : trace[i].deps) {
            if (d >= i) {
                throw std::invalid_argument(
                    "list_schedule: dependency must reference an earlier entry");
            }
            earliest = std::max(earliest, cycle_of[d] + 1);
        }
        if (earliest >= width.size()) width.resize(earliest + 1, 0);
        std::size_t at = earliest;
        while (width[at] >= max_ops) {
            ++at;
            if (at >= width.size()) width.resize(at + 1, 0);
        }
        cycle_of[i] = at;
        ++width[at];
    }
    Schedule s;
    s.operations = trace.size();
    for (std::size_t i = 0; i < trace.size(); ++i) {
        add_to_cycle(s.cycles, cycle_of[i], trace[i].type);
    }
    return s;
}

SmoothabilityReport smoothability(const Trace& trace) {
    SmoothabilityReport r;
    if (trace.empty()) return r;
    const Schedule oracle = oracle_schedule(trace);
    r.cpl_unlimited = oracle.length();
    r.avg_parallelism = oracle.average_parallelism();
    const auto cap = static_cast<std::size_t>(
        std::max(1.0, std::round(r.avg_parallelism)));
    const Schedule limited = list_schedule(trace, cap);
    r.cpl_limited = limited.length();
    r.smoothability = static_cast<double>(r.cpl_unlimited) /
                      static_cast<double>(r.cpl_limited);

    // Average delay = mean over ops of (limited cycle - oracle cycle); ops
    // that issue as soon as ready count as zero.
    const auto oracle_lv = [&] {
        std::vector<std::size_t> level(trace.size(), 0);
        for (std::size_t i = 0; i < trace.size(); ++i) {
            for (std::uint32_t d : trace[i].deps) {
                level[i] = std::max(level[i], level[d] + 1);
            }
        }
        return level;
    }();
    // Recompute the limited placement (list_schedule keeps it internal).
    std::vector<std::size_t> cycle_of(trace.size());
    std::vector<std::size_t> width;
    double delay_sum = 0.0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        std::size_t earliest = 0;
        for (std::uint32_t d : trace[i].deps) {
            earliest = std::max(earliest, cycle_of[d] + 1);
        }
        if (earliest >= width.size()) width.resize(earliest + 1, 0);
        std::size_t at = earliest;
        while (width[at] >= cap) {
            ++at;
            if (at >= width.size()) width.resize(at + 1, 0);
        }
        cycle_of[i] = at;
        ++width[at];
        delay_sum += static_cast<double>(at - oracle_lv[i]);
    }
    r.avg_op_delay = delay_sum / static_cast<double>(trace.size());
    return r;
}

}  // namespace wavehpc::workload
