#pragma once
// The parallelism-matrix technique of Bradley & Larson (Appendix C,
// section 2), in its architecture-invariant extension: the workload profile
// is the distribution of executed parallel instructions over the
// multidimensional space of per-type multiplicities, and two workloads are
// compared with the (normalized) Frobenius norm of the difference.
//
// The matrix is stored sparsely (a dense n^t array is exactly the cost
// problem the centroid model fixes — bench_tableC5 measures it).

#include <map>
#include <vector>

#include "workload/oracle.hpp"

namespace wavehpc::workload {

class ParallelismMatrix {
public:
    /// Build from an oracle schedule: each cycle's type-multiplicity tuple
    /// is one sample; entries are fractions of the cycle count.
    [[nodiscard]] static ParallelismMatrix from_schedule(const Schedule& schedule);

    /// Build from an explicit weighted PI multiset (section 4.1 examples).
    [[nodiscard]] static ParallelismMatrix from_pis(
        const std::vector<std::pair<std::size_t, std::vector<int>>>& pis);

    /// Normalized Frobenius difference (expression 3, divided by sqrt(2)):
    /// 0 for identical distributions, 1 when supports are disjoint.
    [[nodiscard]] double difference(const ParallelismMatrix& other) const;

    /// Number of distinct non-zero cells (the sparse footprint).
    [[nodiscard]] std::size_t cells() const noexcept { return fractions_.size(); }
    /// Fraction stored for one multiplicity tuple (0 if absent).
    [[nodiscard]] double fraction(const std::vector<int>& key) const;

private:
    std::map<std::vector<int>, double> fractions_;
};

}  // namespace wavehpc::workload
