#pragma once
// The parallel-instruction vector-space model (Appendix C, section 3): a
// workload is summarized by its centroid — the mean multiplicity of each
// operation type per parallel instruction — and two workloads are compared
// by the normalized Euclidean distance between their centroids
// (expression 9): 0 = identical exercising of the machine, 1 = orthogonal.

#include <vector>

#include "workload/oracle.hpp"

namespace wavehpc::workload {

/// Centroids are plain per-type mean vectors. Length is kOpTypes for traces
/// scheduled here, but the math is dimension-agnostic (the paper's worked
/// examples use three types), so the vector length is free.
using Centroid = std::vector<double>;

/// Centroid of an oracle schedule (expression 5/6).
[[nodiscard]] Centroid centroid_of(const Schedule& schedule);

/// Centroid of an explicit multiset of parallel instructions, each with a
/// multiplicity (the format of the paper's section 4.1 example workloads).
struct WeightedPi {
    std::size_t count = 0;
    std::vector<double> ops;
};
[[nodiscard]] Centroid centroid_of(const std::vector<WeightedPi>& pis);

/// Normalized Euclidean similarity (expression 9). Throws on a length
/// mismatch; two null centroids are defined identical (0.0).
[[nodiscard]] double similarity(const Centroid& a, const Centroid& b);

}  // namespace wavehpc::workload
