#include "workload/matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace wavehpc::workload {

ParallelismMatrix ParallelismMatrix::from_schedule(const Schedule& schedule) {
    ParallelismMatrix m;
    if (schedule.cycles.empty()) return m;
    const double w = 1.0 / static_cast<double>(schedule.cycles.size());
    for (const ParallelInstruction& pi : schedule.cycles) {
        std::vector<int> key(kOpTypes);
        for (std::size_t t = 0; t < kOpTypes; ++t) {
            key[t] = static_cast<int>(pi.counts[t]);
        }
        m.fractions_[key] += w;
    }
    return m;
}

ParallelismMatrix ParallelismMatrix::from_pis(
    const std::vector<std::pair<std::size_t, std::vector<int>>>& pis) {
    ParallelismMatrix m;
    std::size_t total = 0;
    const std::size_t dims = pis.empty() ? 0 : pis.front().second.size();
    for (const auto& [count, key] : pis) {
        if (key.size() != dims) {
            throw std::invalid_argument("ParallelismMatrix: inconsistent PI width");
        }
        total += count;
    }
    if (total == 0) throw std::invalid_argument("ParallelismMatrix: empty workload");
    for (const auto& [count, key] : pis) {
        m.fractions_[key] += static_cast<double>(count) / static_cast<double>(total);
    }
    return m;
}

double ParallelismMatrix::difference(const ParallelismMatrix& other) const {
    double acc = 0.0;
    for (const auto& [key, f] : fractions_) {
        const auto it = other.fractions_.find(key);
        const double g = (it == other.fractions_.end()) ? 0.0 : it->second;
        acc += (f - g) * (f - g);
    }
    for (const auto& [key, g] : other.fractions_) {
        if (fractions_.find(key) == fractions_.end()) acc += g * g;
    }
    return std::sqrt(acc) / std::sqrt(2.0);
}

double ParallelismMatrix::fraction(const std::vector<int>& key) const {
    const auto it = fractions_.find(key);
    return (it == fractions_.end()) ? 0.0 : it->second;
}

}  // namespace wavehpc::workload
