#include "workload/kernels.hpp"

#include <span>
#include <stdexcept>

namespace wavehpc::workload {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

// Small helper to append an op depending on up to two predecessors.
std::uint32_t emit(Trace& t, OpType type, std::uint32_t d0 = UINT32_MAX,
                   std::uint32_t d1 = UINT32_MAX) {
    Instruction in;
    in.type = type;
    if (d0 != UINT32_MAX) in.deps.push_back(d0);
    if (d1 != UINT32_MAX && d1 != d0) in.deps.push_back(d1);
    t.push_back(std::move(in));
    return static_cast<std::uint32_t>(t.size() - 1);
}

// embar: many independent Monte-Carlo blocks; inside a block a serial
// int/fp chain (the linear-congruential recurrence), across blocks nothing.
Trace gen_embar(std::size_t scale, std::uint64_t /*seed*/) {
    Trace t;
    const std::size_t blocks = 50 * scale;
    for (std::size_t b = 0; b < blocks; ++b) {
        std::uint32_t prev = UINT32_MAX;
        for (int i = 0; i < 8; ++i) {
            prev = emit(t, OpType::Int, prev);          // LCG update
            const auto f1 = emit(t, OpType::Fp, prev);  // scale to (0,1)
            const auto f2 = emit(t, OpType::Fp, f1);    // transform
            (void)emit(t, OpType::Branch, f2);          // acceptance test
        }
        (void)emit(t, OpType::Mem, prev);  // tally store
    }
    return t;
}

// mgrid: V-cycle of stencil layers: each point depends on a few points of
// the previous (coarser/finer) layer.
Trace gen_mgrid(std::size_t scale, std::uint64_t seed) {
    Trace t;
    std::vector<std::uint32_t> prev_layer;
    std::size_t width = 400 * scale;
    for (int layer = 0; layer < 6; ++layer) {
        std::vector<std::uint32_t> layer_ops;
        layer_ops.reserve(width);
        for (std::size_t i = 0; i < width; ++i) {
            std::uint32_t d0 = UINT32_MAX;
            std::uint32_t d1 = UINT32_MAX;
            if (!prev_layer.empty()) {
                d0 = prev_layer[splitmix64(seed ^ i) % prev_layer.size()];
                d1 = prev_layer[(2 * i + 1) % prev_layer.size()];
            }
            const auto ld = emit(t, OpType::Mem, d0, d1);   // load neighbours
            const auto fp = emit(t, OpType::Fp, ld);        // stencil combine
            const auto ix = emit(t, OpType::Int, fp);       // index arithmetic
            layer_ops.push_back(emit(t, OpType::Mem, ix));  // store
        }
        (void)emit(t, OpType::Branch, layer_ops.back());  // level loop
        prev_layer = std::move(layer_ops);
        width = std::max<std::size_t>(width / 2, 8);
    }
    return t;
}

// cgm: sparse mat-vec rows (gather + MAC chain) feeding a log-depth
// reduction tree per iteration — modest, irregular parallelism.
Trace gen_cgm(std::size_t scale, std::uint64_t seed) {
    Trace t;
    const std::size_t rows = 120 * scale;
    std::vector<std::uint32_t> partials;
    for (std::size_t r = 0; r < rows; ++r) {
        std::uint32_t acc = UINT32_MAX;
        const std::size_t nnz = 3 + splitmix64(seed ^ r) % 5;
        for (std::size_t k = 0; k < nnz; ++k) {
            const auto idx = emit(t, OpType::Int);        // column index
            const auto ld = emit(t, OpType::Mem, idx);    // gather x[col]
            acc = emit(t, OpType::Fp, ld, acc);           // MAC chain
        }
        partials.push_back(acc);
        (void)emit(t, OpType::Branch, acc);  // row loop
    }
    // Reduction tree over the row results.
    while (partials.size() > 1) {
        std::vector<std::uint32_t> next;
        for (std::size_t i = 0; i + 1 < partials.size(); i += 2) {
            next.push_back(emit(t, OpType::Fp, partials[i], partials[i + 1]));
        }
        if (partials.size() % 2 != 0) next.push_back(partials.back());
        partials = std::move(next);
    }
    return t;
}

// fftpde: radix-2 butterfly stages: op (s, i) depends on (s-1, i) and
// (s-1, i ^ 2^(s-1)) — wide and perfectly layered.
Trace gen_fftpde(std::size_t scale, std::uint64_t /*seed*/) {
    Trace t;
    std::size_t n = 256;
    while (n * 12 < 1000 * scale) n *= 2;
    std::vector<std::uint32_t> cur(n);
    for (std::size_t i = 0; i < n; ++i) cur[i] = emit(t, OpType::Mem);  // load
    std::size_t stages = 0;
    for (std::size_t len = 1; len < n; len *= 2) ++stages;
    for (std::size_t s = 0; s < stages; ++s) {
        std::vector<std::uint32_t> next(n);
        const std::size_t bit = std::size_t{1} << s;
        for (std::size_t i = 0; i < n; ++i) {
            const auto tw = emit(t, OpType::Int, cur[i]);  // twiddle index
            next[i] = emit(t, OpType::Fp, tw, cur[i ^ bit]);
        }
        cur = std::move(next);
        (void)emit(t, OpType::Control, cur[0]);  // stage barrier marker
    }
    for (std::size_t i = 0; i < n; ++i) (void)emit(t, OpType::Mem, cur[i]);  // store
    return t;
}

// buk: bucket sort — integer/memory work with serializing bucket counters
// (every increment of a bucket depends on its previous increment).
Trace gen_buk(std::size_t scale, std::uint64_t seed) {
    Trace t;
    const std::size_t keys = 300 * scale;
    constexpr std::size_t kBuckets = 16;
    std::vector<std::uint32_t> counter(kBuckets, UINT32_MAX);
    std::uint32_t scan = UINT32_MAX;  // sequential key-scan pointer
    for (std::size_t i = 0; i < keys; ++i) {
        scan = emit(t, OpType::Mem, scan);            // load key (scan chain)
        const auto bk = emit(t, OpType::Int, scan);   // bucket index
        const std::size_t b = splitmix64(seed ^ i) % kBuckets;
        counter[b] = emit(t, OpType::Int, bk, counter[b]);  // serialized count
        (void)emit(t, OpType::Mem, counter[b]);             // store count
        (void)emit(t, OpType::Branch, bk);                  // loop test
    }
    return t;
}

// Wavefront sweep skeleton shared by the applu/appsp/appbt CFD kernels:
// a diag x diag grid where point (i,j) depends on (i-1,j) and (i,j-1),
// with `fp_block` floating ops per point (bt > sp > lu per-point work).
Trace gen_wavefront(std::size_t scale, int fp_block, int mem_block) {
    Trace t;
    const auto diag = static_cast<std::size_t>(8 + 4 * scale);
    const std::size_t sweeps =
        std::max<std::size_t>(1, 1000 * scale /
                                     (diag * diag *
                                      static_cast<std::size_t>(fp_block + mem_block + 2)));
    std::vector<std::uint32_t> grid(diag * diag, UINT32_MAX);
    for (std::size_t s = 0; s < sweeps; ++s) {
        for (std::size_t i = 0; i < diag; ++i) {
            for (std::size_t j = 0; j < diag; ++j) {
                const std::uint32_t west = (j > 0) ? grid[i * diag + j - 1] : UINT32_MAX;
                const std::uint32_t north = (i > 0) ? grid[(i - 1) * diag + j] : UINT32_MAX;
                std::uint32_t cur = emit(t, OpType::Mem, west, north);
                for (int f = 0; f < fp_block; ++f) cur = emit(t, OpType::Fp, cur);
                for (int m = 0; m < mem_block; ++m) cur = emit(t, OpType::Mem, cur);
                cur = emit(t, OpType::Int, cur);
                (void)emit(t, OpType::Branch, cur);
                grid[i * diag + j] = cur;
            }
        }
    }
    return t;
}

}  // namespace

const char* kernel_name(NasKernel k) {
    switch (k) {
        case NasKernel::Embar: return "embar";
        case NasKernel::Mgrid: return "mgrid";
        case NasKernel::Cgm: return "cgm";
        case NasKernel::Fftpde: return "fftpde";
        case NasKernel::Buk: return "buk";
        case NasKernel::Applu: return "applu";
        case NasKernel::Appsp: return "appsp";
        case NasKernel::Appbt: return "appbt";
    }
    return "?";
}

Trace make_kernel(NasKernel k, std::size_t scale, std::uint64_t seed) {
    if (scale == 0) throw std::invalid_argument("make_kernel: scale must be > 0");
    switch (k) {
        case NasKernel::Embar: return gen_embar(scale, seed);
        case NasKernel::Mgrid: return gen_mgrid(scale, seed);
        case NasKernel::Cgm: return gen_cgm(scale, seed);
        case NasKernel::Fftpde: return gen_fftpde(scale, seed);
        case NasKernel::Buk: return gen_buk(scale, seed);
        case NasKernel::Applu: return gen_wavefront(scale, 2, 1);
        case NasKernel::Appsp: return gen_wavefront(scale, 4, 2);
        case NasKernel::Appbt: return gen_wavefront(scale, 7, 3);
    }
    throw std::invalid_argument("make_kernel: unknown kernel");
}

Trace make_wavelet_trace(std::size_t rows, std::size_t cols, int taps, int levels) {
    if (rows == 0 || cols == 0 || taps <= 0 || levels <= 0) {
        throw std::invalid_argument("make_wavelet_trace: bad parameters");
    }
    Trace t;
    // producer[r][c] = op index of the last store of the running LL pixel.
    std::vector<std::uint32_t> producer(rows * cols, UINT32_MAX);

    const auto convolve_output = [&](std::span<const std::uint32_t> inputs) {
        // taps loads (each depending on its producer), a chained MAC
        // sequence, one store; returns the store op.
        std::uint32_t chain = UINT32_MAX;
        for (std::uint32_t in : inputs) {
            const auto load = emit(t, OpType::Mem, in);
            chain = emit(t, OpType::Fp, load, chain);
        }
        return emit(t, OpType::Mem, chain);
    };

    std::size_t r = rows;
    std::size_t c = cols;
    for (int level = 0; level < levels; ++level) {
        // Row pass: L and H outputs over the level grid; inputs are the
        // current LL producers. The decimated geometry only matters through
        // the dependency counts, so we reference the window's tap pixels.
        std::vector<std::uint32_t> row_out(r * c, UINT32_MAX);  // L|H interleaved
        std::vector<std::uint32_t> window(static_cast<std::size_t>(taps));
        for (std::size_t i = 0; i < r; ++i) {
            for (std::size_t j = 0; j < c; ++j) {
                for (int n = 0; n < taps; ++n) {
                    const std::size_t src =
                        (2 * (j / 2) + static_cast<std::size_t>(n)) % c;
                    window[static_cast<std::size_t>(n)] = producer[i * c + src];
                }
                row_out[i * c + j] = convolve_output(window);
            }
        }
        // Column pass: the four bands; LL stores become next level producers.
        (void)emit(t, OpType::Branch, row_out[0]);  // level loop control
        std::vector<std::uint32_t> next(producer.size(), UINT32_MAX);
        for (std::size_t i = 0; i < r / 2; ++i) {
            for (std::size_t j = 0; j < c; ++j) {
                for (int n = 0; n < taps; ++n) {
                    const std::size_t src = (2 * i + static_cast<std::size_t>(n)) % r;
                    window[static_cast<std::size_t>(n)] = row_out[src * c + j];
                }
                const std::uint32_t store = convolve_output(window);
                // Half the columns are the L band; its low-pass outputs are
                // the next level's LL pixels (stored with the halved stride).
                if (j < c / 2) next[i * (c / 2) + j] = store;
            }
        }
        producer = std::move(next);
        r /= 2;
        c /= 2;
        if (r == 0 || c == 0) break;
    }
    return t;
}

std::vector<ExampleWorkload> example_suite() {
    // (count, {MEM, FP, INT}) rows; WL1/WL2 exactly as printed in §4.1.
    const auto wl = [](const char* name,
                       std::vector<std::pair<std::size_t, std::vector<double>>> rows) {
        ExampleWorkload w;
        w.name = name;
        for (auto& [c, ops] : rows) w.pis.push_back({c, std::move(ops)});
        return w;
    };
    return {
        wl("WL1", {{5, {1, 0, 1}}, {3, {0, 1, 0}}, {7, {1, 0, 0}}, {2, {0, 0, 1}}}),
        wl("WL2", {{2, {0, 1, 1}}, {3, {1, 1, 0}}, {7, {1, 0, 1}}, {5, {1, 1, 1}}}),
        wl("WL3", {{5, {3, 2, 1}}, {7, {4, 3, 0}}, {4, {2, 3, 1}}}),
        wl("WL4", {{3, {4, 3, 2}}, {7, {3, 4, 2}}, {6, {5, 2, 3}}}),
        wl("WL5", {{4, {1, 1, 2}}, {6, {2, 0, 1}}, {5, {1, 0, 2}}}),
        wl("WL6", {{8, {6, 5, 4}}, {2, {9, 8, 7}}, {5, {7, 6, 5}}}),
    };
}

std::vector<std::pair<const char*, Centroid>> published_nas_centroids() {
    // Appendix C Table 7 (Intops, Memops, FPops, Controlops, Branchops).
    return {
        {"embar", {81.344, 59.469, 14.369, 0.000009, 37.337}},
        {"mgrid", {33.857, 19.516, 0.7958, 0.04973, 9.22}},
        {"cgm", {4.475, 3.798, 0.84, 0.000012, 0.8463}},
        {"fftpde", {184.422, 128.224, 33.466, 10.8513, 57.765}},
        {"buk", {2.428, 1.735, 0.4502, 0.000001, 0.662}},
        {"applu", {1031.789, 559.136, 69.79, 0.04813, 413.972}},
        {"appsp", {8260.854, 5262.65, 604.75, 26.195, 3504.31}},
        {"appbt", {2788.824, 847.519, 49.73, 4.307, 1065.396}},
    };
}

}  // namespace wavehpc::workload
