#pragma once
// Instruction traces for the workload-characterization study (Appendix C).
//
// A trace is a dynamic instruction sequence with explicit true (flow)
// dependencies — exactly what the oracle model consumes: "an idealistic
// model that considers only true flow dependencies". Instructions carry one
// of the five SPARC-style categories the study used.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace wavehpc::workload {

enum class OpType : std::uint8_t {
    Int,      ///< arithmetic/logic/shift
    Mem,      ///< load/store
    Fp,       ///< floating-point operate
    Control,  ///< read/write control register
    Branch,   ///< control transfer
};
inline constexpr std::size_t kOpTypes = 5;

[[nodiscard]] inline const char* op_type_name(std::size_t i) {
    static constexpr const char* names[kOpTypes] = {"Intops", "Memops", "FPops",
                                                    "Controlops", "Branchops"};
    return names[i];
}

struct Instruction {
    OpType type = OpType::Int;
    /// Indices of earlier trace entries this one truly depends on.
    std::vector<std::uint32_t> deps;
};

using Trace = std::vector<Instruction>;

}  // namespace wavehpc::workload
