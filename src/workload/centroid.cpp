#include "workload/centroid.hpp"

#include <cmath>
#include <stdexcept>

namespace wavehpc::workload {

Centroid centroid_of(const Schedule& schedule) {
    Centroid c(kOpTypes, 0.0);
    if (schedule.cycles.empty()) return c;
    for (const ParallelInstruction& pi : schedule.cycles) {
        for (std::size_t t = 0; t < kOpTypes; ++t) c[t] += pi.counts[t];
    }
    for (double& v : c) v /= static_cast<double>(schedule.cycles.size());
    return c;
}

Centroid centroid_of(const std::vector<WeightedPi>& pis) {
    if (pis.empty()) throw std::invalid_argument("centroid_of: empty workload");
    const std::size_t dims = pis.front().ops.size();
    Centroid c(dims, 0.0);
    std::size_t total = 0;
    for (const WeightedPi& wp : pis) {
        if (wp.ops.size() != dims) {
            throw std::invalid_argument("centroid_of: inconsistent PI width");
        }
        for (std::size_t t = 0; t < dims; ++t) {
            c[t] += static_cast<double>(wp.count) * wp.ops[t];
        }
        total += wp.count;
    }
    if (total == 0) throw std::invalid_argument("centroid_of: zero instructions");
    for (double& v : c) v /= static_cast<double>(total);
    return c;
}

double similarity(const Centroid& a, const Centroid& b) {
    if (a.size() != b.size()) {
        throw std::invalid_argument("similarity: centroid lengths differ");
    }
    double d2 = 0.0;
    double max2 = 0.0;
    for (std::size_t t = 0; t < a.size(); ++t) {
        const double diff = a[t] - b[t];
        d2 += diff * diff;
        const double mx = std::max(a[t], b[t]);
        max2 += mx * mx;
    }
    if (max2 == 0.0) return 0.0;  // both null: identical
    return std::sqrt(d2) / std::sqrt(max2);
}

}  // namespace wavehpc::workload
