#pragma once
// Synthetic workload generators for the Appendix C study.
//
// The original study traced SPARC executions of the NAS Parallel Benchmarks
// through spy/SITA; we cannot re-trace 1995 binaries, so each kernel is
// replaced by a dependency-structured synthetic trace that mimics the
// benchmark's computational skeleton (DESIGN.md substitution table): embar's
// independent pseudo-random blocks, mgrid's stencil hierarchy, cgm's sparse
// mat-vec with reduction trees, fftpde's butterflies, buk's serializing
// integer counters, and the applu/appsp/appbt wavefront sweeps.

#include "workload/centroid.hpp"
#include "workload/trace.hpp"

namespace wavehpc::workload {

enum class NasKernel { Embar, Mgrid, Cgm, Fftpde, Buk, Applu, Appsp, Appbt };
inline constexpr NasKernel kAllKernels[] = {
    NasKernel::Embar, NasKernel::Mgrid,  NasKernel::Cgm,   NasKernel::Fftpde,
    NasKernel::Buk,   NasKernel::Applu,  NasKernel::Appsp, NasKernel::Appbt};

[[nodiscard]] const char* kernel_name(NasKernel k);

/// Deterministic synthetic trace; `scale` controls the instruction count
/// (roughly scale * 1000 operations).
[[nodiscard]] Trace make_kernel(NasKernel k, std::size_t scale, std::uint64_t seed = 7);

/// Dependency trace of the Mallat 2-D decomposition itself (rows x cols
/// image, taps-tap filters, `levels` levels): per output coefficient, taps
/// loads of the producing level's samples, a chained multiply-accumulate
/// sequence, and a store; level k+1 depends on level k's LL stores. Ties
/// the report's Appendix A application to its Appendix C methodology.
[[nodiscard]] Trace make_wavelet_trace(std::size_t rows, std::size_t cols, int taps,
                                       int levels);

/// The section 4.1 example benchmark suite: explicit weighted parallel
/// instructions over (MEM, FP, INT). WL1 and WL2 follow the paper's tables;
/// the remaining tables are garbled in the surviving source text and are
/// completed here with the documented values.
struct ExampleWorkload {
    const char* name;
    std::vector<WeightedPi> pis;
};
[[nodiscard]] std::vector<ExampleWorkload> example_suite();

/// Appendix C Table 7: the published NAS centroid vectors
/// (Intops, Memops, FPops, Controlops, Branchops) — used to validate the
/// similarity arithmetic against the paper's own data.
[[nodiscard]] std::vector<std::pair<const char*, Centroid>> published_nas_centroids();

}  // namespace wavehpc::workload
