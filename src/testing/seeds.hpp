#pragma once
// Seed plumbing for the deterministic-simulation test harness.
//
// Every fuzzed artifact in this repo — a schedule interleaving, a fault
// plan, a traffic pattern — is a pure function of a 64-bit seed, so a
// failing case is fully described by one number. The helpers here read
// seeds from the environment (the CI matrix sweeps them), derive per-case
// seeds from a base seed, and format the one-line reproduction hint a
// failing assertion should carry.

#include <cstddef>
#include <cstdint>
#include <string>

namespace wavehpc::testing {

/// SplitMix64 — the same generator family FaultPlan uses for per-message
/// draws: tiny state, full-period, and any seed (including 0) is fine.
class SplitMix64 {
public:
    explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    std::uint64_t next() noexcept;

    /// Uniform double in [0, 1).
    double uniform() noexcept;

    /// Uniform integer in [0, n); n must be > 0.
    std::uint64_t below(std::uint64_t n) noexcept;

    /// Uniform double in [lo, hi).
    double range(double lo, double hi) noexcept;

private:
    std::uint64_t state_;
};

/// `name` parsed as an unsigned 64-bit value, or `fallback` when the
/// variable is unset or unparsable.
[[nodiscard]] std::uint64_t env_seed(const char* name, std::uint64_t fallback);

/// Case-count override for fuzz loops (e.g. WAVEHPC_FUZZ_CASES), clamped
/// to [1, 100000].
[[nodiscard]] std::size_t env_cases(const char* name, std::size_t fallback);

/// The seed of the `index`-th case derived from a base seed: distinct,
/// stable, and printable as a standalone repro seed.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index);

/// One-line reproduction hint for a failing seeded case:
///   "repro: WAVEHPC_SCHED_SEED=42 ./build/tests/test_schedule_fuzz"
[[nodiscard]] std::string repro_line(const char* env_name, std::uint64_t seed,
                                     const char* binary);

}  // namespace wavehpc::testing
