#include "testing/seeds.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace wavehpc::testing {

std::uint64_t SplitMix64::next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

double SplitMix64::uniform() noexcept {
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t SplitMix64::below(std::uint64_t n) noexcept {
    // Modulo bias is negligible for the small ranges the harness draws.
    return next() % n;
}

double SplitMix64::range(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
}

std::uint64_t env_seed(const char* name, std::uint64_t fallback) {
    const char* env = std::getenv(name);
    if (env == nullptr || *env == '\0') return fallback;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end == env) return fallback;
    return static_cast<std::uint64_t>(v);
}

std::size_t env_cases(const char* name, std::size_t fallback) {
    const auto v = static_cast<std::size_t>(env_seed(name, fallback));
    return std::clamp<std::size_t>(v, 1, 100000);
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) {
    // One splitmix step decorrelates consecutive indices; the result is
    // itself a valid base seed, so a derived seed pasted back into the env
    // variable replays exactly one case.
    SplitMix64 rng(base ^ (0xA5A5A5A5A5A5A5A5ULL * (index + 1)));
    return rng.next();
}

std::string repro_line(const char* env_name, std::uint64_t seed, const char* binary) {
    std::ostringstream os;
    os << "repro: " << env_name << '=' << seed << ' ' << binary;
    return os.str();
}

}  // namespace wavehpc::testing
