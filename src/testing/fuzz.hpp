#pragma once
// Fault-plan fuzzing: draw a random — but fully seed-determined —
// mesh::FaultPlan inside configurable limits. A drawn plan plus the machine
// profile and node program replays bit-identically, so any invariant
// violation it provokes is reproducible from the seed alone.

#include <cstdint>
#include <string>

#include "mesh/faults.hpp"
#include "testing/seeds.hpp"

namespace wavehpc::testing {

/// Bounds for random_fault_plan. The defaults draw network-only faults at
/// rates the reliable transport must absorb without ever giving up
/// (give-up needs ~max_retries consecutive losses on one channel).
struct FaultFuzzLimits {
    double max_drop_probability = 2e-2;
    double max_corrupt_probability = 2e-2;
    std::size_t max_degradations = 2;  ///< link-degradation windows drawn
    double max_degradation_factor = 8.0;
    double horizon = 60.0;  ///< virtual-seconds window for degradations/failures
    /// Fail-stop faults: up to `max_failures` ranks drawn from
    /// [0, nprocs) excluding `protected_rank` (the checkpoint holder in the
    /// resilient DWT). Zero nprocs or zero max_failures disables them.
    std::size_t max_failures = 0;
    int nprocs = 0;
    int protected_rank = 0;
};

/// Draw a fault plan from `rng` within `limits`. The plan's own per-message
/// seed is drawn too, so two calls yield independently faulted runs.
[[nodiscard]] mesh::FaultPlan random_fault_plan(SplitMix64& rng,
                                                const FaultFuzzLimits& limits);

/// One-line plan summary for failure messages, e.g.
/// "FaultPlan{seed=7, drop=1.2e-03, corrupt=0, degr=1, fail=[3@12.5]}".
[[nodiscard]] std::string describe(const mesh::FaultPlan& plan);

}  // namespace wavehpc::testing
