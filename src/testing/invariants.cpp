#include "testing/invariants.hpp"

#include <cmath>
#include <cstdint>
#include <mutex>
#include <sstream>
#include <vector>

#include "mesh/collectives.hpp"
#include "perf/budget.hpp"

namespace wavehpc::testing {

namespace {

struct Stamp {
    std::uint32_t src = 0;
    std::uint32_t tag = 0;
    std::uint32_t seq = 0;
    std::uint32_t check = 0;

    [[nodiscard]] std::uint32_t expected_check() const noexcept {
        return src * 1000003U + tag * 10007U + seq * 101U + 0x5EEDU;
    }
};

constexpr int kTags[] = {1, 2};

}  // namespace

TrafficReport run_traffic_audit(mesh::Machine& machine, std::size_t nprocs,
                                std::size_t rounds) {
    TrafficReport report;
    std::ostringstream violations;
    std::mutex vio_mu;  // node bodies run on distinct engine threads
    const auto violate = [&](const std::string& msg) {
        std::lock_guard lk(vio_mu);
        violations << msg << "; ";
    };

    const auto body = [&](mesh::NodeCtx& ctx) {
        const auto me = static_cast<std::uint32_t>(ctx.rank());
        const int n = ctx.nprocs();
        for (std::uint32_t round = 0; round < rounds; ++round) {
            for (int tag : kTags) {
                for (int dst = 0; dst < n; ++dst) {
                    if (dst == ctx.rank()) continue;
                    Stamp s{.src = me,
                            .tag = static_cast<std::uint32_t>(tag),
                            .seq = round,
                            .check = 0};
                    s.check = s.expected_check();
                    ctx.send_value(tag, dst, s);
                }
            }
            for (int tag : kTags) {
                for (int src = 0; src < n; ++src) {
                    if (src == ctx.rank()) continue;
                    const auto s = ctx.recv_value<Stamp>(tag, src);
                    if (s.src != static_cast<std::uint32_t>(src) ||
                        s.tag != static_cast<std::uint32_t>(tag)) {
                        std::ostringstream os;
                        os << "rank " << me << ": mislabeled stamp from " << src
                           << " tag " << tag << " (says src=" << s.src
                           << " tag=" << s.tag << ")";
                        violate(os.str());
                    }
                    // In-order exactly-once per channel: stop-and-wait
                    // sequencing means stamp `round` must arrive in round
                    // `round` — a duplicate or a skipped frame shows up as a
                    // wrong sequence number here.
                    if (s.seq != round) {
                        std::ostringstream os;
                        os << "rank " << me << ": channel (" << src << "->" << me
                           << ", tag " << tag << ") delivered seq " << s.seq
                           << " in round " << round;
                        violate(os.str());
                    }
                    if (s.check != s.expected_check()) {
                        std::ostringstream os;
                        os << "rank " << me << ": corrupted payload on channel ("
                           << src << "->" << me << ", tag " << tag << ") seq "
                           << s.seq;
                        violate(os.str());
                    }
                }
            }
            if (round % 2 == 1) mesh::gsync(ctx);
        }
        // Every rank contributes its rank+1; a lost or duplicated
        // contribution breaks the closed-form total.
        const double total = mesh::gsum_prefix(ctx, static_cast<double>(me) + 1.0);
        const double want = static_cast<double>(nprocs) * (static_cast<double>(nprocs) + 1.0) / 2.0;
        if (total != want) {
            std::ostringstream os;
            os << "rank " << me << ": gsum saw " << total << ", want " << want;
            violate(os.str());
        }
    };

    try {
        report.run = machine.run(nprocs, body);
    } catch (const mesh::TransportError& e) {
        violate(std::string("TransportError: ") + e.what());
    } catch (const sim::DeadlockError& e) {
        violate(std::string("DeadlockError: ") + e.what());
    }
    report.payloads = rounds * std::size(kTags) * nprocs * (nprocs - 1);
    report.violation = violations.str();
    return report;
}

std::string check_budget(const mesh::Machine::RunResult& run, double tol) {
    const perf::Budget b = perf::budget_from_run(run);
    const double accounted =
        b.useful + b.comm + b.redundancy + b.recovery + b.imbalance;
    std::ostringstream os;
    if (std::abs(b.other) > tol) {
        os << "budget residual `other` = " << b.other << " exceeds " << tol
           << " (useful=" << b.useful << " comm=" << b.comm << " redundancy="
           << b.redundancy << " recovery=" << b.recovery << " imbalance="
           << b.imbalance << ")";
        return os.str();
    }
    if (run.makespan > 0.0 && std::abs(accounted + b.other - 1.0) > tol) {
        os << "budget categories sum to " << accounted + b.other << ", not 1";
        return os.str();
    }
    return {};
}

bool pyramids_bit_identical(const core::Pyramid& a, const core::Pyramid& b) {
    if (a.depth() != b.depth()) return false;
    if (!(a.approx == b.approx)) return false;
    for (std::size_t i = 0; i < a.levels.size(); ++i) {
        if (!(a.levels[i].lh == b.levels[i].lh)) return false;
        if (!(a.levels[i].hl == b.levels[i].hl)) return false;
        if (!(a.levels[i].hh == b.levels[i].hh)) return false;
    }
    return true;
}

}  // namespace wavehpc::testing
