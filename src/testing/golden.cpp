#include "testing/golden.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace wavehpc::testing {

namespace {

#ifndef WAVEHPC_GOLDEN_DEFAULT_DIR
#define WAVEHPC_GOLDEN_DEFAULT_DIR ""
#endif

bool g_regen = false;

std::string format_value(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

}  // namespace

void GoldenArtifact::set(const std::string& key, double value) {
    for (const auto& [k, v] : values_) {
        if (k == key) throw std::logic_error("GoldenArtifact: duplicate key " + key);
    }
    if (key.empty() || key.find_first_of(" \t\n#") != std::string::npos) {
        throw std::logic_error("GoldenArtifact: bad key '" + key + "'");
    }
    values_.emplace_back(key, value);
}

std::string GoldenArtifact::check(const std::string& name, double rel_tol,
                                  double abs_tol) const {
    const std::string path = golden_dir() + "/" + name + ".txt";

    if (regen_mode()) {
        std::ofstream out(path);
        if (!out) return "golden: cannot write " + path;
        out << "# golden artifact '" << name << "'; regenerate with --regen\n";
        for (const auto& [k, v] : values_) out << k << ' ' << format_value(v) << '\n';
        return out ? std::string{} : "golden: write failed for " + path;
    }

    std::ifstream in(path);
    if (!in) {
        return "golden: missing " + path +
               " — run the suite with --regen (or WAVEHPC_REGEN_GOLDEN=1) and "
               "commit the result";
    }
    std::map<std::string, double> golden;
    std::vector<std::string> golden_order;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#') continue;
        std::istringstream ls(line);
        std::string key;
        double value = 0.0;
        if (!(ls >> key >> value)) return "golden: unparsable line in " + path + ": " + line;
        golden[key] = value;
        golden_order.push_back(key);
    }

    std::ostringstream report;
    for (const auto& [k, computed] : values_) {
        const auto it = golden.find(k);
        if (it == golden.end()) {
            report << "  new key (not in golden): " << k << " = "
                   << format_value(computed) << '\n';
            continue;
        }
        const double want = it->second;
        const double err = std::abs(computed - want);
        const double rel = err / std::max(std::abs(want), abs_tol);
        if (err > abs_tol && rel > rel_tol) {
            report << "  " << k << ": golden " << format_value(want) << ", got "
                   << format_value(computed) << " (rel err " << rel << ", tol "
                   << rel_tol << ")\n";
        }
        golden.erase(it);
    }
    for (const auto& k : golden_order) {
        if (golden.count(k) != 0) report << "  missing key (golden only): " << k << '\n';
    }
    const std::string body = report.str();
    if (body.empty()) return {};
    return "golden mismatch vs " + path + ":\n" + body +
           "  (if the change is intentional, rerun with --regen and commit)";
}

std::string golden_dir() {
    if (const char* env = std::getenv("WAVEHPC_GOLDEN_DIR"); env != nullptr && *env) {
        return env;
    }
    const std::string dir = WAVEHPC_GOLDEN_DEFAULT_DIR;
    if (dir.empty()) {
        throw std::runtime_error(
            "golden_dir: WAVEHPC_GOLDEN_DIR unset and no compiled-in default");
    }
    return dir;
}

bool regen_mode() {
    if (g_regen) return true;
    const char* env = std::getenv("WAVEHPC_REGEN_GOLDEN");
    return env != nullptr && *env != '\0' && std::string(env) != "0";
}

void set_regen_mode(bool on) { g_regen = on; }

}  // namespace wavehpc::testing
