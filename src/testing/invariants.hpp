#pragma once
// Invariant checkers for fuzzed simulation runs.
//
// Each checker either passes silently or produces a human-readable
// violation string; callers append the seed repro line and fail the test.
// The checkers assert the properties the rest of the repo *claims*:
// exactly-once in-order delivery per (src, dst, tag) channel over the
// reliable transport, perf-budget categories summing to elapsed time, and
// parallel DWT pyramids bit-identical to the serial reference.

#include <cstddef>
#include <string>

#include "core/dwt.hpp"
#include "mesh/machine.hpp"

namespace wavehpc::testing {

struct TrafficReport {
    mesh::Machine::RunResult run;
    std::size_t payloads = 0;   ///< application payloads exchanged
    std::string violation;      ///< empty when every invariant held
    [[nodiscard]] bool ok() const noexcept { return violation.empty(); }
};

/// Run a deterministic all-pairs traffic pattern on `machine` (which should
/// have reliable transport enabled when its fault plan drops or corrupts):
/// every ordered rank pair exchanges `rounds` stamped payloads on two tags,
/// with barriers and a global sum mixed in. Verifies that every channel
/// delivered stamps 0..rounds-1 exactly once, in order, with intact
/// contents, and that the closing collective saw every rank's contribution.
/// Transport give-ups and deadlocks are reported as violations, not thrown.
[[nodiscard]] TrafficReport run_traffic_audit(mesh::Machine& machine,
                                              std::size_t nprocs, std::size_t rounds);

/// The performance-budget identity: useful + comm + redundancy + recovery +
/// imbalance must account for the whole makespan (residual `other` ~ 0).
/// Empty string when it holds within `tol`.
[[nodiscard]] std::string check_budget(const mesh::Machine::RunResult& run,
                                       double tol = 1e-6);

/// True iff the two pyramids have identical structure and bit-identical
/// coefficients in every band (float equality, no tolerance).
[[nodiscard]] bool pyramids_bit_identical(const core::Pyramid& a,
                                          const core::Pyramid& b);

}  // namespace wavehpc::testing
