#include "testing/fuzz.hpp"

#include <algorithm>
#include <sstream>

namespace wavehpc::testing {

mesh::FaultPlan random_fault_plan(SplitMix64& rng, const FaultFuzzLimits& limits) {
    mesh::FaultPlan plan;
    plan.seed = rng.next();
    // Square the uniform draw so low rates dominate: most cases stay in the
    // regime the transport retires in one or two retransmissions, while the
    // tail still probes heavy loss.
    const double d = rng.uniform();
    plan.drop_probability = d * d * limits.max_drop_probability;
    const double c = rng.uniform();
    plan.corrupt_probability = c * c * limits.max_corrupt_probability;

    if (limits.max_degradations > 0) {
        const auto n = rng.below(limits.max_degradations + 1);
        for (std::uint64_t i = 0; i < n; ++i) {
            mesh::LinkDegradation w;
            w.t_begin = rng.range(0.0, limits.horizon);
            w.t_end = w.t_begin + rng.range(0.0, limits.horizon / 2.0);
            w.factor = rng.range(1.0, limits.max_degradation_factor);
            plan.degradations.push_back(w);
        }
    }

    if (limits.max_failures > 0 && limits.nprocs > 1) {
        const auto n = rng.below(limits.max_failures + 1);
        for (std::uint64_t i = 0; i < n; ++i) {
            const int rank =
                static_cast<int>(rng.below(static_cast<std::uint64_t>(limits.nprocs)));
            if (rank == limits.protected_rank) continue;
            const bool dup =
                std::any_of(plan.failures.begin(), plan.failures.end(),
                            [rank](const mesh::NodeFailure& f) { return f.rank == rank; });
            if (dup) continue;
            plan.failures.push_back({.rank = rank, .at = rng.range(0.0, limits.horizon)});
        }
    }
    return plan;
}

std::string describe(const mesh::FaultPlan& plan) {
    std::ostringstream os;
    os << "FaultPlan{seed=" << plan.seed << ", drop=" << plan.drop_probability
       << ", corrupt=" << plan.corrupt_probability << ", degr="
       << plan.degradations.size() << ", fail=[";
    for (std::size_t i = 0; i < plan.failures.size(); ++i) {
        if (i > 0) os << ' ';
        os << plan.failures[i].rank << '@' << plan.failures[i].at;
    }
    os << "]}";
    return os.str();
}

}  // namespace wavehpc::testing
