#pragma once
// Golden artifact regression: snapshot the numeric outputs behind the
// paper's tables and figures into checked-in text files, and compare fresh
// computations against them with per-artifact tolerances.
//
// File format: one `key value` pair per line (value printed with %.17g, so
// a regenerated-but-unchanged artifact diffs empty), '#' comment lines
// ignored. Regeneration is explicit: run the suite with --regen (or
// WAVEHPC_REGEN_GOLDEN=1) and commit the rewritten files.

#include <string>
#include <vector>

namespace wavehpc::testing {

class GoldenArtifact {
public:
    /// Record one named value; keys must be unique within the artifact and
    /// are compared (and written) in insertion order.
    void set(const std::string& key, double value);

    /// Compare against `<golden_dir()>/<name>.txt`. Returns an empty string
    /// on match (every golden key present, relative error within `rel_tol`,
    /// absolute error within `abs_tol` near zero, no keys added or removed);
    /// otherwise a multi-line mismatch report. In regen mode, rewrites the
    /// file instead and returns empty.
    [[nodiscard]] std::string check(const std::string& name, double rel_tol,
                                    double abs_tol = 1e-12) const;

    [[nodiscard]] const std::vector<std::pair<std::string, double>>& values()
        const noexcept {
        return values_;
    }

private:
    std::vector<std::pair<std::string, double>> values_;
};

/// Directory holding the golden files: $WAVEHPC_GOLDEN_DIR if set, else the
/// compiled-in default (tests/golden in the source tree).
[[nodiscard]] std::string golden_dir();

/// Regen mode: set by set_regen_mode (the suite's --regen flag) or the
/// WAVEHPC_REGEN_GOLDEN environment variable.
[[nodiscard]] bool regen_mode();
void set_regen_mode(bool on);

}  // namespace wavehpc::testing
