// Regenerates the rationale of the paper's figures 3 and 4:
//   Figure 3 — striping vs block decomposition: stripes need one guard-zone
//              exchange (south) per level; blocks need two (east + south).
//   Figure 4 — snake vs naive stripe placement: the snake keeps every
//              exchange one mesh hop with zero route conflicts; the naive
//              row-major placement sends wrap-around messages across whole
//              mesh rows, which collide under dimension-ordered routing.
// Prints analytic message counts/volumes for fig 3 and a measured
// guard-phase contention sweep for fig 4.

#include <cmath>
#include <iostream>

#include "core/cost_model.hpp"
#include "core/synthetic.hpp"
#include "perf/report.hpp"
#include "wavelet/mesh_dwt.hpp"
#include "wavelet/mesh_dwt_block.hpp"

namespace {

using wavehpc::core::MappingPolicy;
using wavehpc::perf::TableWriter;

}  // namespace

int main() {
    const auto img512 = wavehpc::core::landsat_tm_like(512, 512, 1996);
    const auto fp8 = wavehpc::core::FilterPair::daubechies(8);

    std::cout << "=== Figure 3: stripes vs blocks, measured (guard traffic only) "
                 "===\n"
              << "512x512 image, 8-tap filter, 1 level; scatter/gather excluded.\n\n";
    {
        TableWriter tw({"p", "grid", "stripe msgs", "stripe t (s)", "block msgs",
                        "block t (s)"});
        const std::pair<std::size_t, std::size_t> grids[] = {
            {2, 2}, {2, 4}, {4, 4}, {4, 8}};
        for (const auto& [gr, gc] : grids) {
            const std::size_t p = gr * gc;
            wavehpc::mesh::Machine m1(wavehpc::mesh::MachineProfile::paragon_pvm());
            wavehpc::wavelet::MeshDwtConfig scfg;
            scfg.levels = 1;
            scfg.scatter_gather = false;
            const auto stripes = wavehpc::wavelet::mesh_decompose(
                m1, img512, fp8, scfg, p,
                wavehpc::core::SequentialCostModel::paragon_node());

            wavehpc::mesh::Machine m2(wavehpc::mesh::MachineProfile::paragon_pvm());
            wavehpc::wavelet::BlockDwtConfig bcfg;
            bcfg.levels = 1;
            bcfg.grid_rows = gr;  // tiles arranged tall: gc <= 4 mesh columns
            bcfg.grid_cols = gc > 4 ? 4 : gc;
            bcfg.grid_rows = p / bcfg.grid_cols;
            bcfg.scatter_gather = false;
            const auto blocks = wavehpc::wavelet::block_decompose(
                m2, img512, fp8, bcfg,
                wavehpc::core::SequentialCostModel::paragon_node());

            tw.add_row({std::to_string(p),
                        std::to_string(bcfg.grid_rows) + "x" +
                            std::to_string(bcfg.grid_cols),
                        std::to_string(stripes.run.messages),
                        TableWriter::num(stripes.seconds, 4),
                        std::to_string(blocks.run.messages),
                        TableWriter::num(blocks.seconds, 4)});
        }
        tw.print(std::cout);
        std::cout << "Striping halves the guard transaction count (one south exchange\n"
                     "per level instead of east + south) — the paper's reason for\n"
                     "distributing stripes rather than blocks.\n\n";
    }

    std::cout << "=== Figure 4 rationale: snake vs naive placement (guard phase only) "
                 "===\n"
              << "scatter/gather excluded so only mapping-sensitive traffic is "
                 "timed.\n\n";
    const auto img = wavehpc::core::landsat_tm_like(512, 512, 1996);
    const auto fp = wavehpc::core::FilterPair::daubechies(8);
    TableWriter tw({"p", "naive conflicts (s)", "snake conflicts (s)",
                    "naive t (s)", "snake t (s)"});
    for (std::size_t p : {2U, 4U, 8U, 16U, 32U}) {
        double conflict[2];
        double seconds[2];
        int i = 0;
        for (auto mapping : {MappingPolicy::Naive, MappingPolicy::Snake}) {
            wavehpc::mesh::Machine machine(wavehpc::mesh::MachineProfile::paragon_pvm());
            wavehpc::wavelet::MeshDwtConfig cfg;
            cfg.levels = 1;
            cfg.mapping = mapping;
            cfg.scatter_gather = false;
            const auto res = wavehpc::wavelet::mesh_decompose(
                machine, img, fp, cfg, p,
                wavehpc::core::SequentialCostModel::paragon_node());
            conflict[i] = res.run.contention_delay;
            seconds[i] = res.seconds;
            ++i;
        }
        tw.add_row({std::to_string(p), TableWriter::num(conflict[0], 5),
                    TableWriter::num(conflict[1], 5), TableWriter::num(seconds[0], 4),
                    TableWriter::num(seconds[1], 4)});
    }
    tw.print(std::cout);
    std::cout
        << "\nPaper shape: at p <= 4 (one mesh row) the mappings coincide; beyond\n"
           "4 the naive mapping's row-wrap messages conflict with in-row guard\n"
           "traffic (non-zero conflict column) while the snake stays conflict-free.\n"
           "The published *magnitude* (hard speedup plateau at 4) additionally\n"
           "reflects PVM's pathological behaviour under contention on the real\n"
           "machine; see EXPERIMENTS.md.\n";
    return 0;
}
