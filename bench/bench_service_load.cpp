// Open-loop load generator for the pyramid service (ISSUE 4): seeded
// Poisson arrivals over a small scene pool with skewed popularity and the
// paper's request mix — (8,1) 40%, (4,2) 35%, (2,4) 25% — swept across
// three offered-load points scaled off the measured cold-compute capacity.
// Each point gets a fresh service; the report is throughput, tail latency
// (p50/p95/p99 from the service histograms), admission rejects, and cache
// behaviour. Every reply for the most popular scene is checked
// bit-identical against an out-of-band sequential decomposition.
//
// --smoke: fewer requests per point and a smaller scene, then asserts the
// accounting invariants (submitted = completed + rejected, hit rate > 0,
// zero bit-identity mismatches) so CI exercises the whole service path.
//
// Extra flags (via the shared parser's hook):
//   --requests N   arrivals per load point (default 400, smoke 120)
//   --kernel K     DWT kernel for every request and reference: "convolve"
//                  (default), "lifting", or "auto" (process selector) —
//                  the capacity-lift knob for the unified kernel layer

#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "common_args.hpp"
#include "core/dwt.hpp"
#include "core/synthetic.hpp"
#include "perf/report.hpp"
#include "svc/service.hpp"
#include "testing/seeds.hpp"

namespace {

using wavehpc::bench::CommonArgs;
using wavehpc::bench::Consume;
using wavehpc::core::BoundaryMode;
using wavehpc::core::FilterPair;
using wavehpc::core::ImageF;
using wavehpc::core::Pyramid;
using wavehpc::perf::TableWriter;
using wavehpc::runtime::ThreadPool;
using wavehpc::svc::Backend;
using wavehpc::svc::PyramidService;
using wavehpc::svc::ServiceConfig;
using wavehpc::svc::TransformRequest;
using wavehpc::testing::SplitMix64;

using Clock = std::chrono::steady_clock;

struct MixEntry {
    int taps;
    int levels;
    const char* label;
    double weight;  // fraction of offered traffic
};

// Table 1's three configurations, weighted toward the cheap filter the way
// a browse-heavy image service would be.
constexpr MixEntry kMix[] = {
    {8, 1, "F8/L1", 0.40},
    {4, 2, "F4/L2", 0.35},
    {2, 4, "F2/L4", 0.25},
};
constexpr std::size_t kMixCount = sizeof(kMix) / sizeof(kMix[0]);
constexpr std::size_t kScenes = 8;

// Set from --kernel before any point runs; requests and the out-of-band
// references use the same kernel so the bit-identity check stays valid
// (threads and serial lifting are bit-identical, pinned by test_kernels).
wavehpc::core::DwtKernel g_kernel = wavehpc::core::DwtKernel::Convolve;

std::size_t pick_mix(SplitMix64& rng) {
    double r = rng.uniform();
    for (std::size_t m = 0; m + 1 < kMixCount; ++m) {
        if (r < kMix[m].weight) return m;
        r -= kMix[m].weight;
    }
    return kMixCount - 1;
}

// Skewed popularity: half the traffic lands on scene 0, the rest uniform.
std::size_t pick_scene(SplitMix64& rng) {
    return rng.below(2) == 0 ? 0 : 1 + rng.below(kScenes - 1);
}

double exp_interval(SplitMix64& rng, double rate) {
    return -std::log(1.0 - rng.uniform()) / rate;
}

bool pyramids_identical(const Pyramid& a, const Pyramid& b) {
    if (a.depth() != b.depth()) return false;
    for (std::size_t k = 0; k < a.depth(); ++k) {
        if (a.levels[k].lh != b.levels[k].lh) return false;
        if (a.levels[k].hl != b.levels[k].hl) return false;
        if (a.levels[k].hh != b.levels[k].hh) return false;
    }
    return a.approx == b.approx;
}

struct PointResult {
    double offered_rps = 0.0;
    double wall_seconds = 0.0;
    wavehpc::svc::MetricsSnapshot metrics;
    wavehpc::svc::CacheStats cache;
    std::uint64_t verified = 0;    // scene-0 replies checked for bit-identity
    std::uint64_t mismatches = 0;  // ...and how many failed the check
};

PointResult run_point(ThreadPool& pool, const ServiceConfig& cfg,
                      const std::vector<std::shared_ptr<const ImageF>>& scenes,
                      const std::vector<Pyramid>& scene0_refs, double offered_rps,
                      std::size_t n_requests, std::uint64_t seed) {
    PyramidService service(pool, cfg);
    SplitMix64 rng(seed);

    struct Pending {
        wavehpc::svc::TransformFuture future;
        std::size_t scene;
        std::size_t mix;
    };
    std::vector<Pending> pending;
    pending.reserve(n_requests);

    // Open loop: arrival times are drawn up front and honoured regardless
    // of completions, so overload shows up as rejects and queueing delay
    // rather than as a slowed-down generator.
    const auto t0 = Clock::now();
    double arrival = 0.0;
    for (std::size_t i = 0; i < n_requests; ++i) {
        arrival += exp_interval(rng, offered_rps);
        std::this_thread::sleep_until(
            t0 + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(arrival)));
        const std::size_t scene = pick_scene(rng);
        const std::size_t mix = pick_mix(rng);
        TransformRequest req;
        req.image = scenes[scene];
        req.taps = kMix[mix].taps;
        req.levels = kMix[mix].levels;
        req.kernel = g_kernel;
        req.backend = Backend::Threads;
        auto sub = service.submit(req);
        if (sub.accepted) pending.push_back({std::move(sub.future), scene, mix});
    }

    PointResult out;
    out.offered_rps = offered_rps;
    for (auto& p : pending) {
        const auto reply = p.future.get();
        if (p.scene == 0) {
            ++out.verified;
            if (!pyramids_identical(reply.result->pyramid, scene0_refs[p.mix])) {
                ++out.mismatches;
            }
        }
    }
    out.wall_seconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    out.metrics = service.metrics();
    out.cache = service.cache_stats();
    service.shutdown();
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    CommonArgs args;
    std::uint64_t requests_flag = 0;
    const auto extra = [&requests_flag](std::string_view flag,
                                        std::string_view value) {
        if (flag == "--requests" &&
            wavehpc::bench::detail::parse_u64(value, requests_flag)) {
            return Consume::kFlagAndValue;
        }
        if (flag == "--kernel" && wavehpc::core::parse_dwt_kernel(value, g_kernel)) {
            return Consume::kFlagAndValue;
        }
        return Consume::kNo;
    };
    if (!wavehpc::bench::parse_bench_args(argc, argv, args, extra)) return 2;

    const std::size_t edge =
        wavehpc::bench::or_default<std::size_t>(args.size, args.smoke ? 128 : 256);
    const std::uint64_t seed = wavehpc::bench::or_default<std::uint64_t>(args.seed, 1996);
    const std::size_t n_requests = static_cast<std::size_t>(
        wavehpc::bench::or_default<std::uint64_t>(requests_flag,
                                                  args.smoke ? 120 : 400));

    std::cout << "=== Pyramid service load sweep ===\n"
              << edge << "x" << edge << " scenes, pool of " << kScenes
              << " (scene 0 takes half the traffic), mix F8/L1 40% / F4/L2 35% "
                 "/ F2/L4 25%, seed "
              << seed << ", " << n_requests << " Poisson arrivals per point, "
              << wavehpc::core::to_string(g_kernel) << " kernel\n\n";

    std::vector<std::shared_ptr<const ImageF>> scenes;
    scenes.reserve(kScenes);
    for (std::size_t i = 0; i < kScenes; ++i) {
        scenes.push_back(std::make_shared<const ImageF>(
            wavehpc::core::landsat_tm_like(edge, edge, seed + i)));
    }
    // Ground truth for the bit-identity check: sequential decompositions of
    // the popular scene, one per mix configuration.
    std::vector<Pyramid> scene0_refs;
    scene0_refs.reserve(kMixCount);
    for (const auto& m : kMix) {
        scene0_refs.push_back(wavehpc::core::decompose(
            *scenes[0], FilterPair::daubechies(m.taps), m.levels,
            BoundaryMode::Periodic, g_kernel));
    }

    ThreadPool pool(std::max(2U, std::thread::hardware_concurrency()));
    ServiceConfig cfg = ServiceConfig::from_env();  // WAVEHPC_SVC_* apply

    // Capacity estimate: mix-weighted cold compute time of the popular
    // scene, measured sequentially, times the service concurrency.
    double weighted_compute = 0.0;
    for (std::size_t m = 0; m < kMixCount; ++m) {
        const auto t0 = Clock::now();
        (void)wavehpc::core::decompose(*scenes[0],
                                       FilterPair::daubechies(kMix[m].taps),
                                       kMix[m].levels, BoundaryMode::Periodic,
                                       g_kernel);
        weighted_compute +=
            kMix[m].weight * std::chrono::duration<double>(Clock::now() - t0).count();
    }
    const double capacity_rps =
        static_cast<double>(cfg.max_concurrency) / weighted_compute;
    std::cout << "measured cold compute (mix-weighted): "
              << wavehpc::perf::format_latency(weighted_compute)
              << "  -> cold capacity ~" << TableWriter::num(capacity_rps, 1)
              << " rps at concurrency " << cfg.max_concurrency << "\n\n";

    // The cache turns most of that offered load into hits, so sweeping
    // around cold capacity exercises under-load, saturation, and overload.
    const double load_factors[] = {0.5, 2.0, 8.0};
    std::vector<PointResult> points;
    for (std::size_t k = 0; k < 3; ++k) {
        const double rps = capacity_rps * load_factors[k];
        points.push_back(run_point(pool, cfg, scenes, scene0_refs, rps,
                                   n_requests,
                                   wavehpc::testing::derive_seed(seed, k)));
        const auto& p = points.back();
        std::cout << "--- load point " << (k + 1) << ": offered "
                  << TableWriter::num(p.offered_rps, 1) << " rps ("
                  << TableWriter::num(load_factors[k], 1) << "x cold capacity), wall "
                  << TableWriter::num(p.wall_seconds, 2) << " s ---\n";
        wavehpc::svc::print_service_metrics(std::cout, "service", p.metrics,
                                            p.cache);
        std::cout << '\n';
    }

    TableWriter sweep({"offered rps", "done rps", "rejected", "hit rate",
                       "p50", "p95", "p99"});
    for (const auto& p : points) {
        sweep.add_row(
            {TableWriter::num(p.offered_rps, 1),
             TableWriter::num(
                 static_cast<double>(p.metrics.counters.completed) / p.wall_seconds, 1),
             std::to_string(p.metrics.counters.rejected),
             TableWriter::pct(p.cache.hit_rate()),
             wavehpc::perf::format_latency(p.metrics.total.quantile(0.50)),
             wavehpc::perf::format_latency(p.metrics.total.quantile(0.95)),
             wavehpc::perf::format_latency(p.metrics.total.quantile(0.99))});
    }
    sweep.print(std::cout);

    std::uint64_t verified = 0;
    std::uint64_t mismatches = 0;
    bool accounted = true;
    bool any_hits = false;
    for (const auto& p : points) {
        verified += p.verified;
        mismatches += p.mismatches;
        const auto& c = p.metrics.counters;
        accounted = accounted && (c.submitted == c.completed + c.rejected);
        any_hits = any_hits || p.cache.hits > 0;
    }
    std::cout << "\nbit-identity: " << verified << " scene-0 replies checked, "
              << mismatches << " mismatches\n";

    if (args.smoke) {
        const bool ok = accounted && any_hits && verified > 0 && mismatches == 0;
        std::cout << "smoke: " << (ok ? "OK" : "FAILED")
                  << " (expects submitted = completed + rejected, warm hits, "
                     "bit-identical replies)\n";
        return ok ? 0 : 1;
    }
    return mismatches == 0 ? 0 : 1;
}
